// cache_tool — standalone synthesis-cache daemon for a DSE fleet.
//
// Serves the NDJSON get/put/stats protocol (src/dse/cache_wire.h) over the
// same socket transports as serve_tool, backed by one in-memory
// content-keyed report store. Point `dse_tool --cache-peers` or
// `serve_tool --cache-peers` at one or more daemons and every process
// shares one warm cache: the first replica to synthesize a design pays for
// it, everyone else fetches the report in a round trip.
//
// Daemon modes:
//
//   cache_tool --listen PATH         Unix-domain socket daemon at PATH
//   cache_tool --listen-tcp H:P      TCP daemon (port 0 = ephemeral,
//                                    actual endpoint printed to stderr)
//
// Client modes (against a running daemon; destination is --socket PATH or
// --tcp HOST:PORT):
//
//   cache_tool --stats ...           print the daemon's stats JSON
//   cache_tool --shutdown ...        ask the daemon to exit
//
// Exit codes follow the serve_tool contract: 0 success, 1 daemon-side
// error response, 2 usage error, 3 transport failure.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>

#include <unistd.h>

#include "dse/cache_wire.h"
#include "serve/cache_tier.h"
#include "serve/socket.h"
#include "serve/transport.h"

namespace {

using namespace sdlc;
using namespace sdlc::serve;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage: cache_tool [options]\n"
        "  daemon:\n"
        "    --listen PATH        serve on a Unix-domain socket at PATH\n"
        "    --listen-tcp HOST:PORT  serve on a TCP socket (port 0 = ephemeral)\n"
        "    --max-request-bytes N  reject longer request lines (default 64 KiB)\n"
        "    --delay-ms N         test fault injection: delay every answer N ms\n"
        "  client (with --socket PATH or --tcp HOST:PORT):\n"
        "    --stats              print the daemon's stats JSON line\n"
        "    --shutdown           ask the daemon to drain and exit\n";
    std::exit(msg.empty() ? 0 : 2);
}

struct Args {
    std::map<std::string, std::string> values;
    std::set<std::string> flags;

    Args(int argc, char** argv) {
        const std::set<std::string> value_keys = {"--listen", "--listen-tcp",
                                                  "--max-request-bytes", "--delay-ms",
                                                  "--socket", "--tcp"};
        const std::set<std::string> flag_keys = {"--stats", "--shutdown"};
        for (int i = 1; i < argc; ++i) {
            const std::string key = argv[i];
            if (key == "--help" || key == "-h") usage();
            if (flag_keys.count(key) != 0) {
                flags.insert(key.substr(2));
                continue;
            }
            if (value_keys.count(key) == 0) usage("unknown option " + key);
            if (i + 1 >= argc) usage("missing value for " + key);
            values[key] = argv[++i];
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values.find(key);
        return it == values.end() ? dflt : it->second;
    }
    [[nodiscard]] long get_long(const std::string& key, long dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        long parsed = 0;
        try {
            size_t consumed = 0;
            parsed = std::stol(v, &consumed);
            if (consumed != v.size()) usage(key + " expects an integer, got \"" + v + "\"");
        } catch (const std::logic_error&) {
            usage(key + " expects an integer, got \"" + v + "\"");
        }
        if (parsed < 0) usage(key + " must be >= 0");
        return parsed;
    }
};

int run_daemon(const Args& args) {
    std::unique_ptr<SocketListener> listener;
    if (const std::string path = args.get("--listen"); !path.empty()) {
        listener = std::make_unique<UnixSocketServer>(path);
    } else {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--listen-tcp"), host, port, &error)) {
            usage("--listen-tcp: " + error);
        }
        listener = std::make_unique<TcpSocketServer>(host, port);
    }
    CacheTierOptions opts;
    opts.max_request_bytes = static_cast<size_t>(
        args.get_long("--max-request-bytes", static_cast<long>(kCacheMaxRequestBytes)));
    opts.delay_ms = static_cast<int>(args.get_long("--delay-ms", 0));
    CacheTierService service(opts);
    std::cerr << "cache_tool: listening on " << listener->endpoint() << "\n";
    serve_listener(*listener, service, opts.max_request_bytes);
    const CacheDaemonStats stats = service.stats();
    std::cerr << "cache_tool: exiting with " << stats.entries << " entries, " << stats.gets
              << " gets (" << stats.hits << " hits), " << stats.puts << " puts\n";
    return 0;
}

/// Sends one request line and prints/validates the single response line.
int run_client(const Args& args, const std::string& request) {
    const std::string socket_path = args.get("--socket");
    const std::string tcp_spec = args.get("--tcp");
    if (socket_path.empty() == tcp_spec.empty()) {
        usage("give exactly one of --socket PATH or --tcp HOST:PORT");
    }
    int fd = -1;
    if (!socket_path.empty()) {
        fd = unix_socket_connect(socket_path);
    } else {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(tcp_spec, host, port, &error)) usage("--tcp: " + error);
        fd = tcp_connect(host.empty() ? "127.0.0.1" : host, port);
    }
    if (!write_all(fd, request) || !write_all(fd, "\n")) {
        std::cerr << "error: send failed\n";
        ::close(fd);
        return 3;
    }
    LineReader reader(fd);
    std::string line;
    if (!reader.next(line)) {
        std::cerr << "error: daemon closed the stream without answering\n";
        ::close(fd);
        return 3;
    }
    ::close(fd);
    std::cout << line << "\n";
    CacheResponse response;
    std::string error;
    if (!parse_cache_response(line, response, &error)) {
        std::cerr << "error: unparseable response: " << error << "\n";
        return 1;
    }
    return response.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    // A peer that disconnects mid-write must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    try {
        const Args args(argc, argv);
        const bool daemon = args.values.count("--listen") != 0 ||
                            args.values.count("--listen-tcp") != 0;
        const bool stats = args.flags.count("stats") != 0;
        const bool shutdown = args.flags.count("shutdown") != 0;
        if (args.values.count("--listen") != 0 && args.values.count("--listen-tcp") != 0) {
            usage("give --listen or --listen-tcp, not both");
        }
        if (stats && shutdown) usage("--stats and --shutdown are mutually exclusive");
        if (daemon && (stats || shutdown)) {
            usage("daemon (--listen/--listen-tcp) and client (--stats/--shutdown) are "
                  "mutually exclusive modes");
        }
        if (stats) return run_client(args, cache_stats_line("stats"));
        if (shutdown) return run_client(args, cache_shutdown_line("shutdown"));
        if (!daemon) usage("give --listen PATH or --listen-tcp HOST:PORT");
        return run_daemon(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 3;
    }
}
