// cache_tool — standalone synthesis-cache daemon for a DSE fleet.
//
// Serves the NDJSON get/put/stats protocol (src/dse/cache_wire.h) over the
// same socket transports as serve_tool, backed by one in-memory
// content-keyed report store. Point `dse_tool --cache-peers` or
// `serve_tool --cache-peers` at one or more daemons and every process
// shares one warm cache: the first replica to synthesize a design pays for
// it, everyone else fetches the report in a round trip.
//
// Daemon modes:
//
//   cache_tool --listen PATH         Unix-domain socket daemon at PATH
//   cache_tool --listen-tcp H:P      TCP daemon (port 0 = ephemeral,
//                                    actual endpoint printed to stderr)
//
// Client modes (against a running daemon; destination is --socket PATH or
// --tcp HOST:PORT):
//
//   cache_tool --stats ...           print the daemon's stats JSON
//   cache_tool --shutdown ...        ask the daemon to exit
//
// Exit codes follow the serve_tool contract: 0 success, 1 daemon-side
// error response, 2 usage error, 3 transport failure.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

#include "dse/cache_wire.h"
#include "obs/access_log.h"
#include "serve/cache_tier.h"
#include "serve/fault.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json.h"

namespace {

using namespace sdlc;
using namespace sdlc::serve;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage: cache_tool [options]\n"
        "  daemon:\n"
        "    --listen PATH        serve on a Unix-domain socket at PATH\n"
        "    --listen-tcp HOST:PORT  serve on a TCP socket (port 0 = ephemeral)\n"
        "    --listen-http HOST:PORT  HTTP front door beside the line socket:\n"
        "                         GET /metrics (Prometheus exposition) and\n"
        "                         GET /healthz (port 0 = ephemeral)\n"
        "    --auth-token-file FILE  require `Authorization: Bearer <token>` on\n"
        "                         HTTP /metrics (constant-time compare, 401 on\n"
        "                         mismatch; /healthz stays open)\n"
        "    --max-request-bytes N  reject longer request lines (default 64 KiB)\n"
        "    --data-dir DIR       persist puts (append-only log + snapshots) and\n"
        "                         recover them at startup, so a killed daemon\n"
        "                         rejoins warm\n"
        "    --compact-log-bytes N  fold the log into a snapshot past N bytes\n"
        "                         (default 4 MiB; 0 = never)\n"
        "    --fsync-puts         fsync the log after every put\n"
        "    --access-log FILE    append one JSON line per request (trace_id, op,\n"
        "                         outcome, wall_s, bytes_out)\n"
        "    --delay-ms N         test fault injection: delay every answer N ms\n"
        "    --fault SPECS        structured fault injection, comma-separated:\n"
        "                         disconnect-after:N, short-write:N,\n"
        "                         corrupt-frame:N, stall:MS\n"
        "  client (with --socket PATH or --tcp HOST:PORT):\n"
        "    --stats              print the daemon's stats JSON line\n"
        "    --scrape             print the daemon's stats as Prometheus text\n"
        "    --shutdown           ask the daemon to drain and exit\n";
    std::exit(msg.empty() ? 0 : 2);
}

struct Args {
    std::map<std::string, std::string> values;
    std::set<std::string> flags;

    Args(int argc, char** argv) {
        const std::set<std::string> value_keys = {"--listen",        "--listen-tcp",
                                                  "--max-request-bytes", "--delay-ms",
                                                  "--data-dir",      "--compact-log-bytes",
                                                  "--fault",         "--socket",
                                                  "--tcp",           "--access-log",
                                                  "--listen-http",   "--auth-token-file"};
        const std::set<std::string> flag_keys = {"--stats", "--scrape", "--shutdown",
                                                 "--fsync-puts"};
        for (int i = 1; i < argc; ++i) {
            const std::string key = argv[i];
            if (key == "--help" || key == "-h") usage();
            if (flag_keys.count(key) != 0) {
                flags.insert(key.substr(2));
                continue;
            }
            if (value_keys.count(key) == 0) usage("unknown option " + key);
            if (i + 1 >= argc) usage("missing value for " + key);
            values[key] = argv[++i];
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values.find(key);
        return it == values.end() ? dflt : it->second;
    }
    [[nodiscard]] long get_long(const std::string& key, long dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        long parsed = 0;
        try {
            size_t consumed = 0;
            parsed = std::stol(v, &consumed);
            if (consumed != v.size()) usage(key + " expects an integer, got \"" + v + "\"");
        } catch (const std::logic_error&) {
            usage(key + " expects an integer, got \"" + v + "\"");
        }
        if (parsed < 0) usage(key + " must be >= 0");
        return parsed;
    }
};

int run_daemon(const Args& args) {
    std::unique_ptr<SocketListener> listener;
    if (const std::string path = args.get("--listen"); !path.empty()) {
        listener = std::make_unique<UnixSocketServer>(path);
    } else {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--listen-tcp"), host, port, &error)) {
            usage("--listen-tcp: " + error);
        }
        listener = std::make_unique<TcpSocketServer>(host, port);
    }
    std::unique_ptr<TcpSocketServer> http_listener;
    if (args.values.count("--listen-http") != 0) {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--listen-http"), host, port, &error)) {
            usage("--listen-http: " + error);
        }
        http_listener = std::make_unique<TcpSocketServer>(host, port);
    }
    CacheTierOptions opts;
    opts.max_request_bytes = static_cast<size_t>(
        args.get_long("--max-request-bytes", static_cast<long>(kCacheMaxRequestBytes)));
    opts.delay_ms = static_cast<int>(args.get_long("--delay-ms", 0));
    opts.data_dir = args.get("--data-dir");
    opts.compact_log_bytes = static_cast<size_t>(
        args.get_long("--compact-log-bytes", static_cast<long>(opts.compact_log_bytes)));
    opts.fsync_puts = args.flags.count("fsync-puts") != 0;
    if (const std::string path = args.get("--access-log"); !path.empty()) {
        std::string error;
        opts.access_log = obs::AccessLog::open(path, &error);
        if (opts.access_log == nullptr) usage("--access-log: " + error);
    }

    std::shared_ptr<FaultInjector> injector;
    if (const std::string fault_text = args.get("--fault"); !fault_text.empty()) {
        std::vector<FaultSpec> specs;
        std::string error;
        if (!parse_fault_specs(fault_text, specs, error)) usage("--fault: " + error);
        injector = std::make_shared<FaultInjector>(std::move(specs));
    }

    CacheTierService service(opts);
    if (!service.durable_error().empty()) {
        // Refuse to run volatile when persistence was asked for.
        std::cerr << "error: --data-dir: " << service.durable_error() << "\n";
        return 3;
    }
    if (!opts.data_dir.empty()) {
        const CacheRecoveryStats& recovery = service.recovery();
        std::cerr << "cache_tool: recovered " << recovery.snapshot_entries
                  << " snapshot entries + " << recovery.log_records << " log records from "
                  << opts.data_dir;
        if (recovery.truncated_bytes > 0) {
            std::cerr << " (truncated " << recovery.truncated_bytes << " torn tail bytes)";
        }
        std::cerr << "\n";
    }
    std::cerr << "cache_tool: listening on " << listener->endpoint() << "\n";
    if (http_listener != nullptr) {
        // Metrics/health only: the cache wire protocol stays on the line
        // socket, so enable_sweep is off and POST /v1/sweep answers 404.
        HttpOptions http;
        http.enable_sweep = false;
        if (const std::string path = args.get("--auth-token-file"); !path.empty()) {
            std::string error;
            if (!read_auth_token_file(path, http.auth_token, &error)) {
                usage("--auth-token-file: " + error);
            }
        }
        http.metrics_fn = [&service] { return cache_prometheus_metrics(service.stats()); };
        http.access_log = opts.access_log;
        http.install_shutdown_hook = false;
        service.set_on_shutdown([&line = *listener, &web = *http_listener] {
            line.close();
            web.close();
        });
        std::cerr << "cache_tool: http listening on " << http_listener->endpoint() << "\n";
        std::thread http_thread(
            [&] { serve_http_listener(*http_listener, service, http); });
        serve_listener(*listener, service, opts.max_request_bytes, injector,
                       /*install_shutdown_hook=*/false);
        http_thread.join();
    } else {
        serve_listener(*listener, service, opts.max_request_bytes, injector);
    }
    const CacheDaemonStats stats = service.stats();
    std::cerr << "cache_tool: exiting with " << stats.entries << " entries, " << stats.gets
              << " gets (" << stats.hits << " hits), " << stats.puts << " puts\n";
    return 0;
}

/// Sends one request line and prints/validates the single response line.
/// With `scrape`, the stats response is rendered as Prometheus text
/// instead of echoed as JSON (so CI and dashboards can assert counters —
/// notably sdlc_cache_warm_hits_total after a crash restart — with the
/// same scrape tooling serve_tool uses).
int run_client(const Args& args, const std::string& request, bool scrape = false) {
    const std::string socket_path = args.get("--socket");
    const std::string tcp_spec = args.get("--tcp");
    if (socket_path.empty() == tcp_spec.empty()) {
        usage("give exactly one of --socket PATH or --tcp HOST:PORT");
    }
    int fd = -1;
    if (!socket_path.empty()) {
        fd = unix_socket_connect(socket_path);
    } else {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(tcp_spec, host, port, &error, /*allow_port_zero=*/false)) {
            usage("--tcp: " + error);
        }
        fd = tcp_connect(host.empty() ? "127.0.0.1" : host, port);
    }
    if (!write_all(fd, request) || !write_all(fd, "\n")) {
        std::cerr << "error: send failed\n";
        ::close(fd);
        return 3;
    }
    LineReader reader(fd);
    std::string line;
    if (!reader.next(line)) {
        std::cerr << "error: daemon closed the stream without answering\n";
        ::close(fd);
        return 3;
    }
    ::close(fd);
    CacheResponse response;
    std::string error;
    if (!scrape) std::cout << line << "\n";
    if (!parse_cache_response(line, response, &error)) {
        // A line that is not even a cache response means we are talking to
        // the wrong kind of endpoint — a transport-contract violation for
        // the scrape pipeline, a request error otherwise.
        std::cerr << "error: unparseable response: " << error << "\n";
        return scrape ? 3 : 1;
    }
    if (!response.ok) return 1;
    if (scrape) {
        if (!response.has_stats) {
            std::cerr << "error: stats response carried no stats object\n";
            return 3;
        }
        const std::string text = cache_prometheus_metrics(response.stats);
        std::string exposition_error;
        if (!validate_exposition(text, &exposition_error)) {
            std::cerr << "error: malformed exposition text: " << exposition_error << "\n";
            return 3;
        }
        std::cout << text;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    // A peer that disconnects mid-write must not kill the daemon.
    std::signal(SIGPIPE, SIG_IGN);
    try {
        const Args args(argc, argv);
        const bool daemon = args.values.count("--listen") != 0 ||
                            args.values.count("--listen-tcp") != 0;
        const bool stats = args.flags.count("stats") != 0;
        const bool scrape = args.flags.count("scrape") != 0;
        const bool shutdown = args.flags.count("shutdown") != 0;
        if (args.values.count("--listen") != 0 && args.values.count("--listen-tcp") != 0) {
            usage("give --listen or --listen-tcp, not both");
        }
        if (static_cast<int>(stats) + static_cast<int>(scrape) + static_cast<int>(shutdown) >
            1) {
            usage("--stats, --scrape and --shutdown are mutually exclusive");
        }
        if (daemon && (stats || scrape || shutdown)) {
            usage("daemon (--listen/--listen-tcp) and client (--stats/--scrape/--shutdown) "
                  "are mutually exclusive modes");
        }
        if (stats || scrape || shutdown) {
            // Daemon knobs in client mode would silently do nothing — the
            // usage contract turns that into an error instead.
            for (const char* flag : {"--data-dir", "--compact-log-bytes", "--fault",
                                     "--access-log", "--listen-http", "--auth-token-file"}) {
                if (args.values.count(flag) != 0) {
                    usage(std::string(flag) + " is a daemon option");
                }
            }
            if (args.flags.count("fsync-puts") != 0) usage("--fsync-puts is a daemon option");
        }
        if (stats) return run_client(args, cache_stats_line("stats"));
        if (scrape) return run_client(args, cache_stats_line("scrape"), /*scrape=*/true);
        if (shutdown) return run_client(args, cache_shutdown_line("shutdown"));
        if (!daemon && args.values.count("--listen-http") != 0) {
            // The cache wire protocol (gets/puts) only speaks the line
            // socket; an HTTP-only daemon could never serve a fleet.
            usage("--listen-http requires --listen or --listen-tcp");
        }
        if (!daemon) usage("give --listen PATH or --listen-tcp HOST:PORT");
        return run_daemon(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 3;
    }
}
