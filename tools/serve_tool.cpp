// serve_tool — long-lived DSE service front-end and client.
//
// Server modes (one SweepService: shared ThreadPool + CostCache across all
// requests; see src/serve/protocol.h for the NDJSON wire format):
//
//   serve_tool                       requests on stdin, events on stdout
//   serve_tool --listen PATH         Unix-domain socket server at PATH
//
// Client mode (against a --listen server):
//
//   serve_tool --client FILE --socket PATH [--output FILE] [--quiet]
//
// sends every request line of FILE ('-' = stdin), prints the event stream,
// and exits once each sent request has received its terminal `done` event
// (exit 1 if any request failed). --output extracts the `result` event's
// embedded dse_json export to a file — byte-identical to what
// `dse_tool --json` writes for the same sweep against a cold cache.
//
// Shutdown: a {"type": "shutdown"} request stops intake, drains every
// queued request, then the server exits; so does EOF on stdin (stdio
// mode). Requests already accepted always get their full event stream.
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "util/json_parse.h"

namespace {

using namespace sdlc;
using namespace sdlc::serve;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage: serve_tool [options]\n"
        "  server (default: NDJSON requests on stdin, events on stdout):\n"
        "    --listen PATH        serve on a Unix-domain socket instead\n"
        "    --threads N          evaluation ThreadPool size (default: hardware)\n"
        "    --workers N          concurrent in-flight requests (default 2)\n"
        "    --queue-capacity N   bounded request queue size (default 64)\n"
        "    --max-request-bytes N  reject longer request lines (default 1 MiB)\n"
        "  client:\n"
        "    --client FILE        send FILE's request lines ('-' = stdin)\n"
        "    --socket PATH        server socket to connect to (required)\n"
        "    --output FILE        write the result event's dse_json export here\n"
        "    --quiet              do not echo the event stream to stdout\n";
    std::exit(msg.empty() ? 0 : 2);
}

struct Args {
    std::map<std::string, std::string> values;
    std::set<std::string> flags;

    Args(int argc, char** argv) {
        const std::set<std::string> value_keys = {"--listen",         "--threads",
                                                  "--workers",        "--queue-capacity",
                                                  "--max-request-bytes", "--client",
                                                  "--socket",         "--output"};
        for (int i = 1; i < argc; ++i) {
            const std::string key = argv[i];
            if (key == "--help" || key == "-h") usage();
            if (key == "--quiet") {
                flags.insert("quiet");
                continue;
            }
            if (value_keys.count(key) == 0) usage("unknown option " + key);
            if (i + 1 >= argc) usage("missing value for " + key);
            values[key] = argv[++i];
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values.find(key);
        return it == values.end() ? dflt : it->second;
    }
    [[nodiscard]] long get_long(const std::string& key, long dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        const long parsed = std::stol(v);
        if (parsed < 0) usage(key + " must be >= 0");
        return parsed;
    }
};

ServiceOptions service_options(const Args& args) {
    ServiceOptions opts;
    opts.eval_threads = static_cast<unsigned>(args.get_long("--threads", 0));
    opts.request_workers = static_cast<unsigned>(args.get_long("--workers", 2));
    opts.queue_capacity = static_cast<size_t>(args.get_long("--queue-capacity", 64));
    opts.max_request_bytes = static_cast<size_t>(
        args.get_long("--max-request-bytes", static_cast<long>(kDefaultMaxRequestBytes)));
    return opts;
}

// ------------------------------------------------------------ stdio mode ----

int run_stdio_server(const Args& args) {
    const ServiceOptions opts = service_options(args);
    SweepService service(opts);
    const auto sink = std::make_shared<OstreamSink>(std::cout);

    // stdin is read on its own thread so a shutdown request can end the
    // server even while the peer keeps the pipe open: the main thread
    // waits for EOF *or* shutdown, whichever comes first, then drains.
    std::mutex mutex;
    std::condition_variable cv;
    bool reader_done = false;
    service.set_on_shutdown([&] {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
    });
    std::thread reader([&] {
        LineReader lines(STDIN_FILENO, opts.max_request_bytes + 1);
        std::string line;
        while (lines.next(line)) {
            if (line.empty()) continue;
            if (!service.submit_line(line, sink)) break;  // draining: stop reading
        }
        if (lines.overflowed()) {
            sink->write_line(error_event(
                "", "too_large", "unterminated request line exceeded the size cap"));
            sink->write_line(done_event("", false));
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            reader_done = true;
        }
        cv.notify_all();
    });

    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return reader_done || service.shutdown_requested(); });
    }
    service.shutdown();  // drain queued requests, join workers
    if (reader_done) {
        reader.join();
        return 0;
    }
    // Shutdown arrived while the reader is still blocked on an open stdin;
    // every accepted request has drained, so leave the reader behind and
    // end the process (its only remaining act would be rejecting input).
    reader.detach();
    std::cout.flush();
    ::_exit(0);
}

// ----------------------------------------------------------- socket mode ----

int run_socket_server(const Args& args) {
    const std::string path = args.get("--listen");
    UnixSocketServer server(path);
    const ServiceOptions opts = service_options(args);
    SweepService service(opts);
    // A processed shutdown request must unblock the accept loop below.
    service.set_on_shutdown([&server] { server.close(); });

    // Each connection's FdSink owns the fd and is shared between the reader
    // thread and every in-flight request, so the descriptor closes exactly
    // when the last response for that peer has been written (or dropped).
    struct Connection {
        int fd;
        std::shared_ptr<FdSink> sink;
        std::shared_ptr<std::atomic<bool>> finished;
        std::thread reader;
    };
    std::vector<Connection> connections;
    auto reap_finished = [&connections] {
        for (auto it = connections.begin(); it != connections.end();) {
            if (it->finished->load(std::memory_order_acquire)) {
                it->reader.join();
                it = connections.erase(it);  // drops the sink ref; fd closes with it
            } else {
                ++it;
            }
        }
    };

    std::cerr << "serve_tool: listening on " << path << "\n";
    int client;
    // The 1 s accept timeout is the reap tick: dead connections release
    // their thread promptly even when no new client ever connects (their
    // fd already closes with the sink's last reference).
    while ((client = server.accept_client(/*timeout_ms=*/1000)) != -1) {
        reap_finished();
        if (client == UnixSocketServer::kTimeout) continue;
        Connection conn;
        conn.fd = client;
        conn.sink = std::make_shared<FdSink>(client, /*owns_fd=*/true);
        conn.finished = std::make_shared<std::atomic<bool>>(false);
        conn.reader = std::thread(
            [fd = client, sink = conn.sink, finished = conn.finished, &service,
             max_line = opts.max_request_bytes + 1] {
                LineReader reader(fd, max_line);
                std::string line;
                while (reader.next(line)) {
                    if (line.empty()) continue;
                    if (!service.submit_line(line, sink)) break;
                }
                if (reader.overflowed()) {
                    // The protocol promises a machine-readable rejection for
                    // oversized lines even when no newline ever arrives.
                    sink->write_line(error_event(
                        "", "too_large", "unterminated request line exceeded the size cap"));
                    sink->write_line(done_event("", false));
                }
                finished->store(true, std::memory_order_release);
            });
        connections.push_back(std::move(conn));
    }

    // Accept loop ended (shutdown request): finish every accepted request,
    // then release the connections. Readers may still be blocked on idle
    // peers; shutting the read side down unblocks them.
    service.shutdown();
    for (Connection& conn : connections) {
        ::shutdown(conn.fd, SHUT_RD);
        conn.reader.join();
    }
    connections.clear();
    return 0;
}

// ----------------------------------------------------------- client mode ----

int run_client(const Args& args) {
    const std::string request_path = args.get("--client");
    const std::string socket_path = args.get("--socket");
    if (socket_path.empty()) usage("--client requires --socket PATH");
    const std::string output_path = args.get("--output");
    const bool quiet = args.flags.count("quiet") != 0;

    // Collect the request lines first so we know how many done events to
    // expect before anything is sent.
    std::vector<std::string> requests;
    {
        std::ifstream file;
        std::istream* in = &std::cin;
        if (request_path != "-") {
            file.open(request_path);
            if (!file) {
                std::cerr << "error: cannot open " << request_path << "\n";
                return 2;
            }
            in = &file;
        }
        std::string line;
        while (std::getline(*in, line)) {
            if (!line.empty()) requests.push_back(line);
        }
    }
    if (requests.empty()) usage("no request lines in " + request_path);

    const int fd = unix_socket_connect(socket_path);
    // Send from a separate thread while the main thread drains responses:
    // writing everything first can deadlock once the server's bounded
    // request queue and both socket buffers fill (the server stops reading
    // while it streams events nobody is consuming).
    std::atomic<bool> send_failed{false};
    std::thread sender([&] {
        for (const std::string& request : requests) {
            if (!write_all(fd, request) || !write_all(fd, "\n")) {
                send_failed.store(true);
                return;
            }
        }
    });

    LineReader reader(fd);
    std::string line;
    size_t done = 0;
    bool all_ok = true;
    bool wrote_output = false;
    while (done < requests.size() && reader.next(line)) {
        if (!quiet) std::cout << line << "\n";
        JsonValue event;
        if (!json_parse(line, event)) continue;  // not ours to validate
        const JsonValue* kind = event.find("event");
        if (kind == nullptr || !kind->is_string()) continue;
        if (kind->string == "result" && !output_path.empty()) {
            if (const JsonValue* data = event.find("data"); data != nullptr && data->is_string()) {
                std::ofstream out(output_path, std::ios::binary);
                out << data->string;
                if (!out) {
                    std::cerr << "error: cannot write " << output_path << "\n";
                    all_ok = false;
                    break;
                }
                wrote_output = true;
            }
        }
        if (kind->string == "done") {
            ++done;
            if (const JsonValue* ok = event.find("ok"); ok != nullptr && ok->is_bool()) {
                all_ok = all_ok && ok->boolean;
            }
        }
    }
    sender.join();
    ::close(fd);
    if (send_failed.load()) {
        std::cerr << "error: send failed\n";
        return 1;
    }
    if (done < requests.size()) {
        std::cerr << "error: server closed the stream after " << done << " of "
                  << requests.size() << " responses\n";
        return 1;
    }
    if (!output_path.empty() && !wrote_output) {
        std::cerr << "error: no result event received (add \"export\": true?)\n";
        return 1;
    }
    return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    // A client that disconnects mid-stream must not kill the server.
    std::signal(SIGPIPE, SIG_IGN);
    try {
        const Args args(argc, argv);
        if (args.values.count("--client") != 0) return run_client(args);
        if (args.values.count("--listen") != 0) return run_socket_server(args);
        return run_stdio_server(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
