// serve_tool — long-lived DSE service front-end and client.
//
// Server modes (one SweepService: shared ThreadPool + CostCache across all
// requests; see src/serve/protocol.h for the NDJSON wire format):
//
//   serve_tool                       requests on stdin, events on stdout
//   serve_tool --listen PATH         Unix-domain socket server at PATH
//   serve_tool --listen-tcp H:P      TCP server (port 0 = ephemeral,
//                                    actual endpoint printed to stderr)
//
// Client mode (against a socket server; destination is --socket PATH or
// --tcp HOST:PORT):
//
//   serve_tool --client FILE --socket PATH [--output FILE] [--quiet]
//
// sends every request line of FILE ('-' = stdin), prints the event stream,
// and exits 0 only if every request succeeded (any server `error` event,
// failed `done`, or a dropped stream exits non-zero). --output extracts
// the `result` event's embedded dse_json export to a file — byte-identical
// to what `dse_tool --json` writes for the same sweep against a cold cache
// — and reassembles chunked exports (`result_chunk` events) the same way.
//
// Scrape mode (for a Prometheus textfile collector / cron scraper):
//
//   serve_tool --scrape --socket PATH   prints the raw Prometheus text
//
// Shutdown: a {"type": "shutdown"} request stops intake, drains every
// queued request, then the server exits; so does EOF on stdin (stdio
// mode). Requests already accepted always get their full event stream.
#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "cluster/coordinator.h"
#include "dse/remote_cache.h"
#include "obs/access_log.h"
#include "obs/trace.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json_parse.h"

namespace {

using namespace sdlc;
using namespace sdlc::serve;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage: serve_tool [options]\n"
        "  server (default: NDJSON requests on stdin, events on stdout):\n"
        "    --listen PATH        serve on a Unix-domain socket instead\n"
        "    --listen-tcp HOST:PORT  serve on a TCP socket (port 0 = ephemeral)\n"
        "    --listen-http HOST:PORT  HTTP/1.1 front door (port 0 = ephemeral):\n"
        "                         POST /v1/sweep (NDJSON body, chunked x-ndjson\n"
        "                         response, byte-identical event lines),\n"
        "                         GET /metrics, GET /healthz; combinable with\n"
        "                         --listen or --listen-tcp\n"
        "    --auth-token-file FILE  require `Authorization: Bearer <token>` on\n"
        "                         HTTP /v1/sweep and /metrics (constant-time\n"
        "                         compare; 401 on mismatch; /healthz stays open)\n"
        "    --quota-rps N        per-client HTTP sweep admissions per second\n"
        "                         (keyed by bearer token, else peer address;\n"
        "                         exhausted clients get 429 + Retry-After)\n"
        "    --quota-burst N      token-bucket depth above the steady rate\n"
        "                         (default: same as --quota-rps)\n"
        "    --threads N          evaluation ThreadPool size (default: hardware)\n"
        "    --request-workers N  concurrent in-flight requests (default 2)\n"
        "    --queue-capacity N   bounded request queue size (default 64)\n"
        "    --max-request-bytes N  reject longer request lines (default 1 MiB)\n"
        "    --reject-overload    answer a full queue with an `overloaded` error\n"
        "                         event instead of blocking the connection\n"
        "    --no-sliced          force the scalar exhaustive error engine for\n"
        "                         every request (bit-identical results; speed only)\n"
        "    --no-auto-exhaustive disable the per-path time-budget cutoff promotion\n"
        "                         for requests that did not pin their own cutoffs\n"
        "    --exhaustive-budget-ms B  per-point budget for the auto cutoff\n"
        "                         resolution (default 2000)\n"
        "    --cache-peers LIST   comma list of cache_tool daemons sharing the\n"
        "                         synthesis cache (unix:PATH or HOST:PORT each)\n"
        "    --cache-timeout-ms N per-operation budget against a cache peer\n"
        "                         before degrading to local synthesis (default 250)\n"
        "    --cache-replicas N   store each key on N distinct peers; gets fall\n"
        "                         through primary -> replicas -> local (default 1)\n"
        "  observability (server modes):\n"
        "    --access-log FILE    append one JSON line per request (trace_id, verb,\n"
        "                         outcome, queue_wait_s, wall_s, bytes_out, flags)\n"
        "    --trace-out FILE     at exit, write the retained traced-request trees\n"
        "                         as Chrome trace-event JSON (Perfetto-loadable)\n"
        "  cluster (server options; sweeps are sharded across the workers and\n"
        "  merged back byte-identically to a single-node run):\n"
        "    --workers LIST       comma list of serve_tool replicas to fan sweep\n"
        "                         shards out to (unix:PATH or HOST:PORT each)\n"
        "    --shards N           fixed shards per sweep (default 32); the cut is\n"
        "                         independent of worker count, so retries rerun\n"
        "                         exactly the same indices\n"
        "    --shard-timeout-ms N per-shard read-silence budget before a worker\n"
        "                         is declared dead (default 60000; 0 = none)\n"
        "    --shard-retries N    remote re-dispatches per shard after its first\n"
        "                         failure before it runs locally (default 2)\n"
        "    --shard-backoff-ms N first-failure backoff before a shard is\n"
        "                         re-dispatched; grows exponentially with\n"
        "                         deterministic jitter (default 0 = immediate)\n"
        "  client:\n"
        "    --client FILE        send FILE's request lines ('-' = stdin)\n"
        "    --socket PATH        server Unix socket to connect to\n"
        "    --tcp HOST:PORT      server TCP endpoint to connect to\n"
        "    --output FILE        write the result event's dse_json export here\n"
        "                         (reassembles chunked result_chunk streams)\n"
        "    --quiet              do not echo the event stream to stdout\n"
        "  scrape:\n"
        "    --scrape             fetch Prometheus metrics (with --socket/--tcp)\n"
        "                         and print the raw exposition text to stdout\n"
        "    --http HOST:PORT     scrape GET /metrics from an HTTP front door\n"
        "                         instead (works against serve_tool and\n"
        "                         cache_tool; --auth-token-file adds the bearer\n"
        "                         token); the text is validated the same way\n";
    std::exit(msg.empty() ? 0 : 2);
}

struct Args {
    std::map<std::string, std::string> values;
    std::set<std::string> flags;

    Args(int argc, char** argv) {
        const std::set<std::string> value_keys = {"--listen",         "--listen-tcp",
                                                  "--threads",        "--workers",
                                                  "--request-workers",
                                                  "--queue-capacity", "--max-request-bytes",
                                                  "--client",         "--socket",
                                                  "--tcp",            "--output",
                                                  "--cache-peers",    "--cache-timeout-ms",
                                                  "--cache-replicas", "--shards",
                                                  "--shard-timeout-ms", "--shard-retries",
                                                  "--shard-backoff-ms", "--access-log",
                                                  "--trace-out",      "--exhaustive-budget-ms",
                                                  "--listen-http",    "--auth-token-file",
                                                  "--quota-rps",      "--quota-burst",
                                                  "--http"};
        const std::set<std::string> flag_keys = {"--quiet", "--scrape", "--reject-overload",
                                                 "--no-sliced", "--no-auto-exhaustive"};
        for (int i = 1; i < argc; ++i) {
            const std::string key = argv[i];
            if (key == "--help" || key == "-h") usage();
            if (flag_keys.count(key) != 0) {
                flags.insert(key.substr(2));
                continue;
            }
            if (value_keys.count(key) == 0) usage("unknown option " + key);
            if (i + 1 >= argc) usage("missing value for " + key);
            values[key] = argv[++i];
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values.find(key);
        return it == values.end() ? dflt : it->second;
    }
    [[nodiscard]] long get_long(const std::string& key, long dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        long parsed = 0;
        try {
            size_t consumed = 0;
            parsed = std::stol(v, &consumed);
            if (consumed != v.size()) usage(key + " expects an integer, got \"" + v + "\"");
        } catch (const std::logic_error&) {
            // invalid_argument / out_of_range: a usage error, not a
            // transport failure — exit 2, matching the documented contract.
            usage(key + " expects an integer, got \"" + v + "\"");
        }
        if (parsed < 0) usage(key + " must be >= 0");
        return parsed;
    }
    [[nodiscard]] double get_double(const std::string& key, double dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        double parsed = 0.0;
        try {
            size_t consumed = 0;
            parsed = std::stod(v, &consumed);
            if (consumed != v.size()) usage(key + " expects a number, got \"" + v + "\"");
        } catch (const std::logic_error&) {
            usage(key + " expects a number, got \"" + v + "\"");
        }
        if (!(parsed >= 0.0)) usage(key + " must be >= 0");
        return parsed;
    }
};

ServiceOptions service_options(const Args& args) {
    ServiceOptions opts;
    opts.eval_threads = static_cast<unsigned>(args.get_long("--threads", 0));
    opts.request_workers = static_cast<unsigned>(args.get_long("--request-workers", 2));
    opts.queue_capacity = static_cast<size_t>(args.get_long("--queue-capacity", 64));
    opts.max_request_bytes = static_cast<size_t>(
        args.get_long("--max-request-bytes", static_cast<long>(kDefaultMaxRequestBytes)));
    opts.reject_when_full = args.flags.count("reject-overload") != 0;
    // Validate every peer spec up front: a typo'd peer is a usage error
    // before anything binds, not a silent local-only server.
    std::string peers_error;
    if (!parse_cache_peer_list(args.get("--cache-peers"), opts.cache_peers, &peers_error)) {
        usage("--cache-peers: " + peers_error);
    }
    // `--cache-peers ""` (an unset shell variable) must not silently start
    // a local-only replica that was meant to share the fleet cache.
    if (args.values.count("--cache-peers") != 0 && opts.cache_peers.empty()) {
        usage("--cache-peers: empty peer list");
    }
    opts.cache_timeout_ms = static_cast<int>(args.get_long("--cache-timeout-ms", 250));
    // 0 would disable the socket timeouts entirely and let a hung peer
    // block a sweep worker forever; dse_tool rejects it the same way.
    if (opts.cache_timeout_ms < 1) usage("--cache-timeout-ms must be >= 1");
    const long replicas = args.get_long("--cache-replicas", 1);
    if (replicas < 1) usage("--cache-replicas must be >= 1");
    if (args.values.count("--cache-replicas") != 0 &&
        args.values.count("--cache-peers") == 0) {
        usage("--cache-replicas requires --cache-peers");
    }
    opts.cache_replicas = static_cast<unsigned>(replicas);
    if (const std::string path = args.get("--access-log"); !path.empty()) {
        std::string error;
        opts.access_log = obs::AccessLog::open(path, &error);
        if (opts.access_log == nullptr) usage("--access-log: " + error);
    }
    opts.use_sliced = args.flags.count("no-sliced") == 0;
    opts.auto_exhaustive = args.flags.count("no-auto-exhaustive") == 0;
    const long budget = args.get_long("--exhaustive-budget-ms", 2000);
    if (budget < 1) usage("--exhaustive-budget-ms must be >= 1");
    opts.exhaustive_budget_ms = static_cast<double>(budget);
    return opts;
}

/// Writes the service's retained trace trees as Chrome trace-event JSON.
/// Best-effort at exit: a write failure is reported but never changes the
/// server's exit status (observability must not fail the workload).
void write_trace_out(const Args& args, const SweepService& service) {
    const std::string path = args.get("--trace-out");
    if (path.empty()) return;
    std::ofstream out(path, std::ios::binary);
    out << obs::chrome_trace_json(service.trace_trees());
    if (!out.flush()) std::cerr << "serve_tool: cannot write " << path << "\n";
}

/// Builds the service for a server mode: a plain SweepService, or a
/// CoordinatorService fanning sweep shards out to --workers replicas. The
/// worker list reuses the cache-peer spec grammar so the two fleets are
/// described identically.
std::unique_ptr<SweepService> make_service(const Args& args, const ServiceOptions& opts) {
    const bool clustered = args.values.count("--workers") != 0;
    if (!clustered) {
        for (const char* flag :
             {"--shards", "--shard-timeout-ms", "--shard-retries", "--shard-backoff-ms"}) {
            if (args.values.count(flag) != 0) {
                usage(std::string(flag) + " requires --workers LIST");
            }
        }
        return std::make_unique<SweepService>(opts);
    }
    cluster::ClusterOptions cluster;
    std::string error;
    if (!parse_cache_peer_list(args.get("--workers"), cluster.workers, &error)) {
        usage("--workers: " + error);
    }
    if (cluster.workers.empty()) usage("--workers: empty worker list");
    cluster.shards = static_cast<size_t>(args.get_long("--shards", 32));
    if (cluster.shards == 0) usage("--shards must be >= 1");
    cluster.shard_timeout_ms = static_cast<int>(args.get_long("--shard-timeout-ms", 60000));
    cluster.shard_retries = static_cast<int>(args.get_long("--shard-retries", 2));
    cluster.shard_backoff_ms = static_cast<int>(args.get_long("--shard-backoff-ms", 0));
    return std::make_unique<cluster::CoordinatorService>(opts, std::move(cluster));
}

/// Client/scrape destination: --socket PATH or --tcp HOST:PORT. Returns a
/// connected fd (caller owns it).
int connect_destination(const Args& args) {
    const std::string socket_path = args.get("--socket");
    const std::string tcp_spec = args.get("--tcp");
    if (socket_path.empty() == tcp_spec.empty()) {
        usage("give exactly one of --socket PATH or --tcp HOST:PORT");
    }
    if (!socket_path.empty()) return unix_socket_connect(socket_path);
    std::string host;
    uint16_t port = 0;
    std::string error;
    if (!parse_host_port(tcp_spec, host, port, &error, /*allow_port_zero=*/false)) {
        usage("--tcp: " + error);
    }
    if (host.empty()) host = "127.0.0.1";
    return tcp_connect(host, port);
}

// ------------------------------------------------------------ stdio mode ----

int run_stdio_server(const Args& args) {
    const ServiceOptions opts = service_options(args);
    const std::unique_ptr<SweepService> service_ptr = make_service(args, opts);
    SweepService& service = *service_ptr;
    const auto sink = std::make_shared<OstreamSink>(std::cout);

    // stdin is read on its own thread so a shutdown request can end the
    // server even while the peer keeps the pipe open: the main thread
    // waits for EOF *or* shutdown, whichever comes first, then drains.
    std::mutex mutex;
    std::condition_variable cv;
    bool reader_done = false;
    service.set_on_shutdown([&] {
        std::lock_guard<std::mutex> lock(mutex);
        cv.notify_all();
    });
    std::thread reader([&] {
        LineReader lines(STDIN_FILENO, opts.max_request_bytes + 1);
        std::string line;
        while (lines.next(line)) {
            if (line.empty()) continue;
            if (!service.submit_line(line, sink)) break;  // draining: stop reading
        }
        if (lines.overflowed()) {
            sink->write_line(error_event(
                "", "too_large", "unterminated request line exceeded the size cap"));
            sink->write_line(done_event("", false));
        }
        {
            std::lock_guard<std::mutex> lock(mutex);
            reader_done = true;
        }
        cv.notify_all();
    });

    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return reader_done || service.shutdown_requested(); });
    }
    service.shutdown();  // drain queued requests, join workers
    write_trace_out(args, service);
    if (reader_done) {
        reader.join();
        return 0;
    }
    // Shutdown arrived while the reader is still blocked on an open stdin;
    // every accepted request has drained, so leave the reader behind and
    // end the process (its only remaining act would be rejecting input).
    reader.detach();
    std::cout.flush();
    ::_exit(0);
}

// ----------------------------------------------------------- socket mode ----

int run_socket_server(const Args& args) {
    // Bind every listener before spinning up the service so a bad endpoint
    // fails fast without spawning any worker.
    std::unique_ptr<SocketListener> line_listener;
    if (const std::string path = args.get("--listen"); !path.empty()) {
        line_listener = std::make_unique<UnixSocketServer>(path);
    } else if (args.values.count("--listen-tcp") != 0) {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--listen-tcp"), host, port, &error)) {
            usage("--listen-tcp: " + error);
        }
        line_listener = std::make_unique<TcpSocketServer>(host, port);
    }
    std::unique_ptr<TcpSocketServer> http_listener;
    if (args.values.count("--listen-http") != 0) {
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--listen-http"), host, port, &error)) {
            usage("--listen-http: " + error);
        }
        http_listener = std::make_unique<TcpSocketServer>(host, port);
    }
    const ServiceOptions opts = service_options(args);
    const std::unique_ptr<SweepService> service = make_service(args, opts);

    HttpOptions http;
    if (http_listener != nullptr) {
        // The HTTP and line front ends share one request-size cap, so a
        // request body is judged by the same limit on either transport.
        http.max_body_bytes = opts.max_request_bytes;
        if (const std::string path = args.get("--auth-token-file"); !path.empty()) {
            std::string error;
            if (!read_auth_token_file(path, http.auth_token, &error)) {
                usage("--auth-token-file: " + error);
            }
        }
        http.quota_rps = args.get_double("--quota-rps", 0.0);
        if (args.values.count("--quota-rps") != 0 && http.quota_rps <= 0.0) {
            usage("--quota-rps must be > 0");
        }
        http.quota_burst = args.get_double("--quota-burst", 0.0);
        http.metrics_fn = [&service_ref = *service] {
            return prometheus_metrics(service_ref.stats());
        };
        http.access_log = opts.access_log;
    }

    if (line_listener != nullptr) {
        std::cerr << "serve_tool: listening on " << line_listener->endpoint() << "\n";
    }
    if (http_listener != nullptr) {
        std::cerr << "serve_tool: http listening on " << http_listener->endpoint() << "\n";
    }
    if (line_listener != nullptr && http_listener != nullptr) {
        // LineService holds a single on_shutdown hook; with two listeners
        // the tool composes one closing both (each serve loop installing
        // its own would silently drop the other's).
        service->set_on_shutdown([&line = *line_listener, &web = *http_listener] {
            line.close();
            web.close();
        });
        http.install_shutdown_hook = false;
        std::thread http_thread(
            [&] { serve_http_listener(*http_listener, *service, http); });
        serve_listener(*line_listener, *service, opts.max_request_bytes, nullptr,
                       /*install_shutdown_hook=*/false);
        http_thread.join();
    } else if (http_listener != nullptr) {
        serve_http_listener(*http_listener, *service, http);
    } else {
        serve_listener(*line_listener, *service, opts.max_request_bytes);
    }
    write_trace_out(args, *service);
    return 0;
}

// ----------------------------------------------------------- client mode ----

int run_client(const Args& args) {
    const std::string request_path = args.get("--client");
    const std::string output_path = args.get("--output");
    const bool quiet = args.flags.count("quiet") != 0;

    // Collect the request lines first so we know how many done events to
    // expect before anything is sent.
    std::vector<std::string> requests;
    {
        std::ifstream file;
        std::istream* in = &std::cin;
        if (request_path != "-") {
            file.open(request_path);
            if (!file) {
                std::cerr << "error: cannot open " << request_path << "\n";
                return 2;
            }
            in = &file;
        }
        std::string line;
        while (std::getline(*in, line)) {
            if (!line.empty()) requests.push_back(line);
        }
    }
    if (requests.empty()) usage("no request lines in " + request_path);

    const int fd = connect_destination(args);
    // Send from a separate thread while the main thread drains responses:
    // writing everything first can deadlock once the server's bounded
    // request queue and both socket buffers fill (the server stops reading
    // while it streams events nobody is consuming).
    std::atomic<bool> send_failed{false};
    std::thread sender([&] {
        for (const std::string& request : requests) {
            if (!write_all(fd, request) || !write_all(fd, "\n")) {
                send_failed.store(true);
                return;
            }
        }
    });

    LineReader reader(fd);
    std::string line;
    size_t done = 0;
    bool all_ok = true;
    bool saw_error_event = false;
    bool wrote_output = false;
    // result_chunk reassembly, keyed by request id: multiplexed chunked
    // exports interleave at line granularity and must not corrupt each
    // other's sequence tracking.
    struct ChunkState {
        std::string data;
        size_t next_seq = 0;
    };
    std::map<std::string, ChunkState> chunk_streams;
    auto write_output = [&](const std::string& payload) {
        std::ofstream out(output_path, std::ios::binary);
        out << payload;
        if (!out) {
            std::cerr << "error: cannot write " << output_path << "\n";
            return false;
        }
        wrote_output = true;
        return true;
    };
    bool aborted = false;  // client-side protocol/file error, not transport
    while (done < requests.size() && reader.next(line)) {
        if (!quiet) std::cout << line << "\n";
        JsonValue event;
        if (!json_parse(line, event)) continue;  // not ours to validate
        const JsonValue* kind = event.find("event");
        if (kind == nullptr || !kind->is_string()) continue;
        // Any server-side error event means this run did not fully succeed,
        // even if a later `done` somehow claimed otherwise: scripts keying
        // off the exit status must see the failure.
        if (kind->string == "error") saw_error_event = true;
        if (kind->string == "result" && !output_path.empty()) {
            if (const JsonValue* data = event.find("data"); data != nullptr && data->is_string()) {
                if (!write_output(data->string)) {
                    aborted = true;
                    break;
                }
            }
        }
        if (kind->string == "result_chunk" && !output_path.empty()) {
            const JsonValue* id = event.find("id");
            const JsonValue* seq = event.find("seq");
            const JsonValue* last = event.find("last");
            const JsonValue* data = event.find("data");
            ChunkState& stream =
                chunk_streams[id != nullptr && id->is_string() ? id->string : ""];
            if (seq == nullptr || !seq->is_number() || last == nullptr || !last->is_bool() ||
                data == nullptr || !data->is_string() ||
                static_cast<size_t>(seq->number) != stream.next_seq) {
                std::cerr << "error: bad result_chunk sequence (expected seq "
                          << stream.next_seq << ")\n";
                aborted = true;
                break;
            }
            ++stream.next_seq;
            stream.data += data->string;
            if (last->boolean) {
                if (!write_output(stream.data)) {
                    aborted = true;
                    break;
                }
                chunk_streams.erase(id != nullptr && id->is_string() ? id->string : "");
            }
        }
        if (kind->string == "done") {
            ++done;
            if (const JsonValue* ok = event.find("ok"); ok != nullptr && ok->is_bool()) {
                all_ok = all_ok && ok->boolean;
            }
        }
    }
    sender.join();
    ::close(fd);
    if (send_failed.load()) {
        std::cerr << "error: send failed\n";
        return 3;
    }
    // A break above already printed its own diagnosis; the stream was
    // alive, so this is a request failure (1), not a transport one (3).
    if (aborted) return 1;
    if (done < requests.size()) {
        std::cerr << "error: server closed the stream after " << done << " of "
                  << requests.size() << " responses\n";
        return 3;
    }
    if (!output_path.empty() && !wrote_output) {
        std::cerr << "error: no result event received (add \"export\": true?)\n";
        return 1;
    }
    return all_ok && !saw_error_event ? 0 : 1;
}

// ----------------------------------------------------------- scrape mode ----

int run_scrape(const Args& args) {
    if (args.values.count("--http") != 0) {
        if (args.values.count("--socket") != 0 || args.values.count("--tcp") != 0) {
            usage("give exactly one of --socket, --tcp or --http");
        }
        std::string host;
        uint16_t port = 0;
        std::string error;
        if (!parse_host_port(args.get("--http"), host, port, &error,
                             /*allow_port_zero=*/false)) {
            usage("--http: " + error);
        }
        std::string token;
        if (const std::string path = args.get("--auth-token-file"); !path.empty()) {
            if (!read_auth_token_file(path, token, &error)) {
                usage("--auth-token-file: " + error);
            }
        }
        HttpClientResponse response;
        if (!http_request(host.empty() ? "127.0.0.1" : host, port, "GET", "/metrics", "",
                          token, response, &error)) {
            std::cerr << "error: " << error << "\n";
            return 3;
        }
        if (response.status != 200) {
            std::cerr << "error: GET /metrics answered " << response.status << " "
                      << response.reason << "\n";
            return 3;
        }
        // The same dialect gate as the line-protocol scrape: garbage from a
        // misdirected endpoint must never reach a collector.
        std::string exposition_error;
        if (!validate_exposition(response.body, &exposition_error)) {
            std::cerr << "error: malformed exposition text: " << exposition_error << "\n";
            return 3;
        }
        std::cout << response.body;
        return 0;
    }
    const int fd = connect_destination(args);
    const std::string request = "{\"id\": \"scrape\", \"type\": \"metrics\"}\n";
    if (!write_all(fd, request)) {
        std::cerr << "error: send failed\n";
        ::close(fd);
        return 3;
    }
    LineReader reader(fd);
    std::string line;
    std::string metrics;
    bool got_metrics = false;
    bool done = false;
    // A scraper talks to exactly one kind of endpoint; anything that is not
    // a clean metrics/done exchange with valid exposition text is a
    // transport-contract violation (exit 3), so a misdirected scrape (a
    // cache daemon, a rogue process) can never feed garbage to a collector.
    while (!done && reader.next(line)) {
        JsonValue event;
        if (!json_parse(line, event) || !event.is_object()) {
            std::cerr << "error: malformed response line during scrape\n";
            ::close(fd);
            return 3;
        }
        const JsonValue* kind = event.find("event");
        if (kind == nullptr || !kind->is_string()) {
            std::cerr << "error: response carries no event field "
                         "(not a serve_tool metrics endpoint?)\n";
            ::close(fd);
            return 3;
        }
        if (kind->string == "metrics") {
            const JsonValue* data = event.find("data");
            if (data == nullptr || !data->is_string()) {
                std::cerr << "error: metrics event carries no data text\n";
                ::close(fd);
                return 3;
            }
            metrics = data->string;
            got_metrics = true;
        } else if (kind->string == "done") {
            done = true;
        } else {
            std::cerr << "error: unexpected \"" << kind->string
                      << "\" event during scrape\n";
            ::close(fd);
            return 3;
        }
    }
    ::close(fd);
    if (!got_metrics) {
        std::cerr << "error: no metrics event received\n";
        return 3;
    }
    std::string exposition_error;
    if (!validate_exposition(metrics, &exposition_error)) {
        std::cerr << "error: malformed exposition text: " << exposition_error << "\n";
        return 3;
    }
    std::cout << metrics;  // raw Prometheus exposition text
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    // A client that disconnects mid-stream must not kill the server.
    std::signal(SIGPIPE, SIG_IGN);
    try {
        const Args args(argc, argv);
        // One mode per invocation: ambiguous combinations are rejected, not
        // silently resolved by precedence.
        if (args.values.count("--listen") != 0 && args.values.count("--listen-tcp") != 0) {
            usage("give --listen or --listen-tcp, not both");
        }
        const bool server = args.values.count("--listen") != 0 ||
                            args.values.count("--listen-tcp") != 0 ||
                            args.values.count("--listen-http") != 0;
        const bool client = args.values.count("--client") != 0;
        const bool scrape = args.flags.count("scrape") != 0;
        if (args.values.count("--http") != 0 && !scrape) {
            usage("--http is a --scrape option (servers use --listen-http)");
        }
        for (const char* flag : {"--quota-rps", "--quota-burst"}) {
            if (args.values.count(flag) != 0 && args.values.count("--listen-http") == 0) {
                usage(std::string(flag) + " requires --listen-http");
            }
        }
        if (args.values.count("--quota-burst") != 0 &&
            args.values.count("--quota-rps") == 0) {
            usage("--quota-burst requires --quota-rps");
        }
        if (args.values.count("--auth-token-file") != 0 &&
            args.values.count("--listen-http") == 0 && args.values.count("--http") == 0) {
            usage("--auth-token-file requires --listen-http (server) or "
                  "--scrape --http (client)");
        }
        if ((server && (client || scrape)) || (client && scrape)) {
            usage("server (--listen/--listen-tcp), client (--client) and --scrape "
                  "are mutually exclusive modes");
        }
        if ((client || scrape) && (args.values.count("--cache-peers") != 0 ||
                                   args.values.count("--cache-timeout-ms") != 0 ||
                                   args.values.count("--cache-replicas") != 0)) {
            usage("--cache-peers/--cache-timeout-ms/--cache-replicas are server options");
        }
        if ((client || scrape) && (args.values.count("--access-log") != 0 ||
                                   args.values.count("--trace-out") != 0)) {
            usage("--access-log/--trace-out are server options");
        }
        if ((client || scrape) &&
            (args.values.count("--workers") != 0 || args.values.count("--shards") != 0 ||
             args.values.count("--shard-timeout-ms") != 0 ||
             args.values.count("--shard-retries") != 0 ||
             args.values.count("--shard-backoff-ms") != 0)) {
            usage("--workers/--shards/--shard-timeout-ms/--shard-retries/--shard-backoff-ms "
                  "are server options");
        }
        if (scrape) return run_scrape(args);
        if (client) return run_client(args);
        if (server) return run_socket_server(args);
        return run_stdio_server(args);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 3;
    }
}
