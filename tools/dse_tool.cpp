// dse_tool — parallel design-space exploration with Pareto frontier analysis.
//
//   dse_tool [--width N | --widths A-B] [--depth-min D] [--depth-max D]
//            [--variants v,v,...] [--schemes s,s,...]
//            [--threads N] [--seed S] [--samples K] [--dist uniform|gaussian|sparse]
//            [--exhaustive-max-width W] [--no-hw-cache] [--repeat K]
//            [--objectives o,o,...] [--frontier] [--top K] [--by OBJ]
//            [--max-nmed X] [--max-mred X] [--max-area X] [--max-power X]
//            [--max-delay X]
//            [--csv file.csv] [--json file.json] [--trace-out file.json]
//
// Modes:
//   default      print every evaluated point with its dominance rank
//   --frontier   print only the Pareto frontier (rank 0)
//   --top K      print the K best points by --by (default: error)
// Filters (--max-*) drop points before the Pareto analysis.
//
// --objectives selects the frontier axes (any of error, area, power,
// delay, energy, maxred; default error,area,power,delay) — dominance
// ranks, the frontier and exported ranks are all computed over exactly
// that set.
//
// --repeat K evaluates the sweep K times sharing one hardware cache (run 1
// cold, later runs warm) and *fails* unless every run reproduces run 1
// bit-exactly — the CI determinism guard for the cached path.
//
// Output is deterministic: for a fixed sweep and seed it is byte-identical
// regardless of --threads, and identical up to the "sweep time:"/"hw
// cache:" summary lines regardless of --no-hw-cache.
#include <algorithm>
#include <iostream>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <fstream>

#include "cluster/coordinator.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "obs/trace.h"
#include "util/table.h"

namespace {

using namespace sdlc;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage: dse_tool [options]\n"
        "  sweep axes:\n"
        "    --width N            single width (default 8)\n"
        "    --widths A-B         width range, e.g. 4-16\n"
        "    --depth-min D        minimum cluster depth (default 1)\n"
        "    --depth-max D        maximum cluster depth (default: width)\n"
        "    --variants LIST      comma list of accurate,sdlc,compensated\n"
        "    --schemes LIST       comma list of ripple,wallace,dadda,fastcpa\n"
        "  evaluation:\n"
        "    --threads N          worker threads (default: hardware)\n"
        "    --seed S             base RNG seed (default 0x5d1c5eed)\n"
        "    --samples K          Monte-Carlo samples for wide operands\n"
        "    --dist D             uniform|gaussian|sparse sampling distribution\n"
        "    --exhaustive-max-width W  exhaustive error sweep cutoff (default 10);\n"
        "                         setting it pins the fixed cutoff and disables the\n"
        "                         auto time-budget promotion\n"
        "    --no-sliced          force the scalar exhaustive engine (bit-identical\n"
        "                         results; the bit-sliced engine is speed only)\n"
        "    --no-auto-exhaustive disable the per-path time-budget cutoff promotion\n"
        "                         (pin the fixed --exhaustive-max-width behavior)\n"
        "    --exhaustive-budget-ms B  per-point budget for the auto cutoff\n"
        "                         resolution (default 2000)\n"
        "    --no-hw-cache        disable the content-keyed synthesis cache\n"
        "    --cache-peers LIST   comma list of cache_tool daemons sharing the\n"
        "                         synthesis cache (unix:PATH or HOST:PORT each);\n"
        "                         peer failures degrade to local synthesis and\n"
        "                         never change results\n"
        "    --cache-timeout-ms N per-operation budget against a cache peer\n"
        "                         (default 250)\n"
        "    --cache-replicas N   store each key on N distinct peers; gets fall\n"
        "                         through primary -> replicas -> local synthesis\n"
        "                         (default 1 = no replication)\n"
        "    --repeat K           evaluate the sweep K times (warm-cache runs);\n"
        "                         exits 1 unless all runs are bit-identical\n"
        "  cluster (shard the sweep across serve_tool replicas; the merged\n"
        "  output is byte-identical to a local run):\n"
        "    --workers LIST       comma list of serve_tool replicas (unix:PATH or\n"
        "                         HOST:PORT each)\n"
        "    --shards N           fixed shards per sweep (default 32)\n"
        "    --shard-timeout-ms N per-shard read-silence budget before a worker\n"
        "                         is declared dead (default 60000; 0 = none)\n"
        "    --shard-retries N    remote re-dispatches per shard after its first\n"
        "                         failure before it runs locally (default 2)\n"
        "    --shard-backoff-ms N first-failure backoff before a shard is\n"
        "                         re-dispatched; grows exponentially with\n"
        "                         deterministic jitter (default 0 = immediate)\n"
        "  selection:\n"
        "    --objectives LIST    frontier axes: comma list of error,area,power,\n"
        "                         delay,energy,maxred (default error,area,power,delay)\n"
        "    --frontier           print only Pareto rank-0 points\n"
        "    --top K              print K best points by --by\n"
        "    --by OBJ             error|area|power|delay|energy|maxred (default error)\n"
        "    --max-nmed/--max-mred/--max-area/--max-power/--max-delay X\n"
        "  export:\n"
        "    --csv FILE  --json FILE\n"
        "  observability:\n"
        "    --trace-out FILE     record per-stage spans (client tier plus any\n"
        "                         cluster workers and cache peers) and write a\n"
        "                         Chrome trace-event JSON loadable in Perfetto;\n"
        "                         never changes sweep results or exports\n";
    std::exit(msg.empty() ? 0 : 2);
}

/// --key value pairs plus boolean flags; unknown options are rejected so a
/// typo'd flag cannot silently run the wrong sweep.
class Args {
public:
    Args(int argc, char** argv) {
        static const std::set<std::string> kValueKeys = {
            "--width",   "--widths",   "--depth-min", "--depth-max", "--variants",
            "--schemes", "--threads",  "--seed",      "--samples",   "--dist",
            "--exhaustive-max-width",  "--exhaustive-budget-ms",     "--top",
            "--by",       "--max-nmed",
            "--max-mred", "--max-area", "--max-power", "--max-delay", "--csv",
            "--json",     "--repeat",   "--objectives", "--cache-peers",
            "--cache-timeout-ms",       "--cache-replicas", "--workers",
            "--shards",   "--shard-timeout-ms",           "--shard-retries",
            "--shard-backoff-ms",       "--trace-out"};
        for (int i = 1; i < argc; ++i) {
            std::string key = argv[i];
            if (key == "--help" || key == "-h") usage();
            if (key == "--frontier") {
                flags_["frontier"] = true;
                continue;
            }
            if (key == "--no-hw-cache") {
                flags_["no-hw-cache"] = true;
                continue;
            }
            if (key == "--no-sliced") {
                flags_["no-sliced"] = true;
                continue;
            }
            if (key == "--no-auto-exhaustive") {
                flags_["no-auto-exhaustive"] = true;
                continue;
            }
            if (kValueKeys.count(key) == 0) usage("unknown option " + key);
            if (i + 1 >= argc) usage("missing value for " + key);
            values_[key] = argv[++i];
        }
    }
    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }
    [[nodiscard]] bool has(const std::string& key) const { return values_.count(key) != 0; }
    [[nodiscard]] int get_int(const std::string& key, int dflt) const {
        const std::string v = get(key);
        return v.empty() ? dflt : std::stoi(v);
    }
    [[nodiscard]] uint64_t get_uint64(const std::string& key, uint64_t dflt) const {
        const std::string v = get(key);
        if (v.empty()) return dflt;
        if (v.find('-') != std::string::npos) usage(key + " must be non-negative");
        return std::stoull(v, nullptr, 0);
    }
    [[nodiscard]] double get_double(const std::string& key, double dflt) const {
        const std::string v = get(key);
        return v.empty() ? dflt : std::stod(v);
    }
    [[nodiscard]] bool flag(const std::string& key) const { return flags_.count(key) != 0; }

private:
    std::map<std::string, std::string> values_;
    std::map<std::string, bool> flags_;
};

std::vector<std::string> split_commas(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty()) out.push_back(item);
    }
    return out;
}

SweepSpec spec_from(const Args& args) {
    SweepSpec spec;
    if (args.has("--widths")) {
        const std::string range = args.get("--widths");
        const size_t dash = range.find('-');
        if (dash == std::string::npos) usage("--widths expects A-B, got " + range);
        const int lo = std::stoi(range.substr(0, dash));
        const int hi = std::stoi(range.substr(dash + 1));
        if (lo > hi) usage("--widths range is empty");
        spec.widths.clear();
        for (int w = lo; w <= hi; ++w) spec.widths.push_back(w);
    } else {
        spec.widths = {args.get_int("--width", 8)};
    }
    spec.min_depth = args.get_int("--depth-min", 1);
    spec.max_depth = args.get_int("--depth-max", 0);

    if (args.has("--variants")) {
        spec.variants.clear();
        for (const std::string& v : split_commas(args.get("--variants"))) {
            MultiplierVariant variant;
            if (!parse_multiplier_variant(v, variant)) usage("unknown variant " + v);
            spec.variants.push_back(variant);
        }
    }
    if (args.has("--schemes")) {
        spec.schemes.clear();
        for (const std::string& s : split_commas(args.get("--schemes"))) {
            AccumulationScheme scheme;
            if (!parse_accumulation_scheme(s, scheme)) usage("unknown scheme " + s);
            spec.schemes.push_back(scheme);
        }
    }
    return spec;
}

EvalOptions options_from(const Args& args) {
    EvalOptions opts;
    const int threads = args.get_int("--threads", 0);
    if (threads < 0) usage("--threads must be >= 0");
    opts.threads = static_cast<unsigned>(threads);
    opts.seed = args.get_uint64("--seed", 0x5d1c5eed);
    opts.samples = args.get_uint64("--samples", uint64_t{1} << 18);
    opts.exhaustive_max_width = args.get_int("--exhaustive-max-width", 10);
    const std::string dist = args.get("--dist", "uniform");
    if (dist == "uniform") opts.distribution = OperandDistribution::kUniform;
    else if (dist == "gaussian") opts.distribution = OperandDistribution::kGaussian;
    else if (dist == "sparse") opts.distribution = OperandDistribution::kSparse;
    else usage("unknown distribution " + dist);
    opts.use_hw_cache = !args.flag("no-hw-cache");
    opts.use_sliced = !args.flag("no-sliced");
    return opts;
}

/// Tool-edge cutoff resolution: calibrate once and fill the per-path
/// exhaustive widths, unless the user pinned the fixed cutoff (explicitly
/// or via --no-auto-exhaustive). Resolved integers then travel with the
/// options — including into cluster shard sub-requests — so every replica
/// runs the same engine per point.
void resolve_cutoffs_from(const Args& args, const SweepSpec& spec, EvalOptions& opts) {
    if (args.flag("no-auto-exhaustive") || args.has("--exhaustive-max-width")) return;
    const double budget = args.get_double("--exhaustive-budget-ms", 2000.0);
    if (budget <= 0) usage("--exhaustive-budget-ms must be > 0");
    apply_auto_exhaustive(opts, spec, budget);
}

/// Bit-exact equality of two evaluated sweeps (the determinism contract of
/// the cached path: a warm run must reproduce the cold run).
bool sweeps_identical(const std::vector<DesignPoint>& a, const std::vector<DesignPoint>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].error != b[i].error || !(a[i].hw == b[i].hw)) return false;
    }
    return true;
}

/// Validated remote-cache options from --cache-peers/--cache-timeout-ms;
/// a malformed peer spec is a usage error before the sweep starts.
RemoteCacheOptions remote_options_from(const Args& args) {
    RemoteCacheOptions remote;
    std::string error;
    if (!parse_cache_peer_list(args.get("--cache-peers"), remote.peers, &error)) {
        usage("--cache-peers: " + error);
    }
    if (args.has("--cache-peers") && remote.peers.empty()) {
        usage("--cache-peers: empty peer list");
    }
    const int timeout = args.get_int("--cache-timeout-ms", 250);
    if (timeout < 1) usage("--cache-timeout-ms must be >= 1");
    remote.timeout_ms = timeout;
    const int replicas = args.get_int("--cache-replicas", 1);
    if (replicas < 1) usage("--cache-replicas must be >= 1");
    if (!args.has("--cache-peers") && args.has("--cache-replicas")) {
        usage("--cache-replicas requires --cache-peers");
    }
    remote.replicas = static_cast<unsigned>(replicas);
    return remote;
}

/// Validated cluster fan-out options from --workers and friends; empty
/// workers means local evaluation. Shard knobs without --workers are a
/// usage error — they would silently do nothing.
cluster::ClusterOptions cluster_options_from(const Args& args) {
    cluster::ClusterOptions cluster;
    if (!args.has("--workers")) {
        for (const char* flag :
             {"--shards", "--shard-timeout-ms", "--shard-retries", "--shard-backoff-ms"}) {
            if (args.has(flag)) usage(std::string(flag) + " requires --workers LIST");
        }
        return cluster;
    }
    std::string error;
    if (!parse_cache_peer_list(args.get("--workers"), cluster.workers, &error)) {
        usage("--workers: " + error);
    }
    if (cluster.workers.empty()) usage("--workers: empty worker list");
    const int shards = args.get_int("--shards", 32);
    if (shards < 1) usage("--shards must be >= 1");
    cluster.shards = static_cast<size_t>(shards);
    cluster.shard_timeout_ms = args.get_int("--shard-timeout-ms", 60000);
    if (cluster.shard_timeout_ms < 0) usage("--shard-timeout-ms must be >= 0");
    cluster.shard_retries = args.get_int("--shard-retries", 2);
    if (cluster.shard_retries < 0) usage("--shard-retries must be >= 0");
    cluster.shard_backoff_ms = args.get_int("--shard-backoff-ms", 0);
    if (cluster.shard_backoff_ms < 0) usage("--shard-backoff-ms must be >= 0");
    return cluster;
}

Objective objective_from(const Args& args) {
    const std::string by = args.get("--by", "error");
    Objective o;
    if (!parse_objective(by, o)) usage("unknown objective " + by);
    return o;
}

ObjectiveSet objective_set_from(const Args& args) {
    if (!args.has("--objectives")) return default_objectives();
    ObjectiveSet set;
    std::string error;
    if (!parse_objective_set(split_commas(args.get("--objectives")), set, &error)) {
        usage(error);
    }
    return set;
}

void add_point_row(TextTable& table, const DesignPoint& p, int rank) {
    table.add_row({std::to_string(rank),
                   std::to_string(p.config.width),
                   p.config.variant == MultiplierVariant::kAccurate
                       ? std::string("-")
                       : std::to_string(p.config.depth),
                   multiplier_variant_name(p.config.variant),
                   accumulation_scheme_name(p.config.scheme),
                   fmt_fixed(p.error.nmed, 8),
                   fmt_percent(p.error.mred, 4),
                   fmt_fixed(p.hw.area_um2, 1),
                   fmt_fixed(p.hw.dynamic_power_uw, 2),
                   fmt_fixed(p.hw.delay_ps, 1),
                   fmt_fixed(p.hw.energy_fj, 1)});
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const Args args(argc, argv);
        const SweepSpec spec = spec_from(args);
        EvalOptions opts = options_from(args);
        resolve_cutoffs_from(args, spec, opts);
        const Objective by = objective_from(args);  // validate before the sweep runs
        const ObjectiveSet objectives = objective_set_from(args);
        const int repeat = args.get_int("--repeat", 1);
        if (repeat < 1) usage("--repeat must be >= 1");

        // One cache shared across --repeat runs: run 1 is cold, the rest warm.
        CostCache cache;
        const RemoteCacheOptions remote_opts = remote_options_from(args);
        if (!remote_opts.peers.empty() && !opts.use_hw_cache) {
            usage("--cache-peers requires the hardware cache (drop --no-hw-cache)");
        }
        std::unique_ptr<RemoteCostCache> remote;
        if (!remote_opts.peers.empty()) {
            remote = std::make_unique<RemoteCostCache>(cache, remote_opts);
        }
        if (opts.use_hw_cache) {
            opts.hw_cache = remote != nullptr ? static_cast<SynthesisCache*>(remote.get())
                                              : &cache;
        }

        const cluster::ClusterOptions cluster = cluster_options_from(args);
        const bool clustered = !cluster.workers.empty();

        // --trace-out: record spans on a client-tier recorder seeded from the
        // sweep seed (deterministic ids). The root context carries span_id 0
        // so top-level spans are roots of the assembled tree. Tracing rides
        // EvalOptions only — sweep results and exports are unaffected.
        const std::string trace_out = args.get("--trace-out");
        std::unique_ptr<obs::SpanRecorder> trace_recorder;
        obs::TraceContext trace_root;
        if (!trace_out.empty()) {
            trace_recorder = std::make_unique<obs::SpanRecorder>("client", opts.seed);
            trace_root.trace_hi = trace_recorder->new_span_id();
            trace_root.trace_lo = trace_recorder->new_span_id();
            trace_root.span_id = 0;
            trace_root.valid = true;
            opts.recorder = trace_recorder.get();
            opts.trace = trace_root;
        }
        // Persist across --repeat runs so run 2's deterministic cache stats
        // see run 1's keys as warm — exactly like the shared local cache.
        std::unordered_set<uint64_t> warm_keys;
        serve::ClusterCounters cluster_totals;
        auto run_sweep = [&](SweepStats& out) {
            if (!clustered) return evaluate_sweep(spec, opts, &out);
            serve::ClusterCounters delta;
            std::vector<DesignPoint> result =
                cluster::distributed_sweep(spec, opts, cluster, &out, &delta, &warm_keys);
            cluster_totals.add(delta);
            return result;
        };

        SweepStats stats;  // of run 1 (cold) — what the summary and JSON report
        std::vector<DesignPoint> points = run_sweep(stats);
        std::vector<SweepStats> run_stats = {stats};
        for (int r = 2; r <= repeat; ++r) {
            SweepStats warm;
            const std::vector<DesignPoint> again = run_sweep(warm);
            run_stats.push_back(warm);
            if (!sweeps_identical(points, again)) {
                std::cerr << "error: repeat run " << r << " diverged from run 1 — the "
                          << (opts.use_hw_cache ? "warm-cache" : "uncached")
                          << " path is not deterministic\n";
                return 1;
            }
        }
        const size_t evaluated = points.size();

        // Constraint filters run before the Pareto analysis so the frontier
        // is the frontier of the *feasible* region.
        auto drop_if = [&points](auto pred) {
            points.erase(std::remove_if(points.begin(), points.end(), pred), points.end());
        };
        if (args.has("--max-nmed")) {
            const double v = args.get_double("--max-nmed", 0);
            drop_if([v](const DesignPoint& p) { return p.error.nmed > v; });
        }
        if (args.has("--max-mred")) {
            const double v = args.get_double("--max-mred", 0);
            drop_if([v](const DesignPoint& p) { return p.error.mred > v; });
        }
        if (args.has("--max-area")) {
            const double v = args.get_double("--max-area", 0);
            drop_if([v](const DesignPoint& p) { return p.hw.area_um2 > v; });
        }
        if (args.has("--max-power")) {
            const double v = args.get_double("--max-power", 0);
            drop_if([v](const DesignPoint& p) { return p.hw.dynamic_power_uw > v; });
        }
        if (args.has("--max-delay")) {
            const double v = args.get_double("--max-delay", 0);
            drop_if([v](const DesignPoint& p) { return p.hw.delay_ps > v; });
        }

        const ParetoResult pareto = pareto_analysis(objective_matrix(points, objectives));

        // Display order: by the selected objective, ties broken by area and
        // then by enumeration order (stable) — deterministic across runs.
        std::vector<size_t> order(points.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            if (points[a].objective(by) != points[b].objective(by)) {
                return points[a].objective(by) < points[b].objective(by);
            }
            return points[a].hw.area_um2 < points[b].hw.area_um2;
        });

        const bool frontier_only = args.flag("frontier");
        const size_t top_k = static_cast<size_t>(args.get_int("--top", 0));

        std::cout << "DSE sweep: " << spec.describe() << "\n"
                  << "evaluated " << evaluated << " points";
        if (points.size() != evaluated) {
            std::cout << " (" << points.size() << " after filters)";
        }
        std::cout << ", frontier " << pareto.frontier.size() << " points over ("
                  << objective_set_name(objectives) << "), dist "
                  << operand_distribution_name(opts.distribution) << "\n";
        if (stats.hw_cache_enabled) {
            std::cout << "hw cache: on — " << stats.hw_cache_hits << " hits, "
                      << stats.hw_cache_misses << " misses (run 1)\n";
        } else {
            std::cout << "hw cache: off\n";
        }
        std::cout << "error engines: " << stats.engines.sliced << " sliced, "
                  << stats.engines.scalar << " scalar, " << stats.engines.sampled
                  << " sampled — cutoff " << stats.cutoff_desc << "\n";
        if (remote != nullptr) {
            // Totals across every run; scheduling-dependent, so this line
            // is observability only (like "sweep time:") and is never part
            // of any byte-compared output.
            const RemoteCacheCounters rc = remote->remote_counters();
            std::cout << "remote cache: " << remote->peer_count() << " peer"
                      << (remote->peer_count() == 1 ? "" : "s") << " — " << rc.hits
                      << " hits, " << rc.misses << " misses, " << rc.errors << " errors, "
                      << rc.timeouts << " timeouts, " << rc.puts << " puts, "
                      << rc.replica_hits << " replica hits, " << rc.read_repairs
                      << " repairs\n";
        }
        if (clustered) {
            // Totals across every run; like the remote-cache line this is
            // observability only and never part of byte-compared output.
            uint64_t dispatched = 0;
            uint64_t completed = 0;
            uint64_t retried = 0;
            for (const serve::ClusterWorkerCounters& w : cluster_totals.workers) {
                dispatched += w.dispatched;
                completed += w.completed;
                retried += w.retried;
            }
            std::cout << "cluster: " << cluster.workers.size() << " worker"
                      << (cluster.workers.size() == 1 ? "" : "s") << ", " << cluster.shards
                      << " shards — " << dispatched << " dispatched, " << completed
                      << " completed, " << retried << " retried, "
                      << cluster_totals.local_shards << " local\n";
        }
        std::cout << "sweep time:";
        for (size_t r = 0; r < run_stats.size(); ++r) {
            std::cout << (r == 0 ? " " : ", ") << fmt_fixed(run_stats[r].wall_seconds, 3)
                      << " s (run " << (r + 1);
            if (run_stats.size() > 1) std::cout << (r == 0 ? " cold" : " warm");
            std::cout << ")";
        }
        std::cout << "\n";
        if (repeat > 1) {
            std::cout << "repeat: " << repeat << " runs bit-identical\n";
        }
        std::cout << "\n";

        TextTable table({"rank", "width", "depth", "variant", "scheme", "NMED", "MRED(%)",
                         "area(um2)", "power(uW)", "delay(ps)", "energy(fJ)"});
        size_t printed = 0;
        for (size_t i : order) {
            if (frontier_only && pareto.rank[i] != 0) continue;
            add_point_row(table, points[i], pareto.rank[i]);
            if (top_k != 0 && ++printed >= top_k) break;
        }
        table.print(std::cout);
        if (frontier_only) {
            std::cout << "\n(" << table.row_count() << " Pareto-optimal points over "
                      << objective_set_name(objectives) << ")\n";
        }

        if (const std::string csv = args.get("--csv"); !csv.empty()) {
            write_dse_csv(csv, points, pareto.rank);
            std::cout << "csv -> " << csv << "\n";
        }
        if (const std::string json = args.get("--json"); !json.empty()) {
            write_dse_json(json, points, pareto.rank, stats, objectives);
            std::cout << "json -> " << json << "\n";
        }
        if (trace_recorder != nullptr) {
            obs::TraceTree tree;
            tree.request_id = "dse";
            tree.trace_hi = trace_root.trace_hi;
            tree.trace_lo = trace_root.trace_lo;
            tree.spans = trace_recorder->take();
            std::ofstream trace_file(trace_out, std::ios::binary | std::ios::trunc);
            trace_file << obs::chrome_trace_json({tree});
            if (!trace_file.flush()) {
                std::cerr << "error: cannot write trace to " << trace_out << "\n";
                return 1;
            }
            std::cout << "trace -> " << trace_out << " (" << tree.spans.size()
                      << " spans)\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
