// sdlc — command-line front end to the library.
//
//   sdlc gen   --width N --depth D [--scheme S] [--variant V] [-o file.v]
//              [--tb file.sv] [--dot file.dot] [--vcd file.vcd]
//   sdlc eval  --width N --depth D [--variant V] [--exhaustive | --samples K]
//   sdlc synth --width N --depth D [--variant V] [--scheme S]
//   sdlc blur  [--input in.pgm] --depth D [-o out.pgm]
//
// Variants: accurate | sdlc | compensated.  Schemes: ripple | wallace |
// dadda | fastcpa.  All commands are deterministic.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <map>
#include <string>

#include "analysis/expected_error.h"
#include "api/approx_multiplier.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/synthetic.h"
#include "netlist/export.h"
#include "netlist/opt.h"
#include "netlist/testbench.h"
#include "netlist/vcd.h"
#include "tech/synthesis.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sdlc;

[[noreturn]] void usage(const std::string& msg = "") {
    if (!msg.empty()) std::cerr << "error: " << msg << "\n\n";
    std::cerr <<
        "usage:\n"
        "  sdlc gen   --width N --depth D [--scheme S] [--variant V] [-o file.v]\n"
        "             [--tb file.sv] [--dot file.dot] [--vcd file.vcd]\n"
        "  sdlc eval  --width N --depth D [--variant V] [--exhaustive | --samples K]\n"
        "  sdlc synth --width N --depth D [--variant V] [--scheme S]\n"
        "  sdlc blur  [--input in.pgm] --depth D [-o out.pgm]\n"
        "variants: accurate|sdlc|compensated   schemes: ripple|wallace|dadda|fastcpa\n";
    std::exit(msg.empty() ? 0 : 2);
}

/// Minimal option parser: --key value pairs plus boolean flags.
class Args {
public:
    Args(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0 && key != "-o") usage("unexpected argument " + key);
            if (key == "--exhaustive") {
                flags_["exhaustive"] = true;
                continue;
            }
            if (i + 1 >= argc) usage("missing value for " + key);
            values_[key == "-o" ? "--out" : key] = argv[++i];
        }
    }
    [[nodiscard]] std::string get(const std::string& key, const std::string& dflt = "") const {
        const auto it = values_.find(key);
        return it == values_.end() ? dflt : it->second;
    }
    [[nodiscard]] int get_int(const std::string& key, int dflt) const {
        const std::string v = get(key);
        return v.empty() ? dflt : std::stoi(v);
    }
    [[nodiscard]] bool flag(const std::string& key) const {
        return flags_.count(key) != 0;
    }

private:
    std::map<std::string, std::string> values_;
    std::map<std::string, bool> flags_;
};

MultiplierConfig config_from(const Args& args) {
    MultiplierConfig cfg;
    cfg.width = args.get_int("--width", 8);
    cfg.depth = args.get_int("--depth", 2);
    const std::string variant = args.get("--variant", "sdlc");
    if (!parse_multiplier_variant(variant, cfg.variant)) usage("unknown variant " + variant);
    const std::string scheme = args.get("--scheme", "ripple");
    if (!parse_accumulation_scheme(scheme, cfg.scheme)) usage("unknown scheme " + scheme);
    return cfg;
}

int cmd_gen(const Args& args) {
    const MultiplierConfig cfg = config_from(args);
    const ApproxMultiplier mul(cfg);
    const MultiplierNetlist hw = mul.build_netlist();
    const Netlist optimized = optimize(hw.net).netlist;
    const std::string module = "sdlc_mul";

    const std::string out = args.get("--out", "sdlc_mul.v");
    {
        std::ofstream f(out);
        if (!f) usage("cannot open " + out);
        write_verilog(f, optimized, module);
    }
    std::cout << mul.describe() << " -> " << out << " ("
              << optimized.logic_gate_count() << " gates)\n";

    if (const std::string tb = args.get("--tb"); !tb.empty()) {
        std::ofstream f(tb);
        if (!f) usage("cannot open " + tb);
        write_verilog_testbench(f, optimized, module);
        std::cout << "testbench -> " << tb << "\n";
    }
    if (const std::string dot = args.get("--dot"); !dot.empty()) {
        std::ofstream f(dot);
        if (!f) usage("cannot open " + dot);
        write_dot(f, optimized, module);
        std::cout << "dot graph -> " << dot << "\n";
    }
    if (const std::string vcd = args.get("--vcd"); !vcd.empty()) {
        std::ofstream f(vcd);
        if (!f) usage("cannot open " + vcd);
        VcdWriter writer(f, optimized, module);
        Xoshiro256 rng(1);
        std::vector<bool> in(optimized.inputs().size());
        for (int t = 0; t < 64; ++t) {
            for (auto&& bit : in) bit = (rng.next() & 1u) != 0;
            writer.step(in);
        }
        std::cout << "waveform (64 random vectors) -> " << vcd << "\n";
    }
    return 0;
}

int cmd_eval(const Args& args) {
    const MultiplierConfig cfg = config_from(args);
    const ApproxMultiplier mul(cfg);
    auto f = [&mul](uint64_t a, uint64_t b) { return mul.multiply(a, b); };

    ErrorMetrics m;
    std::string mode;
    if (args.flag("exhaustive") || cfg.width <= 12) {
        // Explicit thread count: a standalone CLI run wants the machine's
        // cores (the inline default targets embedded/pool-worker callers).
        m = exhaustive_metrics(cfg.width, f, std::thread::hardware_concurrency());
        mode = "exhaustive";
    } else {
        const uint64_t samples = static_cast<uint64_t>(args.get_int("--samples", 1 << 22));
        m = sampled_metrics(cfg.width, samples, 0x5eed, f);
        mode = "sampled " + std::to_string(samples);
    }
    std::cout << mul.describe() << "  [" << mode << "]\n";
    TextTable t({"metric", "value"});
    t.add_row({"MRED (%)", fmt_percent(m.mred, 5)});
    t.add_row({"NMED", fmt_fixed(m.nmed, 8)});
    t.add_row({"ER (%)", fmt_percent(m.error_rate, 2)});
    t.add_row({"MAX(RED) (%)", fmt_percent(m.max_red, 4)});
    t.add_row({"bias", fmt_fixed(m.bias, 3)});
    t.add_row({"RMSE", fmt_fixed(m.rmse, 3)});
    t.print(std::cout);

    if (cfg.variant == MultiplierVariant::kSdlc) {
        const AnalyticError ana = analyze_expected_error(mul.plan());
        std::cout << "analytic: NMED " << fmt_fixed(ana.nmed, 8);
        if (ana.error_rate) std::cout << ", ER " << fmt_percent(*ana.error_rate, 2) << " %";
        std::cout << "\n";
    }
    return 0;
}

int cmd_synth(const Args& args) {
    const MultiplierConfig cfg = config_from(args);
    const ApproxMultiplier mul(cfg);
    const MultiplierNetlist hw = mul.build_netlist();
    const SynthesisReport r = synthesize(hw.net, CellLibrary::generic_90nm());
    std::cout << mul.describe() << "\n  " << summarize(r) << "\n";
    return 0;
}

int cmd_blur(const Args& args) {
    const int depth = args.get_int("--depth", 2);
    Image input;
    if (const std::string in = args.get("--input"); !in.empty()) {
        input = load_pgm(in);
    } else {
        input = make_scene(200, 200, 42);
    }
    const FixedKernel kernel = make_gaussian_kernel(3, 1.5);
    const ClusterPlan plan = ClusterPlan::make(8, depth);
    const Image reference = convolve(input, kernel, exact_mul8);
    const Image out = convolve(input, kernel, [&](uint8_t px, uint8_t w) {
        return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
    });
    const std::string path = args.get("--out", "blur.pgm");
    save_pgm(out, path);
    std::cout << "depth " << depth << " blur -> " << path << " (PSNR vs exact blur: "
              << fmt_fixed(psnr(reference, out), 2) << " dB)\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string cmd = argv[1];
    try {
        const Args args(argc, argv, 2);
        if (cmd == "gen") return cmd_gen(args);
        if (cmd == "eval") return cmd_eval(args);
        if (cmd == "synth") return cmd_synth(args);
        if (cmd == "blur") return cmd_blur(args);
        if (cmd == "--help" || cmd == "-h") usage();
        usage("unknown command " + cmd);
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
