#include "dse/export.h"

#include <fstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/json.h"

namespace sdlc {

namespace {

// CSV shares JSON's fixed "%.12g" formatting so both exports are
// byte-stable for bit-identical inputs.
std::string num(double v) { return json_number(v); }

void check_ranks(const std::vector<DesignPoint>& points, const std::vector<int>& ranks) {
    if (!ranks.empty() && ranks.size() != points.size()) {
        throw std::invalid_argument("dse export: ranks/points size mismatch");
    }
}

}  // namespace

std::vector<std::string> dse_csv_header() {
    return {"width",    "depth",   "variant",  "scheme",     "rank",
            "nmed",     "mred",    "med",      "error_rate", "max_red",
            "cells",    "area_um2", "delay_ps", "power_uw",  "leakage_nw",
            "energy_fj"};
}

std::vector<std::string> dse_csv_row(const DesignPoint& p, int rank) {
    return {std::to_string(p.config.width),
            std::to_string(p.config.depth),
            multiplier_variant_name(p.config.variant),
            accumulation_scheme_name(p.config.scheme),
            rank < 0 ? std::string() : std::to_string(rank),
            num(p.error.nmed),
            num(p.error.mred),
            num(p.error.med),
            num(p.error.error_rate),
            num(p.error.max_red),
            std::to_string(p.hw.cells),
            num(p.hw.area_um2),
            num(p.hw.delay_ps),
            num(p.hw.dynamic_power_uw),
            num(p.hw.leakage_nw),
            num(p.hw.energy_fj)};
}

void write_dse_csv(const std::string& path, const std::vector<DesignPoint>& points,
                   const std::vector<int>& ranks) {
    check_ranks(points, ranks);
    CsvWriter csv(path);
    csv.write_row(dse_csv_header());
    for (size_t i = 0; i < points.size(); ++i) {
        csv.write_row(dse_csv_row(points[i], ranks.empty() ? -1 : ranks[i]));
    }
    csv.close();
}

std::string dse_point_json(const DesignPoint& p, int rank) {
    std::string out = "{\"config\": {\"width\": " + std::to_string(p.config.width);
    out += ", \"depth\": " + std::to_string(p.config.depth);
    out += ", \"variant\": \"" + std::string(multiplier_variant_name(p.config.variant));
    out += "\", \"scheme\": \"" + std::string(accumulation_scheme_name(p.config.scheme));
    out += "\"}, \"rank\": ";
    out += rank < 0 ? std::string("null") : std::to_string(rank);
    out += ", \"error\": {\"nmed\": " + num(p.error.nmed);
    out += ", \"mred\": " + num(p.error.mred);
    out += ", \"med\": " + num(p.error.med);
    out += ", \"error_rate\": " + num(p.error.error_rate);
    out += ", \"max_red\": " + num(p.error.max_red);
    out += ", \"samples\": " + std::to_string(p.error.samples);
    out += "}, \"hw\": {\"cells\": " + std::to_string(p.hw.cells);
    out += ", \"area_um2\": " + num(p.hw.area_um2);
    out += ", \"delay_ps\": " + num(p.hw.delay_ps);
    out += ", \"power_uw\": " + num(p.hw.dynamic_power_uw);
    out += ", \"leakage_nw\": " + num(p.hw.leakage_nw);
    out += ", \"energy_fj\": " + num(p.hw.energy_fj);
    out += "}}";
    return out;
}

std::string dse_to_json(const std::vector<DesignPoint>& points, const std::vector<int>& ranks) {
    check_ranks(points, ranks);
    std::string out = "[\n";
    for (size_t i = 0; i < points.size(); ++i) {
        out += "  " + dse_point_json(points[i], ranks.empty() ? -1 : ranks[i]);
        out += i + 1 < points.size() ? ",\n" : "\n";
    }
    out += "]\n";
    return out;
}

void dse_json_stream(const std::vector<DesignPoint>& points, const std::vector<int>& ranks,
                     const SweepStats& stats, const ObjectiveSet& objectives,
                     const std::function<void(std::string_view)>& emit) {
    check_ranks(points, ranks);
    std::string head = "{\"summary\": {\"points\": " + std::to_string(stats.points);
    head += ", \"objectives\": " + objective_set_json(objectives);
    head += ", \"hw_cache\": {\"enabled\": ";
    head += stats.hw_cache_enabled ? "true" : "false";
    head += ", \"hits\": " + std::to_string(stats.hw_cache_hits);
    head += ", \"misses\": " + std::to_string(stats.hw_cache_misses);
    head += "}, \"error_engines\": {\"sliced\": " + std::to_string(stats.engines.sliced);
    head += ", \"scalar\": " + std::to_string(stats.engines.scalar);
    head += ", \"sampled\": " + std::to_string(stats.engines.sampled);
    head += ", \"cutoff\": \"" + stats.cutoff_desc + "\"";
    head += "}},\n\"points\": [\n";
    emit(head);
    for (size_t i = 0; i < points.size(); ++i) {
        std::string row = "  " + dse_point_json(points[i], ranks.empty() ? -1 : ranks[i]);
        row += i + 1 < points.size() ? ",\n" : "\n";
        emit(row);
    }
    emit("]\n}\n");
}

std::string dse_to_json(const std::vector<DesignPoint>& points, const std::vector<int>& ranks,
                        const SweepStats& stats, const ObjectiveSet& objectives) {
    std::string out;
    dse_json_stream(points, ranks, stats, objectives,
                    [&out](std::string_view piece) { out += piece; });
    return out;
}

void write_dse_json(const std::string& path, const std::vector<DesignPoint>& points,
                    const std::vector<int>& ranks) {
    std::ofstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("dse export: cannot open " + path);
    f << dse_to_json(points, ranks);
    if (!f) throw std::runtime_error("dse export: write failed for " + path);
}

void write_dse_json(const std::string& path, const std::vector<DesignPoint>& points,
                    const std::vector<int>& ranks, const SweepStats& stats,
                    const ObjectiveSet& objectives) {
    std::ofstream f(path, std::ios::binary);
    if (!f) throw std::runtime_error("dse export: cannot open " + path);
    f << dse_to_json(points, ranks, stats, objectives);
    if (!f) throw std::runtime_error("dse export: write failed for " + path);
}

}  // namespace sdlc
