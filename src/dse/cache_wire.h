// NDJSON wire format of the distributed synthesis-cache tier.
//
// A cache daemon (`cache_tool`) stores content-keyed SynthesisReports for a
// fleet of DSE processes; this header defines the line protocol both sides
// speak, mirroring the serve protocol's conventions: one JSON object per
// request line, exactly one response line per request (so a client can
// pipeline requests over one connection), strict parsing, and structured
// rejections with the same machine-readable codes ("too_large",
// "parse_error", "invalid_request").
//
//   {"id": "g1", "op": "get", "key": "0x5cf1d3a9b2e47086"}
//   {"id": "p1", "op": "put", "key": "0x5cf1...", "report": {...}}
//   {"id": "s1", "op": "stats"}
//   {"id": "q1", "op": "shutdown"}
//
//   {"id": "g1", "ok": true, "hit": true, "report": {...}}
//   {"id": "g1", "ok": true, "hit": false}
//   {"id": "p1", "ok": true, "stored": true}
//   {"id": "s1", "ok": true, "stats": {"entries": 49, "gets": 60, ...}}
//   {"id": "q1", "ok": true}
//   {"id": "",   "ok": false, "code": "parse_error", "message": "..."}
//
// Bit-exactness: a report fetched from a peer must be indistinguishable
// from one synthesized locally, or cache topology would change sweep
// results. JSON's decimal doubles cannot guarantee that, so every double
// crosses the wire as its IEEE-754 bit pattern ("0x" + 16 hex digits), and
// content keys use the same encoding (they are avalanched 64-bit hashes; a
// JSON number would silently round beyond 2^53).
#ifndef SDLC_DSE_CACHE_WIRE_H
#define SDLC_DSE_CACHE_WIRE_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "tech/synthesis.h"
#include "util/json_parse.h"

namespace sdlc {

/// What a cache request line asks the daemon to do.
enum class CacheOp {
    kGet,       ///< look a content key up
    kPut,       ///< memoize a report under a content key
    kStats,     ///< report daemon counters
    kShutdown,  ///< stop accepting, drain connections, exit
};

/// Short lowercase name ("get", "put", "stats", "shutdown").
[[nodiscard]] const char* cache_op_name(CacheOp op) noexcept;

/// One parsed cache request line.
struct CacheRequest {
    std::string id;  ///< echoed into the response; may be empty
    CacheOp op = CacheOp::kGet;
    uint64_t key = 0;        ///< get/put payload
    SynthesisReport report;  ///< put payload
    /// Optional tracing identity on get/put lines ({"trace": {"id": ...,
    /// "span": ...}}, same wire form as the serve protocol). Absent means
    /// untraced (trace.valid == false) and the line is byte-identical to
    /// the pre-tracing format; present means the daemon times the request
    /// and returns its spans on the response line.
    obs::TraceContext trace;
};

/// Why a cache request line was rejected (codes follow serve/protocol.h).
struct CacheWireError {
    std::string id;       ///< request id when one could be extracted, else ""
    std::string code;     ///< "too_large", "parse_error" or "invalid_request"
    std::string message;  ///< human-readable detail
};

/// Default cap on one cache request line. Reports are a few hundred bytes;
/// anything near this limit is garbage, not traffic.
inline constexpr size_t kCacheMaxRequestBytes = size_t{1} << 16;

/// Daemon-side aggregate counters (the `stats` response payload).
struct CacheDaemonStats {
    uint64_t gets = 0;       ///< get requests served
    uint64_t hits = 0;       ///< gets that found the key
    uint64_t puts = 0;       ///< put requests served
    uint64_t rejected = 0;   ///< lines answered with ok=false
    size_t entries = 0;      ///< distinct memoized reports
    uint64_t recovered = 0;  ///< entries loaded from --data-dir at startup
    uint64_t warm_hits = 0;  ///< hits answered from a recovered entry
    double uptime_seconds = 0.0;  ///< seconds since the daemon started
};

// ---- exact-bits hex encoding ----
//
// "0x" + up-to-16 hex digits is the one encoding shared by wire content
// keys, wire report doubles, and the durable on-disk log (dse/cache_store),
// so recovered reports round-trip bit-exactly.

/// "0x" + exactly 16 lowercase hex digits.
[[nodiscard]] std::string hex64(uint64_t v);

/// Parses hex64() output (strictly "0x" + 1..16 hex digits). Returns false
/// on anything else.
[[nodiscard]] bool parse_hex64(const std::string& s, uint64_t& out);

/// Parses one request line (strict; see file comment). Returns false and
/// fills `err` on rejection.
[[nodiscard]] bool parse_cache_request(const std::string& line, size_t max_bytes,
                                       CacheRequest& out, CacheWireError& err);

// ---- client-side request lines (no trailing newline) ----

/// A valid `trace` context appends the optional trace field; the default
/// (invalid) context reproduces the historical line bytes exactly.
[[nodiscard]] std::string cache_get_line(const std::string& id, uint64_t key,
                                         const obs::TraceContext& trace = {});
[[nodiscard]] std::string cache_put_line(const std::string& id, uint64_t key,
                                         const SynthesisReport& report,
                                         const obs::TraceContext& trace = {});
[[nodiscard]] std::string cache_stats_line(const std::string& id);
[[nodiscard]] std::string cache_shutdown_line(const std::string& id);

// ---- daemon-side response lines (no trailing newline) ----

/// A non-empty `spans` list (traced requests only) appends a "spans"
/// field; old clients ignore unknown ok=true response fields, so the
/// addition is backward-compatible.
[[nodiscard]] std::string cache_hit_response(const std::string& id,
                                             const SynthesisReport& report,
                                             const std::vector<obs::Span>& spans = {});
[[nodiscard]] std::string cache_miss_response(const std::string& id,
                                              const std::vector<obs::Span>& spans = {});
[[nodiscard]] std::string cache_put_response(const std::string& id, bool stored,
                                             const std::vector<obs::Span>& spans = {});
[[nodiscard]] std::string cache_stats_response(const std::string& id,
                                               const CacheDaemonStats& stats);
[[nodiscard]] std::string cache_ok_response(const std::string& id);
[[nodiscard]] std::string cache_error_response(const std::string& id, const std::string& code,
                                               const std::string& message);

/// One decoded response line (client side). Only the members matching the
/// request's op are meaningful; `ok == false` carries code/message.
struct CacheResponse {
    std::string id;
    bool ok = false;
    bool has_hit = false;  ///< response carried a "hit" member (a get answer)
    bool hit = false;
    bool has_report = false;
    SynthesisReport report;
    bool stored = false;
    bool has_stats = false;
    CacheDaemonStats stats;
    /// Daemon-side spans returned on a traced request's response line.
    std::vector<obs::Span> spans;
    std::string code;     ///< ok == false
    std::string message;  ///< ok == false
};

/// Decodes one response line. Returns false (with a message in *error when
/// non-null) on anything that is not a well-formed cache response — the
/// client then treats the peer as failed.
[[nodiscard]] bool parse_cache_response(const std::string& line, CacheResponse& out,
                                        std::string* error = nullptr);

// ---- report serialization ----

/// `report` as a single-line JSON object; doubles are IEEE-754 bit-pattern
/// strings so the round trip is exact.
[[nodiscard]] std::string synthesis_report_json(const SynthesisReport& report);

/// Decodes synthesis_report_json() output (strict: every field required,
/// no extras). Returns false with a message in *error (when non-null).
[[nodiscard]] bool synthesis_report_from_json(const JsonValue& value, SynthesisReport& out,
                                              std::string* error = nullptr);

}  // namespace sdlc

#endif  // SDLC_DSE_CACHE_WIRE_H
