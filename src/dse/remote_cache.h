// Sharded remote tier over the synthesis cache: one warm cache for a fleet.
//
// A RemoteCostCache layers a set of cache-daemon peers (cache_tool
// processes, reachable over Unix-domain or TCP sockets) in front of a local
// in-process CostCache. Lookup order is local hit -> remote hit -> run
// synthesize() and write the result back to the owning peer, so every
// replica of a serving fleet benefits from every other replica's synthesis
// work after a single round trip.
//
// Sharding is consistent hashing of the content key over the peer list:
// every process configured with the same peer specs (in any order) sends a
// given key to the same daemon, which is what makes the tier a shared cache
// rather than N independent ones, and adding a peer only remaps ~1/N of the
// key space.
//
// Failure model: the tier is an accelerator, never a dependency. A peer
// that cannot be reached, times out, or answers garbage is marked down for
// a cooldown and its keys silently fall through to local synthesis; results
// are bit-identical with any peer topology — including zero live peers —
// because the wire format round-trips reports exactly and synthesize() is
// deterministic. The counters record what happened (hits / misses / errors
// / timeouts / puts) for observability only.
//
// Thread safety: safe for concurrent get_or_synthesize from sweep workers.
// Each peer owns one persistent connection serialized by a per-peer mutex
// (requests are cheap request/response pairs; pool contention is bounded by
// the peer count).
#ifndef SDLC_DSE_REMOTE_CACHE_H
#define SDLC_DSE_REMOTE_CACHE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dse/cost_cache.h"
#include "obs/trace.h"
#include "util/retry.h"

namespace sdlc {

/// One parsed peer endpoint: "unix:PATH" or "HOST:PORT" (also accepted
/// with an explicit "tcp:" prefix).
struct CachePeerAddress {
    bool is_unix = false;
    std::string path_or_host;
    uint16_t port = 0;
};

/// Parses a peer spec. Returns false with a message in *error (when
/// non-null) on a malformed spec — tools turn that into a usage error
/// before anything starts running.
[[nodiscard]] bool parse_cache_peer(const std::string& spec, CachePeerAddress& out,
                                    std::string* error = nullptr);

/// Splits a comma-separated `--cache-peers` list and validates every spec
/// (empty items are skipped; a non-empty list yielding no peers is an
/// error). The one parser behind both dse_tool and serve_tool, so the two
/// tools can never drift on what a peer list means. Returns false with a
/// message in *error (when non-null).
[[nodiscard]] bool parse_cache_peer_list(const std::string& list,
                                         std::vector<std::string>& out,
                                         std::string* error = nullptr);

/// Remote-tier knobs.
struct RemoteCacheOptions {
    std::vector<std::string> peers;  ///< peer specs (see parse_cache_peer)
    /// Per-operation budget (connect / send / receive). A peer slower than
    /// this is treated as down: synthesis is cheaper than waiting forever.
    int timeout_ms = 250;
    /// Cooldown after a peer's *first* failure; consecutive failures back
    /// off exponentially (deterministic jitter) up to max_cooldown_ms —
    /// see util/retry.h, the policy shared with the cluster coordinator.
    int cooldown_ms = 1000;
    /// Cap on the escalating cooldown.
    int max_cooldown_ms = 8000;
    /// Virtual nodes per peer on the hash ring (evens out the key split).
    unsigned vnodes = 64;
    /// Replication factor: each key is stored on this many distinct ring
    /// successors. Gets fall through primary -> replicas -> local
    /// synthesis; a replica hit is written back to a primary that answered
    /// miss (read repair). 1 = classic sharding (no replication).
    unsigned replicas = 1;
};

/// Consistent-hash ring mapping content keys to peer indices. Ring points
/// derive from the peer *spec strings*, so every process with the same
/// peer list — in any order — shards identically.
class CacheHashRing {
public:
    static constexpr size_t npos = static_cast<size_t>(-1);

    CacheHashRing(const std::vector<std::string>& peer_specs, unsigned vnodes);

    /// Index (into the constructor's peer list) owning `key`; npos when the
    /// ring is empty.
    [[nodiscard]] size_t pick(uint64_t key) const noexcept;

    /// The first `count` *distinct* peers walking the ring clockwise from
    /// `key`'s point: the primary first, then its replication successors.
    /// Shorter than `count` when there are fewer distinct peers; empty on
    /// an empty ring. successors(key, 1) == {pick(key)}.
    [[nodiscard]] std::vector<size_t> successors(uint64_t key, size_t count) const;

private:
    std::vector<std::pair<uint64_t, size_t>> ring_;  ///< sorted by point
};

/// The sharded remote cache tier (see file comment).
class RemoteCostCache final : public SynthesisCache {
public:
    /// `local` is the caller-owned in-process tier; it must outlive this
    /// object. Throws std::invalid_argument on a malformed peer spec.
    RemoteCostCache(CostCache& local, const RemoteCacheOptions& opts);
    ~RemoteCostCache() override;

    RemoteCostCache(const RemoteCostCache&) = delete;
    RemoteCostCache& operator=(const RemoteCostCache&) = delete;

    [[nodiscard]] SynthesisReport get_or_synthesize(const Netlist& net, const CellLibrary& lib,
                                                    const SynthesisOptions& opts) override;

    /// The local tier's memoized keys (remote contents are irrelevant to
    /// sweep statistics: a remote hit still fills the local tier).
    [[nodiscard]] std::vector<uint64_t> keys() const override;

    [[nodiscard]] RemoteCacheCounters remote_counters() const override;

    [[nodiscard]] size_t peer_count() const noexcept;

private:
    enum class FetchResult { kHit, kMiss, kFailed };

    /// Peer availability for the canary re-probe state machine. A peer
    /// leaves kDown through exactly one thread winning the kDown->kProbing
    /// transition once the cooldown expires; everyone else keeps falling
    /// back to local synthesis until that canary request proves the peer
    /// is really back (kUp) or re-arms the cooldown (kDown again, with a
    /// longer, capped backoff). A recovered peer therefore sees one
    /// request, not the entire backlog at once.
    enum PeerState : uint32_t { kUp = 0, kDown = 1, kProbing = 2 };

    struct Peer {
        CachePeerAddress address;
        std::string spec;
        uint64_t retry_seed = 0;  ///< jitter stream (derived from spec)
        std::mutex mutex;
        int fd = -1;
        std::string buffer;  ///< partial-line carry between responses
        uint64_t next_id = 0;
        int failures = 0;  ///< consecutive failures (mutex-guarded)
        /// Lock-free gate state: checked before the mutex so threads never
        /// queue up behind a peer that is cooling down or being canaried.
        std::atomic<uint32_t> state{kUp};
        std::atomic<int64_t> down_until_ms{0};  ///< steady-clock ms
    };

    /// Lock-free admission: true when the caller may talk to the peer —
    /// either it is up, or its cooldown expired and the caller just won
    /// the single canary slot. False = skip straight to local synthesis.
    [[nodiscard]] bool admit(Peer& peer) const;

    /// Closes the peer's connection and (re-)arms its cooldown with the
    /// escalating retry policy (the one place the mark-down ritual lives).
    /// Caller holds the peer's mutex.
    void mark_down(Peer& peer) const;

    /// Clears the failure streak after a successful round trip. Caller
    /// holds the peer's mutex.
    void mark_up(Peer& peer) const;

    /// Records one failed remote operation as a timeout or an error.
    void count_failure(bool timeout);

    /// Runs one request/response round trip on `peer` (connecting first if
    /// needed). Returns false after mark_down; `timed_out` tells a timeout
    /// apart from a hard error.
    bool transact(Peer& peer, const std::string& line, std::string& response_line,
                  bool& timed_out);

    /// `trace` (valid only when the current request is traced) rides the
    /// get/put line so the daemon returns its own spans, which land on the
    /// thread's bound recorder.
    FetchResult remote_get(Peer& peer, uint64_t key, SynthesisReport& out,
                           const obs::TraceContext& trace);
    /// Returns true when the peer acknowledged the put.
    bool remote_put(Peer& peer, uint64_t key, const SynthesisReport& report,
                    const obs::TraceContext& trace);

    CostCache& local_;
    const RemoteCacheOptions opts_;
    const RetryPolicy cooldown_policy_;
    CacheHashRing ring_;
    std::vector<std::unique_ptr<Peer>> peers_;

    mutable std::mutex counter_mutex_;
    RemoteCacheCounters counters_;
};

}  // namespace sdlc

#endif  // SDLC_DSE_REMOTE_CACHE_H
