#include "dse/cost_cache.h"

#include "obs/trace.h"

namespace sdlc {

uint64_t CostCache::content_key(const Netlist& net, const CellLibrary& lib,
                                const SynthesisOptions& opts) noexcept {
    // Rotate-xor combine: the two halves are independently avalanched
    // hashes, so a cheap combiner keeps the full 64 bits of spread.
    const uint64_t a = net.structural_hash();
    const uint64_t b = synthesis_fingerprint(lib, opts);
    return a ^ (b << 1 | b >> 63);
}

SynthesisReport CostCache::get_or_synthesize(const Netlist& net, const CellLibrary& lib,
                                             const SynthesisOptions& opts) {
    // Spans ride the thread-local trace binding installed by the eval
    // worker: the shared cache never needs a recorder in its interface.
    const obs::TraceBinding& tb = obs::current_binding();
    const uint64_t key = content_key(net, lib, opts);
    {
        obs::ScopedSpan lookup_span(tb.recorder, tb.ctx, "cache_lookup_local");
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = reports_.find(key);
        if (it != reports_.end()) {
            ++hits_;
            return it->second;
        }
        ++misses_;
    }
    // Synthesize outside the lock: concurrent misses on the same key do
    // redundant work but produce the identical (deterministic) report.
    obs::ScopedSpan synth_span(tb.recorder, tb.ctx, "synthesize");
    const SynthesisReport report = synthesize(net, lib, opts);
    synth_span.stop();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        reports_.emplace(key, report);
    }
    return report;
}

bool CostCache::lookup(uint64_t key, SynthesisReport& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = reports_.find(key);
    if (it == reports_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    out = it->second;
    return true;
}

void CostCache::insert(uint64_t key, const SynthesisReport& report) {
    std::lock_guard<std::mutex> lock(mutex_);
    reports_.emplace(key, report);
}

bool CostCache::contains(uint64_t key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_.find(key) != reports_.end();
}

CostCache::Stats CostCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {hits_, misses_};
}

size_t CostCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return reports_.size();
}

std::vector<uint64_t> CostCache::keys() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint64_t> out;
    out.reserve(reports_.size());
    for (const auto& [key, report] : reports_) out.push_back(key);
    return out;
}

void CostCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    reports_.clear();
    hits_ = 0;
    misses_ = 0;
}

}  // namespace sdlc
