#include "dse/remote_cache.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>
#include <utility>

#include "dse/cache_wire.h"
#include "serve/socket.h"
#include "util/hash.h"

namespace sdlc {

namespace {

/// Applies the per-operation budget to both directions of `fd`.
void set_socket_timeouts(int fd, int timeout_ms) {
    if (timeout_ms <= 0) return;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool is_timeout_errno(int err) { return err == EAGAIN || err == EWOULDBLOCK; }

int64_t steady_now_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

bool parse_cache_peer(const std::string& spec, CachePeerAddress& out, std::string* error) {
    auto fail = [error](const std::string& message) {
        if (error != nullptr) *error = message;
        return false;
    };
    if (spec.rfind("unix:", 0) == 0) {
        const std::string path = spec.substr(5);
        if (path.empty()) return fail("empty unix socket path in \"" + spec + "\"");
        out = CachePeerAddress{};
        out.is_unix = true;
        out.path_or_host = path;
        return true;
    }
    std::string host_port = spec;
    if (host_port.rfind("tcp:", 0) == 0) host_port = host_port.substr(4);
    std::string host;
    uint16_t port = 0;
    std::string parse_error;
    // Peers are connect targets: port 0 would only fail later at connect
    // with a bare errno, so reject it here where the flag name is known.
    if (!serve::parse_host_port(host_port, host, port, &parse_error,
                                /*allow_port_zero=*/false)) {
        return fail("peer \"" + spec + "\": " + parse_error +
                    " (expected unix:PATH or HOST:PORT)");
    }
    out = CachePeerAddress{};
    out.is_unix = false;
    out.path_or_host = host;
    out.port = port;
    return true;
}

bool parse_cache_peer_list(const std::string& list, std::vector<std::string>& out,
                           std::string* error) {
    out.clear();
    size_t start = 0;
    while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos ? comma : comma - start);
        if (!item.empty()) {
            CachePeerAddress address;
            if (!parse_cache_peer(item, address, error)) return false;
            out.push_back(item);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    if (!list.empty() && out.empty()) {
        if (error != nullptr) *error = "empty peer list";
        return false;
    }
    return true;
}

// ------------------------------------------------------------- hash ring ----

CacheHashRing::CacheHashRing(const std::vector<std::string>& peer_specs, unsigned vnodes) {
    const unsigned per_peer = vnodes == 0 ? 1 : vnodes;
    ring_.reserve(peer_specs.size() * per_peer);
    for (size_t i = 0; i < peer_specs.size(); ++i) {
        uint64_t h = kFnvOffsetBasis;
        hash_mix_string(h, peer_specs[i]);
        for (unsigned v = 0; v < per_peer; ++v) {
            uint64_t point = h;
            hash_mix(point, v);
            ring_.emplace_back(hash_avalanche(point), i);
        }
    }
    std::sort(ring_.begin(), ring_.end());
}

size_t CacheHashRing::pick(uint64_t key) const noexcept {
    if (ring_.empty()) return npos;
    // Re-avalanche so ring placement is independent of the key's own
    // hashing scheme.
    const uint64_t point = hash_avalanche(key);
    const auto it = std::lower_bound(ring_.begin(), ring_.end(),
                                     std::make_pair(point, size_t{0}));
    return it == ring_.end() ? ring_.front().second : it->second;
}

std::vector<size_t> CacheHashRing::successors(uint64_t key, size_t count) const {
    std::vector<size_t> out;
    if (ring_.empty() || count == 0) return out;
    const uint64_t point = hash_avalanche(key);
    const auto it = std::lower_bound(ring_.begin(), ring_.end(),
                                     std::make_pair(point, size_t{0}));
    const size_t start = static_cast<size_t>(it - ring_.begin()) % ring_.size();
    // Walk clockwise collecting distinct peers: the owner's vnodes and its
    // neighbors' interleave, so consecutive *distinct* owners are exactly
    // the replication successors every identically-configured process
    // agrees on.
    for (size_t step = 0; step < ring_.size() && out.size() < count; ++step) {
        const size_t owner = ring_[(start + step) % ring_.size()].second;
        bool seen = false;
        for (const size_t chosen : out) seen = seen || chosen == owner;
        if (!seen) out.push_back(owner);
    }
    return out;
}

// ------------------------------------------------------- RemoteCostCache ----

namespace {

RetryPolicy cooldown_policy_from(const RemoteCacheOptions& opts) {
    RetryPolicy policy;
    policy.base_delay_ms = opts.cooldown_ms;
    policy.max_delay_ms = opts.max_cooldown_ms > opts.cooldown_ms ? opts.max_cooldown_ms
                                                                  : opts.cooldown_ms;
    policy.multiplier = 2.0;
    policy.jitter = 0.25;
    return policy;
}

}  // namespace

RemoteCostCache::RemoteCostCache(CostCache& local, const RemoteCacheOptions& opts)
    : local_(local),
      opts_(opts),
      cooldown_policy_(cooldown_policy_from(opts)),
      ring_(opts.peers, opts.vnodes) {
    peers_.reserve(opts_.peers.size());
    for (const std::string& spec : opts_.peers) {
        auto peer = std::make_unique<Peer>();
        std::string error;
        if (!parse_cache_peer(spec, peer->address, &error)) {
            throw std::invalid_argument(error);
        }
        peer->spec = spec;
        // Per-peer jitter stream: peers desynchronize their re-probes but
        // a given peer reproduces the same schedule run over run.
        peer->retry_seed = RetryPolicy::seed_from(spec);
        peers_.push_back(std::move(peer));
    }
    counters_.enabled = !peers_.empty();
}

RemoteCostCache::~RemoteCostCache() {
    for (const auto& peer : peers_) {
        std::lock_guard<std::mutex> lock(peer->mutex);
        if (peer->fd >= 0) ::close(peer->fd);
        peer->fd = -1;
    }
}

std::vector<uint64_t> RemoteCostCache::keys() const { return local_.keys(); }

RemoteCacheCounters RemoteCostCache::remote_counters() const {
    std::lock_guard<std::mutex> lock(counter_mutex_);
    return counters_;
}

size_t RemoteCostCache::peer_count() const noexcept { return peers_.size(); }

bool RemoteCostCache::admit(Peer& peer) const {
    const uint32_t state = peer.state.load(std::memory_order_acquire);
    if (state == kUp) return true;
    if (state == kProbing) return false;  // someone's canary is in flight
    if (steady_now_ms() < peer.down_until_ms.load(std::memory_order_acquire)) {
        return false;  // cooling down: silent local fallback
    }
    // Cooldown over: exactly one caller wins the canary slot and sends the
    // single probe request; the rest keep synthesizing locally until the
    // probe's verdict is in.
    uint32_t expected = kDown;
    return peer.state.compare_exchange_strong(expected, kProbing, std::memory_order_acq_rel);
}

void RemoteCostCache::mark_down(Peer& peer) const {
    if (peer.fd >= 0) ::close(peer.fd);
    peer.fd = -1;
    peer.buffer.clear();
    ++peer.failures;
    RetryPolicy policy = cooldown_policy_;
    policy.seed = peer.retry_seed;
    peer.down_until_ms.store(steady_now_ms() + policy.delay_ms(peer.failures),
                             std::memory_order_release);
    peer.state.store(kDown, std::memory_order_release);
}

void RemoteCostCache::mark_up(Peer& peer) const {
    peer.failures = 0;
    peer.state.store(kUp, std::memory_order_release);
}

bool RemoteCostCache::transact(Peer& peer, const std::string& line,
                               std::string& response_line, bool& timed_out) {
    timed_out = false;
    auto fail = [&](bool timeout) {
        mark_down(peer);
        timed_out = timeout;
        return false;
    };

    if (peer.fd < 0) {
        // The per-operation budget covers the connect too: a blackholed
        // peer must not stall a sweep worker for the kernel's own connect
        // timeout.
        try {
            peer.fd = peer.address.is_unix
                          ? serve::unix_socket_connect(peer.address.path_or_host,
                                                       opts_.timeout_ms)
                          : serve::tcp_connect(peer.address.path_or_host.empty()
                                                   ? "127.0.0.1"
                                                   : peer.address.path_or_host,
                                               peer.address.port, opts_.timeout_ms);
        } catch (const std::runtime_error&) {
            return fail(errno == ETIMEDOUT);
        }
        set_socket_timeouts(peer.fd, opts_.timeout_ms);
        peer.buffer.clear();
    }

    // Send the request line. MSG_NOSIGNAL: a daemon dying mid-write must
    // surface as EPIPE here, not as a process-killing SIGPIPE in whatever
    // tool embeds the sweep.
    std::string out = line;
    out.push_back('\n');
    size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(peer.fd, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return fail(n < 0 && is_timeout_errno(errno));
        }
        sent += static_cast<size_t>(n);
    }

    // Read exactly one response line (requests and responses pair 1:1 on
    // this connection; any failure closes it, so pairing can never skew).
    for (;;) {
        const size_t newline = peer.buffer.find('\n');
        if (newline != std::string::npos) {
            response_line = peer.buffer.substr(0, newline);
            peer.buffer.erase(0, newline + 1);
            return true;
        }
        if (peer.buffer.size() > kCacheMaxRequestBytes) {
            return fail(false);  // runaway response
        }
        char chunk[4096];
        const ssize_t n = ::recv(peer.fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR) continue;
            return fail(n < 0 && is_timeout_errno(errno));
        }
        peer.buffer.append(chunk, static_cast<size_t>(n));
    }
}

void RemoteCostCache::count_failure(bool timeout) {
    std::lock_guard<std::mutex> lock(counter_mutex_);
    if (timeout) {
        ++counters_.timeouts;
    } else {
        ++counters_.errors;
    }
}

RemoteCostCache::FetchResult RemoteCostCache::remote_get(Peer& peer, uint64_t key,
                                                         SynthesisReport& out,
                                                         const obs::TraceContext& trace) {
    if (!admit(peer)) return FetchResult::kFailed;  // lock-free fast path
    std::lock_guard<std::mutex> lock(peer.mutex);
    // Re-check under the mutex: a request we queued behind may have just
    // marked the peer down, and probing it again would both double-count
    // the failure and defeat the single-canary promise. (kProbing here
    // means *we* are the canary — only one CAS winner exists.)
    if (peer.state.load(std::memory_order_acquire) == kDown) return FetchResult::kFailed;
    const std::string id = "g" + std::to_string(peer.next_id++);
    std::string response_line;
    bool timed_out = false;
    if (!transact(peer, cache_get_line(id, key, trace), response_line, timed_out)) {
        count_failure(timed_out);
        return FetchResult::kFailed;
    }
    CacheResponse response;
    if (!parse_cache_response(response_line, response) || !response.ok ||
        !response.has_hit || response.id != id) {
        // The daemon is answering but not our protocol — unparseable,
        // rejecting valid lines, or (id mismatch) answering some *other*
        // request, which would pair responses with the wrong keys from
        // here on. Stop talking to it; a wrong report must never be
        // cached.
        mark_down(peer);
        count_failure(false);
        return FetchResult::kFailed;
    }
    mark_up(peer);
    // Daemon-side spans for a traced request ride the response line; land
    // them on the thread's bound recorder (tier already "cache").
    if (!response.spans.empty()) {
        const obs::TraceBinding& tb = obs::current_binding();
        if (tb.recorder != nullptr) {
            for (obs::Span& span : response.spans) tb.recorder->record(std::move(span));
        }
    }
    if (!response.hit) return FetchResult::kMiss;
    out = response.report;
    return FetchResult::kHit;
}

bool RemoteCostCache::remote_put(Peer& peer, uint64_t key, const SynthesisReport& report,
                                 const obs::TraceContext& trace) {
    if (!admit(peer)) return false;
    std::lock_guard<std::mutex> lock(peer.mutex);
    if (peer.state.load(std::memory_order_acquire) == kDown) return false;
    const std::string id = "p" + std::to_string(peer.next_id++);
    std::string response_line;
    bool timed_out = false;
    if (!transact(peer, cache_put_line(id, key, report, trace), response_line, timed_out)) {
        count_failure(timed_out);
        return false;
    }
    CacheResponse response;
    if (!parse_cache_response(response_line, response) || !response.ok ||
        response.id != id) {
        mark_down(peer);
        count_failure(false);
        return false;
    }
    mark_up(peer);
    if (!response.spans.empty()) {
        const obs::TraceBinding& tb = obs::current_binding();
        if (tb.recorder != nullptr) {
            for (obs::Span& span : response.spans) tb.recorder->record(std::move(span));
        }
    }
    std::lock_guard<std::mutex> counter_lock(counter_mutex_);
    ++counters_.puts;
    return true;
}

SynthesisReport RemoteCostCache::get_or_synthesize(const Netlist& net, const CellLibrary& lib,
                                                   const SynthesisOptions& opts) {
    // Spans ride the thread-local binding installed by the eval worker.
    const obs::TraceBinding& tb = obs::current_binding();
    const uint64_t key = CostCache::content_key(net, lib, opts);
    SynthesisReport report;
    {
        obs::ScopedSpan lookup_span(tb.recorder, tb.ctx, "cache_lookup_local");
        if (local_.lookup(key, report)) return report;
    }

    // Primary first, then its replication successors: with replicas=1 this
    // is classic sharding; with more, a dead primary degrades to one extra
    // round trip instead of a synthesis.
    const std::vector<size_t> targets =
        ring_.successors(key, opts_.replicas == 0 ? 1 : opts_.replicas);
    std::vector<Peer*> missed;  // answered "not cached", in fall-through order
    for (size_t i = 0; i < targets.size(); ++i) {
        Peer& peer = *peers_[targets[i]];
        obs::ScopedSpan remote_span(tb.recorder, tb.ctx, "cache_lookup_remote");
        const FetchResult fetched = remote_get(peer, key, report, remote_span.context());
        remote_span.stop();
        switch (fetched) {
            case FetchResult::kHit: {
                local_.insert(key, report);
                {
                    std::lock_guard<std::mutex> lock(counter_mutex_);
                    if (i == 0) {
                        ++counters_.hits;
                    } else {
                        ++counters_.replica_hits;
                    }
                }
                // Read repair: a peer earlier in the chain answered miss
                // for a key a replica holds — write it back so the next
                // reader finds it at the primary.
                for (Peer* repair : missed) {
                    obs::ScopedSpan put_span(tb.recorder, tb.ctx, "cache_put");
                    if (remote_put(*repair, key, report, put_span.context())) {
                        std::lock_guard<std::mutex> lock(counter_mutex_);
                        ++counters_.read_repairs;
                    }
                }
                return report;
            }
            case FetchResult::kMiss: {
                if (i == 0) {
                    std::lock_guard<std::mutex> lock(counter_mutex_);
                    ++counters_.misses;
                }
                missed.push_back(&peer);
                break;
            }
            case FetchResult::kFailed:
                break;  // counted inside remote_get; fall through
        }
    }

    {
        obs::ScopedSpan synth_span(tb.recorder, tb.ctx, "synthesize");
        report = synthesize(net, lib, opts);
    }
    local_.insert(key, report);
    // Fan the write out to every successor that just answered; a down
    // peer's cooldown must not be probed on every synthesized point.
    for (Peer* target : missed) {
        obs::ScopedSpan put_span(tb.recorder, tb.ctx, "cache_put");
        remote_put(*target, key, report, put_span.context());
    }
    return report;
}

}  // namespace sdlc
