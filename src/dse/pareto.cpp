#include "dse/pareto.h"

namespace sdlc {

const char* objective_name(Objective o) noexcept {
    switch (o) {
        case Objective::kError: return "error";
        case Objective::kArea: return "area";
        case Objective::kPower: return "power";
        case Objective::kDelay: return "delay";
        case Objective::kEnergy: return "energy";
        case Objective::kMaxRed: return "maxred";
    }
    return "?";
}

bool parse_objective(const std::string& name, Objective& out) noexcept {
    for (int i = 0; i < kAllObjectiveCount; ++i) {
        const Objective o = static_cast<Objective>(i);
        if (name == objective_name(o)) {
            out = o;
            return true;
        }
    }
    return false;
}

ObjectiveSet default_objectives() {
    return {Objective::kError, Objective::kArea, Objective::kPower, Objective::kDelay};
}

std::string objective_set_name(const ObjectiveSet& set) {
    std::string out;
    for (const Objective o : set) {
        if (!out.empty()) out += ',';
        out += objective_name(o);
    }
    return out;
}

std::string objective_set_json(const ObjectiveSet& set) {
    std::string out = "[";
    for (size_t i = 0; i < set.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + std::string(objective_name(set[i])) + "\"";
    }
    out += "]";
    return out;
}

bool parse_objective_set(const std::vector<std::string>& names, ObjectiveSet& out,
                         std::string* error) {
    if (names.empty()) {
        if (error != nullptr) *error = "objective set is empty";
        return false;
    }
    ObjectiveSet parsed;
    for (const std::string& name : names) {
        Objective o;
        if (!parse_objective(name, o)) {
            if (error != nullptr) *error = "unknown objective \"" + name + "\"";
            return false;
        }
        for (const Objective seen : parsed) {
            if (seen == o) {
                if (error != nullptr) *error = "duplicate objective \"" + name + "\"";
                return false;
            }
        }
        parsed.push_back(o);
    }
    out = std::move(parsed);
    return true;
}

bool dominates(const ObjectiveVector& a, const ObjectiveVector& b) noexcept {
    bool strictly_better = false;
    for (size_t k = 0; k < a.size(); ++k) {
        if (a[k] > b[k]) return false;
        if (a[k] < b[k]) strictly_better = true;
    }
    return strictly_better;
}

ParetoResult pareto_analysis(const std::vector<ObjectiveVector>& points) {
    const size_t n = points.size();
    ParetoResult result;
    result.rank.assign(n, -1);

    size_t unranked = n;
    for (int round = 0; unranked > 0; ++round) {
        // A point joins this round's frontier when no other still-unranked
        // point dominates it (already-ranked points are strictly better and
        // were peeled off earlier).
        std::vector<size_t> layer;
        for (size_t i = 0; i < n; ++i) {
            if (result.rank[i] != -1) continue;
            bool dominated = false;
            for (size_t j = 0; j < n && !dominated; ++j) {
                if (j == i || result.rank[j] != -1) continue;
                dominated = dominates(points[j], points[i]);
            }
            if (!dominated) layer.push_back(i);
        }
        for (size_t i : layer) result.rank[i] = round;
        unranked -= layer.size();
        if (round == 0) result.frontier = std::move(layer);
    }
    return result;
}

std::vector<size_t> pareto_frontier(const std::vector<ObjectiveVector>& points) {
    std::vector<size_t> frontier;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j != i) dominated = dominates(points[j], points[i]);
        }
        if (!dominated) frontier.push_back(i);
    }
    return frontier;
}

}  // namespace sdlc
