#include "dse/pareto.h"

namespace sdlc {

const char* objective_name(Objective o) noexcept {
    switch (o) {
        case Objective::kError: return "error";
        case Objective::kArea: return "area";
        case Objective::kPower: return "power";
        case Objective::kDelay: return "delay";
    }
    return "?";
}

bool dominates(const ObjectiveVector& a, const ObjectiveVector& b) noexcept {
    bool strictly_better = false;
    for (int k = 0; k < kObjectiveCount; ++k) {
        if (a[k] > b[k]) return false;
        if (a[k] < b[k]) strictly_better = true;
    }
    return strictly_better;
}

ParetoResult pareto_analysis(const std::vector<ObjectiveVector>& points) {
    const size_t n = points.size();
    ParetoResult result;
    result.rank.assign(n, -1);

    size_t unranked = n;
    for (int round = 0; unranked > 0; ++round) {
        // A point joins this round's frontier when no other still-unranked
        // point dominates it (already-ranked points are strictly better and
        // were peeled off earlier).
        std::vector<size_t> layer;
        for (size_t i = 0; i < n; ++i) {
            if (result.rank[i] != -1) continue;
            bool dominated = false;
            for (size_t j = 0; j < n && !dominated; ++j) {
                if (j == i || result.rank[j] != -1) continue;
                dominated = dominates(points[j], points[i]);
            }
            if (!dominated) layer.push_back(i);
        }
        for (size_t i : layer) result.rank[i] = round;
        unranked -= layer.size();
        if (round == 0) result.frontier = std::move(layer);
    }
    return result;
}

std::vector<size_t> pareto_frontier(const std::vector<ObjectiveVector>& points) {
    std::vector<size_t> frontier;
    for (size_t i = 0; i < points.size(); ++i) {
        bool dominated = false;
        for (size_t j = 0; j < points.size() && !dominated; ++j) {
            if (j != i) dominated = dominates(points[j], points[i]);
        }
        if (!dominated) frontier.push_back(i);
    }
    return frontier;
}

}  // namespace sdlc
