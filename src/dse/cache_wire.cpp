#include "dse/cache_wire.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "util/json.h"

namespace sdlc {

namespace {

/// Mirrors the serve protocol's id cap: ids are echoed into every response.
constexpr size_t kMaxIdLength = 128;

std::string bits_of(double v) { return hex64(std::bit_cast<uint64_t>(v)); }

/// The report's double-valued fields, in wire order. Walking one table from
/// both the encoder and the decoder keeps the two in lockstep: adding a
/// field here extends the wire format and its strict validation at once.
struct DoubleField {
    const char* name;
    double SynthesisReport::* member;
};
constexpr DoubleField kDoubleFields[] = {
    {"area_um2", &SynthesisReport::area_um2},
    {"delay_ps", &SynthesisReport::delay_ps},
    {"dynamic_energy_fj", &SynthesisReport::dynamic_energy_fj},
    {"dynamic_power_uw", &SynthesisReport::dynamic_power_uw},
    {"leakage_nw", &SynthesisReport::leakage_nw},
    {"energy_fj", &SynthesisReport::energy_fj},
};

bool fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
}

/// True when `v` is a non-negative integer small enough to cast safely
/// (2^53: the exact double-integer range). Guards every double-to-integer
/// cast on untrusted input — static_cast from an out-of-range or infinite
/// double is undefined behavior, so a hostile "cells": 1e999 must be
/// rejected, not cast.
bool is_safe_count(const JsonValue& v) noexcept {
    return v.is_number() && v.number >= 0 && v.number <= 9007199254740992.0 &&
           v.number == std::floor(v.number);
}

}  // namespace

std::string hex64(uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
    return buf;
}

bool parse_hex64(const std::string& s, uint64_t& out) {
    // Exactly the form hex64() emits: "0x" + 1..16 hex digits. Accepting
    // decimal or (worse) leading-zero octal here would let two clients
    // disagree about which key a string names.
    if (s.size() < 3 || s.size() > 18 || s[0] != '0' || s[1] != 'x') return false;
    uint64_t value = 0;
    for (size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return false;
        value = (value << 4) | static_cast<uint64_t>(digit);
    }
    out = value;
    return true;
}

const char* cache_op_name(CacheOp op) noexcept {
    switch (op) {
        case CacheOp::kGet: return "get";
        case CacheOp::kPut: return "put";
        case CacheOp::kStats: return "stats";
        case CacheOp::kShutdown: return "shutdown";
    }
    return "?";
}

std::string synthesis_report_json(const SynthesisReport& report) {
    std::string out = "{\"cells\": " + std::to_string(report.cells);
    out += ", \"depth\": " + std::to_string(report.depth);
    for (const DoubleField& f : kDoubleFields) {
        out += ", \"" + std::string(f.name) + "\": \"" + bits_of(report.*f.member) + "\"";
    }
    out += "}";
    return out;
}

bool synthesis_report_from_json(const JsonValue& value, SynthesisReport& out,
                                std::string* error) {
    if (!value.is_object()) return fail(error, "report must be an object");
    constexpr size_t kFieldCount = 2 + std::size(kDoubleFields);
    if (value.object.size() != kFieldCount) {
        return fail(error, "report must have exactly " + std::to_string(kFieldCount) +
                               " fields");
    }
    out = SynthesisReport{};
    const JsonValue* cells = value.find("cells");
    if (cells == nullptr || !is_safe_count(*cells)) {
        return fail(error, "report \"cells\" must be a non-negative integer");
    }
    out.cells = static_cast<size_t>(cells->number);
    const JsonValue* depth = value.find("depth");
    if (depth == nullptr || !is_safe_count(*depth) || depth->number > 1e9) {
        return fail(error, "report \"depth\" must be a non-negative integer");
    }
    out.depth = static_cast<int>(depth->number);
    for (const DoubleField& f : kDoubleFields) {
        const JsonValue* v = value.find(f.name);
        uint64_t bits = 0;
        if (v == nullptr || !v->is_string() || !parse_hex64(v->string, bits)) {
            return fail(error, "report \"" + std::string(f.name) +
                                   "\" must be a 64-bit hex bit-pattern string");
        }
        out.*f.member = std::bit_cast<double>(bits);
    }
    return true;
}

bool parse_cache_request(const std::string& line, size_t max_bytes, CacheRequest& out,
                         CacheWireError& err) {
    err = CacheWireError{};
    if (line.size() > max_bytes) {
        err.code = "too_large";
        err.message = "request line is " + std::to_string(line.size()) + " bytes (limit " +
                      std::to_string(max_bytes) + ")";
        return false;
    }
    JsonValue root;
    std::string parse_error;
    if (!json_parse(line, root, &parse_error)) {
        err.code = "parse_error";
        err.message = parse_error;
        return false;
    }
    // Best-effort id extraction so even a schema-invalid request gets a
    // response tagged with the id the client sent.
    if (const JsonValue* id = root.find("id"); id != nullptr && id->is_string()) {
        err.id = id->string.substr(0, kMaxIdLength);
    }
    auto invalid = [&err](const std::string& message) {
        err.code = "invalid_request";
        err.message = message;
        return false;
    };
    if (!root.is_object()) return invalid("request must be a JSON object");
    out = CacheRequest{};
    if (const JsonValue* id = root.find("id")) {
        if (!id->is_string()) return invalid("\"id\" must be a string");
        if (id->string.size() > kMaxIdLength) return invalid("\"id\" exceeds 128 characters");
        out.id = id->string;
    }
    const JsonValue* op = root.find("op");
    if (op == nullptr || !op->is_string()) return invalid("missing \"op\"");
    if (op->string == "get") out.op = CacheOp::kGet;
    else if (op->string == "put") out.op = CacheOp::kPut;
    else if (op->string == "stats") out.op = CacheOp::kStats;
    else if (op->string == "shutdown") out.op = CacheOp::kShutdown;
    else return invalid("unknown op \"" + op->string + "\"");

    // Strict key-set check, matching serve/protocol's check_known_keys.
    for (const auto& [key, member] : root.object) {
        (void)member;
        const bool known =
            key == "id" || key == "op" ||
            ((out.op == CacheOp::kGet || out.op == CacheOp::kPut) &&
             (key == "key" || key == "trace")) ||
            (out.op == CacheOp::kPut && key == "report");
        if (!known) return invalid("unknown request field \"" + key + "\"");
    }

    if (const JsonValue* trace = root.find("trace")) {
        if (!trace->is_object()) return invalid("\"trace\" must be an object");
        for (const auto& [key, member] : trace->object) {
            (void)member;
            if (key != "id" && key != "span") {
                return invalid("unknown trace field \"" + key + "\"");
            }
        }
        const JsonValue* trace_id = trace->find("id");
        if (trace_id == nullptr || !trace_id->is_string() ||
            !obs::parse_trace_id_hex(trace_id->string, out.trace.trace_hi,
                                     out.trace.trace_lo)) {
            return invalid("\"trace\" requires \"id\": 32 lowercase hex digits");
        }
        if (const JsonValue* span = trace->find("span")) {
            if (!span->is_string() ||
                !obs::parse_span_id_hex(span->string, out.trace.span_id)) {
                return invalid("\"trace\" \"span\" must be 16 lowercase hex digits");
            }
        }
        out.trace.valid = true;
    }

    if (out.op == CacheOp::kGet || out.op == CacheOp::kPut) {
        const JsonValue* key = root.find("key");
        if (key == nullptr || !key->is_string() || !parse_hex64(key->string, out.key)) {
            return invalid("\"key\" must be a 64-bit hex string");
        }
    }
    if (out.op == CacheOp::kPut) {
        const JsonValue* report = root.find("report");
        std::string report_error;
        if (report == nullptr || !synthesis_report_from_json(*report, out.report,
                                                             &report_error)) {
            return invalid(report == nullptr ? "put requires \"report\"" : report_error);
        }
    }
    return true;
}

// ---- line builders ----

namespace {

std::string request_head(const std::string& id, const char* op) {
    return "{\"id\": " + json_string(id) + ", \"op\": \"" + op + "\"";
}

std::string response_head(const std::string& id, bool ok) {
    return "{\"id\": " + json_string(id) + (ok ? ", \"ok\": true" : ", \"ok\": false");
}

std::string trace_field(const obs::TraceContext& trace) {
    if (!trace.valid) return "";
    return ", \"trace\": {\"id\": \"" + obs::trace_id_hex(trace.trace_hi, trace.trace_lo) +
           "\", \"span\": \"" + obs::span_id_hex(trace.span_id) + "\"}";
}

std::string spans_field(const std::vector<obs::Span>& spans) {
    if (spans.empty()) return "";
    return ", \"spans\": " + obs::spans_wire_json(spans);
}

}  // namespace

std::string cache_get_line(const std::string& id, uint64_t key,
                           const obs::TraceContext& trace) {
    return request_head(id, "get") + ", \"key\": \"" + hex64(key) + "\"" +
           trace_field(trace) + "}";
}

std::string cache_put_line(const std::string& id, uint64_t key, const SynthesisReport& report,
                           const obs::TraceContext& trace) {
    return request_head(id, "put") + ", \"key\": \"" + hex64(key) +
           "\", \"report\": " + synthesis_report_json(report) + trace_field(trace) + "}";
}

std::string cache_stats_line(const std::string& id) { return request_head(id, "stats") + "}"; }

std::string cache_shutdown_line(const std::string& id) {
    return request_head(id, "shutdown") + "}";
}

std::string cache_hit_response(const std::string& id, const SynthesisReport& report,
                               const std::vector<obs::Span>& spans) {
    return response_head(id, true) + ", \"hit\": true, \"report\": " +
           synthesis_report_json(report) + spans_field(spans) + "}";
}

std::string cache_miss_response(const std::string& id, const std::vector<obs::Span>& spans) {
    return response_head(id, true) + ", \"hit\": false" + spans_field(spans) + "}";
}

std::string cache_put_response(const std::string& id, bool stored,
                               const std::vector<obs::Span>& spans) {
    return response_head(id, true) + std::string(", \"stored\": ") +
           (stored ? "true" : "false") + spans_field(spans) + "}";
}

std::string cache_stats_response(const std::string& id, const CacheDaemonStats& stats) {
    std::string out = response_head(id, true);
    out += ", \"stats\": {\"entries\": " + std::to_string(stats.entries);
    out += ", \"gets\": " + std::to_string(stats.gets);
    out += ", \"hits\": " + std::to_string(stats.hits);
    out += ", \"puts\": " + std::to_string(stats.puts);
    out += ", \"rejected\": " + std::to_string(stats.rejected);
    out += ", \"recovered\": " + std::to_string(stats.recovered);
    out += ", \"warm_hits\": " + std::to_string(stats.warm_hits);
    out += ", \"uptime_seconds\": " + json_number(stats.uptime_seconds);
    out += "}}";
    return out;
}

std::string cache_ok_response(const std::string& id) { return response_head(id, true) + "}"; }

std::string cache_error_response(const std::string& id, const std::string& code,
                                 const std::string& message) {
    return response_head(id, false) + ", \"code\": " + json_string(code) +
           ", \"message\": " + json_string(message) + "}";
}

bool parse_cache_response(const std::string& line, CacheResponse& out, std::string* error) {
    JsonValue root;
    std::string parse_error;
    if (!json_parse(line, root, &parse_error)) return fail(error, parse_error);
    if (!root.is_object()) return fail(error, "response must be a JSON object");
    out = CacheResponse{};
    if (const JsonValue* id = root.find("id"); id != nullptr && id->is_string()) {
        out.id = id->string;
    }
    const JsonValue* ok = root.find("ok");
    if (ok == nullptr || !ok->is_bool()) return fail(error, "missing \"ok\"");
    out.ok = ok->boolean;
    if (!out.ok) {
        if (const JsonValue* code = root.find("code"); code != nullptr && code->is_string()) {
            out.code = code->string;
        }
        if (const JsonValue* msg = root.find("message"); msg != nullptr && msg->is_string()) {
            out.message = msg->string;
        }
        return true;
    }
    if (const JsonValue* hit = root.find("hit")) {
        if (!hit->is_bool()) return fail(error, "\"hit\" must be a boolean");
        out.has_hit = true;
        out.hit = hit->boolean;
    }
    if (const JsonValue* report = root.find("report")) {
        std::string report_error;
        if (!synthesis_report_from_json(*report, out.report, &report_error)) {
            return fail(error, report_error);
        }
        out.has_report = true;
    }
    if (out.has_hit && out.hit && !out.has_report) {
        return fail(error, "hit response carries no report");
    }
    if (const JsonValue* stored = root.find("stored")) {
        if (!stored->is_bool()) return fail(error, "\"stored\" must be a boolean");
        out.stored = stored->boolean;
    }
    if (const JsonValue* stats = root.find("stats")) {
        if (!stats->is_object()) return fail(error, "\"stats\" must be an object");
        // A counter outside the safe integer range means the peer is not
        // speaking our protocol; fail the line rather than cast (UB).
        bool counters_ok = true;
        auto count = [&](const char* name, uint64_t& into) {
            const JsonValue* v = stats->find(name);
            if (v == nullptr) return;
            if (!is_safe_count(*v)) {
                counters_ok = false;
                return;
            }
            into = static_cast<uint64_t>(v->number);
        };
        count("gets", out.stats.gets);
        count("hits", out.stats.hits);
        count("puts", out.stats.puts);
        count("rejected", out.stats.rejected);
        // Durability counters are additive: absent when talking to an older
        // daemon, in which case they stay 0.
        count("recovered", out.stats.recovered);
        count("warm_hits", out.stats.warm_hits);
        uint64_t entries = 0;
        count("entries", entries);
        out.stats.entries = static_cast<size_t>(entries);
        // Uptime is a plain double gauge, absent when talking to an older
        // daemon.
        if (const JsonValue* uptime = stats->find("uptime_seconds");
            uptime != nullptr && uptime->is_number()) {
            out.stats.uptime_seconds = uptime->number;
        }
        if (!counters_ok) return fail(error, "stats counter is not a safe integer");
        out.has_stats = true;
    }
    if (const JsonValue* spans = root.find("spans")) {
        std::string spans_error;
        if (!obs::parse_spans_wire(*spans, out.spans, &spans_error)) {
            return fail(error, spans_error);
        }
    }
    return true;
}

}  // namespace sdlc
