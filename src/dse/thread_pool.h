// Forwarding header: ThreadPool moved to util/ so the error-evaluation layer
// can shard work over a caller-provided pool without depending on dse/.
#ifndef SDLC_DSE_THREAD_POOL_FWD_H
#define SDLC_DSE_THREAD_POOL_FWD_H

#include "util/thread_pool.h"

#endif  // SDLC_DSE_THREAD_POOL_FWD_H
