#include "dse/point_wire.h"

#include <array>
#include <bit>
#include <cstdint>

namespace sdlc {

namespace {

constexpr char kPrefix[] = "v1:";
constexpr size_t kPrefixLen = 3;
constexpr size_t kWords = 18;
constexpr size_t kBlobLen = kPrefixLen + kWords * 16;

void append_hex64(std::string& out, uint64_t v) {
    static const char digits[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4) {
        out += digits[(v >> shift) & 0xF];
    }
}

bool parse_word(const std::string& blob, size_t word, uint64_t& out) {
    out = 0;
    const size_t base = kPrefixLen + word * 16;
    for (size_t i = 0; i < 16; ++i) {
        const char c = blob[base + i];
        uint64_t nibble = 0;
        if (c >= '0' && c <= '9') nibble = static_cast<uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') nibble = static_cast<uint64_t>(c - 'a' + 10);
        else return false;
        out = (out << 4) | nibble;
    }
    return true;
}

double as_double(uint64_t bits) { return std::bit_cast<double>(bits); }

bool fail(std::string* error, const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
}

}  // namespace

std::string design_point_bits(const DesignPoint& point) {
    std::string out;
    out.reserve(kBlobLen);
    out += kPrefix;
    const MultiplierConfig& c = point.config;
    append_hex64(out, (static_cast<uint64_t>(static_cast<uint16_t>(c.width)) << 48) |
                          (static_cast<uint64_t>(static_cast<uint16_t>(c.depth)) << 32) |
                          (static_cast<uint64_t>(static_cast<int>(c.variant)) << 16) |
                          static_cast<uint64_t>(static_cast<int>(c.scheme)));
    const ErrorMetrics& e = point.error;
    append_hex64(out, std::bit_cast<uint64_t>(e.mred));
    append_hex64(out, std::bit_cast<uint64_t>(e.med));
    append_hex64(out, std::bit_cast<uint64_t>(e.nmed));
    append_hex64(out, std::bit_cast<uint64_t>(e.error_rate));
    append_hex64(out, std::bit_cast<uint64_t>(e.max_red));
    append_hex64(out, e.max_ed);
    append_hex64(out, e.samples);
    append_hex64(out, std::bit_cast<uint64_t>(e.bias));
    append_hex64(out, std::bit_cast<uint64_t>(e.rmse));
    const SynthesisReport& hw = point.hw;
    append_hex64(out, static_cast<uint64_t>(hw.cells));
    append_hex64(out, std::bit_cast<uint64_t>(hw.area_um2));
    append_hex64(out, std::bit_cast<uint64_t>(hw.delay_ps));
    append_hex64(out, static_cast<uint64_t>(static_cast<int64_t>(hw.depth)));
    append_hex64(out, std::bit_cast<uint64_t>(hw.dynamic_energy_fj));
    append_hex64(out, std::bit_cast<uint64_t>(hw.dynamic_power_uw));
    append_hex64(out, std::bit_cast<uint64_t>(hw.leakage_nw));
    append_hex64(out, std::bit_cast<uint64_t>(hw.energy_fj));
    return out;
}

bool parse_design_point_bits(const std::string& blob, DesignPoint& out, std::string* error) {
    if (blob.size() != kBlobLen || blob.compare(0, kPrefixLen, kPrefix) != 0) {
        return fail(error, "point bits: expected \"v1:\" + " +
                               std::to_string(kWords * 16) + " hex digits");
    }
    std::array<uint64_t, kWords> w{};
    for (size_t i = 0; i < kWords; ++i) {
        if (!parse_word(blob, i, w[i])) {
            return fail(error, "point bits: non-hex digit in word " + std::to_string(i));
        }
    }

    DesignPoint point;
    const uint64_t cfg = w[0];
    point.config.width = static_cast<int>((cfg >> 48) & 0xFFFF);
    point.config.depth = static_cast<int>((cfg >> 32) & 0xFFFF);
    const uint64_t variant = (cfg >> 16) & 0xFFFF;
    const uint64_t scheme = cfg & 0xFFFF;
    if (point.config.width < 1 || point.config.width > 64 || point.config.depth < 1 ||
        point.config.depth > 64) {
        return fail(error, "point bits: config width/depth out of range");
    }
    if (variant > static_cast<uint64_t>(MultiplierVariant::kCompensated)) {
        return fail(error, "point bits: unknown variant encoding");
    }
    if (scheme > static_cast<uint64_t>(AccumulationScheme::kRowFastCpa)) {
        return fail(error, "point bits: unknown scheme encoding");
    }
    point.config.variant = static_cast<MultiplierVariant>(variant);
    point.config.scheme = static_cast<AccumulationScheme>(scheme);

    point.error.mred = as_double(w[1]);
    point.error.med = as_double(w[2]);
    point.error.nmed = as_double(w[3]);
    point.error.error_rate = as_double(w[4]);
    point.error.max_red = as_double(w[5]);
    point.error.max_ed = w[6];
    point.error.samples = w[7];
    point.error.bias = as_double(w[8]);
    point.error.rmse = as_double(w[9]);

    point.hw.cells = static_cast<size_t>(w[10]);
    point.hw.area_um2 = as_double(w[11]);
    point.hw.delay_ps = as_double(w[12]);
    point.hw.depth = static_cast<int>(static_cast<int64_t>(w[13]));
    point.hw.dynamic_energy_fj = as_double(w[14]);
    point.hw.dynamic_power_uw = as_double(w[15]);
    point.hw.leakage_nw = as_double(w[16]);
    point.hw.energy_fj = as_double(w[17]);

    out = point;
    return true;
}

}  // namespace sdlc
