// Bit-exact wire encoding of an evaluated DesignPoint.
//
// A sharded sweep streams evaluated points between processes; the merged
// export must be byte-identical to a single-node run, and the standard
// point events render doubles with "%.12g" — readable, but lossy. So a
// shard response carries each point's exact payload out of band: every
// field crosses the wire as fixed-width IEEE-754 / integer bit patterns
// (the same idea as cache_wire.h, which ships SynthesisReports between
// cache daemons this way), and the receiver reconstructs a DesignPoint
// that is indistinguishable from one evaluated locally.
//
// Format: "v1:" followed by 18 concatenated 16-hex-digit groups (one u64
// each, fixed layout, no separators):
//
//   [0]     config: width<<48 | depth<<32 | variant<<16 | scheme
//   [1..5]  error: mred, med, nmed, error_rate, max_red (double bits)
//   [6..7]  error: max_ed, samples
//   [8..9]  error: bias, rmse (double bits)
//   [10]    hw: cells
//   [11..12] hw: area_um2, delay_ps (double bits)
//   [13]    hw: depth
//   [14..17] hw: dynamic_energy_fj, dynamic_power_uw, leakage_nw,
//            energy_fj (double bits)
//
// Parsing is strict: exact length, lowercase hex only, and the config
// fields must name a real variant/scheme — a corrupted blob is rejected,
// never half-decoded.
#ifndef SDLC_DSE_POINT_WIRE_H
#define SDLC_DSE_POINT_WIRE_H

#include <string>

#include "dse/evaluator.h"

namespace sdlc {

/// `point` as the fixed-layout hex blob described in the file comment.
[[nodiscard]] std::string design_point_bits(const DesignPoint& point);

/// Decodes design_point_bits() output. Returns false (with a message in
/// *error when non-null) on anything malformed; `out` is untouched then.
[[nodiscard]] bool parse_design_point_bits(const std::string& blob, DesignPoint& out,
                                           std::string* error = nullptr);

}  // namespace sdlc

#endif  // SDLC_DSE_POINT_WIRE_H
