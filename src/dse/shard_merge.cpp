#include "dse/shard_merge.h"

#include <stdexcept>
#include <utility>

namespace sdlc {

ShardMerger::ShardMerger(size_t lo, size_t hi,
                         std::function<void(size_t, const DesignPoint&)> emit)
    : lo_(lo), hi_(hi), next_emit_(lo), emit_(std::move(emit)) {
    if (lo > hi) throw std::invalid_argument("ShardMerger: lo > hi");
    present_.assign(hi - lo, 0);
    points_.resize(hi - lo);
}

void ShardMerger::add(size_t index, const DesignPoint& point) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index < lo_ || index >= hi_) {
        throw std::out_of_range("ShardMerger: index " + std::to_string(index) +
                                " outside [" + std::to_string(lo_) + ", " +
                                std::to_string(hi_) + ")");
    }
    const size_t slot = index - lo_;
    if (present_[slot] != 0) return;  // duplicate delivery (retried shard)
    present_[slot] = 1;
    points_[slot] = point;
    ++merged_;
    if (emit_) {
        while (next_emit_ < hi_ && present_[next_emit_ - lo_] != 0) {
            emit_(next_emit_, points_[next_emit_ - lo_]);
            ++next_emit_;
        }
    }
}

size_t ShardMerger::merged() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return merged_;
}

size_t ShardMerger::emitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return emit_ ? next_emit_ - lo_ : 0;
}

bool ShardMerger::complete() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return merged_ == hi_ - lo_;
}

std::vector<DesignPoint> ShardMerger::take() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (merged_ != hi_ - lo_) {
        throw std::logic_error("ShardMerger::take before the merge is complete");
    }
    return std::move(points_);
}

}  // namespace sdlc
