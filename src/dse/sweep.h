// Design-space enumeration for the DSE engine.
//
// A SweepSpec describes a grid over the multiplier configuration space:
// operand widths x cluster depths x arithmetic variants x accumulation
// schemes. enumerate() expands it to the concrete MultiplierConfig list in a
// fixed deterministic order (width, then variant, then depth, then scheme),
// which downstream code relies on for thread-count-independent results.
//
// The accurate variant has no depth knob, so it contributes exactly one
// point per (width, scheme); approximate variants contribute one point per
// depth in [max(2, min_depth), max_depth] — depth 1 would merely duplicate
// the accurate design.
#ifndef SDLC_DSE_SWEEP_H
#define SDLC_DSE_SWEEP_H

#include <cstddef>
#include <string>
#include <vector>

#include "api/approx_multiplier.h"

namespace sdlc {

/// Grid specification of a design-space sweep.
struct SweepSpec {
    /// Operand widths to sweep; each must be in [2, 32] (software-model
    /// limit for approximate variants).
    std::vector<int> widths = {8};
    /// Cluster-depth range for approximate variants. min_depth is clamped up
    /// to 2; max_depth == 0 means "up to the width".
    int min_depth = 1;
    int max_depth = 0;
    std::vector<MultiplierVariant> variants = {
        MultiplierVariant::kAccurate, MultiplierVariant::kSdlc,
        MultiplierVariant::kCompensated};
    std::vector<AccumulationScheme> schemes = {
        AccumulationScheme::kRowRipple, AccumulationScheme::kWallace,
        AccumulationScheme::kDadda, AccumulationScheme::kRowFastCpa};

    /// The paper's full exploration range: every width from 4 to 16.
    [[nodiscard]] static SweepSpec full();

    /// Exhaustive sweep of a single width (all depths, variants, schemes).
    [[nodiscard]] static SweepSpec for_width(int width);

    /// Expands the grid. Throws std::invalid_argument if any axis is empty
    /// or out of range.
    [[nodiscard]] std::vector<MultiplierConfig> enumerate() const;

    /// Number of points enumerate() would return (validates the same way).
    [[nodiscard]] size_t count() const;

    /// Short human-readable summary, e.g. "widths 4..16 depths 1..N ...".
    [[nodiscard]] std::string describe() const;
};

}  // namespace sdlc

#endif  // SDLC_DSE_SWEEP_H
