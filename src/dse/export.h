// Result export for DSE sweeps: CSV (one row per point) and JSON (an array
// of point objects). Numeric formatting is fixed ("%.12g") so that two runs
// producing bit-identical doubles also produce byte-identical files — the
// property the determinism tests and the CLI's --threads invariance rely on.
#ifndef SDLC_DSE_EXPORT_H
#define SDLC_DSE_EXPORT_H

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "dse/evaluator.h"

namespace sdlc {

/// CSV header used by write_dse_csv, exposed for tests and consumers.
[[nodiscard]] std::vector<std::string> dse_csv_header();

/// One point as CSV cells, in dse_csv_header() order. `rank` < 0 prints as
/// an empty cell (rank unknown / not computed).
[[nodiscard]] std::vector<std::string> dse_csv_row(const DesignPoint& p, int rank);

/// Writes header + one row per point. `ranks` may be empty (no rank column
/// values) or must match points.size(). Throws std::runtime_error on I/O
/// failure, std::invalid_argument on a size mismatch.
void write_dse_csv(const std::string& path, const std::vector<DesignPoint>& points,
                   const std::vector<int>& ranks = {});

/// One point as a single-line JSON object {"config": ..., "rank": ...,
/// "error": ..., "hw": ...} (rank < 0 emits null). The serve protocol's
/// `point` events embed exactly this string and dse_to_json() emits one per
/// array row, so a streamed point and its exported row are byte-identical.
[[nodiscard]] std::string dse_point_json(const DesignPoint& p, int rank);

/// Renders points as a JSON array string (same rank convention as CSV;
/// rank < 0 is emitted as null).
[[nodiscard]] std::string dse_to_json(const std::vector<DesignPoint>& points,
                                      const std::vector<int>& ranks = {});

/// With sweep stats: renders an object {"summary": {...}, "points": [...]}
/// whose summary carries the point count, the frontier objective set the
/// ranks were computed over, and the hardware-cache hit/miss counters.
/// Wall time is deliberately excluded so two identical sweeps still
/// produce byte-identical files.
[[nodiscard]] std::string dse_to_json(const std::vector<DesignPoint>& points,
                                      const std::vector<int>& ranks, const SweepStats& stats,
                                      const ObjectiveSet& objectives = default_objectives());

/// Streams the summary-wrapped export in syntactic pieces (summary header,
/// one piece per point row, closing brackets), in order, to `emit`.
/// Concatenating every piece yields byte-for-byte the dse_to_json()
/// overload above — that overload is implemented on top of this one — but
/// the caller never needs the whole document in memory at once: peak
/// transient is one row, which is what lets the serve layer chunk a
/// width-12+ export with O(chunk) buffering. Throws std::invalid_argument
/// on a ranks/points size mismatch.
void dse_json_stream(const std::vector<DesignPoint>& points, const std::vector<int>& ranks,
                     const SweepStats& stats, const ObjectiveSet& objectives,
                     const std::function<void(std::string_view)>& emit);

/// Writes dse_to_json() to `path`. Throws std::runtime_error on I/O failure.
void write_dse_json(const std::string& path, const std::vector<DesignPoint>& points,
                    const std::vector<int>& ranks = {});

/// Writes the summary-wrapped form to `path`.
void write_dse_json(const std::string& path, const std::vector<DesignPoint>& points,
                    const std::vector<int>& ranks, const SweepStats& stats,
                    const ObjectiveSet& objectives = default_objectives());

}  // namespace sdlc

#endif  // SDLC_DSE_EXPORT_H
