// Content-keyed synthesis cache for design-space sweeps.
//
// Virtual synthesis (optimize -> STA -> power) is deterministic: the report
// is a pure function of the netlist structure, the cell library and the
// synthesis options. CostCache memoizes that function under the 64-bit
// content key structural_hash(netlist) combined with
// synthesis_fingerprint(library, options), so design points that lower to
// the same hardware — and repeated sweeps over the same space (warm
// service loops, thread-scaling benches, --repeat runs) — pay for synthesis
// once.
//
// Thread safety: lookups and inserts are mutex-protected; the synthesis
// itself runs outside the lock. Two workers racing on the same key may
// both synthesize, but they produce the identical report (determinism
// above), so the second insert is a no-op and results never depend on
// scheduling. The raw hit/miss counters *can* depend on scheduling for the
// same reason; deterministic per-sweep counts are derived by the Evaluator
// in sweep order instead (see SweepStats).
#ifndef SDLC_DSE_COST_CACHE_H
#define SDLC_DSE_COST_CACHE_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "tech/cell_library.h"
#include "tech/synthesis.h"

namespace sdlc {

/// Raw counters of one sweep's traffic against a remote cache tier.
/// Scheduling-dependent (two workers racing on a key may both query the
/// peer), so these are observability only: they appear in tool summaries
/// and service stats, never in exports or deterministic event streams.
struct RemoteCacheCounters {
    bool enabled = false;        ///< a remote tier was configured
    uint64_t hits = 0;           ///< keys served by the primary peer
    uint64_t misses = 0;         ///< primary answered "not cached"
    uint64_t errors = 0;         ///< connect/protocol failures (degraded to local)
    uint64_t timeouts = 0;       ///< peer slower than the budget (degraded to local)
    uint64_t puts = 0;           ///< reports written back to a peer
    uint64_t replica_hits = 0;   ///< keys served by a replica after the primary
                                 ///< missed or failed (replication factor > 1)
    uint64_t read_repairs = 0;   ///< replica hits written back to a peer that
                                 ///< had answered miss
};

/// What the evaluator needs from a synthesis cache: the memo itself plus a
/// snapshot of the locally memoized keys (for scheduling-independent sweep
/// statistics). CostCache is the in-process implementation; RemoteCostCache
/// (remote_cache.h) layers a sharded peer tier in front of one. Every
/// implementation must return reports bit-identical to synthesize(), so
/// swapping caches can never change sweep results.
class SynthesisCache {
public:
    virtual ~SynthesisCache() = default;

    /// Returns the cached report for the request's content key, or runs
    /// synthesize() and memoizes the result.
    [[nodiscard]] virtual SynthesisReport get_or_synthesize(const Netlist& net,
                                                            const CellLibrary& lib,
                                                            const SynthesisOptions& opts) = 0;

    /// Snapshot of the *locally* memoized keys (unordered). The Evaluator
    /// takes one before a sweep to derive scheduling-independent hit/miss
    /// counts.
    [[nodiscard]] virtual std::vector<uint64_t> keys() const = 0;

    /// Remote-tier traffic counters; all-zero/disabled for purely local
    /// caches.
    [[nodiscard]] virtual RemoteCacheCounters remote_counters() const { return {}; }
};

/// Thread-safe memo from content key to SynthesisReport.
class CostCache final : public SynthesisCache {
public:
    CostCache() = default;
    CostCache(const CostCache&) = delete;
    CostCache& operator=(const CostCache&) = delete;

    /// The content key get_or_synthesize() uses for this request.
    [[nodiscard]] static uint64_t content_key(const Netlist& net, const CellLibrary& lib,
                                              const SynthesisOptions& opts) noexcept;

    /// Returns the cached report for the request's content key, or runs
    /// synthesize() and memoizes the result.
    [[nodiscard]] SynthesisReport get_or_synthesize(const Netlist& net, const CellLibrary& lib,
                                                    const SynthesisOptions& opts) override;

    /// Copies the report memoized under `key` into `out`. Counts a raw hit
    /// or miss exactly like get_or_synthesize, so a tiered cache probing
    /// the local store first keeps these counters meaning "local lookups
    /// by result". Returns false when the key is absent — the remote tier
    /// then decides between peer fetch and synthesis.
    [[nodiscard]] bool lookup(uint64_t key, SynthesisReport& out);

    /// Memoizes `report` under `key` (no-op if present; determinism makes
    /// duplicate inserts identical). Used by the remote tier's fill path
    /// and by the cache daemon's put handler.
    void insert(uint64_t key, const SynthesisReport& report);

    /// True when `key` is already memoized (does not count as a hit).
    [[nodiscard]] bool contains(uint64_t key) const;

    /// Raw access counters (see file comment for their determinism caveat).
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Number of distinct memoized designs.
    [[nodiscard]] size_t size() const;

    /// Snapshot of all memoized keys (unordered). The Evaluator takes one
    /// before a sweep to derive scheduling-independent hit/miss counts.
    [[nodiscard]] std::vector<uint64_t> keys() const override;

    /// Drops all entries and zeroes the counters.
    void clear();

private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, SynthesisReport> reports_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_DSE_COST_CACHE_H
