// Content-keyed synthesis cache for design-space sweeps.
//
// Virtual synthesis (optimize -> STA -> power) is deterministic: the report
// is a pure function of the netlist structure, the cell library and the
// synthesis options. CostCache memoizes that function under the 64-bit
// content key structural_hash(netlist) combined with
// synthesis_fingerprint(library, options), so design points that lower to
// the same hardware — and repeated sweeps over the same space (warm
// service loops, thread-scaling benches, --repeat runs) — pay for synthesis
// once.
//
// Thread safety: lookups and inserts are mutex-protected; the synthesis
// itself runs outside the lock. Two workers racing on the same key may
// both synthesize, but they produce the identical report (determinism
// above), so the second insert is a no-op and results never depend on
// scheduling. The raw hit/miss counters *can* depend on scheduling for the
// same reason; deterministic per-sweep counts are derived by the Evaluator
// in sweep order instead (see SweepStats).
#ifndef SDLC_DSE_COST_CACHE_H
#define SDLC_DSE_COST_CACHE_H

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"
#include "tech/cell_library.h"
#include "tech/synthesis.h"

namespace sdlc {

/// Thread-safe memo from content key to SynthesisReport.
class CostCache {
public:
    CostCache() = default;
    CostCache(const CostCache&) = delete;
    CostCache& operator=(const CostCache&) = delete;

    /// The content key get_or_synthesize() uses for this request.
    [[nodiscard]] static uint64_t content_key(const Netlist& net, const CellLibrary& lib,
                                              const SynthesisOptions& opts) noexcept;

    /// Returns the cached report for the request's content key, or runs
    /// synthesize() and memoizes the result.
    [[nodiscard]] SynthesisReport get_or_synthesize(const Netlist& net, const CellLibrary& lib,
                                                    const SynthesisOptions& opts);

    /// True when `key` is already memoized (does not count as a hit).
    [[nodiscard]] bool contains(uint64_t key) const;

    /// Raw access counters (see file comment for their determinism caveat).
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
    };
    [[nodiscard]] Stats stats() const;

    /// Number of distinct memoized designs.
    [[nodiscard]] size_t size() const;

    /// Snapshot of all memoized keys (unordered). The Evaluator takes one
    /// before a sweep to derive scheduling-independent hit/miss counts.
    [[nodiscard]] std::vector<uint64_t> keys() const;

    /// Drops all entries and zeroes the counters.
    void clear();

private:
    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, SynthesisReport> reports_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_DSE_COST_CACHE_H
