// Enumeration-order merge of sharded sweep streams.
//
// A distributed sweep splits SweepSpec::enumerate() into index shards and
// evaluates them on different machines; the per-point streams come back
// concurrently, out of order, and — after a retry — possibly more than
// once. ShardMerger is the funnel that turns that into the exact stream a
// single-node sweep would have produced: points are emitted strictly in
// enumeration order (point i only after every j < i), duplicates are
// dropped on first-write-wins (evaluation is deterministic, so a retried
// shard re-delivers identical points), and a partial delivery followed by
// a retry never re-emits or reorders anything.
//
// The emission discipline mirrors evaluate_sweep's ordered streaming: the
// thread whose add() completes the contiguous ready prefix drains it under
// the internal lock, so the emit callback sees the same serialized,
// in-order call sequence the evaluator's on_point hook guarantees.
#ifndef SDLC_DSE_SHARD_MERGE_H
#define SDLC_DSE_SHARD_MERGE_H

#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "dse/evaluator.h"

namespace sdlc {

/// Merges per-point deliveries for enumeration indices [lo, hi) back into
/// order (see file comment). Thread-safe.
class ShardMerger {
public:
    /// `emit` (optional) is called once per index, in order, under the
    /// internal lock; indices passed to it are global enumeration indices.
    ShardMerger(size_t lo, size_t hi,
                std::function<void(size_t index, const DesignPoint& point)> emit = nullptr);

    /// Records the point for a global enumeration index. Duplicate indices
    /// are ignored (first write wins). Throws std::out_of_range for an
    /// index outside [lo, hi).
    void add(size_t index, const DesignPoint& point);

    /// Distinct indices received so far.
    [[nodiscard]] size_t merged() const;

    /// Indices emitted so far (the contiguous prefix length).
    [[nodiscard]] size_t emitted() const;

    /// True once every index in [lo, hi) has been received (and emitted).
    [[nodiscard]] bool complete() const;

    /// Moves the merged points out, in enumeration order. Call only once
    /// complete(); throws std::logic_error otherwise.
    [[nodiscard]] std::vector<DesignPoint> take();

private:
    mutable std::mutex mutex_;
    const size_t lo_;
    const size_t hi_;
    size_t next_emit_;  ///< next global index awaiting emission
    size_t merged_ = 0;
    std::vector<uint8_t> present_;
    std::vector<DesignPoint> points_;
    std::function<void(size_t, const DesignPoint&)> emit_;
};

}  // namespace sdlc

#endif  // SDLC_DSE_SHARD_MERGE_H
