#include "dse/evaluator.h"

#include <chrono>
#include <mutex>
#include <optional>
#include <unordered_set>

#include <algorithm>
#include <cstring>

#include "api/approx_multiplier.h"
#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "dse/thread_pool.h"
#include "error/calibrate.h"
#include "error/evaluate.h"
#include "error/evaluate_sliced.h"
#include "util/rng.h"

namespace sdlc {

namespace {

/// Folds the configuration into the base seed so every point gets its own
/// reproducible random stream, independent of evaluation order.
uint64_t point_seed(uint64_t base, const MultiplierConfig& c) {
    SplitMix64 sm(base);
    uint64_t s = sm.next() ^ (static_cast<uint64_t>(c.width) << 40);
    s ^= static_cast<uint64_t>(c.depth) << 24;
    s ^= static_cast<uint64_t>(static_cast<int>(c.variant)) << 16;
    s ^= static_cast<uint64_t>(static_cast<int>(c.scheme));
    return SplitMix64(s).next();
}

uint64_t draw_operand(Xoshiro256& rng, uint64_t mask, OperandDistribution dist) {
    switch (dist) {
        case OperandDistribution::kUniform:
            return rng.next() & mask;
        case OperandDistribution::kGaussian: {
            uint64_t sum = 0;
            for (int i = 0; i < 4; ++i) sum += rng.next() & mask;
            return sum >> 2;
        }
        case OperandDistribution::kSparse:
            return rng.next() & rng.next() & mask;
    }
    return rng.next() & mask;
}

template <typename Fn>
ErrorMetrics sampled_distribution_metrics(int width, uint64_t samples, uint64_t seed,
                                          OperandDistribution dist, Fn approx) {
    ErrorAccumulator acc(width);
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = draw_operand(rng, mask, dist);
        const uint64_t b = draw_operand(rng, mask, dist);
        acc.add(a * b, approx(a, b));
    }
    return acc.finalize();
}

}  // namespace

const char* error_engine_name(ErrorEngine e) noexcept {
    switch (e) {
        case ErrorEngine::kExhaustiveSliced: return "sliced";
        case ErrorEngine::kExhaustiveScalar: return "scalar";
        case ErrorEngine::kSampled: return "sampled";
    }
    return "?";
}

ErrorEngine select_error_engine(const MultiplierConfig& config,
                                const EvalOptions& opts) noexcept {
    const auto cutoff = [&](int per_path) {
        return per_path > 0 ? per_path : opts.exhaustive_max_width;
    };
    const char* path = multiply_kernel_name(config);
    int scalar_cut = cutoff(opts.exhaustive_width_planned);
    if (std::strcmp(path, "accurate") == 0) {
        scalar_cut = cutoff(opts.exhaustive_width_accurate);
    } else if (std::strcmp(path, "sdlc-fast2") == 0) {
        scalar_cut = cutoff(opts.exhaustive_width_fast2);
    }
    if (opts.use_sliced && SlicedMultiplyKernel::eligible(config) &&
        config.width <= std::max(cutoff(opts.exhaustive_width_sliced), scalar_cut)) {
        return ErrorEngine::kExhaustiveSliced;
    }
    if (config.width <= scalar_cut) return ErrorEngine::kExhaustiveScalar;
    return ErrorEngine::kSampled;
}

std::string describe_exhaustive_cutoffs(const EvalOptions& opts) {
    if (opts.exhaustive_width_accurate == 0 && opts.exhaustive_width_fast2 == 0 &&
        opts.exhaustive_width_planned == 0 && opts.exhaustive_width_sliced == 0) {
        return "fixed(" + std::to_string(opts.exhaustive_max_width) + ")";
    }
    const auto cutoff = [&](int per_path) {
        return per_path > 0 ? per_path : opts.exhaustive_max_width;
    };
    return "auto(accurate=" + std::to_string(cutoff(opts.exhaustive_width_accurate)) +
           ",fast2=" + std::to_string(cutoff(opts.exhaustive_width_fast2)) +
           ",planned=" + std::to_string(cutoff(opts.exhaustive_width_planned)) +
           ",sliced=" + std::to_string(cutoff(opts.exhaustive_width_sliced)) + ")";
}

void apply_auto_exhaustive(EvalOptions& opts, const SweepSpec& spec, double budget_ms) {
    if (opts.exhaustive_width_accurate != 0 || opts.exhaustive_width_fast2 != 0 ||
        opts.exhaustive_width_planned != 0 || opts.exhaustive_width_sliced != 0) {
        return;  // pinned: the submitter already resolved or fixed the cutoffs
    }
    int max_width = 0;
    for (const int w : spec.widths) max_width = std::max(max_width, w);
    if (max_width <= opts.exhaustive_max_width) return;  // promotion can't matter
    const ExhaustiveCutoffs cut =
        resolve_exhaustive_cutoffs(engine_calibration(), opts.exhaustive_max_width, budget_ms);
    opts.exhaustive_width_accurate = cut.accurate;
    opts.exhaustive_width_fast2 = cut.fast2;
    opts.exhaustive_width_planned = cut.planned;
    opts.exhaustive_width_sliced = cut.sliced;
}

ErrorEngineTally tally_error_engines(const std::vector<MultiplierConfig>& configs,
                                     const EvalOptions& opts) noexcept {
    ErrorEngineTally t;
    for (const MultiplierConfig& c : configs) {
        switch (select_error_engine(c, opts)) {
            case ErrorEngine::kExhaustiveSliced: ++t.sliced; break;
            case ErrorEngine::kExhaustiveScalar: ++t.scalar; break;
            case ErrorEngine::kSampled: ++t.sampled; break;
        }
    }
    return t;
}

const char* operand_distribution_name(OperandDistribution d) noexcept {
    switch (d) {
        case OperandDistribution::kUniform: return "uniform";
        case OperandDistribution::kGaussian: return "gaussian";
        case OperandDistribution::kSparse: return "sparse";
    }
    return "?";
}

std::string DesignPoint::describe() const {
    return ApproxMultiplier(config).describe();
}

namespace {

/// Shared implementation: evaluates one point, optionally reporting the
/// hardware content key (0 when no hardware was evaluated) so the sweep
/// can derive deterministic cache statistics. `shard_pool` (may be null)
/// spreads the exhaustive shard grid over existing workers — evaluate_sweep
/// passes its pool only for single-point sweeps, where the point runs
/// inline on the caller and the pool would otherwise sit idle.
DesignPoint evaluate_point_impl(const MultiplierConfig& config, const EvalOptions& opts,
                                uint64_t* hw_key, ThreadPool* shard_pool) {
    DesignPoint point;
    point.config = config;
    switch (select_error_engine(config, opts)) {
        case ErrorEngine::kExhaustiveSliced: {
            // 64 products per bitwise op; bit-identical to the scalar
            // engine below (enforced by exhaustive tests).
            const SlicedMultiplyKernel kernel(config);
            point.error = exhaustive_metrics_sliced(kernel, /*max_threads=*/0, shard_pool);
            break;
        }
        case ErrorEngine::kExhaustiveScalar: {
            // The kernel replaces the ApproxMultiplier software model on
            // the error path: bit-identical results, but the inner loop is
            // a bit-trick or a precomputed strength-reduced plan instead of
            // the ClusterPlan interpreter. The shard grid is fixed, so the
            // result is identical for every shard_pool size.
            const MultiplyKernel kernel(config);
            point.error = exhaustive_metrics(
                config.width, [&kernel](uint64_t a, uint64_t b) { return kernel(a, b); },
                /*max_threads=*/0, shard_pool);
            break;
        }
        case ErrorEngine::kSampled: {
            const MultiplyKernel kernel(config);
            point.error = sampled_distribution_metrics(
                config.width, opts.samples, point_seed(opts.seed, config), opts.distribution,
                [&kernel](uint64_t a, uint64_t b) { return kernel(a, b); });
            break;
        }
    }
    if (hw_key != nullptr) *hw_key = 0;
    if (opts.evaluate_hardware) {
        const Netlist net = ApproxMultiplier(config).build_netlist().net;
        if (opts.hw_cache != nullptr) {
            point.hw = opts.hw_cache->get_or_synthesize(net, opts.library, opts.synthesis);
            if (hw_key != nullptr) {
                *hw_key = CostCache::content_key(net, opts.library, opts.synthesis);
            }
        } else {
            const obs::TraceBinding& tb = obs::current_binding();
            obs::ScopedSpan span(tb.recorder, tb.ctx, "synthesize");
            point.hw = synthesize(net, opts.library, opts.synthesis);
        }
    }
    return point;
}

}  // namespace

DesignPoint evaluate_point(const MultiplierConfig& config, const EvalOptions& opts) {
    if (!opts.use_hw_cache && opts.hw_cache != nullptr) {
        // use_hw_cache=false wins over a provided cache, matching
        // evaluate_sweep (the documented --no-hw-cache escape hatch).
        EvalOptions uncached = opts;
        uncached.hw_cache = nullptr;
        return evaluate_point_impl(config, uncached, nullptr, nullptr);
    }
    return evaluate_point_impl(config, opts, nullptr, nullptr);
}

std::vector<DesignPoint> evaluate_sweep(const SweepSpec& spec, const EvalOptions& opts,
                                        SweepStats* stats) {
    const auto t0 = std::chrono::steady_clock::now();
    obs::ScopedSpan enumerate_span(opts.recorder, opts.trace, "enumerate");
    std::vector<MultiplierConfig> configs = spec.enumerate();
    enumerate_span.stop();
    // Shard restriction: keep only [shard_lo, shard_hi), remembering the
    // offset so on_point still reports global enumeration indices.
    size_t base = 0;
    if (opts.shard_lo != 0 || opts.shard_hi != 0) {
        if (opts.shard_lo >= opts.shard_hi || opts.shard_hi > configs.size()) {
            throw std::invalid_argument(
                "sweep shard range [" + std::to_string(opts.shard_lo) + ", " +
                std::to_string(opts.shard_hi) + ") is invalid for " +
                std::to_string(configs.size()) + " points");
        }
        configs = std::vector<MultiplierConfig>(configs.begin() + opts.shard_lo,
                                                configs.begin() + opts.shard_hi);
        base = opts.shard_lo;
    }
    std::vector<DesignPoint> points(configs.size());

    // Resolve the cache: caller-provided, sweep-local, or none.
    CostCache local_cache;
    EvalOptions point_opts = opts;
    if (point_opts.hw_cache == nullptr && point_opts.use_hw_cache) {
        point_opts.hw_cache = &local_cache;
    }
    if (!point_opts.use_hw_cache) point_opts.hw_cache = nullptr;

    // Keys memoized before this sweep started (for shared warm caches).
    std::unordered_set<uint64_t> warm_keys;
    if (point_opts.hw_cache != nullptr) {
        for (const uint64_t k : point_opts.hw_cache->keys()) warm_keys.insert(k);
    }

    // Run on the caller's pool when provided (service loops reuse one pool
    // across requests); otherwise spin up a sweep-local one.
    std::optional<ThreadPool> local_pool;
    ThreadPool* pool = opts.pool;
    if (pool == nullptr) {
        local_pool.emplace(opts.threads);
        pool = &*local_pool;
    }
    // A one-point sweep runs inline on the caller (parallel_for's n == 1
    // fast path), leaving the pool idle — hand it to the exhaustive engine
    // so the shard grid parallelizes instead. With more points the pool is
    // busy with points; an inner parallel_for from a pool worker would
    // deadlock, so the engine then runs its shards inline.
    ThreadPool* shard_pool = configs.size() == 1 ? pool : nullptr;

    // Ordered streaming: a worker finishing point i marks it ready, then
    // drains the contiguous ready prefix. Exactly one worker holds the
    // emission lock at a time, so on_point sees points strictly in
    // enumeration order regardless of completion order.
    std::mutex emit_mutex;
    size_t next_emit = 0;
    std::vector<uint8_t> ready(configs.size(), 0);

    // Remote-tier counters are reported as this sweep's delta: snapshot the
    // raw counters here and subtract after the run.
    const RemoteCacheCounters remote_before =
        point_opts.hw_cache != nullptr ? point_opts.hw_cache->remote_counters()
                                       : RemoteCacheCounters{};

    const bool has_deadline = opts.deadline != std::chrono::steady_clock::time_point{};
    std::vector<uint64_t> hw_keys(configs.size(), 0);
    parallel_for(*pool, configs.size(), [&](size_t i) {
        if (opts.cancel != nullptr && opts.cancel->load(std::memory_order_relaxed)) {
            throw SweepCancelled();
        }
        if (has_deadline && std::chrono::steady_clock::now() >= opts.deadline) {
            throw SweepDeadlineExceeded();
        }
        obs::ScopedSpan eval_span(opts.recorder, opts.trace, "kernel_eval");
        obs::ScopedBinding binding(opts.recorder, eval_span.context());
        points[i] = evaluate_point_impl(configs[i], point_opts, &hw_keys[i], shard_pool);
        if (opts.on_point) {
            std::lock_guard<std::mutex> lock(emit_mutex);
            ready[i] = 1;
            while (next_emit < ready.size() && ready[next_emit] != 0) {
                opts.on_point(base + next_emit, points[next_emit]);
                ++next_emit;
            }
        }
    });

    if (stats != nullptr) {
        *stats = SweepStats{};
        stats->points = points.size();
        stats->hw_cache_enabled = point_opts.hw_cache != nullptr;
        stats->engines = tally_error_engines(configs, point_opts);
        stats->cutoff_desc = describe_exhaustive_cutoffs(point_opts);
        // Replay the keys in enumeration order: the first sight of a key not
        // already warm is the miss, every later sight a hit. This is what a
        // sequential run would count, independent of scheduling.
        std::unordered_set<uint64_t> seen;
        for (const uint64_t key : hw_keys) {
            if (key == 0) continue;
            if (warm_keys.count(key) != 0 || !seen.insert(key).second) {
                ++stats->hw_cache_hits;
            } else {
                ++stats->hw_cache_misses;
            }
        }
        if (point_opts.hw_cache != nullptr) {
            const RemoteCacheCounters after = point_opts.hw_cache->remote_counters();
            stats->remote.enabled = after.enabled;
            stats->remote.hits = after.hits - remote_before.hits;
            stats->remote.misses = after.misses - remote_before.misses;
            stats->remote.errors = after.errors - remote_before.errors;
            stats->remote.timeouts = after.timeouts - remote_before.timeouts;
            stats->remote.puts = after.puts - remote_before.puts;
        }
        stats->wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    }
    return points;
}

std::vector<ObjectiveVector> objective_matrix(const std::vector<DesignPoint>& points,
                                              const ObjectiveSet& set) {
    std::vector<ObjectiveVector> m;
    m.reserve(points.size());
    for (const DesignPoint& p : points) m.push_back(p.objectives(set));
    return m;
}

}  // namespace sdlc
