#include "dse/evaluator.h"

#include "api/approx_multiplier.h"
#include "dse/thread_pool.h"
#include "error/evaluate.h"
#include "util/rng.h"

namespace sdlc {

namespace {

/// Folds the configuration into the base seed so every point gets its own
/// reproducible random stream, independent of evaluation order.
uint64_t point_seed(uint64_t base, const MultiplierConfig& c) {
    SplitMix64 sm(base);
    uint64_t s = sm.next() ^ (static_cast<uint64_t>(c.width) << 40);
    s ^= static_cast<uint64_t>(c.depth) << 24;
    s ^= static_cast<uint64_t>(static_cast<int>(c.variant)) << 16;
    s ^= static_cast<uint64_t>(static_cast<int>(c.scheme));
    return SplitMix64(s).next();
}

uint64_t draw_operand(Xoshiro256& rng, uint64_t mask, OperandDistribution dist) {
    switch (dist) {
        case OperandDistribution::kUniform:
            return rng.next() & mask;
        case OperandDistribution::kGaussian: {
            uint64_t sum = 0;
            for (int i = 0; i < 4; ++i) sum += rng.next() & mask;
            return sum >> 2;
        }
        case OperandDistribution::kSparse:
            return rng.next() & rng.next() & mask;
    }
    return rng.next() & mask;
}

template <typename Fn>
ErrorMetrics sampled_distribution_metrics(int width, uint64_t samples, uint64_t seed,
                                          OperandDistribution dist, Fn approx) {
    ErrorAccumulator acc(width);
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = draw_operand(rng, mask, dist);
        const uint64_t b = draw_operand(rng, mask, dist);
        acc.add(a * b, approx(a, b));
    }
    return acc.finalize();
}

}  // namespace

const char* operand_distribution_name(OperandDistribution d) noexcept {
    switch (d) {
        case OperandDistribution::kUniform: return "uniform";
        case OperandDistribution::kGaussian: return "gaussian";
        case OperandDistribution::kSparse: return "sparse";
    }
    return "?";
}

std::string DesignPoint::describe() const {
    return ApproxMultiplier(config).describe();
}

DesignPoint evaluate_point(const MultiplierConfig& config, const EvalOptions& opts) {
    const ApproxMultiplier mul(config);
    auto f = [&mul](uint64_t a, uint64_t b) { return mul.multiply(a, b); };

    DesignPoint point;
    point.config = config;
    if (config.width <= opts.exhaustive_max_width) {
        // Single-threaded on purpose: the sweep parallelizes across points,
        // and a fixed shard count keeps the result thread-count independent.
        point.error = exhaustive_metrics(config.width, f, /*max_threads=*/1);
    } else {
        point.error = sampled_distribution_metrics(config.width, opts.samples,
                                                   point_seed(opts.seed, config),
                                                   opts.distribution, f);
    }
    if (opts.evaluate_hardware) {
        point.hw = synthesize(mul.build_netlist().net, opts.library, opts.synthesis);
    }
    return point;
}

std::vector<DesignPoint> evaluate_sweep(const SweepSpec& spec, const EvalOptions& opts) {
    const std::vector<MultiplierConfig> configs = spec.enumerate();
    std::vector<DesignPoint> points(configs.size());
    ThreadPool pool(opts.threads);
    parallel_for(pool, configs.size(),
                 [&](size_t i) { points[i] = evaluate_point(configs[i], opts); });
    return points;
}

std::vector<ObjectiveVector> objective_matrix(const std::vector<DesignPoint>& points) {
    std::vector<ObjectiveVector> m;
    m.reserve(points.size());
    for (const DesignPoint& p : points) m.push_back(p.objectives());
    return m;
}

}  // namespace sdlc
