// Durable backing store for the synthesis-cache daemon.
//
// A cache daemon's value is its warmth, and warmth used to die with the
// process: a kill -9 forfeited the shard until a full re-sweep repopulated
// it. DurableCacheStore gives `cache_tool --data-dir` a crash-safe on-disk
// form: an append-only log of puts plus periodic compacting snapshots, so a
// restarted daemon replays itself back to exactly the entries it held.
//
// On-disk layout (inside the data dir):
//
//   cache.snapshot   last compaction: header frame + one frame per entry
//   cache.log        puts since that compaction: header frame + one per put
//
// Every frame is [u32 LE payload bytes][u32 LE CRC-32 of payload][payload].
// A record payload is `hex64(key) + ' ' + synthesis_report_json(report)` —
// the same bit-pattern hex encoding the wire protocol uses (dse/cache_wire),
// so a recovered report is bit-identical to the one that was put.
//
// Crash safety:
//   - A torn log tail (partial frame, CRC mismatch — the daemon died
//     mid-append) is detected on recovery and truncated away; every record
//     before the tear survives.
//   - Compaction writes snapshot.tmp, fsyncs, then rename()s over the old
//     snapshot before truncating the log. A crash between the rename and
//     the truncate merely replays log records whose values the snapshot
//     already holds — puts are idempotent (synthesis is deterministic).
//
// Thread safety: none. The owner (CacheTierService) already serializes all
// store access under its own mutex.
#ifndef SDLC_DSE_CACHE_STORE_H
#define SDLC_DSE_CACHE_STORE_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "tech/synthesis.h"

namespace sdlc {

struct DurableStoreOptions {
    /// Directory holding cache.snapshot + cache.log (created if absent).
    std::string dir;
    /// Compact (fold the log into a fresh snapshot) once the log exceeds
    /// this many bytes. 0 disables auto-compaction.
    size_t compact_log_bytes = size_t{4} << 20;
    /// fsync() the log after every append. Survives OS crashes, not just
    /// process kills; costs one disk flush per put.
    bool fsync_puts = false;
};

/// What recovery found when the store was opened.
struct CacheRecoveryStats {
    size_t snapshot_entries = 0;  ///< records loaded from cache.snapshot
    size_t log_records = 0;       ///< records replayed from cache.log
    uint64_t truncated_bytes = 0; ///< torn/corrupt tail bytes dropped
};

class DurableCacheStore {
public:
    DurableCacheStore() = default;
    ~DurableCacheStore();
    DurableCacheStore(const DurableCacheStore&) = delete;
    DurableCacheStore& operator=(const DurableCacheStore&) = delete;

    /// Opens (creating if needed) the data dir, recovers snapshot + log,
    /// truncates any torn log tail, and leaves the log open for appends.
    /// Returns false with a message in `error` on unrecoverable I/O
    /// failures (corrupt tails are recovered from, not errors).
    [[nodiscard]] bool open(const DurableStoreOptions& opts, std::string& error);

    /// True between a successful open() and close().
    [[nodiscard]] bool is_open() const noexcept { return log_fd_ >= 0; }

    /// Everything the store currently holds (recovered + appended).
    [[nodiscard]] const std::unordered_map<uint64_t, SynthesisReport>& entries() const noexcept {
        return entries_;
    }

    /// What open() recovered.
    [[nodiscard]] const CacheRecoveryStats& recovery() const noexcept { return recovery_; }

    /// Appends one put record to the log (first write wins — a key already
    /// held is a cheap no-op) and auto-compacts past the threshold.
    /// Returns false with `error` set when the disk write fails; the
    /// in-memory entry is kept either way so serving never regresses.
    bool append(uint64_t key, const SynthesisReport& report, std::string& error);

    /// Folds the log into a fresh snapshot (atomic tmp+rename) and resets
    /// the log to just its header.
    [[nodiscard]] bool compact(std::string& error);

    /// Current byte size of the append log (header included).
    [[nodiscard]] uint64_t log_bytes() const noexcept { return log_bytes_; }

    /// Closes the log fd. Safe to call repeatedly.
    void close() noexcept;

private:
    DurableStoreOptions opts_;
    std::unordered_map<uint64_t, SynthesisReport> entries_;
    CacheRecoveryStats recovery_;
    int log_fd_ = -1;
    uint64_t log_bytes_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_DSE_CACHE_STORE_H
