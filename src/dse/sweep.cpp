#include "dse/sweep.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sdlc {

namespace {

void validate(const SweepSpec& spec) {
    if (spec.widths.empty()) throw std::invalid_argument("SweepSpec: widths is empty");
    if (spec.variants.empty()) throw std::invalid_argument("SweepSpec: variants is empty");
    if (spec.schemes.empty()) throw std::invalid_argument("SweepSpec: schemes is empty");
    for (int w : spec.widths) {
        if (w < 2 || w > 32) {
            throw std::invalid_argument("SweepSpec: width " + std::to_string(w) +
                                        " outside [2,32]");
        }
    }
    if (spec.min_depth < 1) throw std::invalid_argument("SweepSpec: min_depth must be >= 1");
    if (spec.max_depth < 0) throw std::invalid_argument("SweepSpec: max_depth must be >= 0");
    if (spec.max_depth != 0 && spec.max_depth < spec.min_depth) {
        throw std::invalid_argument("SweepSpec: max_depth < min_depth");
    }
}

}  // namespace

SweepSpec SweepSpec::full() {
    SweepSpec spec;
    spec.widths.clear();
    for (int w = 4; w <= 16; ++w) spec.widths.push_back(w);
    return spec;
}

SweepSpec SweepSpec::for_width(int width) {
    SweepSpec spec;
    spec.widths = {width};
    return spec;
}

std::vector<MultiplierConfig> SweepSpec::enumerate() const {
    validate(*this);
    std::vector<MultiplierConfig> out;
    out.reserve(count());
    for (int width : widths) {
        const int lo = std::max(2, min_depth);
        const int hi = std::min(width, max_depth == 0 ? width : max_depth);
        for (MultiplierVariant variant : variants) {
            if (variant == MultiplierVariant::kAccurate) {
                for (AccumulationScheme scheme : schemes) {
                    out.push_back({width, 1, variant, scheme});
                }
                continue;
            }
            for (int depth = lo; depth <= hi; ++depth) {
                for (AccumulationScheme scheme : schemes) {
                    out.push_back({width, depth, variant, scheme});
                }
            }
        }
    }
    return out;
}

size_t SweepSpec::count() const {
    validate(*this);
    size_t total = 0;
    for (int width : widths) {
        const int lo = std::max(2, min_depth);
        const int hi = std::min(width, max_depth == 0 ? width : max_depth);
        const size_t depths = hi >= lo ? static_cast<size_t>(hi - lo + 1) : 0;
        for (MultiplierVariant variant : variants) {
            total += schemes.size() * (variant == MultiplierVariant::kAccurate ? 1 : depths);
        }
    }
    return total;
}

std::string SweepSpec::describe() const {
    if (widths.empty()) return "empty sweep";
    const auto [wmin, wmax] = std::minmax_element(widths.begin(), widths.end());
    std::string s = "widths " + std::to_string(*wmin) + ".." + std::to_string(*wmax);
    s += " depths " + std::to_string(std::max(2, min_depth)) + "..";
    s += max_depth == 0 ? std::string("N") : std::to_string(max_depth);
    s += " variants";
    for (MultiplierVariant v : variants) s += std::string(" ") + multiplier_variant_name(v);
    s += " schemes";
    for (AccumulationScheme a : schemes) s += std::string(" ") + accumulation_scheme_name(a);
    return s;
}

}  // namespace sdlc
