// Pareto-dominance analysis over the (error, area, power, delay) space.
//
// All four objectives are minimized. A point dominates another when it is no
// worse in every objective and strictly better in at least one; the Pareto
// frontier is the set of points dominated by nobody. Dominance *ranking*
// peels frontiers iteratively (NSGA-style non-dominated sorting): rank 0 is
// the frontier, rank 1 the frontier of what remains, and so on — useful for
// "show me the next-best designs once the frontier is excluded".
#ifndef SDLC_DSE_PARETO_H
#define SDLC_DSE_PARETO_H

#include <array>
#include <cstddef>
#include <vector>

namespace sdlc {

/// The objectives the DSE engine minimizes, in ObjectiveVector order.
enum class Objective { kError, kArea, kPower, kDelay };
inline constexpr int kObjectiveCount = 4;

/// Short lowercase name ("error", "area", "power", "delay").
[[nodiscard]] const char* objective_name(Objective o) noexcept;

/// One point's objective values (error = NMED, area um^2, power uW, delay ps).
using ObjectiveVector = std::array<double, kObjectiveCount>;

/// True iff `a` dominates `b`: a <= b componentwise with at least one strict
/// inequality. Identical points do not dominate each other.
[[nodiscard]] bool dominates(const ObjectiveVector& a, const ObjectiveVector& b) noexcept;

/// Outcome of non-dominated sorting.
struct ParetoResult {
    /// Indices of rank-0 (non-dominated) points, in input order.
    std::vector<size_t> frontier;
    /// Dominance rank per input point; 0 means "on the frontier".
    std::vector<int> rank;
};

/// Full non-dominated sort of `points` (O(rounds * n^2); n is the number of
/// configurations in a sweep, at most a few thousand).
[[nodiscard]] ParetoResult pareto_analysis(const std::vector<ObjectiveVector>& points);

/// Just the rank-0 indices, in input order.
[[nodiscard]] std::vector<size_t> pareto_frontier(const std::vector<ObjectiveVector>& points);

}  // namespace sdlc

#endif  // SDLC_DSE_PARETO_H
