// Pareto-dominance analysis over a selectable objective space.
//
// All objectives are minimized. A point dominates another when it is no
// worse in every objective and strictly better in at least one; the Pareto
// frontier is the set of points dominated by nobody. Dominance *ranking*
// peels frontiers iteratively (NSGA-style non-dominated sorting): rank 0 is
// the frontier, rank 1 the frontier of what remains, and so on — useful for
// "show me the next-best designs once the frontier is excluded".
//
// The frontier axes are configurable: the default set is the paper's
// (error, area, power, delay); energy/op and max-RED are optional extra
// axes (`dse_tool --objectives`, the serve protocol's "objectives" field).
// ObjectiveVector is therefore dynamically sized — every vector in one
// analysis must come from the same ObjectiveSet.
#ifndef SDLC_DSE_PARETO_H
#define SDLC_DSE_PARETO_H

#include <cstddef>
#include <string>
#include <vector>

namespace sdlc {

/// Everything a frontier can minimize. The first four are the default axes;
/// kEnergy (energy/op, fJ) and kMaxRed (worst-case relative error) are
/// opt-in.
enum class Objective { kError, kArea, kPower, kDelay, kEnergy, kMaxRed };

/// Number of selectable objectives overall.
inline constexpr int kAllObjectiveCount = 6;

/// Short lowercase name ("error", "area", "power", "delay", "energy",
/// "maxred").
[[nodiscard]] const char* objective_name(Objective o) noexcept;

/// Parses an objective name into `out`. Returns false (leaving `out`
/// untouched) for unknown names.
[[nodiscard]] bool parse_objective(const std::string& name, Objective& out) noexcept;

/// Ordered selection of frontier axes.
using ObjectiveSet = std::vector<Objective>;

/// The paper's default axes: {error, area, power, delay}.
[[nodiscard]] ObjectiveSet default_objectives();

/// Comma-joined names, e.g. "error,area,power,delay".
[[nodiscard]] std::string objective_set_name(const ObjectiveSet& set);

/// The set as a JSON array, e.g. ["error", "area"]. Shared by the DSE
/// export summary and the serve protocol's summary event so the two
/// renderings can never drift apart (their byte-level parity is
/// CI-enforced).
[[nodiscard]] std::string objective_set_json(const ObjectiveSet& set);

/// Parses a list of objective names into `out`. Rejects unknown names,
/// duplicates and the empty list; on failure returns false and, when
/// `error` is non-null, explains why.
[[nodiscard]] bool parse_objective_set(const std::vector<std::string>& names,
                                       ObjectiveSet& out, std::string* error = nullptr);

/// One point's objective values, in the order of the ObjectiveSet that
/// produced it (default set: error = NMED, area um^2, power uW, delay ps).
using ObjectiveVector = std::vector<double>;

/// True iff `a` dominates `b`: a <= b componentwise with at least one strict
/// inequality. Identical points do not dominate each other. Both vectors
/// must have the same length.
[[nodiscard]] bool dominates(const ObjectiveVector& a, const ObjectiveVector& b) noexcept;

/// Outcome of non-dominated sorting.
struct ParetoResult {
    /// Indices of rank-0 (non-dominated) points, in input order.
    std::vector<size_t> frontier;
    /// Dominance rank per input point; 0 means "on the frontier".
    std::vector<int> rank;
};

/// Full non-dominated sort of `points` (O(rounds * n^2); n is the number of
/// configurations in a sweep, at most a few thousand).
[[nodiscard]] ParetoResult pareto_analysis(const std::vector<ObjectiveVector>& points);

/// Just the rank-0 indices, in input order.
[[nodiscard]] std::vector<size_t> pareto_frontier(const std::vector<ObjectiveVector>& points);

}  // namespace sdlc

#endif  // SDLC_DSE_PARETO_H
