#include "dse/cache_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <vector>

#include "dse/cache_wire.h"
#include "util/crc32.h"
#include "util/json_parse.h"

namespace sdlc {

namespace {

constexpr const char* kSnapshotName = "cache.snapshot";
constexpr const char* kLogName = "cache.log";
// Header frames version the on-disk format; a future v2 can migrate or
// refuse cleanly instead of misparsing.
constexpr const char* kSnapshotHeader = "sdlc-cache-snapshot v1";
constexpr const char* kLogHeader = "sdlc-cache-log v1";

constexpr size_t kFrameHeadBytes = 8;  // u32 length + u32 crc
// A record is one key + one report (a few hundred bytes). Anything bigger
// claims the length field itself is corrupt.
constexpr uint32_t kMaxPayloadBytes = uint32_t{1} << 20;

void put_u32_le(std::string& out, uint32_t v) {
    out.push_back(static_cast<char>(v & 0xFF));
    out.push_back(static_cast<char>((v >> 8) & 0xFF));
    out.push_back(static_cast<char>((v >> 16) & 0xFF));
    out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t get_u32_le(const std::string& data, size_t off) {
    return static_cast<uint32_t>(static_cast<unsigned char>(data[off])) |
           static_cast<uint32_t>(static_cast<unsigned char>(data[off + 1])) << 8 |
           static_cast<uint32_t>(static_cast<unsigned char>(data[off + 2])) << 16 |
           static_cast<uint32_t>(static_cast<unsigned char>(data[off + 3])) << 24;
}

std::string frame(const std::string& payload) {
    std::string out;
    out.reserve(kFrameHeadBytes + payload.size());
    put_u32_le(out, static_cast<uint32_t>(payload.size()));
    put_u32_le(out, crc32(payload));
    out += payload;
    return out;
}

bool write_all_fd(int fd, const char* data, size_t size) {
    while (size > 0) {
        const ssize_t n = ::write(fd, data, size);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data += static_cast<size_t>(n);
        size -= static_cast<size_t>(n);
    }
    return true;
}

/// Reads a whole file. Missing file -> success with existed=false.
bool read_file(const std::string& path, std::string& out, bool& existed, std::string& error) {
    out.clear();
    existed = false;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        if (errno == ENOENT) return true;
        error = path + ": " + std::strerror(errno);
        return false;
    }
    existed = true;
    char buf[1 << 16];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR) continue;
            error = path + ": " + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0) break;
        out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return true;
}

std::string encode_record(uint64_t key, const SynthesisReport& report) {
    return hex64(key) + ' ' + synthesis_report_json(report);
}

bool decode_record(const std::string& payload, uint64_t& key, SynthesisReport& report) {
    const size_t space = payload.find(' ');
    if (space == std::string::npos) return false;
    if (!parse_hex64(payload.substr(0, space), key)) return false;
    JsonValue root;
    if (!json_parse(payload.substr(space + 1), root, nullptr)) return false;
    return synthesis_report_from_json(root, report);
}

/// Walks `data` frame by frame: the first frame must carry `header`, every
/// later one a record handed to `apply`. Returns the offset just past the
/// last well-formed frame — everything from there on is a torn or corrupt
/// tail. `apply` returning false also ends the scan (payload with a valid
/// CRC that doesn't decode: framing can no longer be trusted).
template <typename Apply>
size_t scan_frames(const std::string& data, const char* header, Apply&& apply) {
    size_t off = 0;
    bool saw_header = false;
    while (data.size() - off >= kFrameHeadBytes) {
        const uint32_t len = get_u32_le(data, off);
        const uint32_t crc = get_u32_le(data, off + 4);
        if (len > kMaxPayloadBytes) break;
        if (data.size() - off - kFrameHeadBytes < len) break;  // torn payload
        const std::string payload = data.substr(off + kFrameHeadBytes, len);
        if (crc32(payload) != crc) break;
        if (!saw_header) {
            if (payload != header) break;
            saw_header = true;
        } else if (!apply(payload)) {
            break;
        }
        off += kFrameHeadBytes + len;
    }
    return off;
}

}  // namespace

DurableCacheStore::~DurableCacheStore() { close(); }

void DurableCacheStore::close() noexcept {
    if (log_fd_ >= 0) {
        ::close(log_fd_);
        log_fd_ = -1;
    }
}

bool DurableCacheStore::open(const DurableStoreOptions& opts, std::string& error) {
    close();
    opts_ = opts;
    entries_.clear();
    recovery_ = CacheRecoveryStats{};

    std::error_code ec;
    std::filesystem::create_directories(opts_.dir, ec);
    if (ec) {
        error = opts_.dir + ": " + ec.message();
        return false;
    }
    const std::string snapshot_path = opts_.dir + "/" + kSnapshotName;
    const std::string log_path = opts_.dir + "/" + kLogName;

    // Snapshot first, then the log on top: the log holds everything put
    // since the snapshot was cut, so log records win (values are identical
    // for a shared key anyway — synthesis is deterministic).
    std::string data;
    bool existed = false;
    if (!read_file(snapshot_path, data, existed, error)) return false;
    if (existed) {
        const size_t good = scan_frames(data, kSnapshotHeader, [&](const std::string& payload) {
            uint64_t key = 0;
            SynthesisReport report;
            if (!decode_record(payload, key, report)) return false;
            entries_.emplace(key, report);
            ++recovery_.snapshot_entries;
            return true;
        });
        recovery_.truncated_bytes += data.size() - good;
    }

    if (!read_file(log_path, data, existed, error)) return false;
    size_t log_good = 0;
    if (existed) {
        log_good = scan_frames(data, kLogHeader, [&](const std::string& payload) {
            uint64_t key = 0;
            SynthesisReport report;
            if (!decode_record(payload, key, report)) return false;
            entries_.emplace(key, report);
            ++recovery_.log_records;
            return true;
        });
        recovery_.truncated_bytes += data.size() - log_good;
    }

    log_fd_ = ::open(log_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (log_fd_ < 0) {
        error = log_path + ": " + std::strerror(errno);
        return false;
    }
    if (existed && log_good < data.size()) {
        // Torn tail: drop the partial frame so the next append starts on a
        // clean frame boundary.
        if (::ftruncate(log_fd_, static_cast<off_t>(log_good)) != 0) {
            error = log_path + ": ftruncate: " + std::strerror(errno);
            close();
            return false;
        }
    }
    if (::lseek(log_fd_, 0, SEEK_END) < 0) {
        error = log_path + ": lseek: " + std::strerror(errno);
        close();
        return false;
    }
    log_bytes_ = log_good;
    if (log_good == 0) {
        // New (or headerless-garbage) log: start it with the version frame.
        const std::string head = frame(kLogHeader);
        if (!write_all_fd(log_fd_, head.data(), head.size())) {
            error = log_path + ": " + std::strerror(errno);
            close();
            return false;
        }
        log_bytes_ = head.size();
    }
    return true;
}

bool DurableCacheStore::append(uint64_t key, const SynthesisReport& report, std::string& error) {
    if (!entries_.emplace(key, report).second) return true;  // first write wins
    if (log_fd_ < 0) {
        error = "durable store is not open";
        return false;
    }
    const std::string record = frame(encode_record(key, report));
    if (!write_all_fd(log_fd_, record.data(), record.size())) {
        error = std::string("cache.log append: ") + std::strerror(errno);
        return false;
    }
    log_bytes_ += record.size();
    if (opts_.fsync_puts) ::fsync(log_fd_);
    if (opts_.compact_log_bytes > 0 && log_bytes_ > opts_.compact_log_bytes) {
        return compact(error);
    }
    return true;
}

bool DurableCacheStore::compact(std::string& error) {
    if (log_fd_ < 0) {
        error = "durable store is not open";
        return false;
    }
    const std::string snapshot_path = opts_.dir + "/" + kSnapshotName;
    const std::string tmp_path = snapshot_path + ".tmp";

    // Deterministic snapshot bytes: entries in key order, so two daemons
    // holding the same entries compact to identical files.
    std::vector<const std::pair<const uint64_t, SynthesisReport>*> sorted;
    sorted.reserve(entries_.size());
    for (const auto& entry : entries_) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });

    std::string blob = frame(kSnapshotHeader);
    for (const auto* entry : sorted) {
        blob += frame(encode_record(entry->first, entry->second));
    }

    const int tmp_fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (tmp_fd < 0) {
        error = tmp_path + ": " + std::strerror(errno);
        return false;
    }
    if (!write_all_fd(tmp_fd, blob.data(), blob.size()) || ::fsync(tmp_fd) != 0) {
        error = tmp_path + ": " + std::strerror(errno);
        ::close(tmp_fd);
        ::unlink(tmp_path.c_str());
        return false;
    }
    ::close(tmp_fd);
    if (::rename(tmp_path.c_str(), snapshot_path.c_str()) != 0) {
        error = snapshot_path + ": rename: " + std::strerror(errno);
        ::unlink(tmp_path.c_str());
        return false;
    }
    // Crash window here is safe: the old log replays over the new snapshot
    // idempotently. Only after the rename is the log disposable.
    if (::ftruncate(log_fd_, 0) != 0 || ::lseek(log_fd_, 0, SEEK_SET) < 0) {
        error = std::string("cache.log reset: ") + std::strerror(errno);
        return false;
    }
    const std::string head = frame(kLogHeader);
    if (!write_all_fd(log_fd_, head.data(), head.size())) {
        error = std::string("cache.log header: ") + std::strerror(errno);
        return false;
    }
    log_bytes_ = head.size();
    // Persist the rename itself (the directory entry), so an OS crash
    // cannot resurrect the old snapshot under a truncated log.
    const int dir_fd = ::open(opts_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
    return true;
}

}  // namespace sdlc
