// Parallel evaluation of design points: software error + hardware cost.
//
// For each MultiplierConfig the evaluator computes error metrics with the
// bit-exact software model (exhaustive up to a width threshold, seeded
// Monte-Carlo above it) and hardware cost by generating the netlist and
// running the virtual-synthesis flow (optimize -> STA -> power). Points are
// distributed over a ThreadPool; every per-point computation is seeded from
// the configuration itself, so results are bit-identical regardless of the
// thread count or scheduling order.
//
// Error evaluation dispatches through core/kernels.h (stateless bit-trick
// kernels where available, the strength-reduced planned path otherwise),
// and hardware cost is memoized in a content-keyed CostCache shared across
// the sweep; both produce results bit-identical to the direct
// ApproxMultiplier / synthesize() path, so turning them off changes speed
// only (see EvalOptions::use_hw_cache).
#ifndef SDLC_DSE_EVALUATOR_H
#define SDLC_DSE_EVALUATOR_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dse/cost_cache.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "error/metrics.h"
#include "obs/trace.h"
#include "tech/cell_library.h"
#include "tech/synthesis.h"

namespace sdlc {

class ThreadPool;
struct DesignPoint;

/// Operand distribution for Monte-Carlo error sampling. Exhaustive
/// evaluation always covers the full uniform operand space.
enum class OperandDistribution {
    kUniform,   ///< i.i.d. uniform over [0, 2^N)
    kGaussian,  ///< mean of four uniforms (central-limit bell around mid-range)
    kSparse,    ///< AND of two uniforms: few set bits, models sparse data
};

/// Short lowercase name ("uniform", "gaussian", "sparse").
[[nodiscard]] const char* operand_distribution_name(OperandDistribution d) noexcept;

/// Evaluation knobs.
struct EvalOptions {
    unsigned threads = 0;           ///< worker threads; 0 = hardware concurrency
    int exhaustive_max_width = 10;  ///< exhaustive error sweep at or below this width
    uint64_t samples = uint64_t{1} << 18;  ///< Monte-Carlo samples above it
    /// Evaluate exhaustive sweeps with the bit-sliced engine whenever the
    /// configuration is planned-path eligible (non-accurate, depth >= 2,
    /// width <= 16). Bit-identical to the scalar engine — this knob changes
    /// speed only (the `--no-sliced` escape hatch).
    bool use_sliced = true;
    /// Per-kernel-path exhaustive cutoff widths, 0 = use
    /// exhaustive_max_width. Set by the auto time-budget resolution
    /// (error/calibrate.h) at the tool/service edge; resolved integers —
    /// never the machine-dependent calibration — travel on the serve wire
    /// so replicas agree. Auto resolution only promotes above the fixed
    /// cutoff, never demotes below it.
    int exhaustive_width_accurate = 0;
    int exhaustive_width_fast2 = 0;
    int exhaustive_width_planned = 0;
    int exhaustive_width_sliced = 0;
    uint64_t seed = 0x5d1c5eed;     ///< base seed; per-point seeds derive from it
    OperandDistribution distribution = OperandDistribution::kUniform;
    bool evaluate_hardware = true;  ///< synthesize netlists for cost metrics
    SynthesisOptions synthesis;     ///< virtual-synthesis knobs
    CellLibrary library = CellLibrary::generic_90nm();
    /// Memoize synthesis by netlist content key for the duration of a sweep.
    /// Results are identical either way; off means every point re-runs the
    /// full flow (the `dse_tool --no-hw-cache` escape hatch).
    bool use_hw_cache = true;
    /// Optional externally owned cache to share across sweeps (service
    /// loops, repeated runs): a plain CostCache or a RemoteCostCache tier.
    /// When null and use_hw_cache is set, evaluate_sweep creates a
    /// sweep-local cache. Every SynthesisCache returns reports
    /// bit-identical to synthesize(), so this knob changes speed only.
    SynthesisCache* hw_cache = nullptr;
    /// Optional externally owned worker pool. When null, evaluate_sweep
    /// spins up a sweep-local pool of `threads` workers; a long-lived
    /// service passes its own pool so every request reuses one set of
    /// threads (`threads` is then ignored).
    ThreadPool* pool = nullptr;
    /// Streaming hook: called once per design point, in enumeration order
    /// (point i is reported only once every point j < i has been reported),
    /// from whichever worker thread completes the emission frontier. Calls
    /// are serialized under an internal lock. An exception thrown by the
    /// hook aborts the sweep and propagates out of evaluate_sweep.
    std::function<void(size_t index, const DesignPoint& point)> on_point;
    /// Cooperative cancellation: when non-null and set, workers stop
    /// claiming points and evaluate_sweep throws SweepCancelled.
    const std::atomic<bool>* cancel = nullptr;
    /// Cooperative wall-clock budget: when set (non-epoch), workers stop
    /// claiming points once the deadline passes and evaluate_sweep throws
    /// SweepDeadlineExceeded. Checked at the same granularity as `cancel`
    /// — between design points, never inside one — so a single very
    /// expensive point can overshoot the budget by its own cost. Points
    /// already reported through on_point stay reported: the partial stream
    /// is always a strict prefix of the full enumeration-order stream.
    std::chrono::steady_clock::time_point deadline{};
    /// Optional enumeration-index restriction: evaluate only the points at
    /// indices [shard_lo, shard_hi) of SweepSpec::enumerate() order — the
    /// unit a distributed sweep hands one worker. Both zero (the default)
    /// means the whole space. Indices reported through on_point stay
    /// *global* enumeration indices and the returned vector holds exactly
    /// the shard's points, so sharding changes which points are evaluated,
    /// never what any point's value or index is. A range with
    /// shard_lo >= shard_hi or shard_hi > count() throws
    /// std::invalid_argument.
    size_t shard_lo = 0;
    size_t shard_hi = 0;
    /// Optional tracing (see obs/trace.h): with a non-null recorder and a
    /// valid trace context, evaluate_sweep records `enumerate` and
    /// per-point `kernel_eval` spans under `trace`, and binds the context
    /// on each eval worker so the synthesis cache records its
    /// lookup/synthesize spans for the right request. Untraced sweeps pay
    /// one branch per point; results are bit-identical either way.
    obs::SpanRecorder* recorder = nullptr;
    obs::TraceContext trace;
};

/// Thrown by evaluate_sweep when EvalOptions::cancel fires mid-sweep.
struct SweepCancelled : std::runtime_error {
    SweepCancelled() : std::runtime_error("sweep cancelled") {}
};

/// Thrown by evaluate_sweep when EvalOptions::deadline passes mid-sweep.
struct SweepDeadlineExceeded : std::runtime_error {
    SweepDeadlineExceeded() : std::runtime_error("sweep deadline exceeded") {}
};

/// Which error engine evaluate_point runs for one configuration.
enum class ErrorEngine {
    kExhaustiveSliced,  ///< bit-sliced exhaustive (core/kernels_sliced.h)
    kExhaustiveScalar,  ///< scalar-kernel exhaustive (error/evaluate.h)
    kSampled,           ///< seeded Monte-Carlo (width above every cutoff)
};

/// "sliced", "scalar", or "sampled".
[[nodiscard]] const char* error_engine_name(ErrorEngine e) noexcept;

/// Pure engine choice for one configuration: the bit-sliced engine when
/// enabled, eligible, and the width fits the sliced (or scalar-path)
/// cutoff; otherwise scalar exhaustive under the config's own kernel-path
/// cutoff; otherwise sampling. Deterministic given (config, opts) — the
/// coordinator replays it to reproduce replica engine tallies.
[[nodiscard]] ErrorEngine select_error_engine(const MultiplierConfig& config,
                                              const EvalOptions& opts) noexcept;

/// Human-readable cutoff summary for logs and the export summary:
/// "fixed(10)" when no per-path widths are set, otherwise
/// "auto(accurate=14,fast2=13,planned=12,sliced=14)".
[[nodiscard]] std::string describe_exhaustive_cutoffs(const EvalOptions& opts);

/// Auto cutoff resolution (the time-budget heuristic): when the sweep
/// reaches widths above the fixed exhaustive_max_width cutoff, fill the
/// per-path cutoff widths from the process's measured engine calibration
/// (error/calibrate.h) so each path runs exhaustive up to the largest
/// width whose full sweep fits `budget_ms`. No-op — and no calibration
/// cost — when every swept width already sits at or below the fixed
/// cutoff, or when per-path widths are already set (a pinned request).
/// Resolution never demotes below the fixed cutoff. Call once at the
/// tool/service edge; the resolved integers, not the machine-dependent
/// calibration, then travel with the options.
void apply_auto_exhaustive(EvalOptions& opts, const SweepSpec& spec, double budget_ms);

/// Per-engine point counts for a config list — a pure replay of
/// select_error_engine, so every replica and the coordinator derive the
/// same tallies from the same wire-level options.
struct ErrorEngineTally {
    size_t sliced = 0;
    size_t scalar = 0;
    size_t sampled = 0;
};
[[nodiscard]] ErrorEngineTally tally_error_engines(const std::vector<MultiplierConfig>& configs,
                                                   const EvalOptions& opts) noexcept;

/// Per-sweep bookkeeping reported by evaluate_sweep. The cache counts are
/// derived in enumeration order against a pre-sweep snapshot, so they are
/// identical for every thread count (unlike CostCache's raw counters,
/// which can split a racing miss two ways).
struct SweepStats {
    size_t points = 0;              ///< evaluated design points
    double wall_seconds = 0.0;      ///< end-to-end sweep wall time
    bool hw_cache_enabled = false;  ///< cache active for this sweep
    uint64_t hw_cache_hits = 0;     ///< points served from the cache
    uint64_t hw_cache_misses = 0;   ///< points that ran the synthesis flow
    /// Remote-tier traffic during this sweep (delta of the cache's raw
    /// counters). Unlike the fields above these are scheduling-dependent,
    /// so they feed tool summaries and service stats only — never the JSON
    /// export or the deterministic sweep event stream.
    RemoteCacheCounters remote;
    /// Which error engine evaluated how many points, and the cutoff policy
    /// that decided it. Pure replay of select_error_engine over the sweep's
    /// configs (deterministic; safe for the JSON export summary).
    ErrorEngineTally engines;
    std::string cutoff_desc;
};

/// One fully evaluated configuration.
struct DesignPoint {
    MultiplierConfig config;
    ErrorMetrics error;
    SynthesisReport hw;

    /// The value of one objective axis.
    [[nodiscard]] double objective(Objective o) const noexcept {
        switch (o) {
            case Objective::kError: return error.nmed;
            case Objective::kArea: return hw.area_um2;
            case Objective::kPower: return hw.dynamic_power_uw;
            case Objective::kDelay: return hw.delay_ps;
            case Objective::kEnergy: return hw.energy_fj;
            case Objective::kMaxRed: return error.max_red;
        }
        return 0.0;
    }

    /// Objective values for `set`, in set order (default: NMED, area, power,
    /// delay).
    [[nodiscard]] ObjectiveVector objectives(const ObjectiveSet& set = default_objectives()) const {
        ObjectiveVector v;
        v.reserve(set.size());
        for (const Objective o : set) v.push_back(objective(o));
        return v;
    }

    /// e.g. "sdlc 8x8 d2 / row-ripple".
    [[nodiscard]] std::string describe() const;
};

/// Evaluates one configuration (single-threaded; deterministic for a given
/// EvalOptions regardless of the caller's threading).
[[nodiscard]] DesignPoint evaluate_point(const MultiplierConfig& config,
                                         const EvalOptions& opts = {});

/// Evaluates every point of the sweep in parallel. The result order matches
/// SweepSpec::enumerate() and the values are bit-identical for any
/// opts.threads (and for the hardware cache on or off). When `stats` is
/// non-null it receives the sweep's wall time and cache counters.
[[nodiscard]] std::vector<DesignPoint> evaluate_sweep(const SweepSpec& spec,
                                                      const EvalOptions& opts = {},
                                                      SweepStats* stats = nullptr);

/// Objective vectors of `points`, in order (input to pareto_analysis()).
/// Every row uses the same objective `set`, so ranks computed from the
/// matrix are ranks over exactly those axes.
[[nodiscard]] std::vector<ObjectiveVector> objective_matrix(
    const std::vector<DesignPoint>& points, const ObjectiveSet& set = default_objectives());

}  // namespace sdlc

#endif  // SDLC_DSE_EVALUATOR_H
