#include "baselines/accurate.h"

#include <stdexcept>

namespace sdlc {

void fill_partial_products(Netlist& nl, const std::vector<NetId>& a_bits,
                           const std::vector<NetId>& b_bits, BitMatrix& matrix) {
    const int n = static_cast<int>(a_bits.size());
    if (b_bits.size() != a_bits.size()) {
        throw std::invalid_argument("fill_partial_products: operand width mismatch");
    }
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            matrix.add(r + c, nl.and_gate(a_bits[c], b_bits[r]));
        }
    }
}

MultiplierNetlist build_accurate_multiplier(int width, AccumulationScheme scheme) {
    MultiplierNetlist m;
    m.width = width;
    m.label = "accurate N=" + std::to_string(width) + " / " + accumulation_scheme_name(scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;

    BitMatrix matrix(2 * width);
    fill_partial_products(m.net, m.a_bits, m.b_bits, matrix);
    finish_multiplier(m, accumulate(m.net, matrix, scheme, 2 * width));
    return m;
}

}  // namespace sdlc
