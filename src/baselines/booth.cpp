#include "baselines/booth.h"

#include <stdexcept>

#include "util/bitops.h"

namespace sdlc {

namespace {

void check_width(int width) {
    if (width < 4 || width > 32 || width % 2 != 0) {
        throw std::invalid_argument("booth: width must be even and in [4,32]");
    }
}

}  // namespace

int booth_digit(uint64_t b, int width, int i) {
    check_width(width);
    if (i < 0 || i >= width / 2) throw std::invalid_argument("booth_digit: bad index");
    const int hi = static_cast<int>(bit(b, static_cast<unsigned>(2 * i + 1)));
    const int mid = static_cast<int>(bit(b, static_cast<unsigned>(2 * i)));
    const int lo = 2 * i - 1 >= 0 ? static_cast<int>(bit(b, static_cast<unsigned>(2 * i - 1))) : 0;
    return -2 * hi + mid + lo;
}

MultiplierNetlist build_booth_multiplier(int width, AccumulationScheme scheme) {
    check_width(width);
    const int n = width;

    MultiplierNetlist m;
    m.width = n;
    m.label = "booth-r4 N=" + std::to_string(n) + " / " + accumulation_scheme_name(scheme);

    const OperandPorts ports = make_operand_ports(m.net, n);
    m.a_bits = ports.a;
    m.b_bits = ports.b;
    Netlist& nl = m.net;

    const NetId zero = nl.constant(false);
    const NetId sign_a = m.a_bits.back();

    BitMatrix matrix(2 * n);
    for (int i = 0; i < n / 2; ++i) {
        // Recode digit i from bits (b[2i+1], b[2i], b[2i-1]).
        const NetId b_hi = m.b_bits[static_cast<size_t>(2 * i + 1)];
        const NetId b_mid = m.b_bits[static_cast<size_t>(2 * i)];
        const NetId b_lo = 2 * i - 1 >= 0 ? m.b_bits[static_cast<size_t>(2 * i - 1)] : zero;

        const NetId one = nl.xor_gate(b_mid, b_lo);                       // |digit| == 1
        const NetId two = nl.and_gate(nl.xnor_gate(b_mid, b_lo),
                                      nl.xor_gate(b_hi, b_mid));          // |digit| == 2
        // digit < 0 (the (1,1,1) pattern encodes 0, so mask it out).
        const NetId neg = nl.and_gate(b_hi, nl.not_gate(nl.and_gate(b_mid, b_lo)));

        // Raw magnitude row: bits j = 0..n of one*A + two*(A << 1),
        // evaluated in two's complement of A (bit n uses A's sign).
        std::vector<NetId> raw(static_cast<size_t>(n) + 1);
        for (int j = 0; j <= n; ++j) {
            const NetId a_j = j < n ? m.a_bits[static_cast<size_t>(j)] : sign_a;
            const NetId a_jm1 = j >= 1 ? m.a_bits[static_cast<size_t>(j - 1)] : zero;
            raw[static_cast<size_t>(j)] =
                nl.or_gate(nl.and_gate(one, a_j), nl.and_gate(two, a_jm1));
        }

        // Conditional negation: XOR with neg, +neg correction at the row
        // offset; sign-extend the (possibly inverted) top bit to 2n.
        for (int j = 0; j <= n; ++j) {
            const int w = 2 * i + j;
            if (w >= 2 * n) break;
            matrix.add(w, nl.xor_gate(raw[static_cast<size_t>(j)], neg));
        }
        const NetId ext = nl.xor_gate(raw[static_cast<size_t>(n)], neg);
        for (int w = 2 * i + n + 1; w < 2 * n; ++w) matrix.add(w, ext);
        if (2 * i < 2 * n) matrix.add(2 * i, neg);  // +1 completes -x = ~x + 1
    }

    finish_multiplier(m, accumulate(m.net, matrix, scheme, 2 * n));
    return m;
}

}  // namespace sdlc
