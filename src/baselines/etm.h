// Error-Tolerant Multiplier (ETM) baseline (paper ref [20], Kyaw/Goh/Yeo).
//
// Operands are split into high and low halves. When both high halves are
// zero the low halves are multiplied exactly. Otherwise the high halves go
// through an exact (N/2 x N/2) multiplication shifted to the product's top
// half, and the product's low half is filled by the "non-multiplication"
// section: scanning low-half bit positions from MSB to LSB, the product bit
// is OR(a_i, b_i) until the first position where a_i AND b_i; from there
// down every bit is set to 1.
//
// Exhaustive 8-bit metrics land at MRED 25.1 %, NMED 2.84 %, ER 99.2 %
// versus the DATE'17 paper's quoted 25.2 / 2.8 / 98.8 (see EXPERIMENTS.md
// for the residual-delta discussion).
#ifndef SDLC_BASELINES_ETM_H
#define SDLC_BASELINES_ETM_H

#include <cstdint>

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"

namespace sdlc {

/// Builds the ETM netlist; `width` must be even and in [2,64].
[[nodiscard]] MultiplierNetlist build_etm_multiplier(
    int width, AccumulationScheme scheme = AccumulationScheme::kRowRipple);

/// Functional model (width even, <= 32).
[[nodiscard]] uint64_t etm_multiply(int width, uint64_t a, uint64_t b);

}  // namespace sdlc

#endif  // SDLC_BASELINES_ETM_H
