// Accurate reference multiplier generator.
//
// The conventional design of the paper's Figure 1(a): N^2 AND partial
// products accumulated exactly. The accumulation scheme is selectable so the
// accurate baseline always matches the approximate design under test.
#ifndef SDLC_BASELINES_ACCURATE_H
#define SDLC_BASELINES_ACCURATE_H

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"

namespace sdlc {

/// Builds an exact N x N multiplier.
[[nodiscard]] MultiplierNetlist build_accurate_multiplier(
    int width, AccumulationScheme scheme = AccumulationScheme::kRowRipple);

/// Fills `matrix` with the full N x N AND array for the given operands.
void fill_partial_products(Netlist& nl, const std::vector<NetId>& a_bits,
                           const std::vector<NetId>& b_bits, BitMatrix& matrix);

}  // namespace sdlc

#endif  // SDLC_BASELINES_ACCURATE_H
