// Radix-4 (modified) Booth accurate multiplier.
//
// An additional exact baseline beyond the paper: Booth recoding halves the
// number of partial-product rows (N/2 signed digits in {-2,-1,0,1,2}) at
// the cost of recoding logic and negative-row handling. Including it lets
// the benches ask whether SDLC's row-halving advantage survives against a
// baseline that *also* halves the rows — by different means.
//
// Operands and product are two's complement. Sign extension is implemented
// plainly (each row extended to the full 2N bits); the classic
// sign-extension-prevention trick is deliberately omitted for clarity, and
// the structural optimizer removes none of it (the bits are live), so the
// cost reported for Booth here is an upper bound.
#ifndef SDLC_BASELINES_BOOTH_H
#define SDLC_BASELINES_BOOTH_H

#include <cstdint>

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"

namespace sdlc {

/// Builds a signed N x N radix-4 Booth multiplier; `width` must be even
/// and in [4, 32]. Product is 2N bits, two's complement.
[[nodiscard]] MultiplierNetlist build_booth_multiplier(
    int width, AccumulationScheme scheme = AccumulationScheme::kRowRipple);

/// Radix-4 Booth digit of `b` (two's complement, `width` bits) at digit
/// index `i` (0 <= i < width/2); returns a value in {-2,-1,0,1,2}.
/// Exposed for tests.
[[nodiscard]] int booth_digit(uint64_t b, int width, int i);

}  // namespace sdlc

#endif  // SDLC_BASELINES_BOOTH_H
