// Kulkarni under-designed multiplier baseline (paper ref [8]).
//
// A 2x2 building block computes a*b exactly except for 3*3, which returns
// 7 (0111) instead of 9 (1001) — this drops the top output bit and replaces
// the middle XOR/carry logic with a single OR. Larger multipliers compose
// four half-width sub-multipliers recursively with exact addition:
//   P = PH_H<<N + (PH_L + PL_H)<<N/2 + PL_L.
// Our exhaustive 8-bit metrics match the DATE'17 paper's Table IV quote
// (MRED 3.25 %, NMED 1.39 %, ER 46.73 %) to all printed digits.
#ifndef SDLC_BASELINES_KULKARNI_H
#define SDLC_BASELINES_KULKARNI_H

#include <cstdint>

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"

namespace sdlc {

/// Builds the Kulkarni multiplier; `width` must be a power of two >= 2.
[[nodiscard]] MultiplierNetlist build_kulkarni_multiplier(
    int width, AccumulationScheme scheme = AccumulationScheme::kRowRipple);

/// Functional model (width a power of two, <= 32).
[[nodiscard]] uint64_t kulkarni_multiply(int width, uint64_t a, uint64_t b);

}  // namespace sdlc

#endif  // SDLC_BASELINES_KULKARNI_H
