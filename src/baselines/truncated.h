// Truncated multiplier baseline (paper Table I, refs [6][7]).
//
// Eliminates all partial products in the `cut` least-significant weight
// columns; the remaining matrix is accumulated exactly. Simple, effective,
// but the error grows directly with the number of removed columns.
#ifndef SDLC_BASELINES_TRUNCATED_H
#define SDLC_BASELINES_TRUNCATED_H

#include <cstdint>

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"

namespace sdlc {

/// Builds an N x N multiplier that drops PP bits of weight < 2^cut.
[[nodiscard]] MultiplierNetlist build_truncated_multiplier(
    int width, int cut, AccumulationScheme scheme = AccumulationScheme::kRowRipple);

/// Functional model (width <= 32): exact product minus the dropped PP bits.
[[nodiscard]] uint64_t truncated_multiply(int width, int cut, uint64_t a, uint64_t b);

}  // namespace sdlc

#endif  // SDLC_BASELINES_TRUNCATED_H
