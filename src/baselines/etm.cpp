#include "baselines/etm.h"

#include <stdexcept>

#include "baselines/accurate.h"
#include "util/bitops.h"

namespace sdlc {

namespace {

void check_width(int width) {
    if (width < 2 || width > 64 || width % 2 != 0) {
        throw std::invalid_argument("etm: width must be even and in [2,64]");
    }
}

/// Exact h x h sub-multiplier returning 2h bits.
std::vector<NetId> exact_submul(Netlist& nl, AccumulationScheme scheme,
                                const std::vector<NetId>& a, const std::vector<NetId>& b) {
    const int h = static_cast<int>(a.size());
    BitMatrix matrix(2 * h);
    fill_partial_products(nl, a, b, matrix);
    return accumulate(nl, matrix, scheme, 2 * h);
}

}  // namespace

MultiplierNetlist build_etm_multiplier(int width, AccumulationScheme scheme) {
    check_width(width);
    const int h = width / 2;

    MultiplierNetlist m;
    m.width = width;
    m.label = "etm N=" + std::to_string(width) + " / " + accumulation_scheme_name(scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;
    Netlist& nl = m.net;

    const std::vector<NetId> al(m.a_bits.begin(), m.a_bits.begin() + h);
    const std::vector<NetId> ah(m.a_bits.begin() + h, m.a_bits.end());
    const std::vector<NetId> bl(m.b_bits.begin(), m.b_bits.begin() + h);
    const std::vector<NetId> bh(m.b_bits.begin() + h, m.b_bits.end());

    // Control: low_mode = (ah == 0) AND (bh == 0).
    std::vector<NetId> high_bits = ah;
    high_bits.insert(high_bits.end(), bh.begin(), bh.end());
    const NetId any_high = nl.or_tree(high_bits);
    const NetId low_mode = nl.not_gate(any_high);

    // Exact paths: low-halves product (low mode) and high-halves product.
    const std::vector<NetId> low_prod = exact_submul(nl, scheme, al, bl);    // 2h = width bits
    const std::vector<NetId> high_prod = exact_submul(nl, scheme, ah, bh);   // top half

    // Non-multiplication section over the low halves (approx mode):
    // prefix_i = OR_{j >= i} (al_j AND bl_j); out_i = al_i | bl_i | prefix_i.
    std::vector<NetId> nm(static_cast<size_t>(h));
    NetId prefix = kNoNet;
    for (int i = h - 1; i >= 0; --i) {
        const NetId both = nl.and_gate(al[i], bl[i]);
        prefix = prefix == kNoNet ? both : nl.or_gate(prefix, both);
        nm[static_cast<size_t>(i)] = nl.or_gate(nl.or_gate(al[i], bl[i]), prefix);
    }

    // Product mux: low mode selects the exact low product (top half zero);
    // approx mode selects {high_prod << width, nm in [h-1:0], zeros in [width-1:h]}.
    std::vector<NetId> product(static_cast<size_t>(2 * width), kNoNet);
    for (int i = 0; i < 2 * width; ++i) {
        NetId exact_bit = kNoNet;   // low-mode value
        NetId approx_bit = kNoNet;  // approx-mode value
        if (i < width) exact_bit = low_prod[static_cast<size_t>(i)];
        if (i < h) approx_bit = nm[static_cast<size_t>(i)];
        else if (i >= width) approx_bit = high_prod[static_cast<size_t>(i - width)];

        if (exact_bit == kNoNet && approx_bit == kNoNet) {
            product[static_cast<size_t>(i)] = nl.constant(false);
        } else if (exact_bit == kNoNet) {
            product[static_cast<size_t>(i)] = nl.and_gate(approx_bit, any_high);
        } else if (approx_bit == kNoNet) {
            product[static_cast<size_t>(i)] = nl.and_gate(exact_bit, low_mode);
        } else {
            product[static_cast<size_t>(i)] = nl.or_gate(nl.and_gate(exact_bit, low_mode),
                                                         nl.and_gate(approx_bit, any_high));
        }
    }
    finish_multiplier(m, std::move(product));
    return m;
}

uint64_t etm_multiply(int width, uint64_t a, uint64_t b) {
    check_width(width);
    const int h = width / 2;
    const uint64_t mask = mask_low(static_cast<unsigned>(h));
    const uint64_t al = a & mask, ah = a >> h;
    const uint64_t bl = b & mask, bh = b >> h;
    if (ah == 0 && bh == 0) return al * bl;

    uint64_t lo = 0;
    for (int i = h - 1; i >= 0; --i) {
        if (bit(al, static_cast<unsigned>(i)) & bit(bl, static_cast<unsigned>(i))) {
            lo |= (uint64_t{2} << i) - 1;  // this bit and everything below -> 1
            break;
        }
        lo |= (bit(al, static_cast<unsigned>(i)) | bit(bl, static_cast<unsigned>(i)))
              << i;
    }
    return ((ah * bh) << width) + lo;
}

}  // namespace sdlc
