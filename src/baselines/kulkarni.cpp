#include "baselines/kulkarni.h"

#include <stdexcept>

#include "util/bitops.h"

namespace sdlc {

namespace {

void check_width(int width) {
    if (width < 2 || width > 64 || !is_pow2(static_cast<uint64_t>(width))) {
        throw std::invalid_argument("kulkarni: width must be a power of two in [2,64]");
    }
}

/// Recursive netlist builder; returns 2n product bits for n-bit slices.
std::vector<NetId> build_rec(Netlist& nl, AccumulationScheme scheme,
                             const std::vector<NetId>& a, const std::vector<NetId>& b) {
    const int n = static_cast<int>(a.size());
    if (n == 2) {
        // Under-designed 2x2 block: p3 dropped, p2 = a1b1, p1 = a1b0 | a0b1.
        std::vector<NetId> p(4);
        p[0] = nl.and_gate(a[0], b[0]);
        p[1] = nl.or_gate(nl.and_gate(a[1], b[0]), nl.and_gate(a[0], b[1]));
        p[2] = nl.and_gate(a[1], b[1]);
        p[3] = nl.constant(false);
        return p;
    }
    const int h = n / 2;
    const std::vector<NetId> al(a.begin(), a.begin() + h), ah(a.begin() + h, a.end());
    const std::vector<NetId> bl(b.begin(), b.begin() + h), bh(b.begin() + h, b.end());

    const std::vector<NetId> ll = build_rec(nl, scheme, al, bl);
    const std::vector<NetId> lh = build_rec(nl, scheme, al, bh);
    const std::vector<NetId> hl = build_rec(nl, scheme, ah, bl);
    const std::vector<NetId> hh = build_rec(nl, scheme, ah, bh);

    // Exact combination: sum the four sub-products at their offsets.
    BitMatrix matrix(2 * n);
    auto place = [&](const std::vector<NetId>& bits, int offset) {
        for (size_t i = 0; i < bits.size(); ++i) {
            // Skip structural zeros (the dropped p3 of 2x2 blocks).
            const Gate& g = nl.gate(bits[i]);
            if (g.kind == GateKind::kConst0) continue;
            matrix.add(offset + static_cast<int>(i), bits[i]);
        }
    };
    place(ll, 0);
    place(lh, h);
    place(hl, h);
    place(hh, n);
    return accumulate(nl, matrix, scheme, 2 * n);
}

}  // namespace

MultiplierNetlist build_kulkarni_multiplier(int width, AccumulationScheme scheme) {
    check_width(width);
    MultiplierNetlist m;
    m.width = width;
    m.label = "kulkarni N=" + std::to_string(width) + " / " + accumulation_scheme_name(scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;
    finish_multiplier(m, build_rec(m.net, scheme, m.a_bits, m.b_bits));
    return m;
}

uint64_t kulkarni_multiply(int width, uint64_t a, uint64_t b) {
    check_width(width);
    if (width == 2) return (a == 3 && b == 3) ? 7 : a * b;
    const int h = width / 2;
    const uint64_t mask = mask_low(static_cast<unsigned>(h));
    const uint64_t al = a & mask, ah = a >> h;
    const uint64_t bl = b & mask, bh = b >> h;
    return (kulkarni_multiply(h, ah, bh) << width) +
           ((kulkarni_multiply(h, ah, bl) + kulkarni_multiply(h, al, bh)) << h) +
           kulkarni_multiply(h, al, bl);
}

}  // namespace sdlc
