#include "baselines/truncated.h"

#include <stdexcept>

#include "util/bitops.h"

namespace sdlc {

MultiplierNetlist build_truncated_multiplier(int width, int cut, AccumulationScheme scheme) {
    if (cut < 0 || cut >= 2 * width) {
        throw std::invalid_argument("build_truncated_multiplier: cut out of range");
    }
    MultiplierNetlist m;
    m.width = width;
    m.label = "truncated N=" + std::to_string(width) + " cut=" + std::to_string(cut) + " / " +
              accumulation_scheme_name(scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;

    BitMatrix matrix(2 * width);
    for (int r = 0; r < width; ++r) {
        for (int c = 0; c < width; ++c) {
            if (r + c < cut) continue;  // truncated column: no AND gate at all
            matrix.add(r + c, m.net.and_gate(m.a_bits[c], m.b_bits[r]));
        }
    }
    finish_multiplier(m, accumulate(m.net, matrix, scheme, 2 * width));
    return m;
}

uint64_t truncated_multiply(int width, int cut, uint64_t a, uint64_t b) {
    uint64_t p = 0;
    for (int r = 0; r < width; ++r) {
        if (!bit(b, static_cast<unsigned>(r))) continue;
        for (int c = 0; c < width; ++c) {
            if (r + c < cut) continue;
            if (bit(a, static_cast<unsigned>(c))) p += uint64_t{1} << (r + c);
        }
    }
    return p;
}

}  // namespace sdlc
