// Exhaustive error evaluation on the bit-sliced kernel.
//
// Same shard grid, same (a, b) visit order, same per-shard accumulators and
// merge order as the scalar exhaustive_metrics() — only the inner loop
// changes: each stripe evaluates 64 consecutive b values per block through
// SlicedMultiplyKernel's prepared fast path instead of one scalar kernel
// call per pair. Because ErrorAccumulator sees identical (exact, approx)
// pairs in an identical order, the returned ErrorMetrics is bit-identical
// to the scalar engine for every eligible configuration (enforced by
// tests/kernels_sliced_test.cpp).
#ifndef SDLC_ERROR_EVALUATE_SLICED_H
#define SDLC_ERROR_EVALUATE_SLICED_H

#include "core/kernels_sliced.h"
#include "error/metrics.h"

namespace sdlc {

class ThreadPool;

/// Exhaustive metrics over every operand pair of the kernel's width.
/// Threading contract matches exhaustive_metrics(): inline by default,
/// shards over `pool` when provided, dedicated threads only for an
/// explicit max_threads > 1.
[[nodiscard]] ErrorMetrics exhaustive_metrics_sliced(const SlicedMultiplyKernel& kernel,
                                                     unsigned max_threads = 0,
                                                     ThreadPool* pool = nullptr);

}  // namespace sdlc

#endif  // SDLC_ERROR_EVALUATE_SLICED_H
