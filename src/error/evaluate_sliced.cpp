#include "error/evaluate_sliced.h"

#include "error/evaluate.h"

namespace sdlc {

ErrorMetrics exhaustive_metrics_sliced(const SlicedMultiplyKernel& kernel,
                                       unsigned max_threads, ThreadPool* pool) {
    const int width = kernel.config().width;
    const uint64_t side = uint64_t{1} << width;
    const unsigned shards =
        static_cast<unsigned>(std::min<uint64_t>(kExhaustiveShards, side));
    const unsigned lanes = kernel.natural_lanes();
    std::vector<ErrorAccumulator> accs(shards, ErrorAccumulator(width));
    detail::run_sharded(shards, max_threads, pool, [&](unsigned s) {
        ErrorAccumulator& acc = accs[s];
        SlicedMultiplyKernel::Prepared prep;
        uint64_t out[64];
        for (uint64_t a = s; a < side; a += shards) {
            kernel.prepare(a, prep);
            // side is a power of two >= lanes, so every block is aligned
            // and full; b still ascends 0..side-1 exactly as the scalar
            // engine visits it.
            for (uint64_t b0 = 0; b0 < side; b0 += lanes) {
                kernel.multiply_block_prepared(prep, b0, out);
                uint64_t exact = a * b0;
                for (unsigned l = 0; l < lanes; ++l, exact += a) {
                    acc.add(exact, out[l]);
                }
            }
        }
    });
    for (unsigned s = 1; s < shards; ++s) accs[0].merge(accs[s]);
    return accs[0].finalize();
}

}  // namespace sdlc
