// Relative-error distribution histogram (paper Figure 5).
//
// Bins are 1-percentage-point wide: bin k counts outputs whose RED falls in
// [k %, (k+1) %). Exact outputs land in bin 0, matching the paper's reading
// that "the vast majority of outputs are either exact or close to exact".
#ifndef SDLC_ERROR_HISTOGRAM_H
#define SDLC_ERROR_HISTOGRAM_H

#include <cstdint>
#include <vector>

namespace sdlc {

/// Histogram of RED percentages with fixed 1 % bins plus an overflow bin.
class RedHistogram {
public:
    /// `bins` 1 %-wide bins (the paper's Figure 5 uses 34); REDs at or above
    /// `bins` % fall into the overflow bin.
    explicit RedHistogram(int bins = 34);

    /// Adds one (exact, approximate) pair. RED at P == 0 follows the library
    /// convention (0 if exact, else 100 %).
    void add(uint64_t exact, uint64_t approx) noexcept;

    /// Merges another histogram with the same bin count.
    void merge(const RedHistogram& other);

    [[nodiscard]] int bins() const noexcept { return static_cast<int>(counts_.size()) - 1; }
    [[nodiscard]] uint64_t count(int bin) const { return counts_.at(bin); }
    [[nodiscard]] uint64_t overflow() const noexcept { return counts_.back(); }
    [[nodiscard]] uint64_t total() const noexcept { return total_; }

    /// P(RED in bin k) over all added pairs; index bins() = overflow bin.
    [[nodiscard]] std::vector<double> probabilities() const;

private:
    std::vector<uint64_t> counts_;  // bins + 1 (overflow)
    uint64_t total_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_ERROR_HISTOGRAM_H
