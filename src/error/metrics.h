// Error metrics for approximate arithmetic (paper Section III).
//
//   ED   = |P - P'|                       error distance
//   RED  = ED / P                         relative error distance
//   MRED = mean RED over all inputs
//   MED  = mean ED
//   NMED = MED / Pmax,  Pmax = (2^N - 1)^2
//   ER   = fraction of inputs with P' != P
//
// Convention for P = 0 (needed by baselines such as ETM that can err at
// zero): RED = 0 when P' == 0, RED = 1 otherwise. SDLC itself is always
// exact at P = 0. This convention reproduces the paper's quoted numbers.
#ifndef SDLC_ERROR_METRICS_H
#define SDLC_ERROR_METRICS_H

#include <algorithm>
#include <cstdint>

namespace sdlc {

/// Final error statistics over a set of (exact, approximate) pairs.
struct ErrorMetrics {
    double mred = 0.0;       ///< mean relative error distance (ratio, not %)
    double med = 0.0;        ///< mean error distance
    double nmed = 0.0;       ///< MED normalized by Pmax
    double error_rate = 0.0; ///< fraction of erroneous outputs
    double max_red = 0.0;    ///< maximum RED (ratio)
    uint64_t max_ed = 0;     ///< maximum ED
    uint64_t samples = 0;    ///< number of evaluated pairs
    double bias = 0.0;       ///< mean signed error (approx - exact); <= 0 for plain SDLC
    double rmse = 0.0;       ///< root-mean-square error distance
};

/// Bit-exact equality of every metric. Error evaluation is deterministic
/// for a given configuration and seed, so re-evaluating must reproduce the
/// metrics exactly; the DSE repeat guard and the serve determinism tests
/// rely on this.
[[nodiscard]] bool operator==(const ErrorMetrics& a, const ErrorMetrics& b) noexcept;
[[nodiscard]] inline bool operator!=(const ErrorMetrics& a, const ErrorMetrics& b) noexcept {
    return !(a == b);
}

/// Streaming accumulator for ErrorMetrics; mergeable for parallel sweeps.
class ErrorAccumulator {
public:
    /// `width` is the operand bit-width N; sets Pmax = (2^N - 1)^2.
    explicit ErrorAccumulator(int width);

    /// Adds one (exact, approximate) product pair. Defined inline: this is
    /// the innermost statement of every exhaustive sweep (2^32 calls at
    /// 16 bits), and an exact sample must cost no more than a compare and a
    /// counter bump.
    void add(uint64_t exact, uint64_t approx) noexcept {
        ++samples_;
        const uint64_t ed = exact > approx ? exact - approx : approx - exact;
        if (ed == 0) return;  // fast path: exact product, only the count moves
        ++errors_;
        sum_ed_ += static_cast<double>(ed);
        sum_signed_ += approx > exact ? static_cast<double>(ed) : -static_cast<double>(ed);
        sum_sq_ += static_cast<double>(ed) * static_cast<double>(ed);
        max_ed_ = std::max(max_ed_, ed);
        const double red =
            exact == 0 ? 1.0 : static_cast<double>(ed) / static_cast<double>(exact);
        sum_red_ += red;
        max_red_ = std::max(max_red_, red);
    }

    /// Adds the statistics gathered by another accumulator of equal width.
    void merge(const ErrorAccumulator& other) noexcept;

    /// Finalizes the metrics gathered so far.
    [[nodiscard]] ErrorMetrics finalize() const noexcept;

    [[nodiscard]] int width() const noexcept { return width_; }

private:
    int width_;
    double pmax_;
    double sum_red_ = 0.0;
    double sum_ed_ = 0.0;
    double sum_signed_ = 0.0;
    double sum_sq_ = 0.0;
    double max_red_ = 0.0;
    uint64_t max_ed_ = 0;
    uint64_t errors_ = 0;
    uint64_t samples_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_ERROR_METRICS_H
