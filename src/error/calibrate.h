// Per-process calibration of the error-engine throughput, feeding the
// exhaustive-vs-sampled cutoff heuristic.
//
// The old cutoff was one hard-coded width regardless of kernel path, so an
// accurate/depth-1 config (~3 ns/op) sampled at width 11 even though its
// full 2^22-pair sweep costs milliseconds. Instead we measure each engine's
// ns/op once per process (a few small exhaustive sweeps, ~10-30 ms total)
// and pick, per path, the largest width whose full sweep fits a time
// budget. Resolution is a pure function of (calibration, floor, budget) —
// the measured numbers vary per machine, so callers that need
// reproducibility across processes (the serve protocol, distributed
// sweeps) resolve once at the edge and ship the resolved widths.
#ifndef SDLC_ERROR_CALIBRATE_H
#define SDLC_ERROR_CALIBRATE_H

#include <string>

namespace sdlc {

/// Measured exhaustive-evaluation cost per operand pair, by kernel path.
struct EngineCalibration {
    double accurate_ns = 0.0;  ///< accurate / depth-1 bit-trick kernel
    double fast2_ns = 0.0;     ///< sdlc depth-2 closed-form kernel
    double planned_ns = 0.0;   ///< strength-reduced planned path (scalar)
    double sliced_ns = 0.0;    ///< bit-sliced engine (64 lanes per op)
};

/// Times small exhaustive sweeps on each path and returns ns/op figures.
/// Costs ~10-30 ms; call once and reuse (see engine_calibration()).
[[nodiscard]] EngineCalibration measure_engine_calibration();

/// The process-wide calibration, measured lazily on first use.
[[nodiscard]] const EngineCalibration& engine_calibration();

/// Exhaustive cutoff widths per kernel path: exhaustive evaluation runs at
/// or below the path's width, Monte-Carlo sampling above it.
struct ExhaustiveCutoffs {
    int accurate = 0;
    int fast2 = 0;
    int planned = 0;
    int sliced = 0;
};

/// Largest width per path whose full 4^width-pair sweep fits `budget_ms`,
/// clamped to [floor_width, 16]. Never demotes below the floor (the
/// historical fixed cutoff), so auto resolution only ever promotes configs
/// that the fixed cutoff would have sampled. Pure: same inputs, same
/// result.
[[nodiscard]] ExhaustiveCutoffs resolve_exhaustive_cutoffs(const EngineCalibration& cal,
                                                           int floor_width,
                                                           double budget_ms);

}  // namespace sdlc

#endif  // SDLC_ERROR_CALIBRATE_H
