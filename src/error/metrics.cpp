#include "error/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sdlc {

ErrorAccumulator::ErrorAccumulator(int width) : width_(width) {
    if (width < 1 || width > 32) {
        throw std::invalid_argument("ErrorAccumulator: width must be in [1,32]");
    }
    const double top = static_cast<double>((uint64_t{1} << width) - 1);
    pmax_ = top * top;
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) noexcept {
    sum_red_ += other.sum_red_;
    sum_ed_ += other.sum_ed_;
    sum_signed_ += other.sum_signed_;
    sum_sq_ += other.sum_sq_;
    max_red_ = std::max(max_red_, other.max_red_);
    max_ed_ = std::max(max_ed_, other.max_ed_);
    errors_ += other.errors_;
    samples_ += other.samples_;
}

ErrorMetrics ErrorAccumulator::finalize() const noexcept {
    ErrorMetrics m;
    m.samples = samples_;
    if (samples_ == 0) return m;
    const double n = static_cast<double>(samples_);
    m.mred = sum_red_ / n;
    m.med = sum_ed_ / n;
    m.nmed = m.med / pmax_;
    m.error_rate = static_cast<double>(errors_) / n;
    m.max_red = max_red_;
    m.max_ed = max_ed_;
    m.bias = sum_signed_ / n;
    m.rmse = std::sqrt(sum_sq_ / n);
    return m;
}

bool operator==(const ErrorMetrics& a, const ErrorMetrics& b) noexcept {
    return a.mred == b.mred && a.med == b.med && a.nmed == b.nmed &&
           a.error_rate == b.error_rate && a.max_red == b.max_red && a.max_ed == b.max_ed &&
           a.samples == b.samples && a.bias == b.bias && a.rmse == b.rmse;
}

}  // namespace sdlc
