#include "error/calibrate.h"

#include <algorithm>
#include <chrono>

#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "error/evaluate.h"
#include "error/evaluate_sliced.h"

namespace sdlc {

namespace {

/// ns/op of one exhaustive sweep at `width` (best of two runs, so a
/// scheduler hiccup in the first pass doesn't skew the cutoff).
template <typename SweepFn>
double time_sweep_ns(int width, SweepFn&& sweep) {
    const double pairs = static_cast<double>((uint64_t{1} << width) * (uint64_t{1} << width));
    double best = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        sweep();
        const double ns =
            std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
                .count() /
            pairs;
        if (rep == 0 || ns < best) best = ns;
    }
    return best;
}

double time_scalar_ns(const MultiplierConfig& config) {
    const MultiplyKernel kernel(config);
    volatile uint64_t sink = 0;
    const double ns = time_sweep_ns(config.width, [&] {
        const ErrorMetrics m = exhaustive_metrics(
            config.width, [&](uint64_t a, uint64_t b) { return kernel(a, b); });
        sink = sink + m.samples;
    });
    return ns;
}

}  // namespace

EngineCalibration measure_engine_calibration() {
    EngineCalibration cal;
    // Width 8 (65536 pairs) is big enough to be accumulator-dominated like
    // a real sweep and small enough to keep the whole calibration in the
    // tens of milliseconds.
    cal.accurate_ns = time_scalar_ns({8, 1, MultiplierVariant::kAccurate});
    cal.fast2_ns = time_scalar_ns({8, 2, MultiplierVariant::kSdlc});
    cal.planned_ns = time_scalar_ns({8, 3, MultiplierVariant::kSdlc});
    // The sliced engine amortizes per-a preparation over side/64 blocks, so
    // measure at width 10 where the amortization resembles the widths the
    // cutoff actually gates.
    const SlicedMultiplyKernel sliced({10, 3, MultiplierVariant::kSdlc});
    volatile uint64_t sink = 0;
    cal.sliced_ns = time_sweep_ns(10, [&] {
        const ErrorMetrics m = exhaustive_metrics_sliced(sliced);
        sink = sink + m.samples;
    });
    return cal;
}

const EngineCalibration& engine_calibration() {
    static const EngineCalibration cal = measure_engine_calibration();
    return cal;
}

namespace {

int budget_width(double ns_per_op, int floor_width, double budget_ms) {
    int w = floor_width;
    for (int cand = floor_width + 1; cand <= 16; ++cand) {
        const double pairs = static_cast<double>((uint64_t{1} << cand) * (uint64_t{1} << cand));
        if (ns_per_op <= 0.0 || pairs * ns_per_op > budget_ms * 1e6) break;
        w = cand;
    }
    return w;
}

}  // namespace

ExhaustiveCutoffs resolve_exhaustive_cutoffs(const EngineCalibration& cal, int floor_width,
                                             double budget_ms) {
    ExhaustiveCutoffs c;
    c.accurate = budget_width(cal.accurate_ns, floor_width, budget_ms);
    c.fast2 = budget_width(cal.fast2_ns, floor_width, budget_ms);
    c.planned = budget_width(cal.planned_ns, floor_width, budget_ms);
    c.sliced = budget_width(cal.sliced_ns, floor_width, budget_ms);
    return c;
}

}  // namespace sdlc
