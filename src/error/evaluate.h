// Exhaustive and Monte-Carlo error evaluation engines.
//
// Both take the approximate multiplier as an inlineable callable
// `uint64_t f(uint64_t a, uint64_t b)` so that exhaustive sweeps (2^32
// operand pairs at 16-bit) run at bit-trick speed — pass a
// core/kernels.h MultiplyKernel (or a stateless kernel from the registry)
// rather than a virtual ApproxMultiplier wrapper. The exhaustive engine
// splits the operand space into a fixed grid of shards and distributes the
// shards across threads; because each shard accumulates the same pairs in
// the same order and shards merge in index order, the result is
// bit-identical for every thread count (and every machine's core count).
//
// The inner loop is strength-reduced: the exact product a*b advances by
// adding `a` as `b` steps through a tile, so no hardware multiply is spent
// on the reference value. Tiles re-seed the running product from one true
// multiply, which keeps the addition chain short, bounds the live range of
// the loop state to something register-resident, and gives the compiler a
// fixed trip count to unroll. The (a, b) visit order is unchanged, so all
// accumulated metrics stay bit-identical to the pre-tiled engine.
#ifndef SDLC_ERROR_EVALUATE_H
#define SDLC_ERROR_EVALUATE_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "error/metrics.h"
#include "util/rng.h"

namespace sdlc {

/// Evaluates `approx(a,b)` for every operand pair of the given width
/// (width <= 16 recommended: 2^(2*width) pairs) and returns the metrics.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics exhaustive_metrics(int width, ApproxFn approx,
                                              unsigned max_threads = 0) {
    const uint64_t side = uint64_t{1} << width;
    // Shard by operand stripes a ≡ s (mod kShards). The shard count is fixed
    // (not the thread count) so the floating-point accumulation order never
    // depends on how many workers ran.
    constexpr unsigned kShards = 64;
    const unsigned shards = static_cast<unsigned>(std::min<uint64_t>(kShards, side));
    unsigned threads = max_threads ? max_threads : std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threads = std::min(threads, shards);

    std::vector<ErrorAccumulator> accs(shards, ErrorAccumulator(width));
    auto run_shard = [&](unsigned s) {
        // B-axis tile: big enough to amortize the per-tile multiply, small
        // enough that the unrolled inner loop's state stays in registers.
        constexpr uint64_t kTile = 1024;
        ErrorAccumulator& acc = accs[s];
        for (uint64_t a = s; a < side; a += shards) {
            for (uint64_t b0 = 0; b0 < side; b0 += kTile) {
                const uint64_t b_end = std::min(side, b0 + kTile);
                uint64_t exact = a * b0;  // re-seed the running product
                for (uint64_t b = b0; b < b_end; ++b, exact += a) {
                    acc.add(exact, approx(a, b));
                }
            }
        }
    };
    if (threads <= 1) {
        for (unsigned s = 0; s < shards; ++s) run_shard(s);
    } else {
        std::atomic<unsigned> next{0};
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            pool.emplace_back([&] {
                for (unsigned s = next.fetch_add(1); s < shards; s = next.fetch_add(1)) {
                    run_shard(s);
                }
            });
        }
        for (auto& th : pool) th.join();
    }
    for (unsigned s = 1; s < shards; ++s) accs[0].merge(accs[s]);
    return accs[0].finalize();
}

/// Evaluates `approx` on `samples` uniformly random operand pairs.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics sampled_metrics(int width, uint64_t samples, uint64_t seed,
                                           ApproxFn approx) {
    ErrorAccumulator acc(width);
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = rng.next() & mask;
        const uint64_t b = rng.next() & mask;
        acc.add(a * b, approx(a, b));
    }
    return acc.finalize();
}

}  // namespace sdlc

#endif  // SDLC_ERROR_EVALUATE_H
