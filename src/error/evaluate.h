// Exhaustive and Monte-Carlo error evaluation engines.
//
// Both take the approximate multiplier as an inlineable callable
// `uint64_t f(uint64_t a, uint64_t b)` so that exhaustive sweeps (2^32
// operand pairs at 16-bit) run at bit-trick speed — pass a
// core/kernels.h MultiplyKernel (or a stateless kernel from the registry)
// rather than a virtual ApproxMultiplier wrapper. The exhaustive engine
// splits the operand space into a fixed grid of shards and distributes the
// shards across workers; because each shard accumulates the same pairs in
// the same order and shards merge in index order, the result is
// bit-identical for every worker count (and every machine's core count).
//
// Threading contract: by default (max_threads == 0, no pool) the shards run
// inline on the calling thread. A caller that owns a ThreadPool passes it
// to spread shards over existing workers; only an explicit max_threads > 1
// spawns dedicated threads. (The engine used to default to
// hardware_concurrency() raw std::threads on every call, which
// oversubscribed N*M threads when invoked from resident pool workers.)
//
// The inner loop is strength-reduced: the exact product a*b advances by
// adding `a` as `b` steps through a tile, so no hardware multiply is spent
// on the reference value. Tiles re-seed the running product from one true
// multiply, which keeps the addition chain short, bounds the live range of
// the loop state to something register-resident, and gives the compiler a
// fixed trip count to unroll. The (a, b) visit order is unchanged, so all
// accumulated metrics stay bit-identical to the pre-tiled engine.
#ifndef SDLC_ERROR_EVALUATE_H
#define SDLC_ERROR_EVALUATE_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "error/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sdlc {
namespace detail {

/// Runs `run_shard(s)` for every shard in [0, shards). Inline when no
/// parallelism was requested, over `pool` when one is provided, and on
/// dedicated threads only for an explicit max_threads > 1. Shard results
/// must be accumulated into per-shard state so the caller's merge order —
/// not the scheduling — decides the result.
template <typename RunShard>
void run_sharded(unsigned shards, unsigned max_threads, ThreadPool* pool,
                 RunShard&& run_shard) {
    if (pool != nullptr) {
        parallel_for(*pool, shards, [&](size_t s) { run_shard(static_cast<unsigned>(s)); });
        return;
    }
    const unsigned threads = std::min(max_threads, shards);
    if (threads <= 1) {
        for (unsigned s = 0; s < shards; ++s) run_shard(s);
        return;
    }
    std::atomic<unsigned> next{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([&] {
            for (unsigned s = next.fetch_add(1); s < shards; s = next.fetch_add(1)) {
                run_shard(s);
            }
        });
    }
    for (auto& th : workers) th.join();
}

}  // namespace detail

/// Fixed shard-grid size of the exhaustive engines. The shard count (not
/// the worker count) decides the floating-point accumulation order, so the
/// result never depends on how many workers ran.
inline constexpr unsigned kExhaustiveShards = 64;

/// Evaluates `approx(a,b)` for every operand pair of the given width
/// (width <= 16 recommended: 2^(2*width) pairs) and returns the metrics.
/// Runs inline by default; pass a pool to shard over existing workers, or
/// an explicit max_threads > 1 to spawn dedicated threads.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics exhaustive_metrics(int width, ApproxFn approx,
                                              unsigned max_threads = 0,
                                              ThreadPool* pool = nullptr) {
    const uint64_t side = uint64_t{1} << width;
    // Shard by operand stripes a ≡ s (mod shards).
    const unsigned shards =
        static_cast<unsigned>(std::min<uint64_t>(kExhaustiveShards, side));
    std::vector<ErrorAccumulator> accs(shards, ErrorAccumulator(width));
    detail::run_sharded(shards, max_threads, pool, [&](unsigned s) {
        // B-axis tile: big enough to amortize the per-tile multiply, small
        // enough that the unrolled inner loop's state stays in registers.
        constexpr uint64_t kTile = 1024;
        ErrorAccumulator& acc = accs[s];
        for (uint64_t a = s; a < side; a += shards) {
            for (uint64_t b0 = 0; b0 < side; b0 += kTile) {
                const uint64_t b_end = std::min(side, b0 + kTile);
                uint64_t exact = a * b0;  // re-seed the running product
                for (uint64_t b = b0; b < b_end; ++b, exact += a) {
                    acc.add(exact, approx(a, b));
                }
            }
        }
    });
    for (unsigned s = 1; s < shards; ++s) accs[0].merge(accs[s]);
    return accs[0].finalize();
}

/// Evaluates `approx` on `samples` uniformly random operand pairs.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics sampled_metrics(int width, uint64_t samples, uint64_t seed,
                                           ApproxFn approx) {
    ErrorAccumulator acc(width);
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = rng.next() & mask;
        const uint64_t b = rng.next() & mask;
        acc.add(a * b, approx(a, b));
    }
    return acc.finalize();
}

}  // namespace sdlc

#endif  // SDLC_ERROR_EVALUATE_H
