// Exhaustive and Monte-Carlo error evaluation engines.
//
// Both take the approximate multiplier as an inlineable callable
// `uint64_t f(uint64_t a, uint64_t b)` so that exhaustive sweeps (2^32
// operand pairs at 16-bit) run at bit-trick speed. The exhaustive engine
// shards the operand space across hardware threads and merges per-thread
// accumulators; results are independent of the thread count.
#ifndef SDLC_ERROR_EVALUATE_H
#define SDLC_ERROR_EVALUATE_H

#include <cstdint>
#include <thread>
#include <vector>

#include "error/metrics.h"
#include "util/rng.h"

namespace sdlc {

/// Evaluates `approx(a,b)` for every operand pair of the given width
/// (width <= 16 recommended: 2^(2*width) pairs) and returns the metrics.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics exhaustive_metrics(int width, ApproxFn approx,
                                              unsigned max_threads = 0) {
    const uint64_t side = uint64_t{1} << width;
    unsigned threads = max_threads ? max_threads : std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    threads = static_cast<unsigned>(std::min<uint64_t>(threads, side));

    std::vector<ErrorAccumulator> accs(threads, ErrorAccumulator(width));
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            ErrorAccumulator& acc = accs[t];
            for (uint64_t a = t; a < side; a += threads) {
                for (uint64_t b = 0; b < side; ++b) acc.add(a * b, approx(a, b));
            }
        });
    }
    for (auto& th : pool) th.join();
    for (unsigned t = 1; t < threads; ++t) accs[0].merge(accs[t]);
    return accs[0].finalize();
}

/// Evaluates `approx` on `samples` uniformly random operand pairs.
template <typename ApproxFn>
[[nodiscard]] ErrorMetrics sampled_metrics(int width, uint64_t samples, uint64_t seed,
                                           ApproxFn approx) {
    ErrorAccumulator acc(width);
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = rng.next() & mask;
        const uint64_t b = rng.next() & mask;
        acc.add(a * b, approx(a, b));
    }
    return acc.finalize();
}

}  // namespace sdlc

#endif  // SDLC_ERROR_EVALUATE_H
