#include "error/histogram.h"

#include <stdexcept>

namespace sdlc {

RedHistogram::RedHistogram(int bins) {
    if (bins < 1) throw std::invalid_argument("RedHistogram: bins must be positive");
    counts_.assign(static_cast<size_t>(bins) + 1, 0);
}

void RedHistogram::add(uint64_t exact, uint64_t approx) noexcept {
    ++total_;
    const uint64_t ed = exact > approx ? exact - approx : approx - exact;
    double red_pct;
    if (exact == 0) {
        red_pct = ed == 0 ? 0.0 : 100.0;
    } else {
        red_pct = 100.0 * static_cast<double>(ed) / static_cast<double>(exact);
    }
    const int nbins = bins();
    const int bin = red_pct >= static_cast<double>(nbins) ? nbins : static_cast<int>(red_pct);
    ++counts_[static_cast<size_t>(bin)];
}

void RedHistogram::merge(const RedHistogram& other) {
    if (other.counts_.size() != counts_.size()) {
        throw std::invalid_argument("RedHistogram: bin count mismatch");
    }
    for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
}

std::vector<double> RedHistogram::probabilities() const {
    std::vector<double> p(counts_.size(), 0.0);
    if (total_ == 0) return p;
    for (size_t i = 0; i < counts_.size(); ++i) {
        p[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
    }
    return p;
}

}  // namespace sdlc
