// Self-checking SystemVerilog testbench generator.
//
// Alongside the structural Verilog export, this writer emits a testbench
// that drives the module with pre-computed stimulus (golden outputs come
// from our own simulator) and $fatal's on the first mismatch — the artifact
// needed to validate the exported netlist in a commercial flow, mirroring
// the paper's Questa Sim step.
#ifndef SDLC_NETLIST_TESTBENCH_H
#define SDLC_NETLIST_TESTBENCH_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace sdlc {

/// Testbench generation options.
struct TestbenchOptions {
    int vectors = 256;           ///< number of random stimulus vectors
    uint64_t seed = 0x7e57b17;   ///< stimulus RNG seed
};

/// Writes a self-checking testbench for `net` (exported as module
/// `module_name` by write_verilog). Golden responses are computed with the
/// library's own simulator.
void write_verilog_testbench(std::ostream& os, const Netlist& net,
                             const std::string& module_name,
                             const TestbenchOptions& opts = {});

/// Convenience overload returning the testbench text.
[[nodiscard]] std::string to_verilog_testbench(const Netlist& net,
                                               const std::string& module_name,
                                               const TestbenchOptions& opts = {});

}  // namespace sdlc

#endif  // SDLC_NETLIST_TESTBENCH_H
