// VCD (Value Change Dump) waveform writer.
//
// Records the value of every net over a sequence of input vectors so a
// generated multiplier can be inspected in GTKWave & co. Combinational
// netlists have no clock; each input vector advances simulation time by
// one step.
#ifndef SDLC_NETLIST_VCD_H
#define SDLC_NETLIST_VCD_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// Streams a VCD file for one netlist.
class VcdWriter {
public:
    /// Writes the VCD header (module scope `top_name`, 1 ns timescale).
    /// Primary inputs/outputs keep their port names; internal nets are
    /// named n<id>. The ostream must outlive the writer.
    VcdWriter(std::ostream& os, const Netlist& net, const std::string& top_name);

    /// Records one input vector (single-bit values, Netlist::inputs()
    /// order): simulates the netlist and dumps all value changes at the
    /// next timestep. Throws std::invalid_argument on size mismatch.
    void step(const std::vector<bool>& inputs);

    /// Number of steps recorded so far.
    [[nodiscard]] uint64_t steps() const noexcept { return time_; }

private:
    static std::string id_code(size_t index);

    std::ostream* os_;
    const Netlist* net_;
    std::vector<std::string> codes_;
    std::vector<bool> last_;
    bool first_ = true;
    uint64_t time_ = 0;
};

}  // namespace sdlc

#endif  // SDLC_NETLIST_VCD_H
