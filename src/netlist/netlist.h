// Gate-level combinational netlist intermediate representation.
//
// This is the structural substrate on which every multiplier in the library
// is generated (the paper's SystemVerilog RTL stands in the same place).
// Nets are created in topological order by construction: a gate may only
// reference nets that already exist, so the netlist is a DAG and a single
// forward pass evaluates, times, or costs it.
#ifndef SDLC_NETLIST_NETLIST_H
#define SDLC_NETLIST_NETLIST_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace sdlc {

/// Primitive cell kinds. Const0/Const1/Input are sources; the rest are logic.
enum class GateKind : uint8_t {
    kConst0,
    kConst1,
    kInput,
    kBuf,
    kNot,
    kAnd,
    kOr,
    kNand,
    kNor,
    kXor,
    kXnor,
};

/// Number of distinct GateKind values.
inline constexpr size_t kGateKindCount = 11;

/// Human-readable name of a gate kind ("AND2", "NOT", ...).
[[nodiscard]] const char* gate_kind_name(GateKind k) noexcept;

/// Fan-in arity of a gate kind (0, 1 or 2).
[[nodiscard]] constexpr int gate_arity(GateKind k) noexcept {
    switch (k) {
        case GateKind::kConst0:
        case GateKind::kConst1:
        case GateKind::kInput:
            return 0;
        case GateKind::kBuf:
        case GateKind::kNot:
            return 1;
        default:
            return 2;
    }
}

/// True for the two-input commutative logic kinds.
[[nodiscard]] constexpr bool gate_commutative(GateKind k) noexcept {
    return gate_arity(k) == 2;
}

/// Index of a net within a Netlist.
using NetId = uint32_t;

/// Sentinel for "no net" (unused fan-in slots).
inline constexpr NetId kNoNet = 0xFFFFFFFFu;

/// One gate; the driven net's id is the gate's position in the netlist.
struct Gate {
    GateKind kind = GateKind::kConst0;
    NetId in0 = kNoNet;
    NetId in1 = kNoNet;
};

/// A named output port.
struct OutputPort {
    NetId net = kNoNet;
    std::string name;
};

/// Combinational netlist. See file comment for the construction invariant.
class Netlist {
public:
    Netlist() = default;

    /// Returns the (deduplicated) constant-0 or constant-1 net.
    NetId constant(bool value);

    /// Creates a new primary input with the given port name.
    NetId input(std::string name);

    /// Creates a gate of the given kind. Unary kinds ignore `b`.
    /// Throws std::invalid_argument on arity/net-id violations.
    NetId add_gate(GateKind kind, NetId a, NetId b = kNoNet);

    // Convenience builders.
    NetId buf_gate(NetId a) { return add_gate(GateKind::kBuf, a); }
    NetId not_gate(NetId a) { return add_gate(GateKind::kNot, a); }
    NetId and_gate(NetId a, NetId b) { return add_gate(GateKind::kAnd, a, b); }
    NetId or_gate(NetId a, NetId b) { return add_gate(GateKind::kOr, a, b); }
    NetId nand_gate(NetId a, NetId b) { return add_gate(GateKind::kNand, a, b); }
    NetId nor_gate(NetId a, NetId b) { return add_gate(GateKind::kNor, a, b); }
    NetId xor_gate(NetId a, NetId b) { return add_gate(GateKind::kXor, a, b); }
    NetId xnor_gate(NetId a, NetId b) { return add_gate(GateKind::kXnor, a, b); }

    /// OR of any number of nets (balanced tree); 0 nets -> constant 0.
    NetId or_tree(const std::vector<NetId>& nets);

    /// Declares `net` as a named primary output.
    void mark_output(NetId net, std::string name);

    // --- Introspection -----------------------------------------------------

    [[nodiscard]] size_t net_count() const noexcept { return gates_.size(); }
    [[nodiscard]] const Gate& gate(NetId id) const { return gates_.at(id); }

    /// Primary inputs in creation order.
    [[nodiscard]] const std::vector<NetId>& inputs() const noexcept { return inputs_; }
    [[nodiscard]] const std::string& input_name(size_t idx) const { return input_names_.at(idx); }

    /// Primary outputs in declaration order.
    [[nodiscard]] const std::vector<OutputPort>& outputs() const noexcept { return outputs_; }

    /// Number of logic cells (everything except Const*/Input).
    [[nodiscard]] size_t logic_gate_count() const noexcept;

    /// Per-kind gate histogram.
    [[nodiscard]] std::array<size_t, kGateKindCount> kind_histogram() const noexcept;

    /// Number of sink gates reading each net (output ports not counted).
    [[nodiscard]] std::vector<uint32_t> fanout_counts() const;

    /// Nets reachable backwards from the outputs (true = live).
    [[nodiscard]] std::vector<bool> live_mask() const;

    /// 64-bit content hash of the netlist structure: gate kinds and fan-in
    /// wiring, input/output ports (ids and names). Two netlists built the
    /// same way hash equal; any structural difference changes the hash with
    /// overwhelming probability. Used as the key of the DSE synthesis
    /// cache, so it must not depend on labels or construction history
    /// beyond the structure itself.
    [[nodiscard]] uint64_t structural_hash() const noexcept;

private:
    NetId check_net(NetId id) const;

    std::vector<Gate> gates_;
    std::vector<NetId> inputs_;
    std::vector<std::string> input_names_;
    std::vector<OutputPort> outputs_;
    NetId const0_ = kNoNet;
    NetId const1_ = kNoNet;
};

}  // namespace sdlc

#endif  // SDLC_NETLIST_NETLIST_H
