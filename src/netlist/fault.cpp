#include "netlist/fault.h"

#include <stdexcept>
#include <unordered_map>

namespace sdlc {

Netlist inject_faults(const Netlist& in, const std::vector<StuckAtFault>& faults) {
    std::unordered_map<NetId, bool> fault_at;
    for (const StuckAtFault& f : faults) {
        if (f.net >= in.net_count()) {
            throw std::invalid_argument("inject_faults: fault site out of range");
        }
        fault_at[f.net] = f.stuck_value;
    }

    Netlist out;
    std::vector<NetId> map(in.net_count(), kNoNet);
    size_t input_idx = 0;
    for (NetId id = 0; id < in.net_count(); ++id) {
        const Gate& g = in.gate(id);
        NetId rewritten;
        switch (g.kind) {
            case GateKind::kConst0: rewritten = out.constant(false); break;
            case GateKind::kConst1: rewritten = out.constant(true); break;
            case GateKind::kInput: rewritten = out.input(in.input_name(input_idx++)); break;
            default:
                rewritten = out.add_gate(g.kind, map[g.in0],
                                         g.in1 == kNoNet ? kNoNet : map[g.in1]);
                break;
        }
        // Sinks of a faulty net see the stuck constant instead.
        const auto it = fault_at.find(id);
        map[id] = it == fault_at.end() ? rewritten : out.constant(it->second);
    }
    for (const OutputPort& p : in.outputs()) out.mark_output(map[p.net], p.name);
    return out;
}

std::vector<NetId> logic_nets(const Netlist& in) {
    std::vector<NetId> nets;
    for (NetId id = 0; id < in.net_count(); ++id) {
        if (gate_arity(in.gate(id).kind) > 0) nets.push_back(id);
    }
    return nets;
}

}  // namespace sdlc
