// Netlist exporters: structural Verilog and Graphviz DOT.
//
// The Verilog writer emits the same kind of gate-level structural module the
// paper's generic SystemVerilog generator produced, so generated multipliers
// can be inspected or pushed through an external flow.
#ifndef SDLC_NETLIST_EXPORT_H
#define SDLC_NETLIST_EXPORT_H

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace sdlc {

/// Writes `net` as a synthesizable structural Verilog module named
/// `module_name` using assign statements over ~ & | ^ operators.
void write_verilog(std::ostream& os, const Netlist& net, const std::string& module_name);

/// Convenience overload returning the Verilog text.
[[nodiscard]] std::string to_verilog(const Netlist& net, const std::string& module_name);

/// Writes `net` as a Graphviz digraph (one node per gate, edges = fan-ins).
/// Intended for small teaching-sized netlists.
void write_dot(std::ostream& os, const Netlist& net, const std::string& graph_name);

}  // namespace sdlc

#endif  // SDLC_NETLIST_EXPORT_H
