// Stuck-at fault injection.
//
// Rewrites a netlist so that a chosen net is forced to constant 0 or 1
// (classic stuck-at fault model). Used by the robustness tests and the
// fault-sensitivity bench to ask: which gates of the SDLC multiplier
// matter most, and does logic compression change the failure profile
// compared to the accurate design?
#ifndef SDLC_NETLIST_FAULT_H
#define SDLC_NETLIST_FAULT_H

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// A single stuck-at fault site.
struct StuckAtFault {
    NetId net = kNoNet;
    bool stuck_value = false;
};

/// Returns a copy of `in` where each fault's net drives its stuck value
/// into all of its sinks (the faulty gate itself is left in place but
/// disconnected, as a real defect would leave the cell). Primary outputs
/// reading a faulty net observe the stuck value.
/// Throws std::invalid_argument when a fault names a missing net.
[[nodiscard]] Netlist inject_faults(const Netlist& in, const std::vector<StuckAtFault>& faults);

/// All logic nets of `in` (candidate fault sites; sources excluded).
[[nodiscard]] std::vector<NetId> logic_nets(const Netlist& in);

}  // namespace sdlc

#endif  // SDLC_NETLIST_FAULT_H
