#include "netlist/sim.h"

#include <bit>
#include <stdexcept>

namespace sdlc {

Simulator::Simulator(const Netlist& net)
    : net_(&net), values_(net.net_count(), 0), toggles_(net.net_count(), 0) {}

void Simulator::eval(std::span<const Word> input_words) {
    const auto& inputs = net_->inputs();
    if (input_words.size() != inputs.size()) {
        throw std::invalid_argument("Simulator: wrong number of input words");
    }
    size_t next_input = 0;
    const size_t n = net_->net_count();
    for (NetId id = 0; id < n; ++id) {
        const Gate& g = net_->gate(id);
        Word v = 0;
        switch (g.kind) {
            case GateKind::kConst0: v = 0; break;
            case GateKind::kConst1: v = ~Word{0}; break;
            case GateKind::kInput: v = input_words[next_input++]; break;
            case GateKind::kBuf: v = values_[g.in0]; break;
            case GateKind::kNot: v = ~values_[g.in0]; break;
            case GateKind::kAnd: v = values_[g.in0] & values_[g.in1]; break;
            case GateKind::kOr: v = values_[g.in0] | values_[g.in1]; break;
            case GateKind::kNand: v = ~(values_[g.in0] & values_[g.in1]); break;
            case GateKind::kNor: v = ~(values_[g.in0] | values_[g.in1]); break;
            case GateKind::kXor: v = values_[g.in0] ^ values_[g.in1]; break;
            case GateKind::kXnor: v = ~(values_[g.in0] ^ values_[g.in1]); break;
        }
        values_[id] = v;
    }
}

void Simulator::run(std::span<const Word> input_words) { eval(input_words); }

void Simulator::run_counting_toggles(std::span<const Word> input_words) {
    std::vector<Word> prev = values_;
    eval(input_words);
    const size_t n = values_.size();
    for (size_t i = 0; i < n; ++i) {
        // Lane l toggles relative to lane l-1 within the pass as well; for a
        // cheap, stable activity proxy we count lane-wise changes versus the
        // previous pass. With independently random vectors this converges to
        // the same per-net switching probability.
        toggles_[i] += static_cast<uint64_t>(std::popcount(prev[i] ^ values_[i]));
    }
    toggled_lanes_ += 64;
}

void Simulator::reset_toggles() {
    toggles_.assign(values_.size(), 0);
    values_.assign(values_.size(), 0);
    toggled_lanes_ = 0;
}

std::vector<Simulator::Word> Simulator::output_words() const {
    std::vector<Word> out;
    out.reserve(net_->outputs().size());
    for (const OutputPort& p : net_->outputs()) out.push_back(values_[p.net]);
    return out;
}

std::vector<bool> eval_single(const Netlist& net, const std::vector<bool>& inputs) {
    if (inputs.size() != net.inputs().size()) {
        throw std::invalid_argument("eval_single: wrong number of inputs");
    }
    std::vector<Simulator::Word> words(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) words[i] = inputs[i] ? ~uint64_t{0} : 0;
    Simulator sim(net);
    sim.run(words);
    std::vector<bool> out;
    out.reserve(net.outputs().size());
    for (const OutputPort& p : net.outputs()) out.push_back((sim.value(p.net) & 1u) != 0);
    return out;
}

}  // namespace sdlc
