// Structural logic optimizer.
//
// Stands in for the technology-independent optimization a commercial
// synthesis tool (the paper used Synopsys Design Compiler) performs before
// mapping: constant folding, identity simplification, double-inverter
// removal, common-subexpression elimination and dead-gate removal.
// The optimizer is purely structural and provably function-preserving;
// tests random-equivalence-check every multiplier before/after.
#ifndef SDLC_NETLIST_OPT_H
#define SDLC_NETLIST_OPT_H

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// Knobs for optimize(); all passes default to on.
struct OptOptions {
    bool fold_constants = true;
    bool simplify_identities = true;  // a AND a = a, a XOR a = 0, NOT NOT a = a, ...
    bool cse = true;                  // structural hashing of (kind, in0, in1)
    bool remove_dead = true;          // gates not reachable from any output
};

/// Statistics from one optimize() run.
struct OptStats {
    size_t gates_before = 0;
    size_t gates_after = 0;
    size_t folded = 0;    // gates replaced by a constant or an existing net
    size_t merged = 0;    // gates merged by CSE
    size_t dead = 0;      // unreachable gates dropped
};

/// Result of optimize(): the rewritten netlist plus statistics.
/// Primary inputs and output ports (names and order) are preserved.
struct OptResult {
    Netlist netlist;
    OptStats stats;
};

/// Optimizes `in` according to `opts`. The input netlist is not modified.
[[nodiscard]] OptResult optimize(const Netlist& in, const OptOptions& opts = {});

}  // namespace sdlc

#endif  // SDLC_NETLIST_OPT_H
