#include "netlist/vcd.h"

#include <ostream>
#include <stdexcept>

#include "netlist/sim.h"

namespace sdlc {

std::string VcdWriter::id_code(size_t index) {
    // Printable identifier code: base-94 over '!'..'~'.
    std::string s;
    do {
        s.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index != 0);
    return s;
}

VcdWriter::VcdWriter(std::ostream& os, const Netlist& net, const std::string& top_name)
    : os_(&os), net_(&net) {
    codes_.reserve(net.net_count());
    for (size_t i = 0; i < net.net_count(); ++i) codes_.push_back(id_code(i));
    last_.assign(net.net_count(), false);

    *os_ << "$timescale 1ns $end\n$scope module " << top_name << " $end\n";
    size_t input_idx = 0;
    for (NetId id = 0; id < net.net_count(); ++id) {
        const Gate& g = net.gate(id);
        std::string name = "n" + std::to_string(id);
        if (g.kind == GateKind::kInput) name = net.input_name(input_idx++);
        *os_ << "$var wire 1 " << codes_[id] << ' ' << name << " $end\n";
    }
    for (const OutputPort& p : net.outputs()) {
        // Outputs are aliases of internal nets; VCD allows multiple vars
        // with the same id code, so reuse the driving net's code.
        *os_ << "$var wire 1 " << codes_[p.net] << ' ' << p.name << " $end\n";
    }
    *os_ << "$upscope $end\n$enddefinitions $end\n";
}

void VcdWriter::step(const std::vector<bool>& inputs) {
    if (inputs.size() != net_->inputs().size()) {
        throw std::invalid_argument("VcdWriter::step: wrong number of inputs");
    }
    std::vector<Simulator::Word> words(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) words[i] = inputs[i] ? ~uint64_t{0} : 0;
    Simulator sim(*net_);
    sim.run(words);

    *os_ << '#' << time_ << '\n';
    for (NetId id = 0; id < net_->net_count(); ++id) {
        const bool v = (sim.value(id) & 1u) != 0;
        if (first_ || v != last_[id]) {
            *os_ << (v ? '1' : '0') << codes_[id] << '\n';
            last_[id] = v;
        }
    }
    first_ = false;
    ++time_;
}

}  // namespace sdlc
