#include "netlist/opt.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

namespace sdlc {

namespace {

/// Key for structural hashing of logic gates.
struct GateKey {
    GateKind kind;
    NetId a;
    NetId b;
    bool operator==(const GateKey&) const = default;
};

struct GateKeyHash {
    size_t operator()(const GateKey& k) const noexcept {
        uint64_t h = static_cast<uint64_t>(k.kind);
        h = h * 0x9e3779b97f4a7c15ull + k.a;
        h = h * 0x9e3779b97f4a7c15ull + k.b;
        return static_cast<size_t>(h ^ (h >> 32));
    }
};

/// Tracks whether a rewritten net is a known constant.
enum class ConstState : uint8_t { kUnknown, kZero, kOne };

class Rewriter {
public:
    Rewriter(const Netlist& in, const OptOptions& opts) : in_(in), opts_(opts) {}

    OptResult run() {
        OptResult res;
        res.stats.gates_before = in_.logic_gate_count();
        const std::vector<bool> live =
            opts_.remove_dead ? in_.live_mask() : std::vector<bool>(in_.net_count(), true);

        map_.assign(in_.net_count(), kNoNet);
        size_t input_idx = 0;
        for (NetId id = 0; id < in_.net_count(); ++id) {
            const Gate& g = in_.gate(id);
            if (g.kind == GateKind::kInput) {
                // Inputs are always kept so the interface is stable.
                map_[id] = out_.input(in_.input_name(input_idx++));
                note_state(map_[id], ConstState::kUnknown);
                continue;
            }
            if (!live[id]) {
                if (gate_arity(g.kind) > 0) ++res.stats.dead;
                continue;
            }
            map_[id] = rewrite(g, res.stats);
        }
        for (const OutputPort& p : in_.outputs()) {
            out_.mark_output(map_[p.net], p.name);
        }
        res.stats.gates_after = out_.logic_gate_count();
        res.netlist = std::move(out_);
        return res;
    }

private:
    void note_state(NetId id, ConstState s) {
        if (states_.size() <= id) states_.resize(id + 1, ConstState::kUnknown);
        states_[id] = s;
    }
    ConstState state(NetId id) const {
        return id < states_.size() ? states_[id] : ConstState::kUnknown;
    }

    NetId make_const(bool v) {
        const NetId id = out_.constant(v);
        note_state(id, v ? ConstState::kOne : ConstState::kZero);
        return id;
    }

    /// Emits (or reuses) a logic gate in the output netlist.
    NetId emit(GateKind kind, NetId a, NetId b, OptStats& stats) {
        if (gate_commutative(kind) && a > b) std::swap(a, b);
        if (opts_.cse) {
            const GateKey key{kind, a, b};
            if (const auto it = cse_.find(key); it != cse_.end()) {
                ++stats.merged;
                return it->second;
            }
            const NetId id = out_.add_gate(kind, a, b);
            note_state(id, ConstState::kUnknown);
            cse_.emplace(key, id);
            return id;
        }
        const NetId id = out_.add_gate(kind, a, b);
        note_state(id, ConstState::kUnknown);
        return id;
    }

    /// NOT with double-negation elimination.
    NetId emit_not(NetId a, OptStats& stats) {
        if (opts_.simplify_identities) {
            if (const auto it = not_of_.find(a); it != not_of_.end()) {
                ++stats.folded;
                return it->second;
            }
        }
        const NetId id = emit(GateKind::kNot, a, kNoNet, stats);
        not_of_.emplace(id, a);  // NOT(id) == a
        return id;
    }

    NetId rewrite(const Gate& g, OptStats& stats) {
        switch (g.kind) {
            case GateKind::kConst0: return make_const(false);
            case GateKind::kConst1: return make_const(true);
            default: break;
        }
        const NetId a = map_[g.in0];
        const NetId b = gate_arity(g.kind) == 2 ? map_[g.in1] : kNoNet;
        const ConstState sa = state(a);
        const ConstState sb = b == kNoNet ? ConstState::kUnknown : state(b);

        if (opts_.fold_constants || opts_.simplify_identities) {
            if (auto r = try_simplify(g.kind, a, b, sa, sb, stats)) return *r;
        }
        if (g.kind == GateKind::kNot) return emit_not(a, stats);
        if (g.kind == GateKind::kBuf) {
            // A buffer is pure fanout repair; functionally it is its input.
            if (opts_.simplify_identities) {
                ++stats.folded;
                return a;
            }
            return emit(GateKind::kBuf, a, kNoNet, stats);
        }
        return emit(g.kind, a, b, stats);
    }

    /// Constant folding and identity rules; nullopt when no rule applies.
    std::optional<NetId> try_simplify(GateKind k, NetId a, NetId b, ConstState sa,
                                      ConstState sb, OptStats& stats) {
        const bool a0 = sa == ConstState::kZero, a1 = sa == ConstState::kOne;
        const bool b0 = sb == ConstState::kZero, b1 = sb == ConstState::kOne;
        auto fold_const = [&](bool v) -> std::optional<NetId> {
            ++stats.folded;
            return make_const(v);
        };
        auto fold_net = [&](NetId n) -> std::optional<NetId> {
            ++stats.folded;
            return n;
        };
        auto fold_not = [&](NetId n) -> std::optional<NetId> {
            ++stats.folded;
            return emit_not(n, stats);
        };

        switch (k) {
            case GateKind::kBuf:
                if (a0) return fold_const(false);
                if (a1) return fold_const(true);
                return std::nullopt;
            case GateKind::kNot:
                if (a0) return fold_const(true);
                if (a1) return fold_const(false);
                if (opts_.simplify_identities) {
                    if (const auto it = not_of_.find(a); it != not_of_.end()) {
                        ++stats.folded;
                        return it->second;
                    }
                }
                return std::nullopt;
            case GateKind::kAnd:
                if (a0 || b0) return fold_const(false);
                if (a1) return fold_net(b);
                if (b1) return fold_net(a);
                if (a == b && opts_.simplify_identities) return fold_net(a);
                return std::nullopt;
            case GateKind::kOr:
                if (a1 || b1) return fold_const(true);
                if (a0) return fold_net(b);
                if (b0) return fold_net(a);
                if (a == b && opts_.simplify_identities) return fold_net(a);
                return std::nullopt;
            case GateKind::kNand:
                if (a0 || b0) return fold_const(true);
                if (a1) return fold_not(b);
                if (b1) return fold_not(a);
                if (a == b && opts_.simplify_identities) return fold_not(a);
                return std::nullopt;
            case GateKind::kNor:
                if (a1 || b1) return fold_const(false);
                if (a0) return fold_not(b);
                if (b0) return fold_not(a);
                if (a == b && opts_.simplify_identities) return fold_not(a);
                return std::nullopt;
            case GateKind::kXor:
                if (a0) return fold_net(b);
                if (b0) return fold_net(a);
                if (a1) return fold_not(b);
                if (b1) return fold_not(a);
                if (a == b && opts_.simplify_identities) return fold_const(false);
                return std::nullopt;
            case GateKind::kXnor:
                if (a0) return fold_not(b);
                if (b0) return fold_not(a);
                if (a1) return fold_net(b);
                if (b1) return fold_net(a);
                if (a == b && opts_.simplify_identities) return fold_const(true);
                return std::nullopt;
            default:
                return std::nullopt;
        }
    }

    const Netlist& in_;
    const OptOptions& opts_;
    Netlist out_;
    std::vector<NetId> map_;
    std::vector<ConstState> states_;
    std::unordered_map<GateKey, NetId, GateKeyHash> cse_;
    // not_of_[x] == y means gate x is NOT(y); used for NOT(NOT(y)) -> y.
    std::unordered_map<NetId, NetId> not_of_;
};

}  // namespace

OptResult optimize(const Netlist& in, const OptOptions& opts) {
    return Rewriter(in, opts).run();
}

}  // namespace sdlc
