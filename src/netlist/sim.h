// 64-lane bit-parallel netlist simulator.
//
// Each net carries a 64-bit word: bit `l` of the word is the net's logic
// value in test-vector lane `l`, so one pass evaluates 64 input vectors.
// The simulator also counts per-net toggles between consecutive passes,
// which feeds the switching-activity power model in src/tech.
#ifndef SDLC_NETLIST_SIM_H
#define SDLC_NETLIST_SIM_H

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// Evaluates a Netlist on batches of 64 parallel test vectors.
class Simulator {
public:
    using Word = uint64_t;

    /// Binds to `net` (which must outlive the simulator).
    explicit Simulator(const Netlist& net);

    /// Evaluates one 64-lane pass. `input_words[i]` supplies the lanes of
    /// primary input `i` (in Netlist::inputs() order).
    /// Throws std::invalid_argument if the span size mismatches.
    void run(std::span<const Word> input_words);

    /// Value word of any net after the last run().
    [[nodiscard]] Word value(NetId id) const { return values_.at(id); }

    /// Output value words (in Netlist::outputs() order) after the last run().
    [[nodiscard]] std::vector<Word> output_words() const;

    /// Like run(), but also accumulates per-net toggle counts against the
    /// previous pass's values (lane-wise XOR popcount). The first counted
    /// pass after reset_toggles() establishes the baseline contributing
    /// toggles against zero-initialized values.
    void run_counting_toggles(std::span<const Word> input_words);

    /// Per-net accumulated toggle counts.
    [[nodiscard]] const std::vector<uint64_t>& toggle_counts() const noexcept {
        return toggles_;
    }

    /// Number of lanes accumulated into toggle_counts().
    [[nodiscard]] uint64_t toggled_lanes() const noexcept { return toggled_lanes_; }

    /// Clears toggle statistics and value history.
    void reset_toggles();

private:
    void eval(std::span<const Word> input_words);

    const Netlist* net_;
    std::vector<Word> values_;
    std::vector<uint64_t> toggles_;
    uint64_t toggled_lanes_ = 0;
};

/// Single-vector convenience wrapper: evaluates `net` on one boolean input
/// assignment (in Netlist::inputs() order) and returns the output bits.
[[nodiscard]] std::vector<bool> eval_single(const Netlist& net, const std::vector<bool>& inputs);

}  // namespace sdlc

#endif  // SDLC_NETLIST_SIM_H
