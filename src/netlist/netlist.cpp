#include "netlist/netlist.h"

#include <stdexcept>

#include "util/hash.h"

namespace sdlc {

const char* gate_kind_name(GateKind k) noexcept {
    switch (k) {
        case GateKind::kConst0: return "CONST0";
        case GateKind::kConst1: return "CONST1";
        case GateKind::kInput: return "INPUT";
        case GateKind::kBuf: return "BUF";
        case GateKind::kNot: return "NOT";
        case GateKind::kAnd: return "AND2";
        case GateKind::kOr: return "OR2";
        case GateKind::kNand: return "NAND2";
        case GateKind::kNor: return "NOR2";
        case GateKind::kXor: return "XOR2";
        case GateKind::kXnor: return "XNOR2";
    }
    return "?";
}

NetId Netlist::check_net(NetId id) const {
    if (id >= gates_.size()) {
        throw std::invalid_argument("Netlist: fan-in references a net that does not exist yet");
    }
    return id;
}

NetId Netlist::constant(bool value) {
    NetId& cached = value ? const1_ : const0_;
    if (cached == kNoNet) {
        cached = static_cast<NetId>(gates_.size());
        gates_.push_back({value ? GateKind::kConst1 : GateKind::kConst0, kNoNet, kNoNet});
    }
    return cached;
}

NetId Netlist::input(std::string name) {
    const NetId id = static_cast<NetId>(gates_.size());
    gates_.push_back({GateKind::kInput, kNoNet, kNoNet});
    inputs_.push_back(id);
    input_names_.push_back(std::move(name));
    return id;
}

NetId Netlist::add_gate(GateKind kind, NetId a, NetId b) {
    const int arity = gate_arity(kind);
    if (arity == 0) {
        throw std::invalid_argument("Netlist: use constant()/input() for source kinds");
    }
    Gate g{kind, kNoNet, kNoNet};
    g.in0 = check_net(a);
    if (arity == 2) {
        g.in1 = check_net(b);
    } else if (b != kNoNet) {
        throw std::invalid_argument("Netlist: unary gate given two fan-ins");
    }
    const NetId id = static_cast<NetId>(gates_.size());
    gates_.push_back(g);
    return id;
}

NetId Netlist::or_tree(const std::vector<NetId>& nets) {
    if (nets.empty()) return constant(false);
    std::vector<NetId> level = nets;
    while (level.size() > 1) {
        std::vector<NetId> next;
        next.reserve((level.size() + 1) / 2);
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(or_gate(level[i], level[i + 1]));
        }
        if (level.size() % 2 == 1) next.push_back(level.back());
        level = std::move(next);
    }
    return level[0];
}

void Netlist::mark_output(NetId net, std::string name) {
    check_net(net);
    outputs_.push_back({net, std::move(name)});
}

size_t Netlist::logic_gate_count() const noexcept {
    size_t n = 0;
    for (const Gate& g : gates_) {
        if (gate_arity(g.kind) > 0) ++n;
    }
    return n;
}

std::array<size_t, kGateKindCount> Netlist::kind_histogram() const noexcept {
    std::array<size_t, kGateKindCount> h{};
    for (const Gate& g : gates_) ++h[static_cast<size_t>(g.kind)];
    return h;
}

std::vector<uint32_t> Netlist::fanout_counts() const {
    std::vector<uint32_t> fo(gates_.size(), 0);
    for (const Gate& g : gates_) {
        if (g.in0 != kNoNet) ++fo[g.in0];
        if (g.in1 != kNoNet) ++fo[g.in1];
    }
    return fo;
}

std::vector<bool> Netlist::live_mask() const {
    std::vector<bool> live(gates_.size(), false);
    // Reverse pass suffices: fan-ins always precede the driven net.
    for (const OutputPort& out : outputs_) live[out.net] = true;
    for (size_t i = gates_.size(); i-- > 0;) {
        if (!live[i]) continue;
        const Gate& g = gates_[i];
        if (g.in0 != kNoNet) live[g.in0] = true;
        if (g.in1 != kNoNet) live[g.in1] = true;
    }
    return live;
}

uint64_t Netlist::structural_hash() const noexcept {
    // Per-word FNV mixing keeps gate order significant (the id space *is*
    // the structure); the final avalanche spreads low-entropy inputs.
    uint64_t h = kFnvOffsetBasis;
    hash_mix(h, gates_.size());
    for (const Gate& g : gates_) {
        hash_mix(h, static_cast<uint64_t>(g.kind));
        hash_mix(h, g.in0);
        hash_mix(h, g.in1);
    }
    hash_mix(h, inputs_.size());
    for (const NetId id : inputs_) hash_mix(h, id);
    for (const std::string& name : input_names_) hash_mix_string(h, name);
    hash_mix(h, outputs_.size());
    for (const OutputPort& out : outputs_) {
        hash_mix(h, out.net);
        hash_mix_string(h, out.name);
    }
    return hash_avalanche(h);
}

}  // namespace sdlc
