#include "analysis/expected_error.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace sdlc {

namespace {

/// E[max(0, X-1)] for X ~ Binomial(m, 1/4), m small.
double expected_excess(int m) {
    if (m < 2) return 0.0;
    // E[max(0,X-1)] = E[X] - P(X >= 1) = m/4 - (1 - (3/4)^m).
    return 0.25 * m - (1.0 - std::pow(0.75, m));
}

}  // namespace

double no_adjacent_ones_probability(int width, int top) {
    if (top < 0) return 1.0;
    if (top >= width) throw std::invalid_argument("no_adjacent_ones_probability: top >= width");
    // DP over bits 0..top: state = previous bit value; each bit is 0/1 with
    // probability 1/2; forbid two consecutive ones. Bits above `top` are
    // unconstrained and contribute probability 1.
    double p_prev0 = 0.5, p_prev1 = 0.5;  // after bit 0
    for (int i = 1; i <= top; ++i) {
        const double next0 = 0.5 * (p_prev0 + p_prev1);
        const double next1 = 0.5 * p_prev0;  // a one may only follow a zero
        p_prev0 = next0;
        p_prev1 = next1;
    }
    return p_prev0 + p_prev1;
}

double analytic_med(const ClusterPlan& plan) {
    const int n = plan.width();
    double med = 0.0;
    for (const ClusterGroup& grp : plan.groups()) {
        for (int j = 1; j <= grp.extent; ++j) {
            int m = 0;
            for (int k = 0; k < grp.rows; ++k) {
                const int c = j - k;
                if (c >= 0 && c < n) ++m;
            }
            if (m >= 2) {
                med += expected_excess(m) * std::ldexp(1.0, grp.base_row + j);
            }
        }
    }
    return med;
}

double analytic_error_rate_depth2(int width) {
    const ClusterPlan plan = ClusterPlan::make(width, 2);
    // P(no collision) = sum over the smallest active group g of
    //   P(groups < g inactive) * P(g active) * P_A(no adjacent ones in extent(g))
    // plus the all-inactive term. Group activity (both B row bits set) has
    // probability 1/4 independently per group; extents are nested so only
    // the smallest active group's mask matters.
    double p_ok = 1.0;  // running P(all groups so far inactive)
    double p_no_collision = 0.0;
    for (const ClusterGroup& grp : plan.groups()) {
        const double p_a = no_adjacent_ones_probability(width, grp.extent);
        p_no_collision += p_ok * 0.25 * p_a;
        p_ok *= 0.75;
    }
    p_no_collision += p_ok;  // no group active
    return 1.0 - p_no_collision;
}

AnalyticError analyze_expected_error(const ClusterPlan& plan) {
    AnalyticError r;
    r.med = analytic_med(plan);
    const double top = std::ldexp(1.0, plan.width()) - 1.0;
    r.nmed = r.med / (top * top);
    if (plan.depth() == 2) {
        r.error_rate = analytic_error_rate_depth2(plan.width());
    }
    return r;
}

}  // namespace sdlc
