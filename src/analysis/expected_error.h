// Closed-form error analysis of the SDLC multiplier (library extension —
// the paper only reports simulated metrics).
//
// Under uniformly random operands, every compressed site (group g, relative
// position j) holds m <= depth partial-product bits A(c_k) AND B(r_k) with
// pairwise-distinct columns and rows, so within one site the bits are
// independent Bernoulli(1/4) and the site's lost value has expectation
//   E[max(0, popcount-1)] * 2^w,   popcount ~ Binomial(m, 1/4).
// Linearity of expectation then gives the exact mean error distance (MED)
// for ANY cluster depth without enumerating operands.
//
// For depth 2 the error rate is also exact: group g's clusters collide iff
// operand B has both row bits (probability 1/4, independent per group) and
// operand A has adjacent ones inside the group's extent. Because extents
// are nested (E(0) > E(1) > ...), P(no collision) factors over the
// smallest active group, and P(A has no adjacent ones in bits 0..E) follows
// a two-state linear recurrence (Fibonacci-type), evaluated here as a
// numerically stable probability DP.
//
// Validated in tests against exhaustive simulation to full double precision
// at 4-8 bits and against the 12/16-bit exhaustive ground truths.
#ifndef SDLC_ANALYSIS_EXPECTED_ERROR_H
#define SDLC_ANALYSIS_EXPECTED_ERROR_H

#include <optional>

#include "core/cluster_plan.h"

namespace sdlc {

/// Closed-form error predictions for a cluster plan.
struct AnalyticError {
    double med = 0.0;   ///< exact mean error distance (any depth)
    double nmed = 0.0;  ///< MED / (2^N - 1)^2
    /// Exact error rate; only available for depth-2 plans.
    std::optional<double> error_rate;
};

/// Computes the closed-form metrics for `plan`. Valid for any width up to
/// 128 (values are exact expectations evaluated in double precision).
[[nodiscard]] AnalyticError analyze_expected_error(const ClusterPlan& plan);

/// Exact MED of the plan under uniform operands.
[[nodiscard]] double analytic_med(const ClusterPlan& plan);

/// Exact error rate of a depth-2 SDLC multiplier of the given width.
[[nodiscard]] double analytic_error_rate_depth2(int width);

/// P(an `width`-bit uniform value has no two adjacent set bits among bit
/// positions 0..top). Exposed for testing; top < width required.
[[nodiscard]] double no_adjacent_ones_probability(int width, int top);

}  // namespace sdlc

#endif  // SDLC_ANALYSIS_EXPECTED_ERROR_H
