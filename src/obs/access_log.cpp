#include "obs/access_log.h"

namespace sdlc::obs {

std::shared_ptr<AccessLog> AccessLog::open(const std::string& path, std::string* error) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out) {
        if (error != nullptr) *error = "cannot open access log " + path;
        return nullptr;
    }
    return std::shared_ptr<AccessLog>(new AccessLog(std::move(out)));
}

void AccessLog::write_line(const std::string& json_line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << json_line << "\n";
    out_.flush();
}

}  // namespace sdlc::obs
