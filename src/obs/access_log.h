// Structured access logging: one JSON line per request, appended to a
// file shared by every worker of a serve_tool / cache_tool process
// (`--access-log FILE`). The log is an observability side-channel — it can
// never affect request handling or response bytes; a write failure is
// reported once at open time and otherwise ignored.
#ifndef SDLC_OBS_ACCESS_LOG_H
#define SDLC_OBS_ACCESS_LOG_H

#include <fstream>
#include <memory>
#include <mutex>
#include <string>

namespace sdlc::obs {

class AccessLog {
public:
    /// Opens `path` for appending. Returns nullptr and writes *error (when
    /// non-null) if the file cannot be opened.
    static std::shared_ptr<AccessLog> open(const std::string& path, std::string* error);

    /// Appends one line (a complete JSON object, no trailing newline) and
    /// flushes so crashed processes lose at most the in-flight line.
    void write_line(const std::string& json_line);

private:
    explicit AccessLog(std::ofstream out) : out_(std::move(out)) {}

    std::mutex mutex_;
    std::ofstream out_;
};

}  // namespace sdlc::obs

#endif  // SDLC_OBS_ACCESS_LOG_H
