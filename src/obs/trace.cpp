#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <thread>

#include "util/json.h"
#include "util/json_parse.h"

namespace sdlc::obs {
namespace {

/// splitmix64 output function over an externally-advanced state. The state
/// advances by the golden-gamma increment per id, so a fixed seed yields a
/// fixed id stream in allocation order.
uint64_t mix64(uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

bool parse_hex_digits(std::string_view text, size_t digits, uint64_t& out) {
    if (text.size() != digits) return false;
    uint64_t value = 0;
    for (const char c : text) {
        uint64_t nibble = 0;
        if (c >= '0' && c <= '9') {
            nibble = static_cast<uint64_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
            nibble = static_cast<uint64_t>(c - 'a') + 10;
        } else {
            return false;
        }
        value = (value << 4) | nibble;
    }
    out = value;
    return true;
}

std::string hex_digits(uint64_t v, int digits) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%0*llx", digits,
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

thread_local TraceBinding g_binding;

}  // namespace

std::string trace_id_hex(uint64_t hi, uint64_t lo) {
    return hex_digits(hi, 16) + hex_digits(lo, 16);
}

std::string span_id_hex(uint64_t id) { return hex_digits(id, 16); }

bool parse_trace_id_hex(std::string_view text, uint64_t& hi, uint64_t& lo) {
    if (text.size() != 32) return false;
    return parse_hex_digits(text.substr(0, 16), 16, hi) &&
           parse_hex_digits(text.substr(16), 16, lo);
}

bool parse_span_id_hex(std::string_view text, uint64_t& id) {
    return parse_hex_digits(text, 16, id);
}

SpanRecorder::SpanRecorder(std::string tier, uint64_t seed, std::function<double()> clock)
    : tier_(std::move(tier)),
      id_state_(seed),
      clock_(std::move(clock)),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t SpanRecorder::new_span_id() {
    const uint64_t state = id_state_.fetch_add(kGamma, std::memory_order_relaxed) + kGamma;
    const uint64_t id = mix64(state);
    return id == 0 ? 1 : id;  // 0 is reserved for "no parent"
}

double SpanRecorder::now() const {
    if (clock_) return clock_();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
}

void SpanRecorder::record(Span span) {
    if (span.tier.empty()) span.tier = tier_;
    const size_t shard = static_cast<size_t>(
                             std::hash<std::thread::id>{}(std::this_thread::get_id())) %
                         kShards;
    std::lock_guard<std::mutex> lock(shards_[shard].mutex);
    shards_[shard].spans.push_back(std::move(span));
}

std::vector<Span> SpanRecorder::take() {
    std::vector<Span> all;
    for (Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        all.insert(all.end(), std::make_move_iterator(shard.spans.begin()),
                   std::make_move_iterator(shard.spans.end()));
        shard.spans.clear();
    }
    std::stable_sort(all.begin(), all.end(), [](const Span& a, const Span& b) {
        if (a.start_s != b.start_s) return a.start_s < b.start_s;
        return a.span_id < b.span_id;
    });
    return all;
}

ScopedSpan::ScopedSpan(SpanRecorder* recorder, const TraceContext& ctx, const char* name) {
    if (recorder == nullptr || !ctx.valid) return;
    recorder_ = recorder;
    name_ = name;
    parent_id_ = ctx.span_id;
    ctx_ = ctx;
    ctx_.span_id = recorder->new_span_id();
    start_s_ = recorder->now();
}

void ScopedSpan::stop() {
    if (recorder_ == nullptr) return;
    Span span;
    span.name = name_;
    span.span_id = ctx_.span_id;
    span.parent_id = parent_id_;
    span.start_s = start_s_;
    span.dur_s = recorder_->now() - start_s_;
    recorder_->record(std::move(span));
    recorder_ = nullptr;
}

const TraceBinding& current_binding() noexcept { return g_binding; }

ScopedBinding::ScopedBinding(SpanRecorder* recorder, const TraceContext& ctx)
    : saved_(g_binding) {
    g_binding.recorder = recorder;
    g_binding.ctx = ctx;
}

ScopedBinding::~ScopedBinding() { g_binding = saved_; }

std::string spans_wire_json(const std::vector<Span>& spans) {
    std::string out = "[";
    for (size_t i = 0; i < spans.size(); ++i) {
        const Span& s = spans[i];
        if (i != 0) out += ", ";
        out += "{\"name\": " + json_string(s.name);
        out += ", \"tier\": " + json_string(s.tier);
        out += ", \"id\": \"" + span_id_hex(s.span_id) + "\"";
        out += ", \"parent\": \"" + span_id_hex(s.parent_id) + "\"";
        out += ", \"start\": " + json_number(s.start_s);
        out += ", \"dur\": " + json_number(s.dur_s) + "}";
    }
    out += "]";
    return out;
}

bool parse_spans_wire(const JsonValue& array, std::vector<Span>& out, std::string* error) {
    const auto fail = [error](const std::string& message) {
        if (error != nullptr) *error = message;
        return false;
    };
    if (!array.is_array()) return fail("spans must be an array");
    for (const JsonValue& entry : array.array) {
        if (!entry.is_object()) return fail("span entries must be objects");
        Span span;
        const JsonValue* name = entry.find("name");
        const JsonValue* tier = entry.find("tier");
        const JsonValue* id = entry.find("id");
        const JsonValue* parent = entry.find("parent");
        const JsonValue* start = entry.find("start");
        const JsonValue* dur = entry.find("dur");
        if (name == nullptr || !name->is_string()) return fail("span.name must be a string");
        if (tier == nullptr || !tier->is_string()) return fail("span.tier must be a string");
        if (id == nullptr || !id->is_string() ||
            !parse_span_id_hex(id->string, span.span_id)) {
            return fail("span.id must be 16 hex digits");
        }
        if (parent == nullptr || !parent->is_string() ||
            !parse_span_id_hex(parent->string, span.parent_id)) {
            return fail("span.parent must be 16 hex digits");
        }
        if (start == nullptr || !start->is_number()) {
            return fail("span.start must be a number");
        }
        if (dur == nullptr || !dur->is_number()) return fail("span.dur must be a number");
        span.name = name->string;
        span.tier = tier->string;
        span.start_s = start->number;
        span.dur_s = dur->number;
        out.push_back(std::move(span));
    }
    return true;
}

TraceStore::TraceStore(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

void TraceStore::add(TraceTree tree) {
    std::lock_guard<std::mutex> lock(mutex_);
    trees_.push_back(std::move(tree));
    while (trees_.size() > capacity_) trees_.pop_front();
}

std::vector<TraceTree> TraceStore::snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<TraceTree>(trees_.begin(), trees_.end());
}

std::string chrome_trace_json(const std::vector<TraceTree>& trees) {
    // Stable pid per tier so Perfetto groups spans by process tier.
    const auto tier_pid = [](const std::string& tier) {
        if (tier == "client") return 1;
        if (tier == "serve") return 2;
        if (tier == "worker") return 3;
        if (tier == "cache") return 4;
        return 5;
    };
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    std::vector<std::string> tiers_seen;
    for (const TraceTree& tree : trees) {
        for (const Span& span : tree.spans) {
            if (std::find(tiers_seen.begin(), tiers_seen.end(), span.tier) ==
                tiers_seen.end()) {
                tiers_seen.push_back(span.tier);
            }
        }
    }
    std::sort(tiers_seen.begin(), tiers_seen.end(),
              [&](const std::string& a, const std::string& b) {
                  return tier_pid(a) < tier_pid(b);
              });
    for (const std::string& tier : tiers_seen) {
        if (!first) out += ",\n";
        first = false;
        out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " +
               std::to_string(tier_pid(tier)) +
               ", \"tid\": 0, \"args\": {\"name\": " + json_string("sdlc " + tier) + "}}";
    }
    for (const TraceTree& tree : trees) {
        const std::string trace_id = trace_id_hex(tree.trace_hi, tree.trace_lo);
        for (const Span& span : tree.spans) {
            if (!first) out += ",\n";
            first = false;
            out += "{\"name\": " + json_string(span.name);
            out += ", \"cat\": \"sdlc\", \"ph\": \"X\"";
            out += ", \"pid\": " + std::to_string(tier_pid(span.tier));
            out += ", \"tid\": 1";
            out += ", \"ts\": " + json_number(span.start_s * 1e6);
            out += ", \"dur\": " + json_number(span.dur_s * 1e6);
            out += ", \"args\": {\"trace_id\": \"" + trace_id + "\"";
            out += ", \"request\": " + json_string(tree.request_id);
            out += ", \"span_id\": \"" + span_id_hex(span.span_id) + "\"";
            out += ", \"parent\": \"" + span_id_hex(span.parent_id) + "\"}}";
        }
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

}  // namespace sdlc::obs
