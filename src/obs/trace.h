// Request-scoped distributed tracing for the serve/cluster/cache tiers.
//
// A `TraceContext` (128-bit trace id + 64-bit span id) rides an optional
// `trace` field on sweep requests, coordinator shard sub-requests and
// cache_wire get/put lines; each process records named spans into a
// lock-sharded `SpanRecorder` through RAII `ScopedSpan` guards and returns
// them on existing response lines (a `spans` field on `done`/stats-style
// events), where the coordinator stitches them into one tree per request.
//
// Two invariants shape the design:
//   * An absent trace field means "not traced": every recording path is a
//     no-op behind one branch, and untraced request/response lines are
//     byte-identical to pre-tracing builds — sweep export bytes can never
//     depend on tracing (same rule as ServiceStats).
//   * Ids and timestamps are injectable (seeded splitmix64 generator,
//     pluggable clock), so single-threaded tests can golden-compare the
//     assembled Chrome trace-event JSON byte-for-byte.
#ifndef SDLC_OBS_TRACE_H
#define SDLC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sdlc {
struct JsonValue;
}  // namespace sdlc

namespace sdlc::obs {

/// Identity of one traced request (or of a sub-span of it) as propagated on
/// the wire. `span_id` names the span that children created under this
/// context attach to (0 = root, no parent).
struct TraceContext {
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    uint64_t span_id = 0;
    bool valid = false;
};

/// 32 lowercase hex chars for a 128-bit trace id; 16 for a 64-bit span id.
[[nodiscard]] std::string trace_id_hex(uint64_t hi, uint64_t lo);
[[nodiscard]] std::string span_id_hex(uint64_t id);

/// Strict inverses of the hex encoders: exactly 32 (resp. 16) lowercase hex
/// digits, nothing else.
[[nodiscard]] bool parse_trace_id_hex(std::string_view text, uint64_t& hi, uint64_t& lo);
[[nodiscard]] bool parse_span_id_hex(std::string_view text, uint64_t& id);

/// One completed span. Times are seconds relative to the recording
/// process's recorder epoch (per-process steady clock; cross-process skew
/// is expected and tolerated by the Chrome trace viewer).
struct Span {
    std::string name;
    std::string tier;  // process tier: "serve", "worker", "cache", "client"
    uint64_t span_id = 0;
    uint64_t parent_id = 0;
    double start_s = 0.0;
    double dur_s = 0.0;
};

/// Collects spans from many threads with sharded locks so eval-pool workers
/// never serialize on one mutex. Span ids come from a seeded splitmix64
/// stream and the clock is injectable — a fixed seed plus a fake clock make
/// recorded output fully deterministic in single-threaded tests.
class SpanRecorder {
public:
    /// `tier` labels every span recorded here; `clock` defaults to seconds
    /// since construction on the steady clock.
    explicit SpanRecorder(std::string tier, uint64_t seed = 0,
                          std::function<double()> clock = {});

    SpanRecorder(const SpanRecorder&) = delete;
    SpanRecorder& operator=(const SpanRecorder&) = delete;

    /// Next deterministic span id (never 0 — 0 means "no parent").
    [[nodiscard]] uint64_t new_span_id();

    /// Current time in recorder-epoch seconds.
    [[nodiscard]] double now() const;

    /// Appends one finished span (thread-safe). Spans with an empty tier
    /// inherit the recorder's tier label.
    void record(Span span);

    /// Drains every recorded span, sorted by (start_s, span_id) so the
    /// result is stable regardless of which shard each span landed in.
    [[nodiscard]] std::vector<Span> take();

    [[nodiscard]] const std::string& tier() const noexcept { return tier_; }

private:
    static constexpr size_t kShards = 8;
    struct Shard {
        std::mutex mutex;
        std::vector<Span> spans;
    };

    std::string tier_;
    std::atomic<uint64_t> id_state_;
    std::function<double()> clock_;
    std::chrono::steady_clock::time_point epoch_;
    Shard shards_[kShards];
};

/// RAII span guard: records `name` on the recorder from construction to
/// destruction (or stop()). Inert when `recorder` is null or `ctx` is
/// invalid — the untraced hot path pays one branch.
class ScopedSpan {
public:
    ScopedSpan() = default;
    ScopedSpan(SpanRecorder* recorder, const TraceContext& ctx, const char* name);
    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;
    ~ScopedSpan() { stop(); }

    /// Ends the span now (idempotent; the destructor is then a no-op).
    void stop();

    [[nodiscard]] bool active() const noexcept { return recorder_ != nullptr; }

    /// Context for children of this span (same trace, parent = this span).
    [[nodiscard]] TraceContext context() const noexcept { return ctx_; }

private:
    SpanRecorder* recorder_ = nullptr;
    const char* name_ = nullptr;
    TraceContext ctx_{};
    uint64_t parent_id_ = 0;
    double start_s_ = 0.0;
};

/// Thread-local trace binding: lets shared components (CostCache,
/// RemoteCostCache) record spans for the request currently executing on
/// this thread without threading a recorder through their interfaces.
struct TraceBinding {
    SpanRecorder* recorder = nullptr;
    TraceContext ctx{};
};

/// The binding installed on this thread ({nullptr, invalid} by default).
[[nodiscard]] const TraceBinding& current_binding() noexcept;

/// Installs a binding for the current scope and restores the previous one
/// on destruction (bindings nest).
class ScopedBinding {
public:
    ScopedBinding(SpanRecorder* recorder, const TraceContext& ctx);
    ScopedBinding(const ScopedBinding&) = delete;
    ScopedBinding& operator=(const ScopedBinding&) = delete;
    ~ScopedBinding();

private:
    TraceBinding saved_;
};

/// Serializes spans for the observability side-channel of a response line:
/// `[{"name": ..., "tier": ..., "id": ..., "parent": ..., "start": ...,
/// "dur": ...}, ...]`. Deterministic given the span list.
[[nodiscard]] std::string spans_wire_json(const std::vector<Span>& spans);

/// Strict inverse of spans_wire_json over an already-parsed JSON array.
/// Appends to `out`; returns false (with *error when non-null) on any
/// malformed entry.
[[nodiscard]] bool parse_spans_wire(const JsonValue& array, std::vector<Span>& out,
                                    std::string* error = nullptr);

/// One request's assembled spans (local + harvested from other tiers).
struct TraceTree {
    std::string request_id;
    uint64_t trace_hi = 0;
    uint64_t trace_lo = 0;
    std::vector<Span> spans;
};

/// Ring buffer of the last N completed request trees, served by the
/// `trace` request verb and drained into `--trace-out` at exit.
class TraceStore {
public:
    explicit TraceStore(size_t capacity = 64);

    void add(TraceTree tree);
    [[nodiscard]] std::vector<TraceTree> snapshot() const;

private:
    mutable std::mutex mutex_;
    size_t capacity_;
    std::deque<TraceTree> trees_;
};

/// Renders trees as Chrome trace-event JSON (Perfetto / chrome://tracing
/// loadable): one "X" duration event per span, pid per tier with
/// process_name metadata, timestamps in microseconds. Deterministic given
/// the tree list.
[[nodiscard]] std::string chrome_trace_json(const std::vector<TraceTree>& trees);

}  // namespace sdlc::obs

#endif  // SDLC_OBS_TRACE_H
