#include "serve/protocol.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "dse/export.h"
#include "dse/point_wire.h"
#include "util/json.h"
#include "util/json_parse.h"

namespace sdlc::serve {

namespace {

/// Ids are echoed into every event line; keep them short and printable.
constexpr size_t kMaxIdLength = 128;

/// Thrown internally by the field readers; parse_request converts it into
/// a RequestError with the carried code ("invalid_request" unless a more
/// specific code applies, e.g. "invalid_shard").
struct FieldError {
    std::string message;
    std::string code = "invalid_request";
};

[[noreturn]] void reject(const std::string& message) { throw FieldError{message}; }

[[noreturn]] void reject_shard(const std::string& message) {
    throw FieldError{message, "invalid_shard"};
}

bool read_bool(const JsonValue& v, const std::string& key) {
    if (!v.is_bool()) reject("\"" + key + "\" must be a boolean");
    return v.boolean;
}

int read_int(const JsonValue& v, const std::string& key) {
    if (!v.is_number() || v.number != std::floor(v.number) || std::abs(v.number) > 1e9) {
        reject("\"" + key + "\" must be an integer");
    }
    return static_cast<int>(v.number);
}

std::string read_string(const JsonValue& v, const std::string& key) {
    if (!v.is_string()) reject("\"" + key + "\" must be a string");
    return v.string;
}

/// Seeds and sample counts accept either a JSON number (exact up to 2^53)
/// or a string ("0x5d1c5eed" works; JSON itself has no hex literals).
uint64_t read_uint64(const JsonValue& v, const std::string& key) {
    if (v.is_string()) {
        // Stricter than strtoull alone: no leading whitespace or sign, and
        // out-of-range values are an error, not a silent clamp to 2^64-1.
        if (v.string.empty() || v.string[0] < '0' || v.string[0] > '9') {
            reject("\"" + key + "\" must be a non-negative integer string");
        }
        char* end = nullptr;
        errno = 0;
        const uint64_t parsed = std::strtoull(v.string.c_str(), &end, 0);
        if (end == nullptr || *end != '\0') reject("\"" + key + "\" is not a valid integer string");
        if (errno == ERANGE) reject("\"" + key + "\" is out of range for 64 bits");
        return parsed;
    }
    if (!v.is_number() || v.number != std::floor(v.number) || v.number < 0 ||
        v.number > 9007199254740992.0 /* 2^53: exact double-integer range */) {
        reject("\"" + key + "\" must be a non-negative integer (or a string)");
    }
    return static_cast<uint64_t>(v.number);
}

void check_known_keys(const JsonValue& obj, const std::string& what,
                      std::initializer_list<const char*> known) {
    for (const auto& [key, value] : obj.object) {
        (void)value;
        bool ok = false;
        for (const char* k : known) ok = ok || key == k;
        if (!ok) reject("unknown " + what + " field \"" + key + "\"");
    }
}

SweepSpec read_spec(const JsonValue& v) {
    if (!v.is_object()) reject("\"spec\" must be an object");
    check_known_keys(v, "spec", {"width", "widths", "min_depth", "max_depth", "variants",
                                 "schemes"});
    SweepSpec spec;
    const JsonValue* width = v.find("width");
    const JsonValue* widths = v.find("widths");
    if (width != nullptr && widths != nullptr) reject("give \"width\" or \"widths\", not both");
    if (width != nullptr) spec.widths = {read_int(*width, "width")};
    if (widths != nullptr) {
        if (!widths->is_array()) reject("\"widths\" must be an array of integers");
        spec.widths.clear();
        for (const JsonValue& w : widths->array) spec.widths.push_back(read_int(w, "widths"));
    }
    if (const JsonValue* d = v.find("min_depth")) spec.min_depth = read_int(*d, "min_depth");
    if (const JsonValue* d = v.find("max_depth")) spec.max_depth = read_int(*d, "max_depth");
    if (const JsonValue* variants = v.find("variants")) {
        if (!variants->is_array()) reject("\"variants\" must be an array of strings");
        spec.variants.clear();
        for (const JsonValue& name : variants->array) {
            MultiplierVariant variant;
            if (!parse_multiplier_variant(read_string(name, "variants"), variant)) {
                reject("unknown variant \"" + name.string + "\"");
            }
            spec.variants.push_back(variant);
        }
    }
    if (const JsonValue* schemes = v.find("schemes")) {
        if (!schemes->is_array()) reject("\"schemes\" must be an array of strings");
        spec.schemes.clear();
        for (const JsonValue& name : schemes->array) {
            AccumulationScheme scheme;
            if (!parse_accumulation_scheme(read_string(name, "schemes"), scheme)) {
                reject("unknown scheme \"" + name.string + "\"");
            }
            spec.schemes.push_back(scheme);
        }
    }
    return spec;
}

EvalOptions read_eval(const JsonValue& v) {
    if (!v.is_object()) reject("\"eval\" must be an object");
    // Thread count is deliberately absent: the service owns one shared
    // ThreadPool and a request cannot resize it.
    check_known_keys(v, "eval", {"seed", "samples", "exhaustive_max_width", "dist", "hardware",
                                 "hw_cache", "sliced", "exhaustive_widths"});
    EvalOptions eval;
    if (const JsonValue* seed = v.find("seed")) eval.seed = read_uint64(*seed, "seed");
    if (const JsonValue* samples = v.find("samples")) {
        eval.samples = read_uint64(*samples, "samples");
    }
    if (const JsonValue* w = v.find("exhaustive_max_width")) {
        eval.exhaustive_max_width = read_int(*w, "exhaustive_max_width");
    }
    if (const JsonValue* dist = v.find("dist")) {
        const std::string name = read_string(*dist, "dist");
        if (name == "uniform") eval.distribution = OperandDistribution::kUniform;
        else if (name == "gaussian") eval.distribution = OperandDistribution::kGaussian;
        else if (name == "sparse") eval.distribution = OperandDistribution::kSparse;
        else reject("unknown distribution \"" + name + "\"");
    }
    if (const JsonValue* hw = v.find("hardware")) {
        eval.evaluate_hardware = read_bool(*hw, "hardware");
    }
    if (const JsonValue* cache = v.find("hw_cache")) {
        eval.use_hw_cache = read_bool(*cache, "hw_cache");
    }
    if (const JsonValue* sliced = v.find("sliced")) {
        eval.use_sliced = read_bool(*sliced, "sliced");
    }
    // Per-path exhaustive cutoffs, resolved by the submitting edge (tool or
    // coordinator). Integers only — the machine-dependent calibration never
    // crosses the wire, so every replica runs the same engine per point.
    if (const JsonValue* widths = v.find("exhaustive_widths")) {
        if (!widths->is_object()) reject("\"exhaustive_widths\" must be an object");
        check_known_keys(*widths, "exhaustive_widths",
                         {"accurate", "fast2", "planned", "sliced"});
        if (const JsonValue* w = widths->find("accurate")) {
            eval.exhaustive_width_accurate = read_int(*w, "accurate");
        }
        if (const JsonValue* w = widths->find("fast2")) {
            eval.exhaustive_width_fast2 = read_int(*w, "fast2");
        }
        if (const JsonValue* w = widths->find("planned")) {
            eval.exhaustive_width_planned = read_int(*w, "planned");
        }
        if (const JsonValue* w = widths->find("sliced")) {
            eval.exhaustive_width_sliced = read_int(*w, "sliced");
        }
    }
    return eval;
}

ObjectiveSet read_objectives(const JsonValue& v) {
    if (!v.is_array()) reject("\"objectives\" must be an array of strings");
    std::vector<std::string> names;
    for (const JsonValue& name : v.array) names.push_back(read_string(name, "objectives"));
    ObjectiveSet set;
    std::string error;
    if (!parse_objective_set(names, set, &error)) reject(error);
    return set;
}

}  // namespace

const char* request_type_name(RequestType t) noexcept {
    switch (t) {
        case RequestType::kSweep: return "sweep";
        case RequestType::kStats: return "stats";
        case RequestType::kMetrics: return "metrics";
        case RequestType::kTrace: return "trace";
        case RequestType::kCancel: return "cancel";
        case RequestType::kShutdown: return "shutdown";
    }
    return "?";
}

bool parse_request(const std::string& line, size_t max_bytes, SweepRequest& out,
                   RequestError& err) {
    err = RequestError{};
    if (line.size() > max_bytes) {
        err.code = "too_large";
        err.message = "request line is " + std::to_string(line.size()) + " bytes (limit " +
                      std::to_string(max_bytes) + ")";
        return false;
    }
    JsonValue root;
    std::string parse_error;
    if (!json_parse(line, root, &parse_error)) {
        err.code = "parse_error";
        err.message = parse_error;
        return false;
    }
    // Best-effort id extraction so even a schema-invalid request gets its
    // error events tagged with the id the client sent.
    if (const JsonValue* id = root.find("id"); id != nullptr && id->is_string()) {
        err.id = id->string.substr(0, kMaxIdLength);
    }
    try {
        if (!root.is_object()) reject("request must be a JSON object");
        const JsonValue* id = root.find("id");
        if (id == nullptr) reject("missing \"id\"");
        out = SweepRequest{};
        out.id = read_string(*id, "id");
        if (out.id.empty()) reject("\"id\" must be non-empty");
        if (out.id.size() > kMaxIdLength) reject("\"id\" exceeds 128 characters");

        out.type = RequestType::kSweep;
        if (const JsonValue* type = root.find("type")) {
            const std::string name = read_string(*type, "type");
            if (name == "sweep") out.type = RequestType::kSweep;
            else if (name == "stats") out.type = RequestType::kStats;
            else if (name == "metrics") out.type = RequestType::kMetrics;
            else if (name == "trace") out.type = RequestType::kTrace;
            else if (name == "cancel") out.type = RequestType::kCancel;
            else if (name == "shutdown") out.type = RequestType::kShutdown;
            else reject("unknown request type \"" + name + "\"");
        }

        switch (out.type) {
            case RequestType::kSweep:
                check_known_keys(root, "request", {"id", "type", "spec", "eval", "objectives",
                                                   "stream_points", "export", "deadline_ms",
                                                   "chunk_bytes", "shard", "point_bits",
                                                   "trace"});
                if (const JsonValue* spec = root.find("spec")) out.spec = read_spec(*spec);
                if (const JsonValue* eval = root.find("eval")) out.eval = read_eval(*eval);
                if (const JsonValue* objectives = root.find("objectives")) {
                    out.objectives = read_objectives(*objectives);
                }
                if (const JsonValue* stream = root.find("stream_points")) {
                    out.stream_points = read_bool(*stream, "stream_points");
                }
                if (const JsonValue* exp = root.find("export")) {
                    out.export_json = read_bool(*exp, "export");
                }
                if (const JsonValue* deadline = root.find("deadline_ms")) {
                    out.deadline_ms = read_uint64(*deadline, "deadline_ms");
                    if (out.deadline_ms == 0) reject("\"deadline_ms\" must be >= 1");
                    // ~11.5 days. Anything bigger is "no deadline" in intent
                    // but would overflow the steady_clock arithmetic
                    // (milliseconds -> int64 nanoseconds) downstream.
                    if (out.deadline_ms > 1000000000) {
                        reject("\"deadline_ms\" must be <= 1000000000");
                    }
                }
                if (const JsonValue* chunk = root.find("chunk_bytes")) {
                    out.chunk_bytes = static_cast<size_t>(read_uint64(*chunk, "chunk_bytes"));
                    // A floor keeps a hostile client from turning one export
                    // into millions of one-byte events.
                    if (out.chunk_bytes < 16) reject("\"chunk_bytes\" must be >= 16");
                }
                if (const JsonValue* shard = root.find("shard")) {
                    if (!shard->is_object()) reject("\"shard\" must be an object");
                    check_known_keys(*shard, "shard", {"lo", "hi"});
                    const JsonValue* lo = shard->find("lo");
                    const JsonValue* hi = shard->find("hi");
                    if (lo == nullptr || hi == nullptr) {
                        reject("\"shard\" requires both \"lo\" and \"hi\"");
                    }
                    out.shard_lo = static_cast<size_t>(read_uint64(*lo, "lo"));
                    out.shard_hi = static_cast<size_t>(read_uint64(*hi, "hi"));
                    // Validate against the enumeration size right here: a
                    // contradictory range gets its own structured code so a
                    // coordinator can tell a planning bug from a typo'd spec.
                    size_t space = 0;
                    try {
                        space = out.spec.count();
                    } catch (const std::invalid_argument& e) {
                        reject(e.what());  // the spec itself is the problem
                    }
                    if (out.shard_lo >= out.shard_hi) {
                        reject_shard("\"shard\" range [" + std::to_string(out.shard_lo) +
                                     ", " + std::to_string(out.shard_hi) + ") is empty");
                    }
                    if (out.shard_hi > space) {
                        reject_shard("\"shard\" hi " + std::to_string(out.shard_hi) +
                                     " exceeds the spec's " + std::to_string(space) +
                                     " points");
                    }
                }
                if (const JsonValue* bits = root.find("point_bits")) {
                    out.point_bits = read_bool(*bits, "point_bits");
                }
                if (const JsonValue* trace = root.find("trace")) {
                    if (!trace->is_object()) reject("\"trace\" must be an object");
                    check_known_keys(*trace, "trace", {"id", "span"});
                    const JsonValue* trace_id = trace->find("id");
                    if (trace_id == nullptr || !trace_id->is_string() ||
                        !obs::parse_trace_id_hex(trace_id->string, out.trace.trace_hi,
                                                 out.trace.trace_lo)) {
                        reject("\"trace\" requires \"id\": 32 lowercase hex digits");
                    }
                    if (const JsonValue* span = trace->find("span")) {
                        if (!span->is_string() ||
                            !obs::parse_span_id_hex(span->string, out.trace.span_id)) {
                            reject("\"trace\" \"span\" must be 16 lowercase hex digits");
                        }
                    }
                    out.trace.valid = true;
                }
                break;
            case RequestType::kCancel: {
                check_known_keys(root, "request", {"id", "type", "target"});
                const JsonValue* target = root.find("target");
                if (target == nullptr) reject("cancel requires \"target\"");
                out.target = read_string(*target, "target");
                if (out.target.empty()) reject("\"target\" must be non-empty");
                break;
            }
            case RequestType::kStats:
            case RequestType::kMetrics:
            case RequestType::kTrace:
            case RequestType::kShutdown:
                check_known_keys(root, "request", {"id", "type"});
                break;
        }
        return true;
    } catch (const FieldError& field) {
        err.code = field.code;
        err.message = field.message;
        return false;
    }
}

// ---- event emission ----

namespace {

std::string event_head(const std::string& id, const char* event) {
    return "{\"id\": " + json_string(id) + ", \"event\": \"" + event + "\"";
}

}  // namespace

std::string accepted_event(const std::string& id, RequestType type, size_t points,
                           const std::string& spec_summary) {
    std::string out = event_head(id, "accepted");
    out += ", \"type\": \"" + std::string(request_type_name(type)) + "\"";
    out += ", \"points\": " + std::to_string(points);
    out += ", \"spec\": " + json_string(spec_summary);
    out += "}";
    return out;
}

std::string point_event(const std::string& id, size_t index, const DesignPoint& point,
                        bool with_bits) {
    // Rank is unknowable mid-stream (dominance needs the whole sweep); the
    // exported rows carry it instead.
    std::string out = event_head(id, "point");
    out += ", \"index\": " + std::to_string(index);
    out += ", \"point\": " + dse_point_json(point, /*rank=*/-1);
    if (with_bits) out += ", \"bits\": \"" + design_point_bits(point) + "\"";
    out += "}";
    return out;
}

std::string summary_event(const std::string& id, const SweepStats& stats, size_t frontier_size,
                          const ObjectiveSet& objectives) {
    std::string out = event_head(id, "summary");
    out += ", \"points\": " + std::to_string(stats.points);
    out += ", \"frontier\": " + std::to_string(frontier_size);
    out += ", \"objectives\": " + objective_set_json(objectives);
    out += ", \"hw_cache\": {\"enabled\": ";
    out += stats.hw_cache_enabled ? "true" : "false";
    out += ", \"hits\": " + std::to_string(stats.hw_cache_hits);
    out += ", \"misses\": " + std::to_string(stats.hw_cache_misses);
    out += "}}";
    return out;
}

std::string result_event(const std::string& id, const std::string& dse_json) {
    std::string out = event_head(id, "result");
    out += ", \"format\": \"dse_json\"";
    out += ", \"data\": " + json_string(dse_json);
    out += "}";
    return out;
}

std::string result_chunk_event(const std::string& id, size_t seq, bool last,
                               std::string_view data) {
    std::string out = event_head(id, "result_chunk");
    out += ", \"format\": \"dse_json\"";
    out += ", \"seq\": " + std::to_string(seq);
    out += ", \"last\": ";
    out += last ? "true" : "false";
    out += ", \"data\": " + json_string(std::string(data));
    out += "}";
    return out;
}

std::string metrics_event(const std::string& id, const std::string& prometheus) {
    std::string out = event_head(id, "metrics");
    out += ", \"format\": \"prometheus\"";
    out += ", \"data\": " + json_string(prometheus);
    out += "}";
    return out;
}

void ClusterCounters::add(const ClusterCounters& other) {
    enabled = enabled || other.enabled;
    if (other.shards != 0) shards = other.shards;
    sweeps += other.sweeps;
    local_shards += other.local_shards;
    if (workers.size() < other.workers.size()) workers.resize(other.workers.size());
    for (size_t i = 0; i < other.workers.size(); ++i) {
        ClusterWorkerCounters& mine = workers[i];
        const ClusterWorkerCounters& theirs = other.workers[i];
        if (mine.spec.empty()) mine.spec = theirs.spec;
        mine.dispatched += theirs.dispatched;
        mine.completed += theirs.completed;
        mine.retried += theirs.retried;
        mine.bytes += theirs.bytes;
        mine.busy_seconds += theirs.busy_seconds;
    }
}

std::string stats_event(const std::string& id, const ServiceStats& stats) {
    std::string out = event_head(id, "stats");
    out += ", \"requests\": {\"accepted\": " + std::to_string(stats.accepted);
    out += ", \"completed\": " + std::to_string(stats.completed);
    out += ", \"failed\": " + std::to_string(stats.failed);
    out += ", \"cancelled\": " + std::to_string(stats.cancelled);
    out += ", \"deadline_exceeded\": " + std::to_string(stats.deadline_exceeded);
    out += ", \"overloaded\": " + std::to_string(stats.overloaded);
    out += "}, \"points_evaluated\": " + std::to_string(stats.points_evaluated);
    out += ", \"hw_cache\": {\"hits\": " + std::to_string(stats.cache_hits);
    out += ", \"misses\": " + std::to_string(stats.cache_misses);
    out += ", \"entries\": " + std::to_string(stats.cache_entries);
    out += "}, \"remote_cache\": {\"enabled\": ";
    out += stats.remote_cache.enabled ? "true" : "false";
    out += ", \"hits\": " + std::to_string(stats.remote_cache.hits);
    out += ", \"misses\": " + std::to_string(stats.remote_cache.misses);
    out += ", \"errors\": " + std::to_string(stats.remote_cache.errors);
    out += ", \"timeouts\": " + std::to_string(stats.remote_cache.timeouts);
    out += ", \"puts\": " + std::to_string(stats.remote_cache.puts);
    out += ", \"replica_hits\": " + std::to_string(stats.remote_cache.replica_hits);
    out += ", \"read_repairs\": " + std::to_string(stats.remote_cache.read_repairs);
    out += "}, \"queue_depth\": " + std::to_string(stats.queue_depth);
    out += ", \"in_flight\": " + std::to_string(stats.in_flight);
    out += ", \"busy_seconds\": " + json_number(stats.busy_seconds);
    if (stats.cluster.enabled) {
        // Only a coordinator emits this section, so plain servers' stats
        // events are byte-for-byte what they were before clustering existed.
        out += ", \"cluster\": {\"shards\": " + std::to_string(stats.cluster.shards);
        out += ", \"sweeps\": " + std::to_string(stats.cluster.sweeps);
        out += ", \"local_shards\": " + std::to_string(stats.cluster.local_shards);
        out += ", \"workers\": [";
        for (size_t i = 0; i < stats.cluster.workers.size(); ++i) {
            const ClusterWorkerCounters& w = stats.cluster.workers[i];
            if (i != 0) out += ", ";
            out += "{\"spec\": " + json_string(w.spec);
            out += ", \"dispatched\": " + std::to_string(w.dispatched);
            out += ", \"completed\": " + std::to_string(w.completed);
            out += ", \"retried\": " + std::to_string(w.retried);
            out += ", \"bytes\": " + std::to_string(w.bytes);
            out += ", \"busy_seconds\": " + json_number(w.busy_seconds);
            out += "}";
        }
        out += "]}";
    }
    out += "}";
    return out;
}

std::string error_event(const std::string& id, const std::string& code,
                        const std::string& message) {
    std::string out = event_head(id, "error");
    out += ", \"code\": " + json_string(code);
    out += ", \"message\": " + json_string(message);
    out += "}";
    return out;
}

std::string done_event(const std::string& id, bool ok,
                       const std::vector<obs::Span>& spans) {
    std::string out = event_head(id, "done");
    out += ", \"ok\": ";
    out += ok ? "true" : "false";
    if (!spans.empty()) {
        // Only traced requests carry spans, so untraced done events keep
        // their exact historical bytes (same gating as the stats event's
        // cluster section).
        out += ", \"spans\": " + obs::spans_wire_json(spans);
    }
    out += "}";
    return out;
}

std::string trace_event(const std::string& id, const std::vector<obs::TraceTree>& trees) {
    std::string out = event_head(id, "trace");
    out += ", \"trees\": [";
    for (size_t i = 0; i < trees.size(); ++i) {
        const obs::TraceTree& tree = trees[i];
        if (i != 0) out += ", ";
        out += "{\"request\": " + json_string(tree.request_id);
        out += ", \"trace_id\": \"" + obs::trace_id_hex(tree.trace_hi, tree.trace_lo) + "\"";
        out += ", \"spans\": " + obs::spans_wire_json(tree.spans) + "}";
    }
    out += "]}";
    return out;
}

std::string sweep_request_json(const SweepRequest& request) {
    std::string out = "{\"id\": " + json_string(request.id) + ", \"type\": \"sweep\"";

    out += ", \"spec\": {\"widths\": [";
    for (size_t i = 0; i < request.spec.widths.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(request.spec.widths[i]);
    }
    out += "], \"min_depth\": " + std::to_string(request.spec.min_depth);
    out += ", \"max_depth\": " + std::to_string(request.spec.max_depth);
    out += ", \"variants\": [";
    for (size_t i = 0; i < request.spec.variants.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + std::string(multiplier_variant_name(request.spec.variants[i])) + "\"";
    }
    out += "], \"schemes\": [";
    for (size_t i = 0; i < request.spec.schemes.size(); ++i) {
        if (i != 0) out += ", ";
        out += "\"" + std::string(accumulation_scheme_name(request.spec.schemes[i])) + "\"";
    }
    out += "]}";

    // Seed and samples ride as decimal strings: exact for the full 64-bit
    // range, where a JSON number would silently round past 2^53.
    out += ", \"eval\": {\"seed\": \"" + std::to_string(request.eval.seed) + "\"";
    out += ", \"samples\": \"" + std::to_string(request.eval.samples) + "\"";
    out += ", \"exhaustive_max_width\": " + std::to_string(request.eval.exhaustive_max_width);
    out += ", \"dist\": \"" +
           std::string(operand_distribution_name(request.eval.distribution)) + "\"";
    out += ", \"hardware\": ";
    out += request.eval.evaluate_hardware ? "true" : "false";
    out += ", \"hw_cache\": ";
    out += request.eval.use_hw_cache ? "true" : "false";
    // Non-default engine knobs only: a request with default options must
    // serialize to its exact historical bytes.
    if (!request.eval.use_sliced) out += ", \"sliced\": false";
    if (request.eval.exhaustive_width_accurate != 0 ||
        request.eval.exhaustive_width_fast2 != 0 ||
        request.eval.exhaustive_width_planned != 0 ||
        request.eval.exhaustive_width_sliced != 0) {
        out += ", \"exhaustive_widths\": {\"accurate\": " +
               std::to_string(request.eval.exhaustive_width_accurate);
        out += ", \"fast2\": " + std::to_string(request.eval.exhaustive_width_fast2);
        out += ", \"planned\": " + std::to_string(request.eval.exhaustive_width_planned);
        out += ", \"sliced\": " + std::to_string(request.eval.exhaustive_width_sliced);
        out += "}";
    }
    out += "}";

    out += ", \"objectives\": " + objective_set_json(request.objectives);
    out += ", \"stream_points\": ";
    out += request.stream_points ? "true" : "false";
    out += ", \"export\": ";
    out += request.export_json ? "true" : "false";
    if (request.deadline_ms > 0) {
        out += ", \"deadline_ms\": " + std::to_string(request.deadline_ms);
    }
    if (request.chunk_bytes > 0) {
        out += ", \"chunk_bytes\": " + std::to_string(request.chunk_bytes);
    }
    if (request.shard_lo != 0 || request.shard_hi != 0) {
        out += ", \"shard\": {\"lo\": " + std::to_string(request.shard_lo);
        out += ", \"hi\": " + std::to_string(request.shard_hi) + "}";
    }
    if (request.point_bits) out += ", \"point_bits\": true";
    if (request.trace.valid) {
        out += ", \"trace\": {\"id\": \"" +
               obs::trace_id_hex(request.trace.trace_hi, request.trace.trace_lo) + "\"";
        out += ", \"span\": \"" + obs::span_id_hex(request.trace.span_id) + "\"}";
    }
    out += "}";
    return out;
}

void emit_sweep_results(ResponseSink& sink, const SweepRequest& request,
                        const std::vector<DesignPoint>& points, const SweepStats& stats,
                        obs::SpanRecorder* recorder) {
    obs::ScopedSpan rank_span(recorder, request.trace, "pareto_rank");
    const ParetoResult pareto = pareto_analysis(objective_matrix(points, request.objectives));
    rank_span.stop();
    obs::ScopedSpan serialize_span(recorder, request.trace, "serialize");
    sink.write_line(summary_event(request.id, stats, pareto.frontier.size(),
                                  request.objectives));
    if (request.export_json) {
        if (request.chunk_bytes > 0) {
            // Stream the export through a chunker: bounded event sizes,
            // sequence numbers, and O(chunk) peak buffering. The chunks
            // byte-concatenate to exactly the unchunked payload.
            ResultChunker chunker(sink, request.id, request.chunk_bytes);
            dse_json_stream(points, pareto.rank, stats, request.objectives,
                            [&chunker](std::string_view piece) { chunker.feed(piece); });
            chunker.finish();
        } else {
            sink.write_line(result_event(
                request.id, dse_to_json(points, pareto.rank, stats, request.objectives)));
        }
    }
}

void ResultChunker::feed(std::string_view piece) {
    buffer_.append(piece);
    // Flush only while *more* than one chunk is buffered: the final
    // chunk-sized remainder waits for finish(), which is what guarantees
    // the last chunk is never empty.
    while (buffer_.size() > chunk_bytes_) {
        sink_.write_line(result_chunk_event(id_, seq_, /*last=*/false,
                                            std::string_view(buffer_).substr(0, chunk_bytes_)));
        ++seq_;
        buffer_.erase(0, chunk_bytes_);
    }
}

void ResultChunker::finish() {
    sink_.write_line(result_chunk_event(id_, seq_, /*last=*/true, buffer_));
    ++seq_;
    buffer_.clear();
}

}  // namespace sdlc::serve
