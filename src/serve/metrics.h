// Prometheus text-format (exposition format version 0.0.4) rendering of
// ServiceStats.
//
// The service is scraped through the protocol rather than an HTTP port: a
// `{"type": "metrics"}` request answers with a `metrics` event whose
// `data` field holds exactly this text, and `serve_tool --scrape` decodes
// it back to the raw exposition format for a node-exporter textfile
// collector or any other pull pipeline. Counters are monotonic since
// service start; gauges are momentary; the request-latency histogram
// follows the cumulative-`le` bucket convention.
#ifndef SDLC_SERVE_METRICS_H
#define SDLC_SERVE_METRICS_H

#include <string>

#include "serve/protocol.h"

namespace sdlc::serve {

/// Metric name prefix ("sdlc_serve_").
inline constexpr const char* kMetricsPrefix = "sdlc_serve_";

/// Renders `stats` as Prometheus text format (trailing newline included).
[[nodiscard]] std::string prometheus_metrics(const ServiceStats& stats);

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_METRICS_H
