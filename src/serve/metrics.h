// Prometheus text-format (exposition format version 0.0.4) rendering of
// ServiceStats.
//
// The service is scraped through the protocol rather than an HTTP port: a
// `{"type": "metrics"}` request answers with a `metrics` event whose
// `data` field holds exactly this text, and `serve_tool --scrape` decodes
// it back to the raw exposition format for a node-exporter textfile
// collector or any other pull pipeline. Counters are monotonic since
// service start; gauges are momentary; the request-latency histogram
// follows the cumulative-`le` bucket convention.
#ifndef SDLC_SERVE_METRICS_H
#define SDLC_SERVE_METRICS_H

#include <string>

#include "dse/cache_wire.h"
#include "serve/protocol.h"

namespace sdlc::serve {

/// Metric name prefix ("sdlc_serve_").
inline constexpr const char* kMetricsPrefix = "sdlc_serve_";

/// Build version surfaced as sdlc_serve_build_info{version="..."} (and the
/// cache daemon's sdlc_cache_build_info). Bumped with the protocol.
inline constexpr const char* kBuildVersion = "0.8.0";

/// Renders `stats` as Prometheus text format (trailing newline included).
[[nodiscard]] std::string prometheus_metrics(const ServiceStats& stats);

/// Renders cache-daemon stats as Prometheus text format (sdlc_cache_*).
/// Shared by `cache_tool --scrape` and the daemon's GET /metrics so the
/// two scrape paths can never drift apart.
[[nodiscard]] std::string cache_prometheus_metrics(const CacheDaemonStats& stats);

/// Structural validator for Prometheus exposition text (version 0.0.4):
/// every line must be a comment or a `name[{labels}] value` sample with a
/// parseable float value, and at least one sample must be present. The
/// --scrape paths run scraped text through this so a daemon answering
/// garbage fails the scrape (exit 3) instead of poisoning a collector.
[[nodiscard]] bool validate_exposition(const std::string& text, std::string* error = nullptr);

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_METRICS_H
