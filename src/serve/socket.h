// Unix-domain socket transport for the DSE service (POSIX).
//
// The service itself is transport-agnostic (it talks ResponseSink); this
// file supplies the pieces `serve_tool` composes into a socket server and
// client: a listener whose accept() can be unblocked from another thread,
// a connect helper, a buffered line reader, and an FdSink that writes
// NDJSON lines to a connected peer. A peer that disappears mid-stream must
// not take the service down, so FdSink swallows write errors (further
// lines are dropped) instead of throwing into the evaluator.
#ifndef SDLC_SERVE_SOCKET_H
#define SDLC_SERVE_SOCKET_H

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/sink.h"

namespace sdlc::serve {

/// Listening Unix-domain stream socket bound to a filesystem path. The
/// path is unlinked on construction (stale socket files from a previous
/// run would otherwise fail the bind) and again on destruction.
class UnixSocketServer {
public:
    /// Binds and listens; throws std::runtime_error on failure.
    explicit UnixSocketServer(const std::string& path);
    ~UnixSocketServer();

    UnixSocketServer(const UnixSocketServer&) = delete;
    UnixSocketServer& operator=(const UnixSocketServer&) = delete;

    /// Returned by accept_client when `timeout_ms` elapsed with no client.
    static constexpr int kTimeout = -2;

    /// Blocks for the next client; returns the connection fd (caller owns
    /// and closes it), -1 once close() was called, or kTimeout after
    /// `timeout_ms` milliseconds with no connection (-1 = wait forever).
    /// A timeout gives a server loop a periodic tick for housekeeping
    /// (reaping finished connections) even when no client ever connects.
    [[nodiscard]] int accept_client(int timeout_ms = -1);

    /// Unblocks any accept_client() in progress and stops accepting.
    void close();

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
    int fd_ = -1;
    std::atomic<bool> closed_{false};
};

/// Connects to a listening Unix-domain socket; returns the fd (caller owns
/// it). Throws std::runtime_error on failure.
[[nodiscard]] int unix_socket_connect(const std::string& path);

/// Writes all of `data`, retrying short writes. Returns false on error
/// (e.g. the peer closed the connection).
bool write_all(int fd, std::string_view data);

/// Buffered newline-delimited reader over a file descriptor.
class LineReader {
public:
    /// `max_line` bounds the partial-line buffer (0 = unbounded). A server
    /// must pass its request-size cap (plus slack): the protocol-level
    /// too_large rejection only fires once a complete line exists, so
    /// without this bound a peer streaming bytes with no newline would
    /// grow the buffer without limit.
    explicit LineReader(int fd, size_t max_line = 0) : fd_(fd), max_line_(max_line) {}

    /// Reads the next '\n'-terminated line (newline stripped) into `line`.
    /// Returns false on EOF, read error, or an over-long unterminated
    /// line. A final unterminated (but in-bounds) line at clean EOF is
    /// still delivered; bytes truncated by a read *error* are discarded —
    /// a half-received request must never execute.
    bool next(std::string& line);

    /// True when the stream ended because an unterminated line outgrew
    /// `max_line` — lets a server answer with a too_large error event
    /// before dropping the connection, matching the protocol contract.
    [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

private:
    int fd_;
    size_t max_line_;
    std::string buffer_;
    bool eof_ = false;
    bool overflowed_ = false;
};

/// ResponseSink writing NDJSON lines to a socket/pipe fd. Write failures
/// (broken peer) put the sink into a dropped state: later lines are
/// discarded silently.
///
/// With owns_fd the destructor closes the fd — a server shares one FdSink
/// per connection between its reader thread and any in-flight requests
/// (via shared_ptr), so "last reference gone" is exactly the moment the
/// descriptor can be closed without racing a late response or letting the
/// kernel reuse the fd number under a still-streaming request.
///
/// Owned (server-side) sockets also get a send timeout: write_line runs on
/// shared ThreadPool workers under the evaluator's ordered-emission lock,
/// so a peer that stops reading must flip the sink to dropped after a
/// bounded stall instead of wedging every in-flight sweep forever.
class FdSink final : public ResponseSink {
public:
    /// Seconds a blocked send may stall before the sink drops the peer
    /// (owned sockets only; 0 disables).
    static constexpr int kSendTimeoutSeconds = 30;

    explicit FdSink(int fd, bool owns_fd = false);
    ~FdSink() override;

    void write_line(const std::string& line) override;

    /// True once a write failed and the sink started dropping lines.
    [[nodiscard]] bool dropped() const;

private:
    mutable std::mutex mutex_;
    int fd_;
    bool owns_fd_;
    bool dropped_ = false;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_SOCKET_H
