// Stream-socket transports for the DSE service (POSIX): Unix-domain and
// TCP.
//
// The service itself is transport-agnostic (it talks ResponseSink); this
// file supplies the pieces `serve_tool` composes into a socket server and
// client: listeners whose accept() can be unblocked from another thread,
// connect helpers, a buffered line reader, and an FdSink that writes
// NDJSON lines to a connected peer. Both listeners share one accept/close
// implementation (SocketListener), so the TCP path reuses the Unix path's
// timeout tick, EINTR handling and fd-exhaustion backoff — only the bind
// differs. A peer that disappears mid-stream must not take the service
// down, so FdSink swallows write errors (further lines are dropped)
// instead of throwing into the evaluator.
#ifndef SDLC_SERVE_SOCKET_H
#define SDLC_SERVE_SOCKET_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/sink.h"

namespace sdlc::serve {

class FaultInjector;  // serve/fault.h

/// Accept/close machinery shared by every listening stream socket. The
/// derived class binds + listens and hands the fd over; accept_client and
/// close are transport-independent from there.
class SocketListener {
public:
    virtual ~SocketListener();

    SocketListener(const SocketListener&) = delete;
    SocketListener& operator=(const SocketListener&) = delete;

    /// Returned by accept_client when `timeout_ms` elapsed with no client.
    static constexpr int kTimeout = -2;

    /// Blocks for the next client; returns the connection fd (caller owns
    /// and closes it), -1 once close() was called, or kTimeout after
    /// `timeout_ms` milliseconds with no connection (-1 = wait forever).
    /// A timeout gives a server loop a periodic tick for housekeeping
    /// (reaping finished connections) even when no client ever connects.
    [[nodiscard]] int accept_client(int timeout_ms = -1);

    /// Unblocks any accept_client() in progress and stops accepting.
    void close();

    /// Human-readable endpoint ("unix:/tmp/dse.sock", "tcp:127.0.0.1:8331").
    [[nodiscard]] const std::string& endpoint() const noexcept { return endpoint_; }

protected:
    SocketListener() = default;

    int fd_ = -1;
    std::string endpoint_;

private:
    std::atomic<bool> closed_{false};
};

/// Listening Unix-domain stream socket bound to a filesystem path. The
/// path is unlinked on construction (stale socket files from a previous
/// run would otherwise fail the bind) and again on destruction.
class UnixSocketServer final : public SocketListener {
public:
    /// Binds and listens; throws std::runtime_error on failure.
    explicit UnixSocketServer(const std::string& path);
    ~UnixSocketServer() override;

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
};

/// Listening TCP stream socket (IPv4/IPv6 via getaddrinfo, SO_REUSEADDR).
/// Port 0 binds an ephemeral port; port() reports the one the kernel
/// chose, so tests and supervisors can bind first and publish after.
class TcpSocketServer final : public SocketListener {
public:
    /// Binds `host:port` and listens; throws std::runtime_error on failure
    /// (unresolvable host, port in use). An empty host means all
    /// interfaces.
    TcpSocketServer(const std::string& host, uint16_t port);

    /// The actually bound port (resolves port 0).
    [[nodiscard]] uint16_t port() const noexcept { return port_; }

private:
    uint16_t port_ = 0;
};

/// Connects to a listening Unix-domain socket; returns the fd (caller owns
/// it). `timeout_ms` bounds the connect itself (non-blocking connect +
/// poll; -1 = block indefinitely, the classic behavior). Throws
/// std::runtime_error on failure or timeout.
[[nodiscard]] int unix_socket_connect(const std::string& path, int timeout_ms = -1);

/// Connects to host:port over TCP; returns the fd (caller owns it).
/// `timeout_ms` bounds each address's connect attempt (name resolution is
/// not covered; pass numeric peers when that matters). Throws
/// std::runtime_error on failure or timeout.
[[nodiscard]] int tcp_connect(const std::string& host, uint16_t port, int timeout_ms = -1);

/// Splits "HOST:PORT" at the last colon ("[::1]:70" style brackets are
/// stripped from the host; an empty host — ":8331" — is allowed and means
/// all interfaces when listening). Returns false with a message in *error
/// (when non-null) on a missing or invalid port. Listener specs keep the
/// default `allow_port_zero` (port 0 = bind an ephemeral port); specs that
/// name a peer to *connect to* (--cache-peers, --workers, client --tcp)
/// pass false, because connecting to port 0 can only fail later with a
/// bare errno — rejecting it at flag parse is the useful error.
[[nodiscard]] bool parse_host_port(const std::string& spec, std::string& host, uint16_t& port,
                                   std::string* error = nullptr, bool allow_port_zero = true);

/// Writes all of `data`, retrying short writes. Returns false on error
/// (e.g. the peer closed the connection).
bool write_all(int fd, std::string_view data);

/// Buffered newline-delimited reader over a file descriptor.
class LineReader {
public:
    /// `max_line` bounds the partial-line buffer (0 = unbounded). A server
    /// must pass its request-size cap (plus slack): the protocol-level
    /// too_large rejection only fires once a complete line exists, so
    /// without this bound a peer streaming bytes with no newline would
    /// grow the buffer without limit.
    explicit LineReader(int fd, size_t max_line = 0) : fd_(fd), max_line_(max_line) {}

    /// Reads the next '\n'-terminated line (newline stripped) into `line`.
    /// Returns false on EOF, read error, or an over-long unterminated
    /// line. A final unterminated (but in-bounds) line at clean EOF is
    /// still delivered; bytes truncated by a read *error* are discarded —
    /// a half-received request must never execute.
    bool next(std::string& line);

    /// True when the stream ended because an unterminated line outgrew
    /// `max_line` — lets a server answer with a too_large error event
    /// before dropping the connection, matching the protocol contract.
    [[nodiscard]] bool overflowed() const noexcept { return overflowed_; }

private:
    int fd_;
    size_t max_line_;
    std::string buffer_;
    bool eof_ = false;
    bool overflowed_ = false;
};

/// ResponseSink writing NDJSON lines to a socket/pipe fd. Write failures
/// (broken peer) put the sink into a dropped state: later lines are
/// discarded silently.
///
/// With owns_fd the destructor closes the fd — a server shares one FdSink
/// per connection between its reader thread and any in-flight requests
/// (via shared_ptr), so "last reference gone" is exactly the moment the
/// descriptor can be closed without racing a late response or letting the
/// kernel reuse the fd number under a still-streaming request.
///
/// Owned (server-side) sockets also get a send timeout: write_line runs on
/// shared ThreadPool workers under the evaluator's ordered-emission lock,
/// so a peer that stops reading must flip the sink to dropped after a
/// bounded stall instead of wedging every in-flight sweep forever.
class FdSink final : public ResponseSink {
public:
    /// Seconds a blocked send may stall before the sink drops the peer
    /// (owned sockets only; 0 disables).
    static constexpr int kSendTimeoutSeconds = 30;

    explicit FdSink(int fd, bool owns_fd = false);
    ~FdSink() override;

    void write_line(const std::string& line) override;

    /// Writes `data` exactly as given — no newline framing, no fault
    /// injection — under the same mutex and dropped-state rules as
    /// write_line. The HTTP front door uses this for response heads and
    /// chunk frames interleaved (atomically, via the mutex) with the
    /// NDJSON event lines streamed by in-flight requests.
    void write_raw(std::string_view data);

    /// Routes every write_line through `injector` (serve/fault.h): stalls,
    /// corrupts, truncates, or severs per its specs. Deterministic chaos
    /// for tests; null (the default) means no interference.
    void set_fault_injector(std::shared_ptr<FaultInjector> injector);

    /// True once a write failed and the sink started dropping lines.
    [[nodiscard]] bool dropped() const;

private:
    mutable std::mutex mutex_;
    int fd_;
    bool owns_fd_;
    bool dropped_ = false;
    std::shared_ptr<FaultInjector> injector_;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_SOCKET_H
