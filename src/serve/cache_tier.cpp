#include "serve/cache_tier.h"

#include <thread>

namespace sdlc::serve {

CacheTierService::CacheTierService(const CacheTierOptions& opts) : opts_(opts) {
    if (opts_.data_dir.empty()) return;
    DurableStoreOptions store_opts;
    store_opts.dir = opts_.data_dir;
    store_opts.compact_log_bytes = opts_.compact_log_bytes;
    store_opts.fsync_puts = opts_.fsync_puts;
    if (!durable_.open(store_opts, durable_error_)) return;
    for (const auto& [key, report] : durable_.entries()) {
        store_.insert(key, report);
        recovered_keys_.insert(key);
    }
    counters_.recovered = recovered_keys_.size();
}

bool CacheTierService::submit_line(const std::string& line,
                                   std::shared_ptr<ResponseSink> sink) {
    if (opts_.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opts_.delay_ms));
    }
    CacheRequest request;
    CacheWireError error;
    if (!parse_cache_request(line, opts_.max_request_bytes, request, error)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.rejected;
        }
        sink->write_line(cache_error_response(error.id, error.code, error.message));
        return !shutdown_requested();
    }
    switch (request.op) {
        case CacheOp::kGet: {
            SynthesisReport report;
            bool hit = false;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.gets;
                hit = store_.lookup(request.key, report);
                if (hit) {
                    ++counters_.hits;
                    if (recovered_keys_.count(request.key) != 0) ++counters_.warm_hits;
                }
            }
            sink->write_line(hit ? cache_hit_response(request.id, report)
                                 : cache_miss_response(request.id));
            break;
        }
        case CacheOp::kPut: {
            bool stored = false;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.puts;
                // First write wins; duplicate puts of a content key carry
                // the identical report (determinism), so dropping them is
                // both safe and the cheaper answer.
                stored = !store_.contains(request.key);
                if (stored) {
                    store_.insert(request.key, request.report);
                    if (durable_.is_open()) {
                        // Disk trouble must not cost availability: keep
                        // serving from memory, surface the failure once.
                        std::string disk_error;
                        if (!durable_.append(request.key, request.report, disk_error) &&
                            durable_error_.empty()) {
                            durable_error_ = disk_error;
                        }
                    }
                }
            }
            sink->write_line(cache_put_response(request.id, stored));
            break;
        }
        case CacheOp::kStats:
            sink->write_line(cache_stats_response(request.id, stats()));
            break;
        case CacheOp::kShutdown: {
            std::function<void()> hook;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!shutdown_requested_) {
                    shutdown_requested_ = true;
                    hook = on_shutdown_;
                }
            }
            // Answer before unblocking the accept loop so the requester
            // always sees its acknowledgement.
            sink->write_line(cache_ok_response(request.id));
            if (hook) hook();
            break;
        }
    }
    return !shutdown_requested();
}

void CacheTierService::reject_oversized_line(ResponseSink& sink) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.rejected;  // counted like any other ok=false answer
    }
    sink.write_line(cache_error_response(
        "", "too_large", "unterminated request line exceeded the size cap"));
}

void CacheTierService::set_on_shutdown(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    on_shutdown_ = std::move(hook);
}

void CacheTierService::shutdown() {
    // Requests execute inline on their reader thread; once the transport
    // calls this, no submission is in flight that we would have to drain.
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
}

bool CacheTierService::shutdown_requested() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_requested_;
}

CacheDaemonStats CacheTierService::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheDaemonStats out = counters_;
    out.entries = store_.size();
    return out;
}

}  // namespace sdlc::serve
