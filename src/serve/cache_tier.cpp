#include "serve/cache_tier.h"

#include <thread>

#include "util/json.h"

namespace sdlc::serve {

CacheTierService::CacheTierService(const CacheTierOptions& opts) : opts_(opts) {
    if (opts_.data_dir.empty()) return;
    DurableStoreOptions store_opts;
    store_opts.dir = opts_.data_dir;
    store_opts.compact_log_bytes = opts_.compact_log_bytes;
    store_opts.fsync_puts = opts_.fsync_puts;
    if (!durable_.open(store_opts, durable_error_)) return;
    for (const auto& [key, report] : durable_.entries()) {
        store_.insert(key, report);
        recovered_keys_.insert(key);
    }
    counters_.recovered = recovered_keys_.size();
}

bool CacheTierService::submit_line(const std::string& line,
                                   std::shared_ptr<ResponseSink> sink) {
    if (opts_.delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opts_.delay_ms));
    }
    const auto wall_start = std::chrono::steady_clock::now();
    const auto wall_seconds = [wall_start] {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
            .count();
    };
    CacheRequest request;
    CacheWireError error;
    if (!parse_cache_request(line, opts_.max_request_bytes, request, error)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++counters_.rejected;
        }
        const std::string response = cache_error_response(error.id, error.code, error.message);
        sink->write_line(response);
        access_log_line(error.id, "invalid", {}, false, wall_seconds(), response.size() + 1);
        return !shutdown_requested();
    }
    // Traced requests get a private recorder: requests execute inline on
    // their reader thread, and a per-request recorder keeps concurrent
    // connections' spans apart without any shared state.
    obs::SpanRecorder recorder("cache");
    obs::SpanRecorder* rec = request.trace.valid ? &recorder : nullptr;
    switch (request.op) {
        case CacheOp::kGet: {
            SynthesisReport report;
            bool hit = false;
            {
                obs::ScopedSpan span(rec, request.trace, "cache_lookup_local");
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.gets;
                hit = store_.lookup(request.key, report);
                if (hit) {
                    ++counters_.hits;
                    if (recovered_keys_.count(request.key) != 0) ++counters_.warm_hits;
                }
            }
            const std::string response = hit
                ? cache_hit_response(request.id, report, recorder.take())
                : cache_miss_response(request.id, recorder.take());
            sink->write_line(response);
            access_log_line(request.id, "get", request.trace, true, wall_seconds(),
                            response.size() + 1);
            break;
        }
        case CacheOp::kPut: {
            bool stored = false;
            {
                obs::ScopedSpan span(rec, request.trace, "cache_put");
                std::lock_guard<std::mutex> lock(mutex_);
                ++counters_.puts;
                // First write wins; duplicate puts of a content key carry
                // the identical report (determinism), so dropping them is
                // both safe and the cheaper answer.
                stored = !store_.contains(request.key);
                if (stored) {
                    store_.insert(request.key, request.report);
                    if (durable_.is_open()) {
                        // Disk trouble must not cost availability: keep
                        // serving from memory, surface the failure once.
                        std::string disk_error;
                        if (!durable_.append(request.key, request.report, disk_error) &&
                            durable_error_.empty()) {
                            durable_error_ = disk_error;
                        }
                    }
                }
            }
            const std::string response =
                cache_put_response(request.id, stored, recorder.take());
            sink->write_line(response);
            access_log_line(request.id, "put", request.trace, true, wall_seconds(),
                            response.size() + 1);
            break;
        }
        case CacheOp::kStats: {
            const std::string response = cache_stats_response(request.id, stats());
            sink->write_line(response);
            access_log_line(request.id, "stats", request.trace, true, wall_seconds(),
                            response.size() + 1);
            break;
        }
        case CacheOp::kShutdown: {
            std::function<void()> hook;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!shutdown_requested_) {
                    shutdown_requested_ = true;
                    hook = on_shutdown_;
                }
            }
            // Answer before unblocking the accept loop so the requester
            // always sees its acknowledgement.
            const std::string response = cache_ok_response(request.id);
            sink->write_line(response);
            access_log_line(request.id, "shutdown", request.trace, true, wall_seconds(),
                            response.size() + 1);
            if (hook) hook();
            break;
        }
    }
    return !shutdown_requested();
}

void CacheTierService::reject_oversized_line(ResponseSink& sink) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.rejected;  // counted like any other ok=false answer
    }
    const std::string response = cache_error_response(
        "", "too_large", "unterminated request line exceeded the size cap");
    sink.write_line(response);
    access_log_line("", "invalid", {}, false, 0.0, response.size() + 1);
}

void CacheTierService::set_on_shutdown(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(mutex_);
    on_shutdown_ = std::move(hook);
}

void CacheTierService::shutdown() {
    // Requests execute inline on their reader thread; once the transport
    // calls this, no submission is in flight that we would have to drain.
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_requested_ = true;
}

bool CacheTierService::shutdown_requested() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return shutdown_requested_;
}

CacheDaemonStats CacheTierService::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    CacheDaemonStats out = counters_;
    out.entries = store_.size();
    out.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
    return out;
}

void CacheTierService::access_log_line(const std::string& id, const char* op,
                                       const obs::TraceContext& trace, bool ok,
                                       double wall_s, size_t bytes_out) {
    if (!opts_.access_log) return;
    std::string line = "{\"tier\": \"cache\", \"id\": " + json_string(id);
    line += ", \"op\": " + json_string(op);
    if (trace.valid) {
        line += ", \"trace_id\": " +
                json_string(obs::trace_id_hex(trace.trace_hi, trace.trace_lo));
    }
    line += ", \"ok\": ";
    line += ok ? "true" : "false";
    line += ", \"wall_s\": " + json_number(wall_s);
    line += ", \"bytes_out\": " + json_number(static_cast<double>(bytes_out));
    line += "}";
    opts_.access_log->write_line(line);
}

}  // namespace sdlc::serve
