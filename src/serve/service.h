// Long-lived DSE service: one ThreadPool and one CostCache shared across
// every request.
//
// SweepService consumes parsed request lines from a bounded MPMC queue and
// streams NDJSON events to each request's ResponseSink. A fixed set of
// request workers gives the service bounded request concurrency; each
// sweep then fans its design points out over the single shared ThreadPool,
// so total evaluation parallelism stays at the pool size no matter how
// many requests are in flight. The shared CostCache is what makes the
// service worth keeping resident: the second identical request skips
// synthesis entirely (nonzero hit counters, visible via `stats`).
//
// Determinism: a sweep's event stream (accepted, point 0..n-1, summary,
// [result], done) is byte-identical for a fixed request and pre-request
// cache state, at any pool size and any request concurrency — events
// carry no timestamps and the evaluator streams points in enumeration
// order. Streams of concurrent requests interleave at line granularity
// but each request's own subsequence never changes.
//
// Shutdown is drain-based: a shutdown request (or request_shutdown())
// closes the queue so no new work is accepted, every already-queued
// request still runs to completion, and shutdown() joins the workers once
// the queue is empty.
#ifndef SDLC_SERVE_SERVICE_H
#define SDLC_SERVE_SERVICE_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dse/cost_cache.h"
#include "dse/remote_cache.h"
#include "dse/thread_pool.h"
#include "obs/access_log.h"
#include "obs/trace.h"
#include "serve/line_service.h"
#include "serve/protocol.h"
#include "serve/request_queue.h"
#include "serve/sink.h"

namespace sdlc::serve {

/// Service sizing knobs.
struct ServiceOptions {
    unsigned eval_threads = 0;     ///< shared ThreadPool size; 0 = hardware concurrency
    unsigned request_workers = 2;  ///< concurrent in-flight requests
    size_t queue_capacity = 64;    ///< bounded request queue (push blocks when full)
    size_t max_request_bytes = kDefaultMaxRequestBytes;
    /// Overload policy. false (default): submit blocks while the queue is
    /// full — backpressure onto the connection that is flooding. true:
    /// load-shedding — a full queue answers immediately with a structured
    /// `overloaded` error event instead of blocking the reader, so one
    /// flooding client cannot wedge intake for everyone on its connection
    /// and a deadline-carrying client learns of the rejection in time to
    /// retry elsewhere.
    bool reject_when_full = false;
    /// Remote synthesis-cache peers (cache_tool daemons; "unix:PATH" or
    /// "HOST:PORT"). Empty = local-only caching. With peers, the resident
    /// CostCache gains a sharded remote tier: local hit -> remote hit ->
    /// synthesize + write-back, degrading to local-only on peer failure
    /// without changing any sweep result.
    std::vector<std::string> cache_peers;
    int cache_timeout_ms = 250;  ///< per-operation budget against a peer
    /// Replication factor over the peer ring (RemoteCacheOptions::replicas):
    /// each key lives on this many distinct peers, so one dead daemon
    /// degrades to an extra round trip instead of a cold shard.
    unsigned cache_replicas = 1;
    /// When set, one structured JSON line per request lands here (trace_id,
    /// verb, outcome, queue_wait_s, wall_s, bytes_out, shed/deadline flags).
    std::shared_ptr<obs::AccessLog> access_log;
    /// Completed traced-request trees retained for the `trace` verb and
    /// --trace-out.
    size_t trace_capacity = 64;
    /// Server-side engine policy. use_sliced=false forces the scalar
    /// exhaustive engine for every request (`serve_tool --no-sliced`);
    /// results are bit-identical either way. auto_exhaustive applies the
    /// time-budget cutoff resolution (dse/evaluator.h
    /// apply_auto_exhaustive) to requests that did not pin their own
    /// per-path cutoffs; the resolved integers are what shard sub-requests
    /// carry, so a cluster's replicas always agree with the coordinator.
    bool use_sliced = true;
    bool auto_exhaustive = true;
    double exhaustive_budget_ms = 2000.0;
};

/// The long-lived sweep service (see file comment). Derivable: a subclass
/// can swap the evaluation engine (see the protected evaluate() hook) while
/// inheriting the queue, cancellation, deadline, stats and event-emission
/// machinery — cluster::CoordinatorService distributes sweeps this way.
class SweepService : public LineService {
public:
    /// Throws std::invalid_argument on a malformed cache peer spec.
    explicit SweepService(const ServiceOptions& opts = {});

    /// Drains and joins (equivalent to shutdown()).
    ~SweepService() override;

    SweepService(const SweepService&) = delete;
    SweepService& operator=(const SweepService&) = delete;

    /// Parses and enqueues one NDJSON request line; every response event
    /// for it goes to `sink`. Malformed lines are answered immediately
    /// with error + done events. Returns false once the service is
    /// shutting down and the line was rejected (an error event is still
    /// emitted); blocks while the request queue is full.
    bool submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) override;

    /// Answers an over-long unterminated line with too_large + done.
    void reject_oversized_line(ResponseSink& sink) override;

    /// Enqueues an already-parsed request (in-process embedders: tests,
    /// benches). Same semantics as submit_line.
    bool submit(const SweepRequest& request, std::shared_ptr<ResponseSink> sink);

    /// Stops intake (idempotent); queued requests still complete. Safe to
    /// call from any thread, including request workers.
    void request_shutdown();

    /// request_shutdown() plus draining the queue and joining the request
    /// workers. Idempotent; must not be called from a request worker.
    void shutdown() override;

    /// True once a shutdown request was processed or request_shutdown()
    /// called.
    [[nodiscard]] bool shutdown_requested() const;

    /// Invoked exactly once when shutdown is first requested — a transport
    /// front-end hooks this to unblock its accept/read loop. Set before
    /// the first request is submitted.
    void set_on_shutdown(std::function<void()> hook) override;

    /// Momentary aggregate counters (what the `stats` request reports).
    [[nodiscard]] virtual ServiceStats stats() const;

    /// The last trace_capacity completed traced-request trees (what the
    /// `trace` request verb returns; tools drain this into --trace-out).
    [[nodiscard]] std::vector<obs::TraceTree> trace_trees() const { return traces_.snapshot(); }

protected:
    /// Evaluates one accepted sweep request. `eval` arrives fully wired —
    /// shared pool, resident cache (with remote tier), cancel flag,
    /// deadline, and the ordered on_point stream — so an override only
    /// decides *where* the points are computed. Everything around the call
    /// (accepted/summary/result/error/done emission, counters, latency) is
    /// shared, which is what keeps a derived service's event stream
    /// byte-identical to this one's. Throws like evaluate_sweep
    /// (SweepCancelled, SweepDeadlineExceeded, std::invalid_argument).
    virtual std::vector<DesignPoint> evaluate(const SweepRequest& request, EvalOptions& eval,
                                              SweepStats& stats);

private:
    struct Job {
        SweepRequest request;
        std::shared_ptr<ResponseSink> sink;
        std::shared_ptr<std::atomic<bool>> cancel;  ///< sweep jobs only
        /// Submission time: the origin of the request's deadline_ms budget
        /// (queue wait counts against it) and of the latency histogram.
        std::chrono::steady_clock::time_point arrival;
        /// Seconds parse_request spent on the line (0 for pre-parsed
        /// submits); becomes a `parse` span on traced requests.
        double parse_s = 0.0;
    };

    void worker_loop();
    void process(Job& job);
    void run_sweep(const Job& job, double queue_wait_s);
    void handle_cancel(const SweepRequest& request, ResponseSink& sink);
    bool submit_job(const SweepRequest& request, std::shared_ptr<ResponseSink> sink,
                    double parse_s);
    /// Writes the per-request access-log line (no-op without a log).
    void access_log_line(const std::string& id, const char* verb,
                         const obs::TraceContext& trace, const char* outcome,
                         double queue_wait_s, double wall_s, size_t bytes_out, bool shed,
                         bool deadline);

    const ServiceOptions opts_;
    /// Uptime epoch for stats().uptime_seconds.
    const std::chrono::steady_clock::time_point started_ = std::chrono::steady_clock::now();
    /// Completed traced-request trees (ring buffer; thread-safe).
    obs::TraceStore traces_;
    ThreadPool pool_;
    CostCache cache_;
    /// Sharded peer tier over cache_ (null without cache_peers). Sweeps
    /// evaluate through eval_cache(): the remote tier when configured,
    /// plain cache_ otherwise.
    std::unique_ptr<RemoteCostCache> remote_cache_;
    BoundedQueue<Job> queue_;

    [[nodiscard]] SynthesisCache* eval_cache() noexcept {
        return remote_cache_ != nullptr ? static_cast<SynthesisCache*>(remote_cache_.get())
                                        : &cache_;
    }

    mutable std::mutex state_mutex_;
    /// Cancellation flags of queued + running sweeps, by request id. An id
    /// is removed when its sweep finishes; requests sharing an id share a
    /// flag (clients should keep ids unique).
    std::map<std::string, std::shared_ptr<std::atomic<bool>>> cancel_flags_;
    ServiceStats counters_;  ///< queue_depth/in_flight filled in stats()
    size_t in_flight_ = 0;
    std::function<void()> on_shutdown_;
    bool shutdown_requested_ = false;
    bool joined_ = false;

    std::vector<std::thread> workers_;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_SERVICE_H
