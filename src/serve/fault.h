// Deterministic fault injection for the socket serving stack.
//
// The cache/cluster batteries prove "faults never change sweep bytes" by
// killing real processes from shell scripts — effective, but slow and only
// as reproducible as the kill's timing. FaultInjector moves the chaos into
// the daemon itself: `cache_tool --fault disconnect-after:40` serves 40
// response lines and then severs the connection, every run, at exactly the
// same request. Faults act at the FdSink write layer (serve/socket.h), the
// last point before bytes hit the kernel, so a fault looks to the client
// exactly like the network misbehaving.
//
// Spec grammar (comma-separated, each `kind` or `kind:arg`):
//
//   disconnect-after:N   sever the connection after N response lines total
//   short-write:N        Nth response: emit only its first few bytes, sever
//   corrupt-frame:N      every Nth response line is deterministically
//                        mangled (stays one line; clients must reject it)
//   stall:MS             sleep MS milliseconds before every response write
//
// Counters are shared across connections (one injector per daemon), so "the
// 40th response" means the 40th the daemon writes, no matter how clients
// distribute their requests over connections.
#ifndef SDLC_SERVE_FAULT_H
#define SDLC_SERVE_FAULT_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace sdlc::serve {

enum class FaultKind {
    kDisconnectAfter,  ///< sever after N responses
    kShortWrite,       ///< truncate the Nth response mid-line, then sever
    kCorruptFrame,     ///< mangle every Nth response line
    kStall,            ///< sleep before every response
};

struct FaultSpec {
    FaultKind kind = FaultKind::kStall;
    int64_t arg = 0;
};

/// Parses the --fault grammar above. Returns false with a message in
/// `error` on unknown kinds or missing/invalid arguments.
[[nodiscard]] bool parse_fault_specs(const std::string& text, std::vector<FaultSpec>& out,
                                     std::string& error);

/// What FdSink should do with one response line (see apply site in
/// socket.cpp). Default-constructed = write it through untouched.
struct FaultAction {
    int stall_ms = 0;           ///< sleep first
    bool corrupt = false;       ///< mangle the line before writing
    bool short_write = false;   ///< write only the first few bytes...
    bool disconnect = false;    ///< ...and/or sever the connection after
};

/// Thread-safe decision maker shared by every connection of one daemon.
class FaultInjector {
public:
    explicit FaultInjector(std::vector<FaultSpec> specs) : specs_(std::move(specs)) {}

    /// Accounts one response write and returns the fault(s) it suffers.
    [[nodiscard]] FaultAction next_action();

    /// Response lines accounted so far.
    [[nodiscard]] uint64_t writes() const;

    /// Deterministic one-line mangling for kCorruptFrame: stamps '#' over
    /// the line's head so it stays a single line but can never parse as a
    /// protocol response.
    [[nodiscard]] static std::string corrupt_line(const std::string& line);

private:
    const std::vector<FaultSpec> specs_;
    mutable std::mutex mutex_;
    uint64_t writes_ = 0;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_FAULT_H
