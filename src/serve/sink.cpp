#include "serve/sink.h"

namespace sdlc::serve {

void OstreamSink::write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line << '\n';
    out_.flush();
}

void BufferSink::write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    lines_.push_back(line);
}

std::vector<std::string> BufferSink::lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
}

std::string BufferSink::text() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    for (const std::string& line : lines_) {
        out += line;
        out += '\n';
    }
    return out;
}

size_t BufferSink::line_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_.size();
}

}  // namespace sdlc::serve
