#include "serve/metrics.h"

#include <cerrno>
#include <cstdlib>
#include <string_view>

#include "util/json.h"

namespace sdlc::serve {

namespace {

/// Shortest exact-enough rendering for bucket bounds and seconds values
/// ("0.005", "2.5"); Prometheus parses any float literal.
std::string num(double v) { return json_number(v); }

void counter(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " counter\n";
}

void gauge(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " gauge\n";
}

/// Prometheus label values escape backslash, double-quote and newline.
std::string label_escape(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') out += "\\\\";
        else if (c == '"') out += "\\\"";
        else if (c == '\n') out += "\\n";
        else out += c;
    }
    return out;
}

}  // namespace

std::string prometheus_metrics(const ServiceStats& stats) {
    const std::string p = kMetricsPrefix;
    std::string out;
    out.reserve(2048);

    counter(out, p + "requests_accepted_total", "Requests admitted to the queue.");
    out += p + "requests_accepted_total " + std::to_string(stats.accepted) + "\n";

    counter(out, p + "requests_total", "Requests by terminal outcome.");
    const struct {
        const char* outcome;
        uint64_t value;
    } outcomes[] = {
        {"completed", stats.completed},
        {"failed", stats.failed},
        {"cancelled", stats.cancelled},
        {"deadline_exceeded", stats.deadline_exceeded},
        {"overloaded", stats.overloaded},
    };
    for (const auto& o : outcomes) {
        out += p + "requests_total{outcome=\"" + o.outcome + "\"} " +
               std::to_string(o.value) + "\n";
    }

    counter(out, p + "points_evaluated_total", "Design points evaluated across all sweeps.");
    out += p + "points_evaluated_total " + std::to_string(stats.points_evaluated) + "\n";

    counter(out, p + "hw_cache_lookups_total",
            "Synthesis-cache lookups by result (raw counters; scheduling-dependent).");
    out += p + "hw_cache_lookups_total{result=\"hit\"} " + std::to_string(stats.cache_hits) +
           "\n";
    out += p + "hw_cache_lookups_total{result=\"miss\"} " + std::to_string(stats.cache_misses) +
           "\n";

    gauge(out, p + "hw_cache_entries", "Distinct memoized designs resident in the cache.");
    out += p + "hw_cache_entries " + std::to_string(stats.cache_entries) + "\n";

    counter(out, p + "remote_cache_requests_total",
            "Remote cache-tier operations by result (zero without --cache-peers).");
    const struct {
        const char* result;
        uint64_t value;
    } remote[] = {
        {"hit", stats.remote_cache.hits},
        {"miss", stats.remote_cache.misses},
        {"error", stats.remote_cache.errors},
        {"timeout", stats.remote_cache.timeouts},
        {"replica_hit", stats.remote_cache.replica_hits},
    };
    for (const auto& r : remote) {
        out += p + "remote_cache_requests_total{result=\"" + r.result + "\"} " +
               std::to_string(r.value) + "\n";
    }

    counter(out, p + "remote_cache_puts_total",
            "Synthesis reports written back to a cache peer.");
    out += p + "remote_cache_puts_total " + std::to_string(stats.remote_cache.puts) + "\n";

    counter(out, p + "remote_cache_read_repairs_total",
            "Replica hits written back to a peer that had answered miss.");
    out += p + "remote_cache_read_repairs_total " +
           std::to_string(stats.remote_cache.read_repairs) + "\n";

    gauge(out, p + "remote_cache_enabled", "1 when a remote cache tier is configured.");
    out += p + "remote_cache_enabled " + std::string(stats.remote_cache.enabled ? "1" : "0") +
           "\n";

    gauge(out, p + "queue_depth", "Requests waiting in the bounded queue.");
    out += p + "queue_depth " + std::to_string(stats.queue_depth) + "\n";

    gauge(out, p + "in_flight_requests", "Requests being processed right now.");
    out += p + "in_flight_requests " + std::to_string(stats.in_flight) + "\n";

    counter(out, p + "busy_seconds_total", "Summed sweep wall time.");
    out += p + "busy_seconds_total " + num(stats.busy_seconds) + "\n";

    gauge(out, p + "cluster_enabled", "1 when this instance coordinates a worker fleet.");
    out += p + "cluster_enabled " + std::string(stats.cluster.enabled ? "1" : "0") + "\n";
    if (stats.cluster.enabled) {
        gauge(out, p + "cluster_shards", "Configured shard count per distributed sweep.");
        out += p + "cluster_shards " + std::to_string(stats.cluster.shards) + "\n";

        counter(out, p + "cluster_sweeps_total", "Distributed sweeps coordinated.");
        out += p + "cluster_sweeps_total " + std::to_string(stats.cluster.sweeps) + "\n";

        counter(out, p + "cluster_local_shards_total",
                "Shards executed locally because no worker could serve them.");
        out += p + "cluster_local_shards_total " +
               std::to_string(stats.cluster.local_shards) + "\n";

        counter(out, p + "cluster_shards_total",
                "Shard dispatch outcomes per worker (dispatched/completed/retried).");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            const std::string labels = "{worker=\"" + label_escape(w.spec) + "\"";
            out += p + "cluster_shards_total" + labels + ",result=\"dispatched\"} " +
                   std::to_string(w.dispatched) + "\n";
            out += p + "cluster_shards_total" + labels + ",result=\"completed\"} " +
                   std::to_string(w.completed) + "\n";
            out += p + "cluster_shards_total" + labels + ",result=\"retried\"} " +
                   std::to_string(w.retried) + "\n";
        }

        counter(out, p + "cluster_worker_bytes_total",
                "Event bytes received from each worker.");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            out += p + "cluster_worker_bytes_total{worker=\"" + label_escape(w.spec) +
                   "\"} " + std::to_string(w.bytes) + "\n";
        }

        counter(out, p + "cluster_worker_busy_seconds_total",
                "Summed shard round-trip wall time per worker.");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            out += p + "cluster_worker_busy_seconds_total{worker=\"" + label_escape(w.spec) +
                   "\"} " + num(w.busy_seconds) + "\n";
        }
    }

    const std::string hist = p + "request_duration_seconds";
    out += "# HELP " + hist + " Per-request wall latency, arrival to terminal event.\n";
    out += "# TYPE " + hist + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
        cumulative += stats.latency.counts[i];
        out += hist + "_bucket{le=\"" + num(LatencyHistogram::kBounds[i]) + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    cumulative += stats.latency.counts.back();
    out += hist + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += hist + "_sum " + num(stats.latency.sum) + "\n";
    out += hist + "_count " + std::to_string(stats.latency.count) + "\n";

    const std::string stage = p + "stage_duration_seconds";
    out += "# HELP " + stage + " Per-stage request latency (queue wait, evaluation, "
           "serialization).\n";
    out += "# TYPE " + stage + " histogram\n";
    const struct {
        const char* name;
        const LatencyHistogram* hist;
    } stages[] = {
        {"queue_wait", &stats.queue_wait},
        {"evaluate", &stats.stage_evaluate},
        {"serialize", &stats.stage_serialize},
    };
    for (const auto& s : stages) {
        const std::string labels = std::string("stage=\"") + s.name + "\"";
        uint64_t c = 0;
        for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
            c += s.hist->counts[i];
            out += stage + "_bucket{" + labels + ",le=\"" + num(LatencyHistogram::kBounds[i]) +
                   "\"} " + std::to_string(c) + "\n";
        }
        c += s.hist->counts.back();
        out += stage + "_bucket{" + labels + ",le=\"+Inf\"} " + std::to_string(c) + "\n";
        out += stage + "_sum{" + labels + "} " + num(s.hist->sum) + "\n";
        out += stage + "_count{" + labels + "} " + std::to_string(s.hist->count) + "\n";
    }

    gauge(out, p + "uptime_seconds", "Seconds since the service started.");
    out += p + "uptime_seconds " + num(stats.uptime_seconds) + "\n";

    gauge(out, p + "build_info", "Constant 1, labeled with the build version.");
    out += p + "build_info{version=\"" + label_escape(kBuildVersion) + "\"} 1\n";
    return out;
}

bool validate_exposition(const std::string& text, std::string* error) {
    const auto fail = [error](const std::string& message) {
        if (error != nullptr) *error = message;
        return false;
    };
    if (text.empty()) return fail("exposition text is empty");
    size_t samples = 0;
    size_t pos = 0;
    size_t line_no = 0;
    while (pos < text.size()) {
        ++line_no;
        size_t end = text.find('\n', pos);
        if (end == std::string::npos) end = text.size();
        const std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        if (line.empty()) continue;
        if (line[0] == '#') continue;  // HELP/TYPE/comment
        const std::string where = "exposition line " + std::to_string(line_no);
        // name
        size_t i = 0;
        const auto name_start = [](char c) {
            return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
        };
        const auto name_char = [&name_start](char c) {
            return name_start(c) || (c >= '0' && c <= '9');
        };
        if (!name_start(line[0])) return fail(where + ": bad metric name");
        while (i < line.size() && name_char(line[i])) ++i;
        // optional {labels}
        if (i < line.size() && line[i] == '{') {
            bool in_quote = false;
            bool closed = false;
            for (++i; i < line.size(); ++i) {
                const char c = line[i];
                if (in_quote) {
                    if (c == '\\') {
                        ++i;  // escaped char inside a label value
                    } else if (c == '"') {
                        in_quote = false;
                    }
                } else if (c == '"') {
                    in_quote = true;
                } else if (c == '}') {
                    closed = true;
                    ++i;
                    break;
                }
            }
            if (!closed) return fail(where + ": unterminated label set");
        }
        if (i >= line.size() || line[i] != ' ') return fail(where + ": missing sample value");
        while (i < line.size() && line[i] == ' ') ++i;
        const std::string value(line.substr(i));
        if (value.empty()) return fail(where + ": missing sample value");
        if (value != "+Inf" && value != "-Inf" && value != "NaN") {
            char* parsed_end = nullptr;
            errno = 0;
            (void)strtod(value.c_str(), &parsed_end);
            // A trailing integer token is a (legacy) timestamp; anything
            // else after the float is garbage.
            if (parsed_end == value.c_str()) return fail(where + ": bad sample value");
            for (const char* q = parsed_end; *q != '\0'; ++q) {
                if (*q != ' ' && !(*q >= '0' && *q <= '9') && *q != '-') {
                    return fail(where + ": trailing garbage after sample value");
                }
            }
        }
        ++samples;
    }
    if (samples == 0) return fail("exposition text carries no samples");
    return true;
}

std::string cache_prometheus_metrics(const CacheDaemonStats& stats) {
    std::string text;
    auto sample = [&text](const char* name, const char* type, const std::string& value) {
        text += "# TYPE ";
        text += name;
        text += ' ';
        text += type;
        text += '\n';
        text += name;
        text += ' ';
        text += value;
        text += '\n';
    };
    sample("sdlc_cache_entries", "gauge", std::to_string(stats.entries));
    sample("sdlc_cache_gets_total", "counter", std::to_string(stats.gets));
    sample("sdlc_cache_hits_total", "counter", std::to_string(stats.hits));
    sample("sdlc_cache_puts_total", "counter", std::to_string(stats.puts));
    sample("sdlc_cache_rejected_total", "counter", std::to_string(stats.rejected));
    sample("sdlc_cache_recovered_entries", "gauge", std::to_string(stats.recovered));
    sample("sdlc_cache_warm_hits_total", "counter", std::to_string(stats.warm_hits));
    sample("sdlc_cache_uptime_seconds", "gauge", json_number(stats.uptime_seconds));
    text += "# TYPE sdlc_cache_build_info gauge\nsdlc_cache_build_info{version=\"";
    text += kBuildVersion;
    text += "\"} 1\n";
    return text;
}

}  // namespace sdlc::serve
