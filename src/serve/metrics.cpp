#include "serve/metrics.h"

#include "util/json.h"

namespace sdlc::serve {

namespace {

/// Shortest exact-enough rendering for bucket bounds and seconds values
/// ("0.005", "2.5"); Prometheus parses any float literal.
std::string num(double v) { return json_number(v); }

void counter(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " counter\n";
}

void gauge(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " gauge\n";
}

}  // namespace

std::string prometheus_metrics(const ServiceStats& stats) {
    const std::string p = kMetricsPrefix;
    std::string out;
    out.reserve(2048);

    counter(out, p + "requests_accepted_total", "Requests admitted to the queue.");
    out += p + "requests_accepted_total " + std::to_string(stats.accepted) + "\n";

    counter(out, p + "requests_total", "Requests by terminal outcome.");
    const struct {
        const char* outcome;
        uint64_t value;
    } outcomes[] = {
        {"completed", stats.completed},
        {"failed", stats.failed},
        {"cancelled", stats.cancelled},
        {"deadline_exceeded", stats.deadline_exceeded},
        {"overloaded", stats.overloaded},
    };
    for (const auto& o : outcomes) {
        out += p + "requests_total{outcome=\"" + o.outcome + "\"} " +
               std::to_string(o.value) + "\n";
    }

    counter(out, p + "points_evaluated_total", "Design points evaluated across all sweeps.");
    out += p + "points_evaluated_total " + std::to_string(stats.points_evaluated) + "\n";

    counter(out, p + "hw_cache_lookups_total",
            "Synthesis-cache lookups by result (raw counters; scheduling-dependent).");
    out += p + "hw_cache_lookups_total{result=\"hit\"} " + std::to_string(stats.cache_hits) +
           "\n";
    out += p + "hw_cache_lookups_total{result=\"miss\"} " + std::to_string(stats.cache_misses) +
           "\n";

    gauge(out, p + "hw_cache_entries", "Distinct memoized designs resident in the cache.");
    out += p + "hw_cache_entries " + std::to_string(stats.cache_entries) + "\n";

    counter(out, p + "remote_cache_requests_total",
            "Remote cache-tier operations by result (zero without --cache-peers).");
    const struct {
        const char* result;
        uint64_t value;
    } remote[] = {
        {"hit", stats.remote_cache.hits},
        {"miss", stats.remote_cache.misses},
        {"error", stats.remote_cache.errors},
        {"timeout", stats.remote_cache.timeouts},
    };
    for (const auto& r : remote) {
        out += p + "remote_cache_requests_total{result=\"" + r.result + "\"} " +
               std::to_string(r.value) + "\n";
    }

    counter(out, p + "remote_cache_puts_total",
            "Synthesis reports written back to a cache peer.");
    out += p + "remote_cache_puts_total " + std::to_string(stats.remote_cache.puts) + "\n";

    gauge(out, p + "remote_cache_enabled", "1 when a remote cache tier is configured.");
    out += p + "remote_cache_enabled " + std::string(stats.remote_cache.enabled ? "1" : "0") +
           "\n";

    gauge(out, p + "queue_depth", "Requests waiting in the bounded queue.");
    out += p + "queue_depth " + std::to_string(stats.queue_depth) + "\n";

    gauge(out, p + "in_flight_requests", "Requests being processed right now.");
    out += p + "in_flight_requests " + std::to_string(stats.in_flight) + "\n";

    counter(out, p + "busy_seconds_total", "Summed sweep wall time.");
    out += p + "busy_seconds_total " + num(stats.busy_seconds) + "\n";

    const std::string hist = p + "request_duration_seconds";
    out += "# HELP " + hist + " Per-request wall latency, arrival to terminal event.\n";
    out += "# TYPE " + hist + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
        cumulative += stats.latency.counts[i];
        out += hist + "_bucket{le=\"" + num(LatencyHistogram::kBounds[i]) + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    cumulative += stats.latency.counts.back();
    out += hist + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += hist + "_sum " + num(stats.latency.sum) + "\n";
    out += hist + "_count " + std::to_string(stats.latency.count) + "\n";
    return out;
}

}  // namespace sdlc::serve
