#include "serve/metrics.h"

#include "util/json.h"

namespace sdlc::serve {

namespace {

/// Shortest exact-enough rendering for bucket bounds and seconds values
/// ("0.005", "2.5"); Prometheus parses any float literal.
std::string num(double v) { return json_number(v); }

void counter(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " counter\n";
}

void gauge(std::string& out, const std::string& name, const char* help) {
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " gauge\n";
}

/// Prometheus label values escape backslash, double-quote and newline.
std::string label_escape(const std::string& v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\') out += "\\\\";
        else if (c == '"') out += "\\\"";
        else if (c == '\n') out += "\\n";
        else out += c;
    }
    return out;
}

}  // namespace

std::string prometheus_metrics(const ServiceStats& stats) {
    const std::string p = kMetricsPrefix;
    std::string out;
    out.reserve(2048);

    counter(out, p + "requests_accepted_total", "Requests admitted to the queue.");
    out += p + "requests_accepted_total " + std::to_string(stats.accepted) + "\n";

    counter(out, p + "requests_total", "Requests by terminal outcome.");
    const struct {
        const char* outcome;
        uint64_t value;
    } outcomes[] = {
        {"completed", stats.completed},
        {"failed", stats.failed},
        {"cancelled", stats.cancelled},
        {"deadline_exceeded", stats.deadline_exceeded},
        {"overloaded", stats.overloaded},
    };
    for (const auto& o : outcomes) {
        out += p + "requests_total{outcome=\"" + o.outcome + "\"} " +
               std::to_string(o.value) + "\n";
    }

    counter(out, p + "points_evaluated_total", "Design points evaluated across all sweeps.");
    out += p + "points_evaluated_total " + std::to_string(stats.points_evaluated) + "\n";

    counter(out, p + "hw_cache_lookups_total",
            "Synthesis-cache lookups by result (raw counters; scheduling-dependent).");
    out += p + "hw_cache_lookups_total{result=\"hit\"} " + std::to_string(stats.cache_hits) +
           "\n";
    out += p + "hw_cache_lookups_total{result=\"miss\"} " + std::to_string(stats.cache_misses) +
           "\n";

    gauge(out, p + "hw_cache_entries", "Distinct memoized designs resident in the cache.");
    out += p + "hw_cache_entries " + std::to_string(stats.cache_entries) + "\n";

    counter(out, p + "remote_cache_requests_total",
            "Remote cache-tier operations by result (zero without --cache-peers).");
    const struct {
        const char* result;
        uint64_t value;
    } remote[] = {
        {"hit", stats.remote_cache.hits},
        {"miss", stats.remote_cache.misses},
        {"error", stats.remote_cache.errors},
        {"timeout", stats.remote_cache.timeouts},
        {"replica_hit", stats.remote_cache.replica_hits},
    };
    for (const auto& r : remote) {
        out += p + "remote_cache_requests_total{result=\"" + r.result + "\"} " +
               std::to_string(r.value) + "\n";
    }

    counter(out, p + "remote_cache_puts_total",
            "Synthesis reports written back to a cache peer.");
    out += p + "remote_cache_puts_total " + std::to_string(stats.remote_cache.puts) + "\n";

    counter(out, p + "remote_cache_read_repairs_total",
            "Replica hits written back to a peer that had answered miss.");
    out += p + "remote_cache_read_repairs_total " +
           std::to_string(stats.remote_cache.read_repairs) + "\n";

    gauge(out, p + "remote_cache_enabled", "1 when a remote cache tier is configured.");
    out += p + "remote_cache_enabled " + std::string(stats.remote_cache.enabled ? "1" : "0") +
           "\n";

    gauge(out, p + "queue_depth", "Requests waiting in the bounded queue.");
    out += p + "queue_depth " + std::to_string(stats.queue_depth) + "\n";

    gauge(out, p + "in_flight_requests", "Requests being processed right now.");
    out += p + "in_flight_requests " + std::to_string(stats.in_flight) + "\n";

    counter(out, p + "busy_seconds_total", "Summed sweep wall time.");
    out += p + "busy_seconds_total " + num(stats.busy_seconds) + "\n";

    gauge(out, p + "cluster_enabled", "1 when this instance coordinates a worker fleet.");
    out += p + "cluster_enabled " + std::string(stats.cluster.enabled ? "1" : "0") + "\n";
    if (stats.cluster.enabled) {
        gauge(out, p + "cluster_shards", "Configured shard count per distributed sweep.");
        out += p + "cluster_shards " + std::to_string(stats.cluster.shards) + "\n";

        counter(out, p + "cluster_sweeps_total", "Distributed sweeps coordinated.");
        out += p + "cluster_sweeps_total " + std::to_string(stats.cluster.sweeps) + "\n";

        counter(out, p + "cluster_local_shards_total",
                "Shards executed locally because no worker could serve them.");
        out += p + "cluster_local_shards_total " +
               std::to_string(stats.cluster.local_shards) + "\n";

        counter(out, p + "cluster_shards_total",
                "Shard dispatch outcomes per worker (dispatched/completed/retried).");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            const std::string labels = "{worker=\"" + label_escape(w.spec) + "\"";
            out += p + "cluster_shards_total" + labels + ",result=\"dispatched\"} " +
                   std::to_string(w.dispatched) + "\n";
            out += p + "cluster_shards_total" + labels + ",result=\"completed\"} " +
                   std::to_string(w.completed) + "\n";
            out += p + "cluster_shards_total" + labels + ",result=\"retried\"} " +
                   std::to_string(w.retried) + "\n";
        }

        counter(out, p + "cluster_worker_bytes_total",
                "Event bytes received from each worker.");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            out += p + "cluster_worker_bytes_total{worker=\"" + label_escape(w.spec) +
                   "\"} " + std::to_string(w.bytes) + "\n";
        }

        counter(out, p + "cluster_worker_busy_seconds_total",
                "Summed shard round-trip wall time per worker.");
        for (const ClusterWorkerCounters& w : stats.cluster.workers) {
            out += p + "cluster_worker_busy_seconds_total{worker=\"" + label_escape(w.spec) +
                   "\"} " + num(w.busy_seconds) + "\n";
        }
    }

    const std::string hist = p + "request_duration_seconds";
    out += "# HELP " + hist + " Per-request wall latency, arrival to terminal event.\n";
    out += "# TYPE " + hist + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < LatencyHistogram::kBounds.size(); ++i) {
        cumulative += stats.latency.counts[i];
        out += hist + "_bucket{le=\"" + num(LatencyHistogram::kBounds[i]) + "\"} " +
               std::to_string(cumulative) + "\n";
    }
    cumulative += stats.latency.counts.back();
    out += hist + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
    out += hist + "_sum " + num(stats.latency.sum) + "\n";
    out += hist + "_count " + std::to_string(stats.latency.count) + "\n";
    return out;
}

}  // namespace sdlc::serve
