// NDJSON wire protocol for the long-lived DSE service.
//
// Requests: one JSON object per line. Every line is answered by a stream
// of events for that request id, ending in exactly one terminal `done`
// event, so a client can multiplex any number of in-flight requests over
// one connection and knows when each is finished.
//
//   {"id": "r1", "type": "sweep", "spec": {"widths": [8]},
//    "objectives": ["error", "area", "power", "delay"], "export": true}
//   {"id": "s1", "type": "stats"}
//   {"id": "c1", "type": "cancel", "target": "r1"}
//   {"id": "q1", "type": "shutdown"}
//
// Events (one per line, in deterministic per-request order for sweeps:
// accepted, point 0..n-1, summary, [result], done):
//
//   {"id": "r1", "event": "accepted", "type": "sweep", "points": 60, ...}
//   {"id": "r1", "event": "point", "index": 0, "point": {...}}
//   {"id": "r1", "event": "summary", "points": 60, "frontier": 15, ...}
//   {"id": "r1", "event": "result", "format": "dse_json", "data": "..."}
//   {"id": "r1", "event": "error", "code": "parse_error", "message": "..."}
//   {"id": "r1", "event": "done", "ok": true}
//
// Sweep events carry no wall-clock fields: for a fixed request and cache
// state they are byte-identical at any thread count and any request
// concurrency. Timing and other inherently non-reproducible observability
// lives in the `stats` event only.
//
// Parsing is strict — unknown fields, wrong types, duplicate keys and
// oversized lines are all rejected with a machine-readable error code —
// so a typo'd request fails loudly instead of silently sweeping the wrong
// space.
#ifndef SDLC_SERVE_PROTOCOL_H
#define SDLC_SERVE_PROTOCOL_H

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dse/evaluator.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "obs/trace.h"
#include "serve/sink.h"

namespace sdlc::serve {

/// What a request line asks the service to do.
enum class RequestType {
    kSweep,     ///< evaluate a SweepSpec, stream the results
    kStats,     ///< report service counters (cache, queue, timings)
    kMetrics,   ///< dump Prometheus text-format metrics
    kTrace,     ///< return the last-N completed request trace trees
    kCancel,    ///< cancel a queued or running sweep by id
    kShutdown,  ///< stop intake, drain the queue, then exit
};

/// Short lowercase name ("sweep", "stats", "metrics", "trace", "cancel",
/// "shutdown").
[[nodiscard]] const char* request_type_name(RequestType t) noexcept;

/// One parsed request line.
struct SweepRequest {
    std::string id;
    RequestType type = RequestType::kSweep;
    // Sweep payload (defaults mirror dse_tool's: the default width-8 sweep
    // with the paper's objective set).
    SweepSpec spec;
    EvalOptions eval;  ///< serializable knobs only; the service owns pool/cache
    ObjectiveSet objectives = default_objectives();
    bool stream_points = true;  ///< emit a `point` event per design point
    bool export_json = false;   ///< attach the canonical JSON export as a `result` event
    /// Wall-clock budget in milliseconds, measured from arrival (queue wait
    /// counts). 0 = none. An exceeded budget aborts the sweep with a
    /// `deadline_exceeded` error event; the points already streamed are a
    /// strict prefix of the full enumeration-order stream.
    uint64_t deadline_ms = 0;
    /// When > 0 and export is requested, the export payload is streamed as
    /// `result_chunk` events of at most this many payload bytes instead of
    /// one `result` event, keeping peak buffering O(chunk_bytes).
    size_t chunk_bytes = 0;
    /// Enumeration-index restriction ({"shard": {"lo": N, "hi": M}}): run
    /// only points [lo, hi) of the spec's enumeration — how a cluster
    /// coordinator hands one worker its slice of a sweep. Both zero = the
    /// whole space. A contradictory range (lo >= hi, hi > the spec's point
    /// count) is rejected at parse time with the structured code
    /// "invalid_shard". Point events keep their global enumeration
    /// indices, so shard streams merge back by index alone.
    size_t shard_lo = 0;
    size_t shard_hi = 0;
    /// When true, every point event additionally carries a "bits" field —
    /// the point's exact IEEE-754 payload (dse/point_wire.h) — so a
    /// coordinator can reconstruct points bit-exactly instead of re-parsing
    /// the lossy "%.12g" rendering.
    bool point_bits = false;
    /// Optional distributed-tracing identity ({"trace": {"id": "<32 hex>",
    /// "span": "<16 hex>"}}). Absent means "not traced" (trace.valid ==
    /// false): the request is handled on the exact pre-tracing byte path,
    /// so tracing can never perturb sweep exports. When present, the
    /// service records per-stage spans under this context and returns them
    /// on the request's `done` event (`spans` field) — an observability
    /// channel, like the stats event.
    obs::TraceContext trace;
    // Cancel payload.
    std::string target;
};

/// Why a request line was rejected.
struct RequestError {
    std::string id;       ///< request id when one could be extracted, else ""
    std::string code;     ///< "too_large", "parse_error", "invalid_request"
                          ///< or "invalid_shard"
    std::string message;  ///< human-readable detail
};

/// Default cap on one request line; a line longer than this is rejected
/// before the JSON parser ever sees it.
inline constexpr size_t kDefaultMaxRequestBytes = size_t{1} << 20;

/// Parses one NDJSON request line (strict; see file comment). Returns
/// false and fills `err` on rejection.
[[nodiscard]] bool parse_request(const std::string& line, size_t max_bytes, SweepRequest& out,
                                 RequestError& err);

/// Fixed-boundary histogram of per-request wall latency (arrival to
/// terminal event), in seconds. Buckets follow the Prometheus histogram
/// convention when rendered (cumulative `le` counts plus sum and count);
/// storage here is one count per bucket, the last bucket being +Inf.
struct LatencyHistogram {
    /// Upper bounds (seconds) of the finite buckets.
    static constexpr std::array<double, 13> kBounds = {
        0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0};
    std::array<uint64_t, kBounds.size() + 1> counts{};  ///< last = beyond kBounds
    uint64_t count = 0;   ///< total observations
    double sum = 0.0;     ///< summed observed seconds

    void observe(double seconds) noexcept {
        size_t bucket = 0;
        while (bucket < kBounds.size() && seconds > kBounds[bucket]) ++bucket;
        ++counts[bucket];
        ++count;
        sum += seconds;
    }
};

/// Per-worker shard-dispatch counters of a cluster coordinator (see
/// src/cluster/coordinator.h). Observability only — like every other
/// counter here, never part of a sweep's deterministic event stream.
struct ClusterWorkerCounters {
    std::string spec;           ///< worker endpoint as configured
    uint64_t dispatched = 0;    ///< shard requests sent to this worker
    uint64_t completed = 0;     ///< shards fully streamed back
    uint64_t retried = 0;       ///< shard attempts that failed here and were re-dispatched
    uint64_t bytes = 0;         ///< event bytes received from this worker
    double busy_seconds = 0.0;  ///< summed shard round-trip wall time
};

/// Cluster coordination counters (disabled/empty without --workers).
struct ClusterCounters {
    bool enabled = false;
    size_t shards = 0;          ///< configured shard count per sweep
    uint64_t sweeps = 0;        ///< distributed sweeps coordinated
    uint64_t local_shards = 0;  ///< shards executed locally as last resort
    std::vector<ClusterWorkerCounters> workers;

    /// Accumulates a per-sweep delta (workers matched by position; `other`
    /// must come from the same worker list).
    void add(const ClusterCounters& other);
};

/// Aggregate service counters for the `stats` event. Unlike sweep events
/// these are observability, not reproducible output: timings and the raw
/// cache counters depend on scheduling.
struct ServiceStats {
    uint64_t accepted = 0;          ///< requests queued since start
    uint64_t completed = 0;         ///< requests finished successfully
    uint64_t failed = 0;            ///< requests that errored
    uint64_t cancelled = 0;         ///< sweeps cancelled before completion
    uint64_t deadline_exceeded = 0; ///< sweeps aborted by their deadline_ms budget
    uint64_t overloaded = 0;        ///< requests rejected because the queue was full
    uint64_t points_evaluated = 0;  ///< design points across all sweeps
    uint64_t cache_hits = 0;        ///< CostCache raw hit counter
    uint64_t cache_misses = 0;      ///< CostCache raw miss counter
    size_t cache_entries = 0;       ///< distinct memoized designs
    /// Per-stage latency histograms: where sweep requests spend their wall
    /// time. queue_wait is arrival -> worker pickup; evaluate covers the
    /// sweep evaluation (including cache/synthesis); serialize covers
    /// Pareto ranking + export emission.
    LatencyHistogram queue_wait;
    LatencyHistogram stage_evaluate;
    LatencyHistogram stage_serialize;
    /// Remote cache-tier traffic (all-zero/disabled without --cache-peers).
    RemoteCacheCounters remote_cache;
    size_t queue_depth = 0;         ///< requests waiting in the queue
    size_t in_flight = 0;           ///< requests being processed right now
    double busy_seconds = 0.0;      ///< summed sweep wall time
    double uptime_seconds = 0.0;    ///< seconds since the service started
    LatencyHistogram latency;       ///< per-request wall latency (sweep requests)
    /// Cluster coordination counters (disabled without --workers).
    ClusterCounters cluster;
};

// ---- event emission (single-line strings, no trailing newline) ----

[[nodiscard]] std::string accepted_event(const std::string& id, RequestType type,
                                         size_t points, const std::string& spec_summary);
/// `with_bits` appends the exact-payload "bits" field (requests with
/// "point_bits": true); the rest of the line is unchanged either way.
[[nodiscard]] std::string point_event(const std::string& id, size_t index,
                                      const DesignPoint& point, bool with_bits = false);
[[nodiscard]] std::string summary_event(const std::string& id, const SweepStats& stats,
                                        size_t frontier_size, const ObjectiveSet& objectives);
[[nodiscard]] std::string result_event(const std::string& id, const std::string& dse_json);
[[nodiscard]] std::string result_chunk_event(const std::string& id, size_t seq, bool last,
                                             std::string_view data);
[[nodiscard]] std::string metrics_event(const std::string& id, const std::string& prometheus);
[[nodiscard]] std::string stats_event(const std::string& id, const ServiceStats& stats);
[[nodiscard]] std::string error_event(const std::string& id, const std::string& code,
                                      const std::string& message);
/// With a non-empty `spans` list, the done event additionally carries a
/// `spans` field (obs::spans_wire_json) — only traced requests ever pass
/// one, so untraced done events keep their exact historical bytes.
[[nodiscard]] std::string done_event(const std::string& id, bool ok,
                                     const std::vector<obs::Span>& spans = {});
/// `trace` verb response: the last-N completed request trees, one object
/// per tree with its request id, 32-hex trace id and span list.
[[nodiscard]] std::string trace_event(const std::string& id,
                                      const std::vector<obs::TraceTree>& trees);

/// Serializes a sweep request back into one parseable NDJSON line —
/// parse_request(sweep_request_json(r)) reproduces `r` exactly for any
/// valid sweep request. A cluster coordinator builds its shard
/// sub-requests with this, so dispatch can never drift from the parser.
/// Only meaningful for RequestType::kSweep.
[[nodiscard]] std::string sweep_request_json(const SweepRequest& request);

/// Emits the deterministic post-evaluation tail of a sweep's event stream
/// — summary, then (when requested) the result event or result_chunk
/// stream — exactly as SweepService does. Shared with the cluster
/// coordinator so a coordinated sweep's bytes cannot drift from a
/// single-node one's. A non-null `recorder` (traced requests only) records
/// `pareto_rank` and `serialize` spans under the request's trace context;
/// the emitted bytes are identical either way.
void emit_sweep_results(ResponseSink& sink, const SweepRequest& request,
                        const std::vector<DesignPoint>& points, const SweepStats& stats,
                        obs::SpanRecorder* recorder = nullptr);

/// Splits a streamed export payload into bounded `result_chunk` events:
/// feed() pieces in order, then finish() exactly once. Every chunk except
/// the last carries exactly `chunk_bytes` payload bytes; the last carries
/// 1..chunk_bytes and `"last": true`. Byte-concatenating the chunks'
/// `data` fields reconstructs the payload exactly, and sequence numbers
/// run 0..n-1 so a client can detect a gap. Peak buffering is
/// O(chunk_bytes + largest piece), never the whole payload.
class ResultChunker {
public:
    ResultChunker(ResponseSink& sink, std::string id, size_t chunk_bytes)
        : sink_(sink), id_(std::move(id)), chunk_bytes_(chunk_bytes == 0 ? 1 : chunk_bytes) {}

    void feed(std::string_view piece);
    /// Flushes whatever remains as the final chunk (last=true).
    void finish();

    /// Chunks emitted so far.
    [[nodiscard]] size_t chunks() const noexcept { return seq_; }

private:
    ResponseSink& sink_;
    std::string id_;
    size_t chunk_bytes_;
    size_t seq_ = 0;
    std::string buffer_;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_PROTOCOL_H
