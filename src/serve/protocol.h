// NDJSON wire protocol for the long-lived DSE service.
//
// Requests: one JSON object per line. Every line is answered by a stream
// of events for that request id, ending in exactly one terminal `done`
// event, so a client can multiplex any number of in-flight requests over
// one connection and knows when each is finished.
//
//   {"id": "r1", "type": "sweep", "spec": {"widths": [8]},
//    "objectives": ["error", "area", "power", "delay"], "export": true}
//   {"id": "s1", "type": "stats"}
//   {"id": "c1", "type": "cancel", "target": "r1"}
//   {"id": "q1", "type": "shutdown"}
//
// Events (one per line, in deterministic per-request order for sweeps:
// accepted, point 0..n-1, summary, [result], done):
//
//   {"id": "r1", "event": "accepted", "type": "sweep", "points": 60, ...}
//   {"id": "r1", "event": "point", "index": 0, "point": {...}}
//   {"id": "r1", "event": "summary", "points": 60, "frontier": 15, ...}
//   {"id": "r1", "event": "result", "format": "dse_json", "data": "..."}
//   {"id": "r1", "event": "error", "code": "parse_error", "message": "..."}
//   {"id": "r1", "event": "done", "ok": true}
//
// Sweep events carry no wall-clock fields: for a fixed request and cache
// state they are byte-identical at any thread count and any request
// concurrency. Timing and other inherently non-reproducible observability
// lives in the `stats` event only.
//
// Parsing is strict — unknown fields, wrong types, duplicate keys and
// oversized lines are all rejected with a machine-readable error code —
// so a typo'd request fails loudly instead of silently sweeping the wrong
// space.
#ifndef SDLC_SERVE_PROTOCOL_H
#define SDLC_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>

#include "dse/evaluator.h"
#include "dse/pareto.h"
#include "dse/sweep.h"

namespace sdlc::serve {

/// What a request line asks the service to do.
enum class RequestType {
    kSweep,     ///< evaluate a SweepSpec, stream the results
    kStats,     ///< report service counters (cache, queue, timings)
    kCancel,    ///< cancel a queued or running sweep by id
    kShutdown,  ///< stop intake, drain the queue, then exit
};

/// Short lowercase name ("sweep", "stats", "cancel", "shutdown").
[[nodiscard]] const char* request_type_name(RequestType t) noexcept;

/// One parsed request line.
struct SweepRequest {
    std::string id;
    RequestType type = RequestType::kSweep;
    // Sweep payload (defaults mirror dse_tool's: the default width-8 sweep
    // with the paper's objective set).
    SweepSpec spec;
    EvalOptions eval;  ///< serializable knobs only; the service owns pool/cache
    ObjectiveSet objectives = default_objectives();
    bool stream_points = true;  ///< emit a `point` event per design point
    bool export_json = false;   ///< attach the canonical JSON export as a `result` event
    // Cancel payload.
    std::string target;
};

/// Why a request line was rejected.
struct RequestError {
    std::string id;       ///< request id when one could be extracted, else ""
    std::string code;     ///< "too_large", "parse_error" or "invalid_request"
    std::string message;  ///< human-readable detail
};

/// Default cap on one request line; a line longer than this is rejected
/// before the JSON parser ever sees it.
inline constexpr size_t kDefaultMaxRequestBytes = size_t{1} << 20;

/// Parses one NDJSON request line (strict; see file comment). Returns
/// false and fills `err` on rejection.
[[nodiscard]] bool parse_request(const std::string& line, size_t max_bytes, SweepRequest& out,
                                 RequestError& err);

/// Aggregate service counters for the `stats` event. Unlike sweep events
/// these are observability, not reproducible output: timings and the raw
/// cache counters depend on scheduling.
struct ServiceStats {
    uint64_t accepted = 0;          ///< requests queued since start
    uint64_t completed = 0;         ///< requests finished successfully
    uint64_t failed = 0;            ///< requests that errored
    uint64_t cancelled = 0;         ///< sweeps cancelled before completion
    uint64_t points_evaluated = 0;  ///< design points across all sweeps
    uint64_t cache_hits = 0;        ///< CostCache raw hit counter
    uint64_t cache_misses = 0;      ///< CostCache raw miss counter
    size_t cache_entries = 0;       ///< distinct memoized designs
    size_t queue_depth = 0;         ///< requests waiting in the queue
    size_t in_flight = 0;           ///< requests being processed right now
    double busy_seconds = 0.0;      ///< summed sweep wall time
};

// ---- event emission (single-line strings, no trailing newline) ----

[[nodiscard]] std::string accepted_event(const std::string& id, RequestType type,
                                         size_t points, const std::string& spec_summary);
[[nodiscard]] std::string point_event(const std::string& id, size_t index,
                                      const DesignPoint& point);
[[nodiscard]] std::string summary_event(const std::string& id, const SweepStats& stats,
                                        size_t frontier_size, const ObjectiveSet& objectives);
[[nodiscard]] std::string result_event(const std::string& id, const std::string& dse_json);
[[nodiscard]] std::string stats_event(const std::string& id, const ServiceStats& stats);
[[nodiscard]] std::string error_event(const std::string& id, const std::string& code,
                                      const std::string& message);
[[nodiscard]] std::string done_event(const std::string& id, bool ok);

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_PROTOCOL_H
