// HTTP/1.1 front door over the serve stack's stream transports.
//
// Real clients and real scrapers speak HTTP, not bare NDJSON lines:
// serve_http_listener() drives a SocketListener through the same
// accept/drain lifecycle as serve_listener() (one handler thread per
// connection, periodic reaping, drain-then-unblock shutdown) but speaks
// HTTP/1.1 on each connection:
//
//   POST /v1/sweep   body = NDJSON request lines (the exact line-transport
//                    wire format); response = `Transfer-Encoding: chunked`
//                    `application/x-ndjson` streaming the event lines.
//                    The chunk payloads concatenated are byte-identical to
//                    what the same requests produce over the line
//                    transport — HTTP is framing, never content.
//   GET  /metrics    the existing Prometheus exposition text, so a stock
//                    Prometheus can scrape serve_tool and cache_tool
//                    directly (no textfile-collector workaround).
//   GET  /healthz    200 "ok" liveness probe (always unauthenticated).
//
// On top of the routes sit two production controls:
//
//   * Bearer-token auth (`--auth-token-file`): /metrics and /v1/sweep
//     require `Authorization: Bearer <token>`, compared in constant time;
//     a missing or wrong token is a 401 recorded in the access log.
//   * Per-client token-bucket quotas (`--quota-rps`/`--quota-burst`),
//     keyed by bearer token when auth is on, else by peer address.
//     An exhausted bucket sheds the sweep with 429 + `Retry-After` before
//     the request ever touches the service queue — an HTTP-level extension
//     of the `--reject-overload` shedding path, not a bypass of it (an
//     admitted sweep that then meets a full queue still gets the in-stream
//     `overloaded` error event).
//
// Request-level failures inside an admitted sweep (bad JSON, invalid
// spec, deadline) stay in-band as the protocol's structured error events
// under a 200, exactly as on the line transport; HTTP status codes are
// reserved for transport-level outcomes (bad method, oversized headers,
// auth, quota).
#ifndef SDLC_SERVE_HTTP_H
#define SDLC_SERVE_HTTP_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/access_log.h"
#include "serve/line_service.h"
#include "serve/socket.h"

namespace sdlc::serve {

/// Front-door knobs (tool flags map onto these).
struct HttpOptions {
    /// Cap on the request line + headers block; beyond it the connection
    /// is answered 431 and dropped (a peer streaming header bytes forever
    /// cannot grow the buffer without limit).
    size_t max_header_bytes = 8192;
    /// Cap on a request body (413 beyond it). Tools set this to their
    /// --max-request-bytes so the HTTP and line front ends agree.
    size_t max_body_bytes = size_t{1} << 20;
    /// Non-empty = require `Authorization: Bearer <auth_token>` on
    /// /metrics and /v1/sweep (constant-time compare, 401 on mismatch).
    std::string auth_token;
    /// Sweep admissions per second per client (0 = no quota). Clients are
    /// keyed by bearer token when auth is on, else by peer address.
    double quota_rps = 0.0;
    /// Bucket depth: how many sweeps a client may burst above the steady
    /// rate (0 = same as quota_rps, minimum 1).
    double quota_burst = 0.0;
    /// Serve POST /v1/sweep (the sweep server). The cache daemon turns
    /// this off: its HTTP surface is /metrics and /healthz only.
    bool enable_sweep = true;
    /// Renders the current Prometheus exposition text for GET /metrics.
    /// Unset = /metrics answers 404.
    std::function<std::string()> metrics_fn;
    /// When set, one structured JSON line per HTTP request lands here
    /// (method, path, status, peer, outcome, bytes_out).
    std::shared_ptr<obs::AccessLog> access_log;
    /// Install the service's on_shutdown hook to close the listener. A
    /// tool running the HTTP listener beside a line listener installs one
    /// combined hook itself and passes false here and to serve_listener.
    bool install_shutdown_hook = true;
};

/// Serves HTTP/1.1 on `listener` until the service shuts down. Same
/// blocking lifecycle contract as serve_listener(): returns only once
/// every accepted connection is drained and joined.
void serve_http_listener(SocketListener& listener, LineService& service,
                         const HttpOptions& options);

/// Reads a bearer token from `path` for --auth-token-file: the first line,
/// surrounding whitespace stripped (a trailing newline in a secrets file
/// must not become part of the token). Returns false with a message in
/// *error on an unreadable file or an empty token.
[[nodiscard]] bool read_auth_token_file(const std::string& path, std::string& token,
                                        std::string* error = nullptr);

/// Timing-safe equality: the comparison time depends only on the lengths,
/// never on where the first mismatching byte sits, so a caller probing a
/// bearer token learns nothing from response latency.
[[nodiscard]] bool constant_time_equal(std::string_view a, std::string_view b) noexcept;

/// Per-client token buckets: each key accrues `rps` tokens per second up
/// to `burst`, and one admission costs one token. Thread-safe; the bucket
/// table is bounded (least-recently-refilled entries are evicted), so an
/// attacker rotating keys cannot grow it without limit.
class TokenBucketLimiter {
public:
    /// Bucket-table bound; eviction kicks in beyond this many clients.
    static constexpr size_t kMaxBuckets = 16384;

    /// rps must be > 0. burst <= 0 means "same as rps", floored at 1.
    TokenBucketLimiter(double rps, double burst);

    /// Admits one request for `key` at time `now`, or returns false with
    /// `retry_after_s` = seconds until the bucket holds a whole token
    /// again. The explicit clock makes quota tests deterministic.
    bool admit(const std::string& key, std::chrono::steady_clock::time_point now,
               double& retry_after_s);

    /// admit() against the real clock.
    bool admit(const std::string& key, double& retry_after_s);

    /// Momentary client-bucket count (observability/tests).
    [[nodiscard]] size_t size() const;

private:
    struct Bucket {
        double tokens;
        std::chrono::steady_clock::time_point refreshed;
    };

    const double rps_;
    const double burst_;
    mutable std::mutex mutex_;
    std::map<std::string, Bucket> buckets_;
};

// ---- minimal HTTP/1.1 client (tests, `serve_tool --scrape --http`) ----

/// One parsed HTTP response. Header names are lowercased; a chunked body
/// arrives already decoded.
struct HttpClientResponse {
    int status = 0;
    std::string reason;
    std::map<std::string, std::string> headers;
    std::string body;
};

/// Sends one request (Connection: close) and parses the response,
/// decoding chunked transfer coding. `bearer_token` non-empty adds the
/// Authorization header. Returns false with *error on connect/protocol
/// failure; HTTP error statuses are successful parses (check
/// out.status).
[[nodiscard]] bool http_request(const std::string& host, uint16_t port,
                                const std::string& method, const std::string& target,
                                const std::string& body, const std::string& bearer_token,
                                HttpClientResponse& out, std::string* error,
                                int timeout_ms = 30000);

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_HTTP_H
