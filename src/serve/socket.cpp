#include "serve/socket.h"

#include "serve/fault.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <thread>

namespace sdlc::serve {

namespace {

sockaddr_un make_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// getaddrinfo wrapper: resolved list freed on scope exit, gai error codes
/// turned into runtime_error (they are not errno values).
struct ResolvedAddress {
    addrinfo* list = nullptr;

    ResolvedAddress(const std::string& host, uint16_t port, bool passive) {
        addrinfo hints{};
        hints.ai_family = AF_UNSPEC;
        hints.ai_socktype = SOCK_STREAM;
        if (passive) hints.ai_flags = AI_PASSIVE;
        const std::string service = std::to_string(port);
        const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                                     &hints, &list);
        if (rc != 0) {
            throw std::runtime_error("resolve " + (host.empty() ? "*" : host) + ":" + service +
                                     ": " + ::gai_strerror(rc));
        }
    }
    ~ResolvedAddress() { ::freeaddrinfo(list); }
    ResolvedAddress(const ResolvedAddress&) = delete;
    ResolvedAddress& operator=(const ResolvedAddress&) = delete;
};

}  // namespace

SocketListener::~SocketListener() {
    close();
    if (fd_ >= 0) ::close(fd_);
}

UnixSocketServer::UnixSocketServer(const std::string& path) : path_(path) {
    const sockaddr_un addr = make_address(path_);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    ::unlink(path_.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throw_errno("bind " + path_);
    }
    if (::listen(fd_, SOMAXCONN) != 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        ::unlink(path_.c_str());
        errno = saved;
        throw_errno("listen " + path_);
    }
    endpoint_ = "unix:" + path_;
}

UnixSocketServer::~UnixSocketServer() {
    close();
    ::unlink(path_.c_str());
    // The fd itself is closed by the SocketListener destructor.
}

TcpSocketServer::TcpSocketServer(const std::string& host, uint16_t port) {
    const ResolvedAddress resolved(host, port, /*passive=*/true);
    int last_errno = 0;
    for (const addrinfo* ai = resolved.list; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        // Restarted servers must be able to rebind while old connections
        // linger in TIME_WAIT.
        const int reuse = 1;
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 && ::listen(fd, SOMAXCONN) == 0) {
            fd_ = fd;
            break;
        }
        last_errno = errno;
        ::close(fd);
    }
    if (fd_ < 0) {
        errno = last_errno;
        throw_errno("bind tcp " + (host.empty() ? "*" : host) + ":" + std::to_string(port));
    }
    // Report the port the kernel actually chose (resolves port 0).
    sockaddr_storage bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        if (bound.ss_family == AF_INET) {
            port_ = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
        } else if (bound.ss_family == AF_INET6) {
            port_ = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
        }
    }
    if (port_ == 0) port_ = port;
    endpoint_ = "tcp:" + (host.empty() ? std::string("*") : host) + ":" + std::to_string(port_);
}

int SocketListener::accept_client(int timeout_ms) {
    while (!closed_.load(std::memory_order_acquire)) {
        if (timeout_ms >= 0) {
            pollfd waiter{};
            waiter.fd = fd_;
            waiter.events = POLLIN;
            const int ready = ::poll(&waiter, 1, timeout_ms);
            if (ready == 0) return kTimeout;
            if (ready < 0) {
                if (errno == EINTR) continue;
                return -1;
            }
            // POLLIN, POLLHUP or POLLERR: fall through to accept(), which
            // resolves it (a connection, or the listener was shut down).
        }
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            if (closed_.load(std::memory_order_acquire)) {
                ::close(client);
                return -1;
            }
            return client;
        }
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
            // Transient resource exhaustion must not look like shutdown; back
            // off and keep serving (fds free up as connections are reaped).
            struct timespec backoff{0, 50 * 1000 * 1000};  // 50 ms
            ::nanosleep(&backoff, nullptr);
            continue;
        }
        return -1;  // listener shut down (or a hard error): stop accepting
    }
    return -1;
}

void SocketListener::close() {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // shutdown() unblocks a concurrent accept(); the fd itself is closed by
    // the destructor so a racing accept never sees a reused descriptor.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

namespace {

/// Bounded connect: with timeout_ms >= 0 the socket connects in
/// non-blocking mode, waits for writability at most timeout_ms, checks
/// SO_ERROR, and is restored to blocking before returning. A caller that
/// promises a per-operation budget (the remote cache tier) must not hang
/// for the kernel's multi-minute connect timeout on a blackholed peer.
/// Returns false with errno set on failure.
/// Waits (up to timeout_ms; -1 forever) for an in-progress connect to
/// resolve, then reports its outcome via SO_ERROR. Shared by the bounded
/// path (EINPROGRESS) and the blocking path (EINTR — the connection keeps
/// establishing asynchronously after the signal; re-calling connect()
/// would yield EALREADY, not the real outcome).
bool await_connect(int fd, int timeout_ms) {
    pollfd pfd{fd, POLLOUT, 0};
    int polled;
    while ((polled = ::poll(&pfd, 1, timeout_ms)) < 0 && errno == EINTR) {
    }
    if (polled == 0) {
        errno = ETIMEDOUT;
        return false;
    }
    if (polled < 0) return false;
    int so_error = 0;
    socklen_t so_len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) == 0 && so_error == 0) {
        return true;
    }
    if (so_error != 0) errno = so_error;
    return false;
}

/// Suppress SIGPIPE at the socket itself where the platform supports it
/// (BSD/macOS SO_NOSIGPIPE). Linux spells the same promise MSG_NOSIGNAL on
/// each send; having both means a peer dying mid-write can never raise a
/// process-killing signal regardless of which write path runs.
void set_nosigpipe(int fd) {
#ifdef SO_NOSIGPIPE
    const int on = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof(on));
#else
    (void)fd;
#endif
}

bool connect_bounded(int fd, const sockaddr* addr, socklen_t len, int timeout_ms) {
    if (timeout_ms < 0) {
        if (::connect(fd, addr, len) == 0) return true;
        // EINTR: the handshake continues in the background; wait it out.
        if (errno == EINTR) return await_connect(fd, -1);
        return false;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) return false;
    bool ok = ::connect(fd, addr, len) == 0;
    if (!ok && (errno == EINPROGRESS || errno == EINTR)) {
        ok = await_connect(fd, timeout_ms);
    }
    const int saved = errno;
    (void)::fcntl(fd, F_SETFL, flags);  // restore blocking mode either way
    errno = saved;
    return ok;
}

}  // namespace

int unix_socket_connect(const std::string& path, int timeout_ms) {
    const sockaddr_un addr = make_address(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    set_nosigpipe(fd);
    if (!connect_bounded(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
                         timeout_ms)) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect " + path);
    }
    return fd;
}

int tcp_connect(const std::string& host, uint16_t port, int timeout_ms) {
    if (host.empty()) throw std::runtime_error("tcp connect: host must be non-empty");
    const ResolvedAddress resolved(host, port, /*passive=*/false);
    int last_errno = 0;
    for (const addrinfo* ai = resolved.list; ai != nullptr; ai = ai->ai_next) {
        const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            last_errno = errno;
            continue;
        }
        set_nosigpipe(fd);
        if (connect_bounded(fd, ai->ai_addr, ai->ai_addrlen, timeout_ms)) return fd;
        last_errno = errno;
        ::close(fd);
    }
    errno = last_errno;
    throw_errno("connect tcp " + host + ":" + std::to_string(port));
}

bool parse_host_port(const std::string& spec, std::string& host, uint16_t& port,
                     std::string* error, bool allow_port_zero) {
    // A bracketed IPv6 literal with no port ("[::1]") would otherwise split
    // at a colon *inside* the address and report a baffling `invalid port
    // "1]"`; catch the shape explicitly and say what is actually missing.
    if (!spec.empty() && spec.front() == '[' && spec.back() == ']') {
        if (error != nullptr) {
            *error = "missing port after bracketed IPv6 address \"" + spec + "\"" +
                     " (expected \"" + spec + ":PORT\")";
        }
        return false;
    }
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
        if (error != nullptr) *error = "expected HOST:PORT, got \"" + spec + "\"";
        return false;
    }
    std::string h = spec.substr(0, colon);
    if (h.size() >= 2 && h.front() == '[' && h.back() == ']') h = h.substr(1, h.size() - 2);
    const std::string port_text = spec.substr(colon + 1);
    if (port_text.empty() || port_text.find_first_not_of("0123456789") != std::string::npos) {
        if (error != nullptr) *error = "invalid port \"" + port_text + "\"";
        return false;
    }
    unsigned long parsed = 0;
    for (const char c : port_text) {
        parsed = parsed * 10 + static_cast<unsigned long>(c - '0');
        if (parsed > 65535) {
            if (error != nullptr) *error = "port " + port_text + " is out of range";
            return false;
        }
    }
    if (parsed == 0 && !allow_port_zero) {
        if (error != nullptr) {
            *error = "port 0 is not a connectable port in \"" + spec + "\"";
        }
        return false;
    }
    host = std::move(h);
    port = static_cast<uint16_t>(parsed);
    return true;
}

bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        // MSG_NOSIGNAL: a vanished peer must surface as an error return,
        // not a process-killing SIGPIPE. Falls back to write() for fds
        // (pipes) that are not sockets.
        ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data.data(), data.size());
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
}

bool LineReader::next(std::string& line) {
    while (true) {
        const size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return true;
        }
        if (max_line_ != 0 && buffer_.size() > max_line_) {
            eof_ = true;  // runaway unterminated line: drop the stream
            overflowed_ = true;
            buffer_.clear();
            return false;
        }
        if (eof_) {
            if (buffer_.empty()) return false;
            line = std::move(buffer_);
            buffer_.clear();
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) continue;
            eof_ = true;
            buffer_.clear();  // error-truncated bytes must not become a line
            continue;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

FdSink::FdSink(int fd, bool owns_fd) : fd_(fd), owns_fd_(owns_fd) {
    set_nosigpipe(fd_);
    if (owns_fd_ && kSendTimeoutSeconds > 0) {
        // Best-effort: a non-socket fd rejects the option, and write_all's
        // error handling covers the unbounded-blocking case no worse than
        // before.
        timeval timeout{};
        timeout.tv_sec = kSendTimeoutSeconds;
        (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
        // Event lines are latency-sensitive and already line-batched;
        // Nagle only delays them. Harmlessly refused on non-TCP fds.
        const int nodelay = 1;
        (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    }
}

FdSink::~FdSink() {
    if (owns_fd_) ::close(fd_);
}

void FdSink::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
    std::lock_guard<std::mutex> lock(mutex_);
    injector_ = std::move(injector);
}

void FdSink::write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dropped_) return;
    if (injector_ != nullptr) {
        const FaultAction fault = injector_->next_action();
        if (fault.stall_ms > 0) {
            // Sleeping under the sink lock is the point: a stalled peer
            // blocks exactly the writers a real stalled peer would block.
            std::this_thread::sleep_for(std::chrono::milliseconds(fault.stall_ms));
        }
        if (fault.short_write) {
            (void)write_all(fd_, std::string_view(line).substr(0, line.size() / 2));
        }
        if (fault.disconnect || fault.short_write) {
            // Sever instead of just dropping: the peer must observe the
            // failure (EOF mid-stream), not merely silence.
            ::shutdown(fd_, SHUT_RDWR);
            dropped_ = true;
            return;
        }
        if (fault.corrupt) {
            const std::string mangled = FaultInjector::corrupt_line(line);
            if (!write_all(fd_, mangled) || !write_all(fd_, "\n")) dropped_ = true;
            return;
        }
    }
    if (!write_all(fd_, line) || !write_all(fd_, "\n")) dropped_ = true;
}

void FdSink::write_raw(std::string_view data) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dropped_) return;
    // Raw frames carry their own framing (HTTP heads, chunk envelopes), so
    // no newline is appended; they bypass fault injection, which speaks the
    // line protocol (corrupt_line etc.) and would break HTTP framing in
    // ways no real network fault produces.
    if (!write_all(fd_, data)) dropped_ = true;
}

bool FdSink::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

}  // namespace sdlc::serve
