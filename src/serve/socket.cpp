#include "serve/socket.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>

namespace sdlc::serve {

namespace {

sockaddr_un make_address(const std::string& path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        throw std::runtime_error("socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

UnixSocketServer::UnixSocketServer(const std::string& path) : path_(path) {
    const sockaddr_un addr = make_address(path_);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw_errno("socket");
    ::unlink(path_.c_str());
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd_);
        errno = saved;
        throw_errno("bind " + path_);
    }
    if (::listen(fd_, SOMAXCONN) != 0) {
        const int saved = errno;
        ::close(fd_);
        ::unlink(path_.c_str());
        errno = saved;
        throw_errno("listen " + path_);
    }
}

UnixSocketServer::~UnixSocketServer() {
    close();
    if (fd_ >= 0) ::close(fd_);
    ::unlink(path_.c_str());
}

int UnixSocketServer::accept_client(int timeout_ms) {
    while (!closed_.load(std::memory_order_acquire)) {
        if (timeout_ms >= 0) {
            pollfd waiter{};
            waiter.fd = fd_;
            waiter.events = POLLIN;
            const int ready = ::poll(&waiter, 1, timeout_ms);
            if (ready == 0) return kTimeout;
            if (ready < 0) {
                if (errno == EINTR) continue;
                return -1;
            }
            // POLLIN, POLLHUP or POLLERR: fall through to accept(), which
            // resolves it (a connection, or the listener was shut down).
        }
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) {
            if (closed_.load(std::memory_order_acquire)) {
                ::close(client);
                return -1;
            }
            return client;
        }
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
            // Transient resource exhaustion must not look like shutdown; back
            // off and keep serving (fds free up as connections are reaped).
            struct timespec backoff{0, 50 * 1000 * 1000};  // 50 ms
            ::nanosleep(&backoff, nullptr);
            continue;
        }
        return -1;  // listener shut down (or a hard error): stop accepting
    }
    return -1;
}

void UnixSocketServer::close() {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    // shutdown() unblocks a concurrent accept(); the fd itself is closed by
    // the destructor so a racing accept never sees a reused descriptor.
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

int unix_socket_connect(const std::string& path) {
    const sockaddr_un addr = make_address(path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect " + path);
    }
    return fd;
}

bool write_all(int fd, std::string_view data) {
    while (!data.empty()) {
        // MSG_NOSIGNAL: a vanished peer must surface as an error return,
        // not a process-killing SIGPIPE. Falls back to write() for fds
        // (pipes) that are not sockets.
        ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) n = ::write(fd, data.data(), data.size());
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        data.remove_prefix(static_cast<size_t>(n));
    }
    return true;
}

bool LineReader::next(std::string& line) {
    while (true) {
        const size_t newline = buffer_.find('\n');
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            return true;
        }
        if (max_line_ != 0 && buffer_.size() > max_line_) {
            eof_ = true;  // runaway unterminated line: drop the stream
            overflowed_ = true;
            buffer_.clear();
            return false;
        }
        if (eof_) {
            if (buffer_.empty()) return false;
            line = std::move(buffer_);
            buffer_.clear();
            return true;
        }
        char chunk[4096];
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR) continue;
            eof_ = true;
            buffer_.clear();  // error-truncated bytes must not become a line
            continue;
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

FdSink::FdSink(int fd, bool owns_fd) : fd_(fd), owns_fd_(owns_fd) {
    if (owns_fd_ && kSendTimeoutSeconds > 0) {
        // Best-effort: a non-socket fd rejects the option, and write_all's
        // error handling covers the unbounded-blocking case no worse than
        // before.
        timeval timeout{};
        timeout.tv_sec = kSendTimeoutSeconds;
        (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    }
}

FdSink::~FdSink() {
    if (owns_fd_) ::close(fd_);
}

void FdSink::write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dropped_) return;
    if (!write_all(fd_, line) || !write_all(fd_, "\n")) dropped_ = true;
}

bool FdSink::dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
}

}  // namespace sdlc::serve
