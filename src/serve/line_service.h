// The contract a socket front-end needs from a line-oriented service.
//
// serve_listener() (transport.h) drives any NDJSON request/response service
// through this interface: SweepService (the DSE sweep server) and
// CacheTierService (the synthesis-cache daemon) both implement it, so the
// two tools share one accept/read/drain lifecycle — including the
// oversized-line rejection and the drain-then-unblock shutdown — instead
// of each reinventing it.
#ifndef SDLC_SERVE_LINE_SERVICE_H
#define SDLC_SERVE_LINE_SERVICE_H

#include <functional>
#include <memory>
#include <string>

#include "serve/sink.h"

namespace sdlc::serve {

/// A service consuming NDJSON request lines and answering through sinks.
class LineService {
public:
    virtual ~LineService() = default;

    /// Handles one request line; every response line for it goes to `sink`
    /// (possibly from another thread, possibly after this call returns).
    /// Malformed lines are answered with structured errors, never dropped
    /// silently. Returns false once the service is shutting down and the
    /// caller should stop reading its connection.
    virtual bool submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) = 0;

    /// Answers an over-long unterminated request line in the service's own
    /// wire format (the transport never got a complete line to hand to
    /// submit_line, but the protocol contract still promises a
    /// machine-readable "too_large" rejection before the connection
    /// drops).
    virtual void reject_oversized_line(ResponseSink& sink) = 0;

    /// Invoked exactly once when shutdown is first requested — the
    /// transport hooks this to unblock its accept loop. Set before the
    /// first request is submitted.
    virtual void set_on_shutdown(std::function<void()> hook) = 0;

    /// Stops intake and drains any internally queued work (idempotent). A
    /// service that answers inline on the caller's reader thread has
    /// nothing queued and may return immediately; requests still executing
    /// inside submit_line are finished by their reader threads, which the
    /// transport joins after calling this. Callers other than the
    /// transport must not assume every in-flight request has completed
    /// when this returns.
    virtual void shutdown() = 0;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_LINE_SERVICE_H
