// Pluggable response sinks for the DSE service.
//
// The service emits NDJSON events — one JSON object per line — and a
// ResponseSink is where a request's lines go: a client connection, stdout,
// or an in-memory buffer in tests and benches. Sinks must be safe to call
// from multiple threads (the service's request workers and the evaluator's
// streaming callback all write), so every implementation serializes whole
// lines internally; events from concurrent requests interleave at line
// granularity, never mid-line.
#ifndef SDLC_SERVE_SINK_H
#define SDLC_SERVE_SINK_H

#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sdlc::serve {

/// Thread-safe destination for NDJSON event lines.
class ResponseSink {
public:
    virtual ~ResponseSink() = default;

    /// Writes one event line (`line` carries no trailing newline; the sink
    /// adds it). Implementations must tolerate a broken peer: a failed
    /// write flips the sink into a dropped state instead of throwing into
    /// the evaluator.
    virtual void write_line(const std::string& line) = 0;
};

/// Writes to an ostream (stdout in `serve_tool` stdio mode), flushing per
/// line so a client reading a pipe sees events as they happen.
class OstreamSink final : public ResponseSink {
public:
    explicit OstreamSink(std::ostream& out) : out_(out) {}
    void write_line(const std::string& line) override;

private:
    std::mutex mutex_;
    std::ostream& out_;
};

/// Collects lines in memory; tests and benches inspect them afterwards.
class BufferSink final : public ResponseSink {
public:
    void write_line(const std::string& line) override;

    /// Snapshot of everything written so far.
    [[nodiscard]] std::vector<std::string> lines() const;

    /// Lines written so far, joined with '\n' (trailing newline included);
    /// what a client on the wire would have received.
    [[nodiscard]] std::string text() const;

    [[nodiscard]] size_t line_count() const;

private:
    mutable std::mutex mutex_;
    std::vector<std::string> lines_;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_SINK_H
