#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <utility>

#include "serve/transport.h"
#include "util/json.h"

namespace sdlc::serve {

namespace {

// --------------------------------------------------------------- parsing ----

/// Buffered byte reader over a connection fd: the HTTP head and body need
/// delimiter- and length-based reads, not the newline framing LineReader
/// provides.
class ByteReader {
public:
    explicit ByteReader(int fd) : fd_(fd) {}

    /// Appends bytes until `buffer_` contains a blank line ending the HTTP
    /// head, EOF, or `cap` bytes. Returns true when the head terminator was
    /// found; head_end is the offset just past it.
    enum class HeadStatus { kOk, kEof, kOverflow, kError };
    HeadStatus read_head(size_t cap, size_t& head_end) {
        while (true) {
            const size_t end = find_head_end();
            if (end != std::string::npos) {
                // A complete head is still held to the cap: arriving in one
                // read must not exempt it.
                if (end > cap) return HeadStatus::kOverflow;
                head_end = end;
                return HeadStatus::kOk;
            }
            if (buffer_.size() > cap) return HeadStatus::kOverflow;
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                return HeadStatus::kError;
            }
            if (n == 0) return buffer_.empty() ? HeadStatus::kEof : HeadStatus::kError;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    /// Extracts exactly `count` body bytes (the head must have been
    /// consumed first). Returns false on EOF/error before `count` arrived.
    bool read_exact(size_t count, std::string& out) {
        while (buffer_.size() < count) {
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            if (n == 0) return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
        out.assign(buffer_, 0, count);
        buffer_.erase(0, count);
        return true;
    }

    /// Reads one CRLF/LF-terminated line (terminator stripped); used by the
    /// client-side chunked decoder. False on EOF/error.
    bool read_line(std::string& line, size_t cap = size_t{1} << 16) {
        while (true) {
            const size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                line.assign(buffer_, 0, nl);
                buffer_.erase(0, nl + 1);
                if (!line.empty() && line.back() == '\r') line.pop_back();
                return true;
            }
            if (buffer_.size() > cap) return false;
            char chunk[4096];
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                return false;
            }
            if (n == 0) return false;
            buffer_.append(chunk, static_cast<size_t>(n));
        }
    }

    /// Drains the stream to EOF into `out` (Connection: close bodies).
    void read_to_eof(std::string& out) {
        out = std::move(buffer_);
        buffer_.clear();
        char chunk[4096];
        while (true) {
            const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                return;
            }
            if (n == 0) return;
            out.append(chunk, static_cast<size_t>(n));
        }
    }

    /// Hands the head bytes [0, head_end) over and drops them from the
    /// buffer (any body prefix read alongside stays buffered).
    std::string take_head(size_t head_end) {
        std::string head = buffer_.substr(0, head_end);
        buffer_.erase(0, head_end);
        return head;
    }

private:
    /// Offset just past "\r\n\r\n" (or bare "\n\n"); npos when incomplete.
    size_t find_head_end() const {
        const size_t crlf = buffer_.find("\r\n\r\n");
        const size_t lf = buffer_.find("\n\n");
        if (crlf == std::string::npos && lf == std::string::npos) return std::string::npos;
        if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
            return crlf + 4;
        }
        return lf + 2;
    }

    int fd_;
    std::string buffer_;
};

struct HttpRequestHead {
    std::string method;
    std::string target;
    std::string version;  // "HTTP/1.1"
    std::map<std::string, std::string> headers;  // names lowercased

    [[nodiscard]] std::string header(const std::string& name) const {
        const auto it = headers.find(name);
        return it == headers.end() ? std::string() : it->second;
    }
};

std::string lowercase(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

std::string trim(const std::string& s) {
    size_t b = 0;
    size_t e = s.size();
    while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
    while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
    return s.substr(b, e - b);
}

/// Parses the head block (request line + headers). Strict enough to reject
/// smuggling-shaped input: no obs-fold continuations, no duplicate
/// Content-Length, a single space between request-line tokens.
bool parse_request_head(const std::string& head, HttpRequestHead& out) {
    size_t pos = 0;
    auto next_line = [&head, &pos](std::string& line) {
        if (pos >= head.size()) return false;
        const size_t nl = head.find('\n', pos);
        const size_t end = nl == std::string::npos ? head.size() : nl;
        line.assign(head, pos, end - pos);
        pos = nl == std::string::npos ? head.size() : nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
    };

    std::string line;
    if (!next_line(line) || line.empty()) return false;
    const size_t sp1 = line.find(' ');
    const size_t sp2 = sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.find(' ', sp2 + 1) != std::string::npos) {
        return false;
    }
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    out.version = line.substr(sp2 + 1);
    if (out.method.empty() || out.target.empty() || out.target[0] != '/') return false;
    if (out.version.rfind("HTTP/", 0) != 0) return false;

    constexpr size_t kMaxHeaders = 100;
    while (next_line(line)) {
        if (line.empty()) break;  // end of headers
        if (line[0] == ' ' || line[0] == '\t') return false;  // obs-fold
        const size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) return false;
        if (out.headers.size() >= kMaxHeaders) return false;
        const std::string name = lowercase(line.substr(0, colon));
        const std::string value = trim(line.substr(colon + 1));
        if (name == "content-length" && out.headers.count(name) != 0 &&
            out.headers[name] != value) {
            return false;  // conflicting lengths: reject, never guess
        }
        out.headers[name] = value;
    }
    return true;
}

/// Strict non-negative integer parse for Content-Length and chunk sizes.
bool parse_size(const std::string& text, size_t& out, int base = 10) {
    if (text.empty()) return false;
    size_t value = 0;
    for (const char c : text) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
            digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
            digit = c - 'A' + 10;
        } else {
            return false;
        }
        if (value > (std::numeric_limits<size_t>::max() - static_cast<size_t>(digit)) /
                        static_cast<size_t>(base)) {
            return false;
        }
        value = value * static_cast<size_t>(base) + static_cast<size_t>(digit);
    }
    out = value;
    return true;
}

// ------------------------------------------------------------- responses ----

const char* status_reason(int status) {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 401: return "Unauthorized";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 413: return "Content Too Large";
        case 429: return "Too Many Requests";
        case 431: return "Request Header Fields Too Large";
        case 501: return "Not Implemented";
        case 505: return "HTTP Version Not Supported";
        default: return "Error";
    }
}

/// One complete non-streaming response (Content-Length framing).
std::string plain_response(int status, const std::string& content_type,
                           const std::string& body, bool keep_alive,
                           const std::string& extra_headers = "") {
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " + status_reason(status) +
                      "\r\n";
    if (!content_type.empty()) out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += extra_headers;
    out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
    out += "\r\n";
    out += body;
    return out;
}

std::string error_body(int status, const std::string& detail) {
    return std::string("{\"error\": ") + json_string(status_reason(status)) +
           ", \"detail\": " + json_string(detail) + "}\n";
}

// ------------------------------------------------------- streaming sink ----

/// ResponseSink wrapping one in-flight POST /v1/sweep: every NDJSON event
/// line becomes one HTTP chunk whose payload is the exact line plus '\n',
/// so concatenating the chunk payloads reproduces the line-transport bytes.
/// Counts terminal `done` events so the handler knows when the response is
/// complete (the service emits exactly one per submitted line).
class HttpChunkSink final : public ResponseSink {
public:
    explicit HttpChunkSink(std::shared_ptr<FdSink> out) : out_(std::move(out)) {}

    void write_line(const std::string& line) override {
        char size_hex[24];
        std::snprintf(size_hex, sizeof size_hex, "%zx", line.size() + 1);
        std::string chunk;
        chunk.reserve(line.size() + 24);
        chunk += size_hex;
        chunk += "\r\n";
        chunk += line;
        chunk += "\n\r\n";
        out_->write_raw(chunk);
        payload_bytes_.fetch_add(line.size() + 1, std::memory_order_relaxed);
        // Emitters JSON-escape every embedded quote, so this exact byte
        // sequence can only come from a real terminal event.
        if (line.find("\"event\": \"done\"") != std::string::npos) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++done_;
            cv_.notify_all();
        }
    }

    /// Blocks until `expected` done events have streamed. Safe even for a
    /// vanished peer: FdSink drops writes silently but the events still
    /// pass through here, so the count always completes.
    void wait_for_done(size_t expected) {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return done_ >= expected; });
    }

    [[nodiscard]] size_t payload_bytes() const noexcept {
        return payload_bytes_.load(std::memory_order_relaxed);
    }

private:
    std::shared_ptr<FdSink> out_;
    std::atomic<size_t> payload_bytes_{0};
    std::mutex mutex_;
    std::condition_variable cv_;
    size_t done_ = 0;
};

/// Peer identity for quota keying and the access log: the numeric address
/// without the port (one client = one bucket, not one per connection), or
/// "unix" for Unix-domain peers.
std::string peer_address(int fd) {
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) return "unknown";
    char text[INET6_ADDRSTRLEN] = {0};
    if (addr.ss_family == AF_INET) {
        const auto& v4 = reinterpret_cast<const sockaddr_in&>(addr);
        if (::inet_ntop(AF_INET, &v4.sin_addr, text, sizeof text) != nullptr) return text;
    } else if (addr.ss_family == AF_INET6) {
        const auto& v6 = reinterpret_cast<const sockaddr_in6&>(addr);
        if (::inet_ntop(AF_INET6, &v6.sin6_addr, text, sizeof text) != nullptr) return text;
    } else if (addr.ss_family == AF_UNIX) {
        return "unix";
    }
    return "unknown";
}

// --------------------------------------------------------------- handler ----

/// Everything one connection handler needs, shared across its requests.
struct FrontDoor {
    LineService& service;
    const HttpOptions& options;
    std::shared_ptr<TokenBucketLimiter> limiter;  // null without quotas

    void log(const std::string& peer, const std::string& method, const std::string& path,
             int status, const char* outcome, size_t bytes_out) const {
        if (options.access_log == nullptr) return;
        std::string line = "{\"tier\": \"http\", \"peer\": " + json_string(peer);
        line += ", \"method\": " + json_string(method);
        line += ", \"path\": " + json_string(path);
        line += ", \"status\": " + std::to_string(status);
        line += ", \"outcome\": " + json_string(outcome);
        line += ", \"bytes_out\": " + std::to_string(bytes_out);
        line += "}";
        options.access_log->write_line(line);
    }
};

/// Handles requests on one connection until close/shutdown. The sink owns
/// the fd (shared with in-flight sweeps exactly like the line transport).
void handle_http_connection(const FrontDoor& door, int fd,
                            const std::shared_ptr<FdSink>& sink) {
    const HttpOptions& opts = door.options;
    const std::string peer = peer_address(fd);
    ByteReader reader(fd);

    auto respond = [&](int status, const std::string& method, const std::string& path,
                       const char* outcome, const std::string& body, bool keep_alive,
                       const std::string& content_type = "application/json",
                       const std::string& extra_headers = "") {
        const std::string response =
            plain_response(status, content_type, body, keep_alive, extra_headers);
        sink->write_raw(response);
        door.log(peer, method, path, status, outcome, body.size());
        return keep_alive;
    };

    bool keep_alive = true;
    while (keep_alive) {
        size_t head_end = 0;
        switch (reader.read_head(opts.max_header_bytes, head_end)) {
            case ByteReader::HeadStatus::kOk:
                break;
            case ByteReader::HeadStatus::kEof:
                return;  // clean close between requests
            case ByteReader::HeadStatus::kOverflow:
                respond(431, "", "", "headers_too_large",
                        error_body(431, "request head exceeds " +
                                            std::to_string(opts.max_header_bytes) + " bytes"),
                        false);
                return;
            case ByteReader::HeadStatus::kError:
                return;  // mid-head disconnect: nothing sensible to answer
        }

        HttpRequestHead head;
        if (!parse_request_head(reader.take_head(head_end), head)) {
            respond(400, "", "", "bad_request",
                    error_body(400, "malformed HTTP request"), false);
            return;
        }
        if (head.version != "HTTP/1.1" && head.version != "HTTP/1.0") {
            respond(505, head.method, head.target, "bad_version",
                    error_body(505, "use HTTP/1.1"), false);
            return;
        }
        // Persistent by default on 1.1; 1.0 closes unless asked otherwise.
        const std::string connection = lowercase(head.header("connection"));
        keep_alive = head.version == "HTTP/1.1" ? connection != "close"
                                                : connection == "keep-alive";

        if (!head.header("transfer-encoding").empty()) {
            // Chunked request bodies are unsupported; refusing beats
            // guessing at framing (request-smuggling fuel).
            respond(501, head.method, head.target, "not_implemented",
                    error_body(501, "chunked request bodies are not supported"), false);
            return;
        }
        size_t content_length = 0;
        if (const std::string cl = head.header("content-length"); !cl.empty()) {
            if (!parse_size(cl, content_length)) {
                respond(400, head.method, head.target, "bad_request",
                        error_body(400, "invalid Content-Length"), false);
                return;
            }
        }
        if (content_length > opts.max_body_bytes) {
            respond(413, head.method, head.target, "body_too_large",
                    error_body(413, "body exceeds " + std::to_string(opts.max_body_bytes) +
                                        " bytes"),
                    false);
            return;
        }
        std::string body;
        if (content_length > 0 && !reader.read_exact(content_length, body)) {
            return;  // peer died mid-body; a half-received request never runs
        }

        // Path only; a query string never changes routing.
        const size_t query = head.target.find('?');
        const std::string path =
            query == std::string::npos ? head.target : head.target.substr(0, query);

        if (path == "/healthz") {
            // Liveness stays unauthenticated and unmetered: probes must
            // work during the exact incidents that exhaust auth and quota.
            if (head.method != "GET" && head.method != "HEAD") {
                keep_alive = respond(405, head.method, path, "method_not_allowed",
                                     error_body(405, "use GET"), keep_alive,
                                     "application/json", "Allow: GET\r\n");
                continue;
            }
            keep_alive = respond(200, head.method, path, "ok",
                                 head.method == "HEAD" ? "" : "ok\n", keep_alive,
                                 "text/plain; charset=utf-8");
            continue;
        }

        const bool known_path =
            path == "/metrics" || (path == "/v1/sweep" && opts.enable_sweep);
        if (!known_path) {
            keep_alive = respond(404, head.method, path, "not_found",
                                 error_body(404, "unknown path " + path), keep_alive);
            continue;
        }

        if (!opts.auth_token.empty()) {
            const std::string auth = head.header("authorization");
            constexpr std::string_view kBearer = "Bearer ";
            const bool ok = auth.size() > kBearer.size() &&
                            auth.compare(0, kBearer.size(), kBearer) == 0 &&
                            constant_time_equal(
                                std::string_view(auth).substr(kBearer.size()),
                                opts.auth_token);
            if (!ok) {
                keep_alive = respond(401, head.method, path, "unauthorized",
                                     error_body(401, "missing or invalid bearer token"),
                                     keep_alive, "application/json",
                                     "WWW-Authenticate: Bearer\r\n");
                continue;
            }
        }

        if (path == "/metrics") {
            if (head.method != "GET" && head.method != "HEAD") {
                keep_alive = respond(405, head.method, path, "method_not_allowed",
                                     error_body(405, "use GET"), keep_alive,
                                     "application/json", "Allow: GET\r\n");
                continue;
            }
            if (!opts.metrics_fn) {
                keep_alive = respond(404, head.method, path, "not_found",
                                     error_body(404, "metrics are not exposed here"),
                                     keep_alive);
                continue;
            }
            keep_alive = respond(200, head.method, path, "ok",
                                 head.method == "HEAD" ? "" : opts.metrics_fn(), keep_alive,
                                 "text/plain; version=0.0.4; charset=utf-8");
            continue;
        }

        // ---- POST /v1/sweep ----
        if (head.method != "POST") {
            keep_alive = respond(405, head.method, path, "method_not_allowed",
                                 error_body(405, "use POST"), keep_alive,
                                 "application/json", "Allow: POST\r\n");
            continue;
        }
        if (door.limiter != nullptr) {
            // Keyed by token when auth is on (one tenant = one budget
            // across all its connections), else by peer address.
            const std::string key =
                !opts.auth_token.empty() ? std::string("token") : peer;
            double retry_after_s = 0.0;
            if (!door.limiter->admit(key, retry_after_s)) {
                const long retry_after =
                    std::max(1L, static_cast<long>(retry_after_s + 0.999));
                keep_alive = respond(
                    429, head.method, path, "over_quota",
                    error_body(429, "per-client sweep quota exhausted"), keep_alive,
                    "application/json",
                    "Retry-After: " + std::to_string(retry_after) + "\r\n");
                continue;
            }
        }

        // Body = NDJSON request lines, exactly the line-transport format.
        std::vector<std::string> lines;
        size_t start = 0;
        while (start <= body.size()) {
            const size_t nl = body.find('\n', start);
            const size_t end = nl == std::string::npos ? body.size() : nl;
            if (end > start) lines.emplace_back(body, start, end - start);
            if (nl == std::string::npos) break;
            start = nl + 1;
        }
        if (lines.empty()) {
            keep_alive = respond(400, head.method, path, "bad_request",
                                 error_body(400, "empty request body; send NDJSON "
                                                 "request lines"),
                                 keep_alive);
            continue;
        }

        sink->write_raw(
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Cache-Control: no-store\r\n" +
            std::string(keep_alive ? "Connection: keep-alive\r\n"
                                   : "Connection: close\r\n") +
            "\r\n");
        const auto stream = std::make_shared<HttpChunkSink>(sink);
        size_t submitted = 0;
        for (const std::string& line : lines) {
            ++submitted;  // every submit_line emits exactly one done event
            if (!door.service.submit_line(line, stream)) {
                // Draining: the rejection events are already in-stream;
                // stop feeding and close after this response.
                keep_alive = false;
                break;
            }
        }
        stream->wait_for_done(submitted);
        sink->write_raw("0\r\n\r\n");
        door.log(peer, head.method, path, 200, "ok", stream->payload_bytes());
    }
}

}  // namespace

// ---------------------------------------------------------------- limiter ----

bool read_auth_token_file(const std::string& path, std::string& token, std::string* error) {
    auto fail = [error](const std::string& message) {
        if (error != nullptr) *error = message;
        return false;
    };
    std::ifstream in(path, std::ios::binary);
    if (!in) return fail("cannot open " + path);
    std::string line;
    std::getline(in, line);
    if (in.bad()) return fail("cannot read " + path);
    size_t b = 0;
    size_t e = line.size();
    while (b < e && std::isspace(static_cast<unsigned char>(line[b])) != 0) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1])) != 0) --e;
    if (b == e) return fail("empty token in " + path);
    token = line.substr(b, e - b);
    return true;
}

bool constant_time_equal(std::string_view a, std::string_view b) noexcept {
    // Fold the length difference into the accumulator instead of early
    // returning; scan time depends only on the lengths.
    unsigned diff = a.size() == b.size() ? 0U : 1U;
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
        diff |= static_cast<unsigned>(static_cast<unsigned char>(a[i]) ^
                                      static_cast<unsigned char>(b[i]));
    }
    return diff == 0;
}

TokenBucketLimiter::TokenBucketLimiter(double rps, double burst)
    : rps_(rps), burst_(std::max(burst > 0.0 ? burst : rps, 1.0)) {}

bool TokenBucketLimiter::admit(const std::string& key,
                               std::chrono::steady_clock::time_point now,
                               double& retry_after_s) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = buckets_.find(key);
    if (it == buckets_.end()) {
        if (buckets_.size() >= kMaxBuckets) {
            // Evict the least-recently-refreshed bucket: a key-rotating
            // flood cannot grow the table, and a stale bucket re-admitted
            // later just restarts from a full burst — lenient, not unsafe.
            auto oldest = buckets_.begin();
            for (auto scan = buckets_.begin(); scan != buckets_.end(); ++scan) {
                if (scan->second.refreshed < oldest->second.refreshed) oldest = scan;
            }
            buckets_.erase(oldest);
        }
        it = buckets_.emplace(key, Bucket{burst_, now}).first;
    }
    Bucket& bucket = it->second;
    const double elapsed =
        std::chrono::duration<double>(now - bucket.refreshed).count();
    if (elapsed > 0.0) {
        bucket.tokens = std::min(burst_, bucket.tokens + elapsed * rps_);
        bucket.refreshed = now;
    }
    if (bucket.tokens >= 1.0) {
        bucket.tokens -= 1.0;
        retry_after_s = 0.0;
        return true;
    }
    retry_after_s = (1.0 - bucket.tokens) / rps_;
    return false;
}

bool TokenBucketLimiter::admit(const std::string& key, double& retry_after_s) {
    return admit(key, std::chrono::steady_clock::now(), retry_after_s);
}

size_t TokenBucketLimiter::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_.size();
}

// --------------------------------------------------------------- listener ----

void serve_http_listener(SocketListener& listener, LineService& service,
                         const HttpOptions& options) {
    FrontDoor door{service, options,
                   options.quota_rps > 0.0
                       ? std::make_shared<TokenBucketLimiter>(options.quota_rps,
                                                              options.quota_burst)
                       : nullptr};
    serve_connection_loop(
        listener, service,
        [door](int fd, const std::shared_ptr<FdSink>& sink) {
            handle_http_connection(door, fd, sink);
        },
        options.install_shutdown_hook);
}

// ------------------------------------------------------------ http client ----

bool http_request(const std::string& host, uint16_t port, const std::string& method,
                  const std::string& target, const std::string& body,
                  const std::string& bearer_token, HttpClientResponse& out,
                  std::string* error, int timeout_ms) {
    auto fail = [error](const std::string& message) {
        if (error != nullptr) *error = message;
        return false;
    };
    int fd;
    try {
        fd = tcp_connect(host, port, timeout_ms);
    } catch (const std::exception& e) {
        return fail(e.what());
    }

    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Host: " + host + ":" + std::to_string(port) + "\r\n";
    if (!bearer_token.empty()) request += "Authorization: Bearer " + bearer_token + "\r\n";
    if (!body.empty() || method == "POST") {
        request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "Connection: close\r\n\r\n";
    request += body;
    if (!write_all(fd, request)) {
        ::close(fd);
        return fail("send failed");
    }

    ByteReader reader(fd);
    size_t head_end = 0;
    if (reader.read_head(size_t{1} << 20, head_end) != ByteReader::HeadStatus::kOk) {
        ::close(fd);
        return fail("no HTTP response head");
    }
    const std::string head = reader.take_head(head_end);
    const size_t line_end = head.find('\n');
    std::string status_line = head.substr(0, line_end);
    if (!status_line.empty() && status_line.back() == '\r') status_line.pop_back();
    // "HTTP/1.1 200 OK"
    const size_t sp1 = status_line.find(' ');
    if (status_line.rfind("HTTP/", 0) != 0 || sp1 == std::string::npos) {
        ::close(fd);
        return fail("malformed status line: " + status_line);
    }
    const size_t sp2 = status_line.find(' ', sp1 + 1);
    const std::string code_text =
        status_line.substr(sp1 + 1, sp2 == std::string::npos ? std::string::npos
                                                             : sp2 - sp1 - 1);
    size_t code = 0;
    if (!parse_size(code_text, code) || code < 100 || code > 599) {
        ::close(fd);
        return fail("malformed status code: " + code_text);
    }
    out = HttpClientResponse{};
    out.status = static_cast<int>(code);
    if (sp2 != std::string::npos) out.reason = status_line.substr(sp2 + 1);

    size_t pos = line_end + 1;
    while (pos < head.size()) {
        const size_t nl = head.find('\n', pos);
        const size_t end = nl == std::string::npos ? head.size() : nl;
        std::string line = head.substr(pos, end - pos);
        pos = nl == std::string::npos ? head.size() : nl + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        out.headers[lowercase(line.substr(0, colon))] = trim(line.substr(colon + 1));
    }

    bool ok = true;
    const auto te = out.headers.find("transfer-encoding");
    if (te != out.headers.end() && lowercase(te->second) == "chunked") {
        std::string size_line;
        while (true) {
            if (!reader.read_line(size_line)) {
                ok = false;
                break;
            }
            // Ignore chunk extensions (";...") per RFC 9112.
            const size_t semi = size_line.find(';');
            size_t chunk_size = 0;
            if (!parse_size(semi == std::string::npos ? size_line
                                                      : size_line.substr(0, semi),
                            chunk_size, /*base=*/16)) {
                ok = false;
                break;
            }
            if (chunk_size == 0) {
                (void)reader.read_line(size_line);  // trailing CRLF / trailers
                break;
            }
            std::string payload;
            if (!reader.read_exact(chunk_size, payload) ||
                !reader.read_line(size_line)) {  // chunk-terminating CRLF
                ok = false;
                break;
            }
            out.body += payload;
        }
    } else if (const auto cl = out.headers.find("content-length");
               cl != out.headers.end()) {
        size_t length = 0;
        if (!parse_size(cl->second, length) || !reader.read_exact(length, out.body)) {
            ok = false;
        }
    } else {
        reader.read_to_eof(out.body);
    }
    ::close(fd);
    if (!ok) return fail("truncated HTTP response body");
    return true;
}

}  // namespace sdlc::serve
