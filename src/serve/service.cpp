#include "serve/service.h"

#include <stdexcept>
#include <string_view>

#include "dse/evaluator.h"
#include "serve/metrics.h"

namespace sdlc::serve {

SweepService::SweepService(const ServiceOptions& opts)
    : opts_(opts), pool_(opts.eval_threads), queue_(opts.queue_capacity) {
    if (!opts_.cache_peers.empty()) {
        RemoteCacheOptions remote;
        remote.peers = opts_.cache_peers;
        remote.timeout_ms = opts_.cache_timeout_ms;
        remote.replicas = opts_.cache_replicas == 0 ? 1 : opts_.cache_replicas;
        remote_cache_ = std::make_unique<RemoteCostCache>(cache_, remote);
    }
    const unsigned workers = opts_.request_workers == 0 ? 1 : opts_.request_workers;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SweepService::~SweepService() { shutdown(); }

bool SweepService::submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) {
    SweepRequest request;
    RequestError error;
    if (!parse_request(line, opts_.max_request_bytes, request, error)) {
        sink->write_line(error_event(error.id, error.code, error.message));
        sink->write_line(done_event(error.id, false));
        return !shutdown_requested();
    }
    return submit(request, std::move(sink));
}

void SweepService::reject_oversized_line(ResponseSink& sink) {
    sink.write_line(
        error_event("", "too_large", "unterminated request line exceeded the size cap"));
    sink.write_line(done_event("", false));
}

bool SweepService::submit(const SweepRequest& request, std::shared_ptr<ResponseSink> sink) {
    // Cancels act on service state, not on the sweep pipeline: handle them
    // inline so a cancel is never stuck in the queue behind its target.
    if (request.type == RequestType::kCancel) {
        handle_cancel(request, *sink);
        return !shutdown_requested();
    }

    Job job;
    job.request = request;
    job.sink = std::move(sink);
    job.arrival = std::chrono::steady_clock::now();
    bool created_flag = false;
    if (request.type == RequestType::kSweep) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        auto& flag = cancel_flags_[request.id];
        if (flag == nullptr) {
            flag = std::make_shared<std::atomic<bool>>(false);
            created_flag = true;
        }
        job.cancel = flag;
    }

    auto failed_sink = job.sink;  // push moves the job away
    const auto cancel_flag = job.cancel;
    const std::string id = request.id;
    // Control requests (stats, metrics, shutdown) must stay serviceable
    // during the very overload they exist to observe and resolve, so they
    // never block on — or get shed from — a full queue: they ride the
    // queue when there is room (normal FIFO semantics) and are answered
    // inline when there is not. Sweeps block (backpressure) unless
    // --reject-overload turns a full queue into `overloaded` rejections.
    const bool sweep = request.type == RequestType::kSweep;
    const bool blocking = sweep && !opts_.reject_when_full;
    const bool pushed = blocking ? queue_.push(std::move(job)) : queue_.try_push(std::move(job));
    if (!pushed) {
        if (created_flag) {
            // Only retract the flag this submission created: a rejected
            // duplicate id must not strip a queued/running sweep of its
            // cancellability.
            std::lock_guard<std::mutex> lock(state_mutex_);
            const auto it = cancel_flags_.find(id);
            if (it != cancel_flags_.end() && it->second == cancel_flag) cancel_flags_.erase(it);
        }
        if (queue_.closed()) {
            failed_sink->write_line(
                error_event(id, "shutting_down", "service is draining; request rejected"));
            failed_sink->write_line(done_event(id, false));
            return false;
        }
        if (!sweep) {
            // Full queue, control request: answer it right here on the
            // submitting thread. The counters are momentary either way.
            switch (request.type) {
                case RequestType::kStats:
                    failed_sink->write_line(stats_event(id, stats()));
                    break;
                case RequestType::kMetrics:
                    failed_sink->write_line(metrics_event(id, prometheus_metrics(stats())));
                    break;
                case RequestType::kShutdown:
                    request_shutdown();
                    break;
                case RequestType::kSweep:
                case RequestType::kCancel:
                    break;  // unreachable: sweeps handled below, cancels above
            }
            failed_sink->write_line(done_event(id, true));
            return !shutdown_requested();
        }
        // Load-shedding rejection: the service stays up, the caller keeps
        // reading its connection, only this request is refused.
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++counters_.overloaded;
        }
        failed_sink->write_line(error_event(
            id, "overloaded",
            "request queue is full (capacity " + std::to_string(queue_.capacity()) + ")"));
        failed_sink->write_line(done_event(id, false));
        return true;
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.accepted;
    return true;
}

void SweepService::handle_cancel(const SweepRequest& request, ResponseSink& sink) {
    std::shared_ptr<std::atomic<bool>> flag;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.target);
        if (it != cancel_flags_.end()) flag = it->second;
    }
    if (flag == nullptr) {
        sink.write_line(error_event(request.id, "unknown_target",
                                    "no queued or running sweep with id \"" + request.target +
                                        "\""));
        sink.write_line(done_event(request.id, false));
        return;
    }
    flag->store(true, std::memory_order_relaxed);
    sink.write_line(done_event(request.id, true));
}

void SweepService::request_shutdown() {
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_requested_) return;
        shutdown_requested_ = true;
        hook = on_shutdown_;
    }
    queue_.close();
    if (hook) hook();
}

void SweepService::shutdown() {
    request_shutdown();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (joined_) return;
        joined_ = true;
    }
    for (std::thread& worker : workers_) worker.join();
}

bool SweepService::shutdown_requested() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return shutdown_requested_;
}

void SweepService::set_on_shutdown(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    on_shutdown_ = std::move(hook);
}

ServiceStats SweepService::stats() const {
    ServiceStats out;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        out = counters_;
        out.in_flight = in_flight_;
    }
    out.queue_depth = queue_.size();
    const CostCache::Stats cache = cache_.stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_entries = cache_.size();
    if (remote_cache_ != nullptr) out.remote_cache = remote_cache_->remote_counters();
    return out;
}

void SweepService::worker_loop() {
    while (std::optional<Job> job = queue_.pop()) {
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++in_flight_;
        }
        process(*job);
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            --in_flight_;
        }
    }
}

void SweepService::process(Job& job) {
    const SweepRequest& request = job.request;
    ResponseSink& sink = *job.sink;
    switch (request.type) {
        case RequestType::kSweep:
            run_sweep(job);
            break;
        case RequestType::kStats:
            sink.write_line(stats_event(request.id, stats()));
            sink.write_line(done_event(request.id, true));
            break;
        case RequestType::kMetrics:
            sink.write_line(metrics_event(request.id, prometheus_metrics(stats())));
            sink.write_line(done_event(request.id, true));
            break;
        case RequestType::kShutdown:
            request_shutdown();
            sink.write_line(done_event(request.id, true));
            break;
        case RequestType::kCancel:
            // Unreachable: cancels are handled inline in submit().
            break;
    }
}

std::vector<DesignPoint> SweepService::evaluate(const SweepRequest& request, EvalOptions& eval,
                                                SweepStats& stats) {
    return evaluate_sweep(request.spec, eval, &stats);
}

void SweepService::run_sweep(const Job& job) {
    const SweepRequest& request = job.request;
    ResponseSink& sink = *job.sink;
    bool ok = false;
    try {
        // Validate the spec before announcing acceptance so an unbuildable
        // sweep fails with a single error instead of accepted-then-error.
        const size_t count = request.spec.count();
        // A shard-restricted request announces the points it will actually
        // stream, not the whole space it is a slice of.
        const size_t effective =
            request.shard_hi > 0 ? request.shard_hi - request.shard_lo : count;
        sink.write_line(accepted_event(request.id, request.type, effective,
                                       request.spec.describe()));

        EvalOptions eval = request.eval;
        eval.pool = &pool_;
        // The resident cache — with its remote tier when peers are
        // configured; evaluate_sweep drops it when use_hw_cache is off.
        eval.hw_cache = eval_cache();
        eval.cancel = job.cancel.get();
        if (request.deadline_ms > 0) {
            // The budget runs from arrival, not from here: time spent queued
            // behind other requests counts, so an overloaded service sheds
            // expired work with one cheap check instead of evaluating it.
            eval.deadline = job.arrival + std::chrono::milliseconds(request.deadline_ms);
        }
        if (request.stream_points) {
            eval.on_point = [&](size_t index, const DesignPoint& point) {
                sink.write_line(point_event(request.id, index, point, request.point_bits));
            };
        }
        eval.shard_lo = request.shard_lo;
        eval.shard_hi = request.shard_hi;

        SweepStats sweep_stats;
        const std::vector<DesignPoint> points = evaluate(request, eval, sweep_stats);
        emit_sweep_results(sink, request, points, sweep_stats);

        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.completed;
        counters_.points_evaluated += sweep_stats.points;
        counters_.busy_seconds += sweep_stats.wall_seconds;
        ok = true;
    } catch (const SweepCancelled&) {
        sink.write_line(error_event(request.id, "cancelled", "sweep cancelled by request"));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.cancelled;
    } catch (const SweepDeadlineExceeded&) {
        sink.write_line(error_event(
            request.id, "deadline_exceeded",
            "sweep exceeded its deadline_ms budget of " + std::to_string(request.deadline_ms) +
                " ms; the points streamed so far are a prefix of the full sweep"));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.deadline_exceeded;
    } catch (const std::invalid_argument& e) {
        sink.write_line(error_event(request.id, "invalid_request", e.what()));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    } catch (const std::exception& e) {
        sink.write_line(error_event(request.id, "internal_error", e.what()));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.id);
        if (it != cancel_flags_.end() && it->second == job.cancel) cancel_flags_.erase(it);
        counters_.latency.observe(std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - job.arrival)
                                      .count());
    }
    sink.write_line(done_event(request.id, ok));
}

}  // namespace sdlc::serve
