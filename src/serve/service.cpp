#include "serve/service.h"

#include <stdexcept>

#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"

namespace sdlc::serve {

SweepService::SweepService(const ServiceOptions& opts)
    : opts_(opts), pool_(opts.eval_threads), queue_(opts.queue_capacity) {
    const unsigned workers = opts_.request_workers == 0 ? 1 : opts_.request_workers;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SweepService::~SweepService() { shutdown(); }

bool SweepService::submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) {
    SweepRequest request;
    RequestError error;
    if (!parse_request(line, opts_.max_request_bytes, request, error)) {
        sink->write_line(error_event(error.id, error.code, error.message));
        sink->write_line(done_event(error.id, false));
        return !shutdown_requested();
    }
    return submit(request, std::move(sink));
}

bool SweepService::submit(const SweepRequest& request, std::shared_ptr<ResponseSink> sink) {
    // Cancels act on service state, not on the sweep pipeline: handle them
    // inline so a cancel is never stuck in the queue behind its target.
    if (request.type == RequestType::kCancel) {
        handle_cancel(request, *sink);
        return !shutdown_requested();
    }

    Job job;
    job.request = request;
    job.sink = std::move(sink);
    if (request.type == RequestType::kSweep) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        auto& flag = cancel_flags_[request.id];
        if (flag == nullptr) flag = std::make_shared<std::atomic<bool>>(false);
        job.cancel = flag;
    }

    auto failed_sink = job.sink;  // push moves the job away
    const std::string id = request.id;
    if (!queue_.push(std::move(job))) {
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            cancel_flags_.erase(id);
        }
        failed_sink->write_line(
            error_event(id, "shutting_down", "service is draining; request rejected"));
        failed_sink->write_line(done_event(id, false));
        return false;
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.accepted;
    return true;
}

void SweepService::handle_cancel(const SweepRequest& request, ResponseSink& sink) {
    std::shared_ptr<std::atomic<bool>> flag;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.target);
        if (it != cancel_flags_.end()) flag = it->second;
    }
    if (flag == nullptr) {
        sink.write_line(error_event(request.id, "unknown_target",
                                    "no queued or running sweep with id \"" + request.target +
                                        "\""));
        sink.write_line(done_event(request.id, false));
        return;
    }
    flag->store(true, std::memory_order_relaxed);
    sink.write_line(done_event(request.id, true));
}

void SweepService::request_shutdown() {
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_requested_) return;
        shutdown_requested_ = true;
        hook = on_shutdown_;
    }
    queue_.close();
    if (hook) hook();
}

void SweepService::shutdown() {
    request_shutdown();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (joined_) return;
        joined_ = true;
    }
    for (std::thread& worker : workers_) worker.join();
}

bool SweepService::shutdown_requested() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return shutdown_requested_;
}

void SweepService::set_on_shutdown(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    on_shutdown_ = std::move(hook);
}

ServiceStats SweepService::stats() const {
    ServiceStats out;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        out = counters_;
        out.in_flight = in_flight_;
    }
    out.queue_depth = queue_.size();
    const CostCache::Stats cache = cache_.stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_entries = cache_.size();
    return out;
}

void SweepService::worker_loop() {
    while (std::optional<Job> job = queue_.pop()) {
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++in_flight_;
        }
        process(*job);
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            --in_flight_;
        }
    }
}

void SweepService::process(Job& job) {
    const SweepRequest& request = job.request;
    ResponseSink& sink = *job.sink;
    switch (request.type) {
        case RequestType::kSweep:
            run_sweep(job);
            break;
        case RequestType::kStats:
            sink.write_line(stats_event(request.id, stats()));
            sink.write_line(done_event(request.id, true));
            break;
        case RequestType::kShutdown:
            request_shutdown();
            sink.write_line(done_event(request.id, true));
            break;
        case RequestType::kCancel:
            // Unreachable: cancels are handled inline in submit().
            break;
    }
}

void SweepService::run_sweep(const Job& job) {
    const SweepRequest& request = job.request;
    ResponseSink& sink = *job.sink;
    bool ok = false;
    try {
        // Validate the spec before announcing acceptance so an unbuildable
        // sweep fails with a single error instead of accepted-then-error.
        const size_t count = request.spec.count();
        sink.write_line(accepted_event(request.id, request.type, count,
                                       request.spec.describe()));

        EvalOptions eval = request.eval;
        eval.pool = &pool_;
        eval.hw_cache = &cache_;  // evaluate_sweep drops it when use_hw_cache is off
        eval.cancel = job.cancel.get();
        if (request.stream_points) {
            eval.on_point = [&](size_t index, const DesignPoint& point) {
                sink.write_line(point_event(request.id, index, point));
            };
        }

        SweepStats sweep_stats;
        const std::vector<DesignPoint> points =
            evaluate_sweep(request.spec, eval, &sweep_stats);
        const ParetoResult pareto =
            pareto_analysis(objective_matrix(points, request.objectives));
        sink.write_line(summary_event(request.id, sweep_stats, pareto.frontier.size(),
                                      request.objectives));
        if (request.export_json) {
            sink.write_line(result_event(
                request.id,
                dse_to_json(points, pareto.rank, sweep_stats, request.objectives)));
        }

        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.completed;
        counters_.points_evaluated += sweep_stats.points;
        counters_.busy_seconds += sweep_stats.wall_seconds;
        ok = true;
    } catch (const SweepCancelled&) {
        sink.write_line(error_event(request.id, "cancelled", "sweep cancelled by request"));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.cancelled;
    } catch (const std::invalid_argument& e) {
        sink.write_line(error_event(request.id, "invalid_request", e.what()));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    } catch (const std::exception& e) {
        sink.write_line(error_event(request.id, "internal_error", e.what()));
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    }
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.id);
        if (it != cancel_flags_.end() && it->second == job.cancel) cancel_flags_.erase(it);
    }
    sink.write_line(done_event(request.id, ok));
}

}  // namespace sdlc::serve
