#include "serve/service.h"

#include <stdexcept>
#include <string_view>

#include "dse/evaluator.h"
#include "serve/metrics.h"
#include "util/json.h"

namespace sdlc::serve {

namespace {

/// Per-request byte meter over the connection sink: forwards every line and
/// tallies what this request cost on the wire (for the access log).
class CountingSink final : public ResponseSink {
public:
    explicit CountingSink(ResponseSink& inner) : inner_(inner) {}
    void write_line(const std::string& line) override {
        bytes_.fetch_add(line.size() + 1, std::memory_order_relaxed);
        inner_.write_line(line);
    }
    [[nodiscard]] size_t bytes() const noexcept {
        return bytes_.load(std::memory_order_relaxed);
    }

private:
    ResponseSink& inner_;
    std::atomic<size_t> bytes_{0};
};

/// Recorder seed for a tier handling a traced request: derived from the
/// inbound context so every process in the request's path draws span ids
/// from a distinct deterministic stream (no cross-tier id collisions).
[[nodiscard]] uint64_t recorder_seed(const obs::TraceContext& ctx, uint64_t tier_salt) {
    return ctx.trace_lo ^ ctx.span_id ^ tier_salt;
}

constexpr uint64_t kServeSalt = 0x7365727665ULL;  // "serve"

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

SweepService::SweepService(const ServiceOptions& opts)
    : opts_(opts), traces_(opts.trace_capacity), pool_(opts.eval_threads),
      queue_(opts.queue_capacity) {
    if (!opts_.cache_peers.empty()) {
        RemoteCacheOptions remote;
        remote.peers = opts_.cache_peers;
        remote.timeout_ms = opts_.cache_timeout_ms;
        remote.replicas = opts_.cache_replicas == 0 ? 1 : opts_.cache_replicas;
        remote_cache_ = std::make_unique<RemoteCostCache>(cache_, remote);
    }
    const unsigned workers = opts_.request_workers == 0 ? 1 : opts_.request_workers;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

SweepService::~SweepService() { shutdown(); }

bool SweepService::submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) {
    const auto parse_start = std::chrono::steady_clock::now();
    SweepRequest request;
    RequestError error;
    if (!parse_request(line, opts_.max_request_bytes, request, error)) {
        size_t bytes = 0;
        const std::string err = error_event(error.id, error.code, error.message);
        const std::string done = done_event(error.id, false);
        bytes = err.size() + done.size() + 2;
        sink->write_line(err);
        sink->write_line(done);
        access_log_line(error.id, "invalid", {}, error.code.c_str(), 0.0,
                        seconds_since(parse_start), bytes, false, false);
        return !shutdown_requested();
    }
    return submit_job(request, std::move(sink), seconds_since(parse_start));
}

void SweepService::reject_oversized_line(ResponseSink& sink) {
    const std::string err =
        error_event("", "too_large", "unterminated request line exceeded the size cap");
    const std::string done = done_event("", false);
    sink.write_line(err);
    sink.write_line(done);
    access_log_line("", "invalid", {}, "too_large", 0.0, 0.0, err.size() + done.size() + 2,
                    false, false);
}

bool SweepService::submit(const SweepRequest& request, std::shared_ptr<ResponseSink> sink) {
    return submit_job(request, std::move(sink), 0.0);
}

bool SweepService::submit_job(const SweepRequest& request, std::shared_ptr<ResponseSink> sink,
                              double parse_s) {
    // Cancels act on service state, not on the sweep pipeline: handle them
    // inline so a cancel is never stuck in the queue behind its target.
    if (request.type == RequestType::kCancel) {
        handle_cancel(request, *sink);
        return !shutdown_requested();
    }

    Job job;
    job.request = request;
    job.sink = std::move(sink);
    job.arrival = std::chrono::steady_clock::now();
    job.parse_s = parse_s;
    bool created_flag = false;
    if (request.type == RequestType::kSweep) {
        std::lock_guard<std::mutex> lock(state_mutex_);
        auto& flag = cancel_flags_[request.id];
        if (flag == nullptr) {
            flag = std::make_shared<std::atomic<bool>>(false);
            created_flag = true;
        }
        job.cancel = flag;
    }

    auto failed_sink = job.sink;  // push moves the job away
    const auto cancel_flag = job.cancel;
    const std::string id = request.id;
    // Control requests (stats, metrics, shutdown) must stay serviceable
    // during the very overload they exist to observe and resolve, so they
    // never block on — or get shed from — a full queue: they ride the
    // queue when there is room (normal FIFO semantics) and are answered
    // inline when there is not. Sweeps block (backpressure) unless
    // --reject-overload turns a full queue into `overloaded` rejections.
    const bool sweep = request.type == RequestType::kSweep;
    const bool blocking = sweep && !opts_.reject_when_full;
    const bool pushed = blocking ? queue_.push(std::move(job)) : queue_.try_push(std::move(job));
    if (!pushed) {
        if (created_flag) {
            // Only retract the flag this submission created: a rejected
            // duplicate id must not strip a queued/running sweep of its
            // cancellability.
            std::lock_guard<std::mutex> lock(state_mutex_);
            const auto it = cancel_flags_.find(id);
            if (it != cancel_flags_.end() && it->second == cancel_flag) cancel_flags_.erase(it);
        }
        if (queue_.closed()) {
            const std::string err =
                error_event(id, "shutting_down", "service is draining; request rejected");
            const std::string done = done_event(id, false);
            failed_sink->write_line(err);
            failed_sink->write_line(done);
            access_log_line(id, request_type_name(request.type), request.trace,
                            "shutting_down", 0.0, 0.0, err.size() + done.size() + 2, false,
                            false);
            return false;
        }
        if (!sweep) {
            // Full queue, control request: answer it right here on the
            // submitting thread. The counters are momentary either way.
            switch (request.type) {
                case RequestType::kStats:
                    failed_sink->write_line(stats_event(id, stats()));
                    break;
                case RequestType::kMetrics:
                    failed_sink->write_line(metrics_event(id, prometheus_metrics(stats())));
                    break;
                case RequestType::kTrace:
                    failed_sink->write_line(trace_event(id, trace_trees()));
                    break;
                case RequestType::kShutdown:
                    request_shutdown();
                    break;
                case RequestType::kSweep:
                case RequestType::kCancel:
                    break;  // unreachable: sweeps handled below, cancels above
            }
            failed_sink->write_line(done_event(id, true));
            return !shutdown_requested();
        }
        // Load-shedding rejection: the service stays up, the caller keeps
        // reading its connection, only this request is refused.
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++counters_.overloaded;
        }
        const std::string err = error_event(
            id, "overloaded",
            "request queue is full (capacity " + std::to_string(queue_.capacity()) + ")");
        const std::string done = done_event(id, false);
        failed_sink->write_line(err);
        failed_sink->write_line(done);
        access_log_line(id, "sweep", request.trace, "overloaded", 0.0, 0.0,
                        err.size() + done.size() + 2, true, false);
        return true;
    }
    std::lock_guard<std::mutex> lock(state_mutex_);
    ++counters_.accepted;
    return true;
}

void SweepService::handle_cancel(const SweepRequest& request, ResponseSink& sink) {
    std::shared_ptr<std::atomic<bool>> flag;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.target);
        if (it != cancel_flags_.end()) flag = it->second;
    }
    CountingSink counting(sink);
    if (flag == nullptr) {
        counting.write_line(error_event(request.id, "unknown_target",
                                        "no queued or running sweep with id \"" +
                                            request.target + "\""));
        counting.write_line(done_event(request.id, false));
        access_log_line(request.id, "cancel", request.trace, "unknown_target", 0.0, 0.0,
                        counting.bytes(), false, false);
        return;
    }
    flag->store(true, std::memory_order_relaxed);
    counting.write_line(done_event(request.id, true));
    access_log_line(request.id, "cancel", request.trace, "ok", 0.0, 0.0, counting.bytes(),
                    false, false);
}

void SweepService::request_shutdown() {
    std::function<void()> hook;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (shutdown_requested_) return;
        shutdown_requested_ = true;
        hook = on_shutdown_;
    }
    queue_.close();
    if (hook) hook();
}

void SweepService::shutdown() {
    request_shutdown();
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        if (joined_) return;
        joined_ = true;
    }
    for (std::thread& worker : workers_) worker.join();
}

bool SweepService::shutdown_requested() const {
    std::lock_guard<std::mutex> lock(state_mutex_);
    return shutdown_requested_;
}

void SweepService::set_on_shutdown(std::function<void()> hook) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    on_shutdown_ = std::move(hook);
}

ServiceStats SweepService::stats() const {
    ServiceStats out;
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        out = counters_;
        out.in_flight = in_flight_;
    }
    out.queue_depth = queue_.size();
    out.uptime_seconds = seconds_since(started_);
    const CostCache::Stats cache = cache_.stats();
    out.cache_hits = cache.hits;
    out.cache_misses = cache.misses;
    out.cache_entries = cache_.size();
    if (remote_cache_ != nullptr) out.remote_cache = remote_cache_->remote_counters();
    return out;
}

void SweepService::worker_loop() {
    while (std::optional<Job> job = queue_.pop()) {
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            ++in_flight_;
        }
        process(*job);
        {
            std::lock_guard<std::mutex> lock(state_mutex_);
            --in_flight_;
        }
    }
}

void SweepService::process(Job& job) {
    const SweepRequest& request = job.request;
    ResponseSink& sink = *job.sink;
    const double queue_wait_s = seconds_since(job.arrival);
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        counters_.queue_wait.observe(queue_wait_s);
    }
    switch (request.type) {
        case RequestType::kSweep:
            run_sweep(job, queue_wait_s);
            break;
        case RequestType::kStats:
        case RequestType::kMetrics:
        case RequestType::kTrace: {
            const char* verb = request_type_name(request.type);
            CountingSink counting(sink);
            switch (request.type) {
                case RequestType::kStats:
                    counting.write_line(stats_event(request.id, stats()));
                    break;
                case RequestType::kMetrics:
                    counting.write_line(metrics_event(request.id, prometheus_metrics(stats())));
                    break;
                default:
                    counting.write_line(trace_event(request.id, trace_trees()));
                    break;
            }
            counting.write_line(done_event(request.id, true));
            access_log_line(request.id, verb, request.trace, "ok", queue_wait_s,
                            seconds_since(job.arrival), counting.bytes(), false, false);
            break;
        }
        case RequestType::kShutdown: {
            request_shutdown();
            const std::string done = done_event(request.id, true);
            sink.write_line(done);
            access_log_line(request.id, "shutdown", request.trace, "ok", queue_wait_s,
                            seconds_since(job.arrival), done.size() + 1, false, false);
            break;
        }
        case RequestType::kCancel:
            // Unreachable: cancels are handled inline in submit().
            break;
    }
}

std::vector<DesignPoint> SweepService::evaluate(const SweepRequest& request, EvalOptions& eval,
                                                SweepStats& stats) {
    return evaluate_sweep(request.spec, eval, &stats);
}

void SweepService::run_sweep(const Job& job, double queue_wait_s) {
    const SweepRequest& request = job.request;
    CountingSink sink(*job.sink);
    const bool traced = request.trace.valid;
    // Per-request recorder: concurrent traced requests never share span
    // streams, and the seed keeps ids deterministic yet distinct from the
    // client's own stream.
    obs::SpanRecorder recorder("serve", recorder_seed(request.trace, kServeSalt));
    obs::SpanRecorder* rec = traced ? &recorder : nullptr;
    if (rec != nullptr) {
        // parse and queue_wait happened before the recorder existed;
        // reconstruct them from the measured durations (recorder epoch =
        // worker pickup, so they sit just left of time zero).
        obs::Span queue_span;
        queue_span.name = "queue_wait";
        queue_span.span_id = recorder.new_span_id();
        queue_span.parent_id = request.trace.span_id;
        queue_span.start_s = -queue_wait_s;
        queue_span.dur_s = queue_wait_s;
        if (job.parse_s > 0.0) {
            obs::Span parse_span;
            parse_span.name = "parse";
            parse_span.span_id = recorder.new_span_id();
            parse_span.parent_id = request.trace.span_id;
            parse_span.start_s = -queue_wait_s - job.parse_s;
            parse_span.dur_s = job.parse_s;
            recorder.record(parse_span);
        }
        recorder.record(queue_span);
    }
    const char* outcome = "error";
    double evaluate_s = 0.0;
    double serialize_s = 0.0;
    bool deadline_hit = false;
    bool ok = false;
    try {
        // Validate the spec before announcing acceptance so an unbuildable
        // sweep fails with a single error instead of accepted-then-error.
        const size_t count = request.spec.count();
        // A shard-restricted request announces the points it will actually
        // stream, not the whole space it is a slice of.
        const size_t effective =
            request.shard_hi > 0 ? request.shard_hi - request.shard_lo : count;
        sink.write_line(accepted_event(request.id, request.type, effective,
                                       request.spec.describe()));

        EvalOptions eval = request.eval;
        if (!opts_.use_sliced) eval.use_sliced = false;
        if (opts_.auto_exhaustive) {
            // No-op for pinned requests and for sweeps at or below the
            // fixed cutoff, so default-request event streams keep their
            // exact historical bytes.
            apply_auto_exhaustive(eval, request.spec, opts_.exhaustive_budget_ms);
        }
        eval.pool = &pool_;
        // The resident cache — with its remote tier when peers are
        // configured; evaluate_sweep drops it when use_hw_cache is off.
        eval.hw_cache = eval_cache();
        eval.cancel = job.cancel.get();
        if (request.deadline_ms > 0) {
            // The budget runs from arrival, not from here: time spent queued
            // behind other requests counts, so an overloaded service sheds
            // expired work with one cheap check instead of evaluating it.
            eval.deadline = job.arrival + std::chrono::milliseconds(request.deadline_ms);
        }
        if (request.stream_points) {
            eval.on_point = [&](size_t index, const DesignPoint& point) {
                sink.write_line(point_event(request.id, index, point, request.point_bits));
            };
        }
        eval.shard_lo = request.shard_lo;
        eval.shard_hi = request.shard_hi;
        eval.recorder = rec;
        eval.trace = request.trace;

        SweepStats sweep_stats;
        const auto eval_start = std::chrono::steady_clock::now();
        const std::vector<DesignPoint> points = evaluate(request, eval, sweep_stats);
        evaluate_s = seconds_since(eval_start);
        const auto serialize_start = std::chrono::steady_clock::now();
        emit_sweep_results(sink, request, points, sweep_stats, rec);
        serialize_s = seconds_since(serialize_start);

        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.completed;
        counters_.points_evaluated += sweep_stats.points;
        counters_.busy_seconds += sweep_stats.wall_seconds;
        ok = true;
        outcome = "ok";
    } catch (const SweepCancelled&) {
        sink.write_line(error_event(request.id, "cancelled", "sweep cancelled by request"));
        outcome = "cancelled";
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.cancelled;
    } catch (const SweepDeadlineExceeded&) {
        sink.write_line(error_event(
            request.id, "deadline_exceeded",
            "sweep exceeded its deadline_ms budget of " + std::to_string(request.deadline_ms) +
                " ms; the points streamed so far are a prefix of the full sweep"));
        outcome = "deadline_exceeded";
        deadline_hit = true;
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.deadline_exceeded;
    } catch (const std::invalid_argument& e) {
        sink.write_line(error_event(request.id, "invalid_request", e.what()));
        outcome = "invalid_request";
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    } catch (const std::exception& e) {
        sink.write_line(error_event(request.id, "internal_error", e.what()));
        outcome = "internal_error";
        std::lock_guard<std::mutex> lock(state_mutex_);
        ++counters_.failed;
    }
    const double wall_s = seconds_since(job.arrival);
    {
        std::lock_guard<std::mutex> lock(state_mutex_);
        const auto it = cancel_flags_.find(request.id);
        if (it != cancel_flags_.end() && it->second == job.cancel) cancel_flags_.erase(it);
        counters_.latency.observe(wall_s);
        counters_.stage_evaluate.observe(evaluate_s);
        counters_.stage_serialize.observe(serialize_s);
    }
    std::vector<obs::Span> spans;
    if (rec != nullptr) {
        spans = recorder.take();
        obs::TraceTree tree;
        tree.request_id = request.id;
        tree.trace_hi = request.trace.trace_hi;
        tree.trace_lo = request.trace.trace_lo;
        tree.spans = spans;
        traces_.add(std::move(tree));
    }
    sink.write_line(done_event(request.id, ok, spans));
    access_log_line(request.id, "sweep", request.trace, outcome, queue_wait_s, wall_s,
                    sink.bytes(), false, deadline_hit);
}

void SweepService::access_log_line(const std::string& id, const char* verb,
                                   const obs::TraceContext& trace, const char* outcome,
                                   double queue_wait_s, double wall_s, size_t bytes_out,
                                   bool shed, bool deadline) {
    if (opts_.access_log == nullptr) return;
    std::string line = "{\"tier\": \"serve\", \"id\": " + json_string(id);
    line += ", \"verb\": " + json_string(verb);
    if (trace.valid) {
        line += ", \"trace_id\": " +
                json_string(obs::trace_id_hex(trace.trace_hi, trace.trace_lo));
    }
    line += ", \"outcome\": " + json_string(outcome);
    line += ", \"queue_wait_s\": " + json_number(queue_wait_s);
    line += ", \"wall_s\": " + json_number(wall_s);
    line += ", \"bytes_out\": " + json_number(static_cast<double>(bytes_out));
    line += ", \"shed\": ";
    line += shed ? "true" : "false";
    line += ", \"deadline\": ";
    line += deadline ? "true" : "false";
    line += "}";
    opts_.access_log->write_line(line);
}

}  // namespace sdlc::serve
