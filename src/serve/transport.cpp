#include "serve/transport.h"

#include <sys/socket.h>

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

namespace sdlc::serve {

void serve_connection_loop(SocketListener& listener, LineService& service,
                           const ConnectionHandler& handler, bool install_shutdown_hook) {
    // A processed shutdown request must unblock the accept loop below.
    if (install_shutdown_hook) {
        service.set_on_shutdown([&listener] { listener.close(); });
    }

    struct Connection {
        int fd;
        std::shared_ptr<std::atomic<bool>> finished;
        std::thread reader;
    };
    std::vector<Connection> connections;
    auto reap_finished = [&connections] {
        for (auto it = connections.begin(); it != connections.end();) {
            if (it->finished->load(std::memory_order_acquire)) {
                it->reader.join();
                it = connections.erase(it);
            } else {
                ++it;
            }
        }
    };

    int client;
    // The 1 s accept timeout is the reap tick: dead connections release
    // their thread promptly even when no new client ever connects (their
    // fd already closes with the sink's last reference).
    while ((client = listener.accept_client(/*timeout_ms=*/1000)) != -1) {
        reap_finished();
        if (client == SocketListener::kTimeout) continue;
        Connection conn;
        conn.fd = client;
        conn.finished = std::make_shared<std::atomic<bool>>(false);
        conn.reader =
            std::thread([fd = client, finished = conn.finished, &handler] {
                // The sink lives on the handler thread, not in the accept
                // loop: when the handler returns and no in-flight request
                // holds a reference, the fd closes right here.
                const auto sink = std::make_shared<FdSink>(fd, /*owns_fd=*/true);
                handler(fd, sink);
                finished->store(true, std::memory_order_release);
            });
        connections.push_back(std::move(conn));
    }

    // Accept loop ended (shutdown request): finish every accepted request,
    // then release the connections. Handlers may still be blocked on idle
    // peers; shutting the read side down unblocks them.
    service.shutdown();
    for (Connection& conn : connections) {
        ::shutdown(conn.fd, SHUT_RD);
        conn.reader.join();
    }
    connections.clear();
}

void serve_listener(SocketListener& listener, LineService& service, size_t max_request_bytes,
                    std::shared_ptr<FaultInjector> fault_injector,
                    bool install_shutdown_hook) {
    serve_connection_loop(
        listener, service,
        [&service, fault_injector = std::move(fault_injector),
         max_line = max_request_bytes + 1](int fd, const std::shared_ptr<FdSink>& sink) {
            if (fault_injector != nullptr) sink->set_fault_injector(fault_injector);
            LineReader reader(fd, max_line);
            std::string line;
            while (reader.next(line)) {
                if (line.empty()) continue;
                if (!service.submit_line(line, sink)) break;
            }
            if (reader.overflowed()) {
                // The protocol promises a machine-readable rejection for
                // oversized lines even when no newline ever arrives.
                service.reject_oversized_line(*sink);
            }
        },
        install_shutdown_hook);
}

}  // namespace sdlc::serve
