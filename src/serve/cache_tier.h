// Daemon side of the distributed synthesis-cache tier.
//
// CacheTierService is the LineService behind `cache_tool`: a shared
// content-keyed store of SynthesisReports that any number of DSE processes
// (dse_tool runs, serve_tool replicas) query over the NDJSON protocol in
// dse/cache_wire.h. It reuses the serve stack end to end — SocketListener
// transports, serve_listener's connection lifecycle, per-connection FdSink
// — so the daemon inherits the hardened accept/read/drain behaviour the
// sweep server already has.
//
// Requests are cheap point lookups, so there is no queue: submit_line
// parses, executes under the store's lock, and answers inline on the
// caller's reader thread. Concurrency equals the connection count.
//
// The daemon trusts its peers (it runs inside one deployment, like a
// memcached): a put overwrites nothing — first write wins, which is safe
// because every honest writer derives the identical report from the same
// content key — and malformed lines get structured rejections without
// tearing the connection down.
#ifndef SDLC_SERVE_CACHE_TIER_H
#define SDLC_SERVE_CACHE_TIER_H

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>

#include "dse/cache_store.h"
#include "dse/cache_wire.h"
#include "dse/cost_cache.h"
#include "obs/access_log.h"
#include "obs/trace.h"
#include "serve/line_service.h"

namespace sdlc::serve {

/// Cache daemon sizing/testing knobs.
struct CacheTierOptions {
    size_t max_request_bytes = kCacheMaxRequestBytes;
    /// Fault injection for tests: sleep this long before answering each
    /// request, so a "slow peer" is one flag away (clients must degrade to
    /// local synthesis via their timeout, without changing results).
    int delay_ms = 0;
    /// When non-empty, persist puts to this directory (append-only log +
    /// compacting snapshots; see dse/cache_store.h) and recover from it at
    /// startup, so a killed daemon rejoins warm.
    std::string data_dir;
    /// Log size that triggers compaction (0 = never auto-compact).
    size_t compact_log_bytes = size_t{4} << 20;
    /// fsync every put (survive OS crashes, not just process kills).
    bool fsync_puts = false;
    /// When set, one structured JSON line per request lands here
    /// (trace_id, op, outcome, wall_s, bytes_out).
    std::shared_ptr<obs::AccessLog> access_log;
};

/// The cache daemon service (see file comment).
class CacheTierService final : public LineService {
public:
    explicit CacheTierService(const CacheTierOptions& opts = {});

    bool submit_line(const std::string& line, std::shared_ptr<ResponseSink> sink) override;
    void reject_oversized_line(ResponseSink& sink) override;
    void set_on_shutdown(std::function<void()> hook) override;
    void shutdown() override;

    /// True once a shutdown request was processed.
    [[nodiscard]] bool shutdown_requested() const;

    /// Momentary counters (what the `stats` op reports).
    [[nodiscard]] CacheDaemonStats stats() const;

    /// Non-empty when a configured data_dir could not be opened; the daemon
    /// must refuse to start rather than silently run volatile.
    [[nodiscard]] const std::string& durable_error() const noexcept { return durable_error_; }

    /// What startup recovery found (all-zero without a data_dir).
    [[nodiscard]] const CacheRecoveryStats& recovery() const noexcept {
        return durable_.recovery();
    }

private:
    /// Writes the per-request access-log line (no-op without a log).
    void access_log_line(const std::string& id, const char* op,
                         const obs::TraceContext& trace, bool ok, double wall_s,
                         size_t bytes_out);

    const CacheTierOptions opts_;
    /// Uptime epoch for stats().uptime_seconds.
    const std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();

    mutable std::mutex mutex_;
    /// Keyed report store. CostCache's synthesize path is unused here; the
    /// daemon only ever lookup()s and insert()s what clients send.
    CostCache store_;
    CacheDaemonStats counters_;
    /// On-disk form of store_ when data_dir is set (append under mutex_).
    DurableCacheStore durable_;
    std::string durable_error_;
    /// Keys loaded from disk at startup: a get hit on one is a warm hit —
    /// warmth that survived a crash — which the restart smoke test asserts.
    std::unordered_set<uint64_t> recovered_keys_;
    std::function<void()> on_shutdown_;
    bool shutdown_requested_ = false;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_CACHE_TIER_H
