// Bounded MPMC queue connecting request producers (protocol front-ends:
// stdin reader, socket connection threads) to the service's request
// workers.
//
// push() blocks while the queue is full — backpressure, not unbounded
// buffering, is how the service survives a flood of requests — and fails
// only once the queue is closed. close() stops intake but lets consumers
// drain what was already accepted: pop() keeps returning queued items and
// only reports end-of-stream (nullopt) when the queue is both closed and
// empty. That drain-then-stop contract is what makes service shutdown
// clean: every request accepted before shutdown still gets its response.
#ifndef SDLC_SERVE_REQUEST_QUEUE_H
#define SDLC_SERVE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sdlc::serve {

/// Bounded blocking multi-producer multi-consumer FIFO.
template <typename T>
class BoundedQueue {
public:
    /// A zero capacity is clamped to 1 (a rendezvous-size queue, not a
    /// queue that can never accept anything).
    explicit BoundedQueue(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Blocks until there is room (or the queue closes). Returns false —
    /// and drops `item` — when the queue is closed.
    bool push(T item) {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking push. Returns false when full or closed.
    bool try_push(T item) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || items_.size() >= capacity_) return false;
        items_.push_back(std::move(item));
        not_empty_.notify_one();
        return true;
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained; nullopt means no item will ever come again.
    std::optional<T> pop() {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.pop_front();
        not_full_.notify_one();
        return item;
    }

    /// Stops intake; queued items remain poppable. Idempotent.
    void close() {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /// Items currently queued (momentary; for stats reporting).
    [[nodiscard]] size_t size() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] size_t capacity() const noexcept { return capacity_; }

private:
    const size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_REQUEST_QUEUE_H
