// Front-end glue shared by every stream-socket transport (Unix-domain and
// TCP): accept connections, read request lines, stream response events.
//
// serve_listener() owns the lifecycle that used to live in serve_tool's
// socket mode and is now common to both transports, to every LineService
// implementation (the sweep server and the cache daemon), and to
// in-process tests: one reader thread per connection feeding the service,
// one FdSink per connection owning the fd (shared with in-flight requests,
// so the descriptor closes exactly when the last response line has been
// written or dropped), periodic reaping of finished connections on the
// accept tick, oversized-line rejection per the protocol contract, and a
// drain-then-unblock shutdown: once the service stops intake the listener
// closes, every accepted request still streams to completion, idle readers
// are unblocked with shutdown(SHUT_RD), and all threads are joined before
// returning.
#ifndef SDLC_SERVE_TRANSPORT_H
#define SDLC_SERVE_TRANSPORT_H

#include <functional>
#include <memory>

#include "serve/line_service.h"
#include "serve/socket.h"

namespace sdlc::serve {

class FaultInjector;  // serve/fault.h

/// Per-connection protocol driver run on the connection's reader thread.
/// The sink shares ownership of `fd` (it closes when the last reference —
/// the handler's or an in-flight request's — drops); the handler must
/// return once the peer disconnects or the service starts draining.
using ConnectionHandler = std::function<void(int fd, const std::shared_ptr<FdSink>& sink)>;

/// The accept/drain lifecycle shared by every stream protocol (NDJSON
/// lines, HTTP): accepts until the service shuts down, runs `handler` on a
/// dedicated thread per connection, reaps finished connections on the 1 s
/// accept tick, and on shutdown unblocks idle handlers with
/// shutdown(SHUT_RD) and joins everything before returning.
/// `install_shutdown_hook` wires service.on_shutdown to close the
/// listener; a tool serving one service on several listeners passes false
/// and installs one combined hook itself (LineService holds a single
/// hook — a second install would silently drop the first listener's).
void serve_connection_loop(SocketListener& listener, LineService& service,
                           const ConnectionHandler& handler, bool install_shutdown_hook);

/// Serves the NDJSON line protocol on `listener` until the service shuts
/// down (a `shutdown` request, or the service's shutdown hook firing from
/// another thread). Blocks until every accepted connection is drained and
/// joined. `max_request_bytes` must mirror the service's request-size cap
/// (it bounds the per-connection LineReader so a peer streaming bytes
/// without a newline cannot grow the buffer without limit). A non-null
/// `fault_injector` is installed on every connection's sink (deterministic
/// chaos for tests; see serve/fault.h). See serve_connection_loop for
/// `install_shutdown_hook`.
void serve_listener(SocketListener& listener, LineService& service, size_t max_request_bytes,
                    std::shared_ptr<FaultInjector> fault_injector = nullptr,
                    bool install_shutdown_hook = true);

}  // namespace sdlc::serve

#endif  // SDLC_SERVE_TRANSPORT_H
