#include "serve/fault.h"

#include <algorithm>

namespace sdlc::serve {

namespace {

bool parse_positive(const std::string& text, int64_t& out) {
    if (text.empty() || text.size() > 12 ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    int64_t value = 0;
    for (const char c : text) value = value * 10 + (c - '0');
    if (value <= 0) return false;
    out = value;
    return true;
}

}  // namespace

bool parse_fault_specs(const std::string& text, std::vector<FaultSpec>& out,
                       std::string& error) {
    out.clear();
    size_t start = 0;
    while (start <= text.size()) {
        const size_t comma = text.find(',', start);
        const std::string item =
            text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        start = comma == std::string::npos ? text.size() + 1 : comma + 1;
        if (item.empty()) {
            error = "empty fault spec";
            return false;
        }
        const size_t colon = item.find(':');
        const std::string kind = item.substr(0, colon);
        const std::string arg_text =
            colon == std::string::npos ? std::string() : item.substr(colon + 1);
        FaultSpec spec;
        if (kind == "disconnect-after") spec.kind = FaultKind::kDisconnectAfter;
        else if (kind == "short-write") spec.kind = FaultKind::kShortWrite;
        else if (kind == "corrupt-frame") spec.kind = FaultKind::kCorruptFrame;
        else if (kind == "stall") spec.kind = FaultKind::kStall;
        else {
            error = "unknown fault kind \"" + kind + "\"";
            return false;
        }
        if (!parse_positive(arg_text, spec.arg)) {
            error = "fault \"" + kind + "\" needs a positive integer argument (got \"" +
                    arg_text + "\")";
            return false;
        }
        out.push_back(spec);
    }
    if (out.empty()) {
        error = "empty fault spec";
        return false;
    }
    return true;
}

FaultAction FaultInjector::next_action() {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t serial = ++writes_;  // 1-based: "after N" fires on write N+1
    FaultAction action;
    for (const FaultSpec& spec : specs_) {
        const auto arg = static_cast<uint64_t>(spec.arg);
        switch (spec.kind) {
            case FaultKind::kDisconnectAfter:
                if (serial > arg) action.disconnect = true;
                break;
            case FaultKind::kShortWrite:
                if (serial == arg) {
                    action.short_write = true;
                    action.disconnect = true;
                }
                break;
            case FaultKind::kCorruptFrame:
                if (serial % arg == 0) action.corrupt = true;
                break;
            case FaultKind::kStall:
                action.stall_ms = std::max(action.stall_ms, static_cast<int>(spec.arg));
                break;
        }
    }
    return action;
}

uint64_t FaultInjector::writes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return writes_;
}

std::string FaultInjector::corrupt_line(const std::string& line) {
    std::string out = line;
    const size_t stamp = std::min<size_t>(out.size(), 8);
    for (size_t i = 0; i < stamp; ++i) out[i] = '#';
    return out;
}

}  // namespace sdlc::serve
