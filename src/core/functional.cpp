#include "core/functional.h"

#include <stdexcept>

#include "util/bitops.h"

namespace sdlc {

namespace {

void check_width32(int width) {
    if (width > 32) {
        throw std::invalid_argument("sdlc functional model: width > 32 needs the netlist path");
    }
}

}  // namespace

uint64_t sdlc_error_distance(const ClusterPlan& plan, uint64_t a, uint64_t b) {
    check_width32(plan.width());
    const int n = plan.width();
    uint64_t err = 0;
    for (const ClusterGroup& grp : plan.groups()) {
        for (int j = 1; j <= grp.extent; ++j) {
            const int w = grp.base_row + j;
            int pc = 0;
            for (int k = 0; k < grp.rows; ++k) {
                const int c = j - k;  // column of row base_row+k at weight w
                if (c < 0 || c >= n) continue;
                pc += static_cast<int>(bit(a, static_cast<unsigned>(c)) &
                                       bit(b, static_cast<unsigned>(grp.base_row + k)));
            }
            if (pc > 1) err += static_cast<uint64_t>(pc - 1) << w;
        }
    }
    return err;
}

uint64_t sdlc_multiply(const ClusterPlan& plan, uint64_t a, uint64_t b) {
    return a * b - sdlc_error_distance(plan, a, b);
}

uint64_t sdlc_multiply(int width, int depth, uint64_t a, uint64_t b) {
    return sdlc_multiply(ClusterPlan::make(width, depth), a, b);
}

uint64_t sdlc_error_distance_fast2(int width, uint64_t a, uint64_t b) {
    // Depth-2 cluster g pairs rows (2g, 2g+1). A collision at relative
    // position j needs A(j) & A(j-1) (same column pair) and both B bits of
    // the pair. A & (A << 1) has bit j set exactly when A(j) & A(j-1), so the
    // collision mask is (a & (a << 1)) restricted to j = 1..extent(g).
    // At depth 2 at most two bits meet per weight, so popcount-1 == 1.
    uint64_t err = 0;
    const uint64_t adj = a & (a << 1);
    const int half = width / 2;
    for (int g = 0; g < half; ++g) {
        const uint64_t pair = (b >> (2 * g)) & 3u;
        if (pair != 3u) continue;  // need B(2g) and B(2g+1)
        const int extent = width - 1 - g;
        if (extent < 1) continue;
        const uint64_t m = mask_low(static_cast<unsigned>(extent + 1)) & ~uint64_t{1};
        err += (adj & m) << (2 * g);
    }
    return err;
}

uint64_t sdlc_multiply_fast2(int width, uint64_t a, uint64_t b) {
    check_width32(width);
    return a * b - sdlc_error_distance_fast2(width, a, b);
}

bool sdlc_is_exact(const ClusterPlan& plan, uint64_t a, uint64_t b) {
    return sdlc_error_distance(plan, a, b) == 0;
}

}  // namespace sdlc
