// Significance-driven logic-cluster plan (the heart of SDLC).
//
// An N x N partial-product matrix has rows r = 0..N-1 (row r holds
// A(c) AND B(r) at weights 2^(r+c)). SDLC groups rows into clusters of
// `depth` consecutive rows. Inside cluster g (base row R = g*depth) every
// weight position at relative offset j = 1..extent(g) above the cluster's
// base weight 2^R is lossy-compressed: all partial-product bits of the
// cluster present at that weight are replaced by their logical OR.
//
// The extent rule is the significance-driven progressive sizing recovered by
// exhaustive calibration against the paper's Tables II and III (every metric
// matches to all printed digits; see DESIGN.md Section 1.1):
//
//     extent(g) = (N - 1) + 2*(depth - 2) - (depth - 1)*g
//
// For depth 2 this reproduces the paper's Figure 2 cluster sizes
// (2x7, 2x6, 2x5, 2x4 at N=8).
#ifndef SDLC_CORE_CLUSTER_PLAN_H
#define SDLC_CORE_CLUSTER_PLAN_H

#include <string>
#include <vector>

namespace sdlc {

/// One logic cluster: rows [base_row, base_row+rows) with compression of
/// relative weight positions j = 1..extent above base weight 2^base_row.
struct ClusterGroup {
    int base_row = 0;
    int rows = 0;
    int extent = 0;

    /// True if weight `w` (absolute, 0-based) is compressed by this group.
    [[nodiscard]] bool compresses_weight(int w) const noexcept {
        const int j = w - base_row;
        return j >= 1 && j <= extent;
    }
};

/// Full compression plan for an N x N SDLC multiplier.
class ClusterPlan {
public:
    /// Builds the plan. `depth` == 1 yields an empty plan (accurate
    /// multiplier); depth must be in [1, width].
    /// Throws std::invalid_argument for out-of-range arguments.
    static ClusterPlan make(int width, int depth);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int depth() const noexcept { return depth_; }
    [[nodiscard]] const std::vector<ClusterGroup>& groups() const noexcept { return groups_; }

    /// The group containing partial-product row `r`, or nullptr when the row
    /// is uncompressed (e.g. a trailing group of a single row).
    [[nodiscard]] const ClusterGroup* group_of_row(int r) const noexcept;

    /// Total number of compressed weight positions (with >= 2 potential
    /// bits), i.e. OR sites in the generated hardware.
    [[nodiscard]] int compression_sites() const noexcept;

    /// Readable description, e.g. "SDLC N=8 d=2 clusters 2x7 2x6 2x5 2x4".
    [[nodiscard]] std::string describe() const;

private:
    int width_ = 0;
    int depth_ = 1;
    std::vector<ClusterGroup> groups_;
};

}  // namespace sdlc

#endif  // SDLC_CORE_CLUSTER_PLAN_H
