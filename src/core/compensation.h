// Error compensation for the SDLC multiplier (library extension).
//
// SDLC's error is strictly one-sided: every OR collision loses value, so
// the approximate product systematically underestimates. Because a cluster
// can only collide when operand B has two (or more) active rows in the same
// group, the *expected* loss is known at runtime from B alone:
//
//   E[loss | rows r1,r2 active] = sum over sites j covering both rows of
//                                 2^w / 4          (P(both A bits) = 1/4)
//
// The compensated multiplier adds, for every in-group row pair, a constant
// C(g,r1,r2) gated by act = B(r1) AND B(r2). In hardware this costs one
// AND per pair plus a few extra matrix bits (the gated constant's set
// bits); the accumulation tree absorbs them. Pairwise compensation is exact
// in expectation at depth 2 and slightly overestimates for popcounts >= 3
// at deeper clusters (documented in the ablation bench).
//
// Effect: the error becomes two-sided and nearly zero-mean; NMED drops by
// roughly 2x at depth 2 while ER rises (outputs are perturbed whenever a
// pair is active). This mirrors the variable-correction idea of truncated
// multipliers (paper ref [6]) applied to logic compression.
#ifndef SDLC_CORE_COMPENSATION_H
#define SDLC_CORE_COMPENSATION_H

#include <cstdint>
#include <vector>

#include "arith/mul_netlist.h"
#include "core/cluster_plan.h"
#include "core/generator.h"

namespace sdlc {

/// One gated compensation constant: value added when both rows are active.
struct CompensationTerm {
    int row_a = 0;        ///< first PP row (B bit index)
    int row_b = 0;        ///< second PP row
    uint64_t value = 0;   ///< constant added when B(row_a) AND B(row_b)
};

/// Derives the pairwise compensation table for a plan (width <= 32).
[[nodiscard]] std::vector<CompensationTerm> compensation_terms(const ClusterPlan& plan);

/// Functional model: SDLC product plus runtime compensation (width <= 32).
[[nodiscard]] uint64_t sdlc_multiply_compensated(const ClusterPlan& plan, uint64_t a,
                                                 uint64_t b);

/// Same, with the compensation table precomputed by the caller. Hot loops
/// (error sweeps) must use this overload: deriving the table costs far more
/// than the multiplication itself.
[[nodiscard]] uint64_t sdlc_multiply_compensated(const ClusterPlan& plan,
                                                 const std::vector<CompensationTerm>& terms,
                                                 uint64_t a, uint64_t b);

/// Signed error of the compensated multiplier: P' + comp - P (may be
/// negative; the plain multiplier's error is always <= 0 in this sign
/// convention).
[[nodiscard]] int64_t sdlc_compensated_signed_error(const ClusterPlan& plan, uint64_t a,
                                                    uint64_t b);

/// Builds the compensated multiplier netlist: the standard SDLC pipeline
/// with the gated compensation bits injected into the accumulation matrix.
[[nodiscard]] MultiplierNetlist build_sdlc_compensated_multiplier(int width,
                                                                  const SdlcOptions& opts = {});

}  // namespace sdlc

#endif  // SDLC_CORE_COMPENSATION_H
