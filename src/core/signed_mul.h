// Signed (two's-complement) SDLC multiplication (library extension).
//
// The paper treats unsigned operands only. Signed support here uses the
// sign-magnitude decomposition: |a| and |b| go through the unsigned SDLC
// core and the sign is re-applied to the result. This preserves the SDLC
// error profile exactly (the error magnitude of a*b equals that of
// |a|*|b|), which is the property DSP kernels care about; a Baugh-Wooley
// restructuring would change the partial-product matrix and therefore the
// calibrated error behaviour.
//
// The hardware wrapper adds two conditional negators (XOR rows + increment)
// on the operands and one on the product, plus the sign XOR.
#ifndef SDLC_CORE_SIGNED_MUL_H
#define SDLC_CORE_SIGNED_MUL_H

#include <cstdint>

#include "arith/mul_netlist.h"
#include "core/cluster_plan.h"
#include "core/generator.h"

namespace sdlc {

/// Functional model: signed SDLC product of two `plan.width()`-bit
/// two's-complement operands (width <= 31; the result is exact-width
/// 2N-bit signed). INT_MIN-style operands (-2^(N-1)) are supported.
[[nodiscard]] int64_t sdlc_multiply_signed(const ClusterPlan& plan, int64_t a, int64_t b);

/// Signed error distance |a*b - P'|.
[[nodiscard]] uint64_t sdlc_signed_error_distance(const ClusterPlan& plan, int64_t a,
                                                  int64_t b);

/// Builds a signed N x N SDLC multiplier netlist (operands and product in
/// two's complement; product has 2N bits).
[[nodiscard]] MultiplierNetlist build_sdlc_signed_multiplier(int width,
                                                             const SdlcOptions& opts = {});

}  // namespace sdlc

#endif  // SDLC_CORE_SIGNED_MUL_H
