// Fast-path multiply kernels for the error-evaluation engines.
//
// The DSE sweep evaluates billions of products, so the generic
// ClusterPlan interpreter (sdlc_error_distance: three nested loops over
// groups x weights x rows) is far too slow to be the inner loop. This
// module provides two layers on top of it:
//
//  1. A registry of *stateless* specialized kernels with the uniform
//     signature `uint64_t(uint64_t a, uint64_t b)` — the accurate product,
//     the depth-1 (no-compression) identity, the word-parallel depth-2
//     bit-trick path (sdlc_multiply_fast2), and strength-reduced truncated
//     baselines. find_multiply_kernel() maps a MultiplierConfig to one of
//     these, or returns nullptr when no stateless kernel applies.
//
//  2. MultiplyKernel, a per-configuration evaluation object that always
//     has a fast path: it uses the stateless kernel when one exists and
//     otherwise falls back to a strength-reduced *planned* evaluation that
//     generalizes the depth-2 trick to every cluster depth.
//
// The planned path rests on this identity. Within one cluster group
// (base row R, `rows` rows, window j = 1..extent), let
// bb = the group's active B bits and, for each active row k, let
// t_k = (a & mask_low(extent+1-k)) << k (the row's partial products
// restricted to the compressed window, in relative weight space). Then
//
//     sum_j pc_j * 2^j        = sum_k t_k        (integer addition)
//     sum_j [pc_j >= 1] * 2^j = OR_k  t_k        (bitwise OR)
//
// so the group's error  sum_j max(0, pc_j - 1) * 2^j  is exactly
// (sum_k t_k) - (OR_k t_k), and the j = 0 column (which can never
// collide) cancels between the two terms. This makes every depth
// O(active rows) per group instead of O(extent * rows).
//
// All kernels assume operands already masked to the configured width
// (the evaluation engines guarantee this).
#ifndef SDLC_CORE_KERNELS_H
#define SDLC_CORE_KERNELS_H

#include <cstdint>
#include <vector>

#include "api/approx_multiplier.h"
#include "core/cluster_plan.h"
#include "core/compensation.h"

namespace sdlc {

/// Stateless specialized multiply kernel: approximate product of two
/// width-masked operands.
using MultiplyKernelFn = uint64_t (*)(uint64_t a, uint64_t b);

/// The stateless kernel specialized for `config`, or nullptr when only the
/// planned/interpreter path applies (generic depths >= 3, compensated
/// depths >= 2). Never throws: unbuildable configurations return nullptr.
[[nodiscard]] MultiplyKernelFn find_multiply_kernel(const MultiplierConfig& config) noexcept;

/// Short name of the evaluation path find_multiply_kernel() would pick
/// ("accurate", "sdlc-fast2", "planned", ...). Diagnostic only.
[[nodiscard]] const char* multiply_kernel_name(const MultiplierConfig& config) noexcept;

/// Stateless kernel for the truncated baseline with the given cut
/// (drops all partial products of weight < 2^cut). The kernel is
/// width-independent because width-masked operands cannot populate rows or
/// columns beyond the operand width. Returns nullptr for cut outside
/// [0, 63].
[[nodiscard]] MultiplyKernelFn find_truncated_kernel(int cut) noexcept;

/// Per-configuration fast evaluator. Construction is O(plan size); each
/// call is O(width) worst case. Results are bit-identical to
/// ApproxMultiplier::multiply for the same configuration (enforced by
/// exhaustive tests).
class MultiplyKernel {
public:
    /// Precomputes the dispatch decision and, for planned configurations,
    /// the per-group column masks and compensation table.
    /// Throws std::invalid_argument for unbuildable configurations.
    explicit MultiplyKernel(const MultiplierConfig& config);

    [[nodiscard]] uint64_t operator()(uint64_t a, uint64_t b) const noexcept {
        if (fn_) return fn_(a, b);
        uint64_t p = a * b - planned_error(a, b);
        for (const CompensationTerm& t : comp_) {
            if (((b >> t.row_a) & (b >> t.row_b)) & 1u) p += t.value;
        }
        return p;
    }

    /// |exact - approximate| for these operands.
    [[nodiscard]] uint64_t error_distance(uint64_t a, uint64_t b) const noexcept {
        const uint64_t exact = a * b;
        const uint64_t approx = operator()(a, b);
        return exact > approx ? exact - approx : approx - exact;
    }

    /// True when a stateless registry kernel backs this configuration.
    [[nodiscard]] bool specialized() const noexcept { return fn_ != nullptr; }

    /// Evaluation-path name ("accurate", "sdlc-fast2", "planned", ...).
    [[nodiscard]] const char* name() const noexcept { return name_; }

    [[nodiscard]] const MultiplierConfig& config() const noexcept { return config_; }

private:
    /// One cluster group prepared for the strength-reduced evaluation.
    struct FastGroup {
        int base_row = 0;       ///< R: shift applied to B and to the group error
        uint32_t row_mask = 0;  ///< mask_low(rows)
        uint32_t mask_offset = 0;  ///< first per-row column mask in col_masks_
    };

    [[nodiscard]] uint64_t planned_error(uint64_t a, uint64_t b) const noexcept;

    MultiplierConfig config_;
    MultiplyKernelFn fn_ = nullptr;
    const char* name_ = "planned";
    std::vector<FastGroup> groups_;
    std::vector<uint64_t> col_masks_;  ///< per (group, row k): window mask for A
    std::vector<CompensationTerm> comp_;
};

/// Strength-reduced software model of the truncated baseline; equivalent to
/// truncated_multiply() but O(cut) instead of O(width^2).
[[nodiscard]] uint64_t truncated_multiply_fast(int width, int cut, uint64_t a, uint64_t b);

}  // namespace sdlc

#endif  // SDLC_CORE_KERNELS_H
