#include "core/kernels_sliced.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "core/cluster_plan.h"
#include "util/bitops.h"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define SDLC_SLICED_X86 1
#endif

namespace sdlc {

namespace {

// Aligned-block gate planes: bit l of kLanePattern[j] is bit j of the lane
// index l, i.e. bit j of (b0 + l) when b0 is 64-aligned and j < 6.
constexpr uint64_t kLanePattern[6] = {
    0xAAAAAAAAAAAAAAAAull, 0xCCCCCCCCCCCCCCCCull, 0xF0F0F0F0F0F0F0F0ull,
    0xFF00FF00FF00FF00ull, 0xFFFF0000FFFF0000ull, 0xFFFFFFFF00000000ull,
};

/// planes += val gated by `gate` (full-adder ripple: lanes with the gate
/// bit clear add 0). Also records the OR term: present[j] |= gate for every
/// set bit j of val. `val` must be non-zero.
inline void add_gated(uint64_t* planes, uint64_t* present, uint64_t val,
                      uint64_t gate) noexcept {
    uint64_t carry = 0;
    for (int j = std::countr_zero(val); j < 64 && ((val >> j) != 0 || carry != 0); ++j) {
        const uint64_t add = ((val >> j) & 1u) ? gate : 0u;
        present[j] |= add;
        const uint64_t d = planes[j];
        planes[j] = d ^ add ^ carry;
        carry = (d & add) | (carry & (d | add));
    }
}

/// planes -= sub[lo..hi) (borrow ripple, two's-complement wrap past the
/// top plane just like uint64 subtraction).
inline void sub_planes(uint64_t* planes, const uint64_t* sub, int lo, int hi) noexcept {
    uint64_t borrow = 0;
    for (int j = lo; j < 64 && (j < hi || borrow != 0); ++j) {
        const uint64_t s = j < hi ? sub[j] : 0u;
        const uint64_t d = planes[j];
        planes[j] = d ^ s ^ borrow;
        borrow = (~d & (s | borrow)) | (s & borrow);
    }
}

/// planes -= val gated by `gate`. `val` must be non-zero.
inline void sub_gated(uint64_t* planes, uint64_t val, uint64_t gate) noexcept {
    uint64_t borrow = 0;
    for (int j = std::countr_zero(val); j < 64 && ((val >> j) != 0 || borrow != 0); ++j) {
        const uint64_t s = ((val >> j) & 1u) ? gate : 0u;
        const uint64_t d = planes[j];
        planes[j] = d ^ s ^ borrow;
        borrow = (~d & (s | borrow)) | (s & borrow);
    }
}

void transpose64_scalar(uint64_t* dst, const uint64_t* src) {
    if (dst != src) std::memcpy(dst, src, 64 * sizeof(uint64_t));
    // Hacker's Delight 7-3, widened to 64x64: swap j-strided bit blocks.
    uint64_t mask = 0x00000000FFFFFFFFull;
    for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
            const uint64_t t = ((dst[k] >> j) ^ dst[k | j]) & mask;
            dst[k] ^= t << j;
            dst[k | j] ^= t;
        }
    }
}

#ifdef SDLC_SLICED_X86

/// 64x64 bit transpose in ~50 vector ops. Decomposition: view the matrix as
/// an 8x8 grid of 8x8-bit blocks; a full bit transpose is (1) transpose the
/// block grid and (2) bit-transpose each block. gf2p8affineqb with the data
/// as the *matrix* operand and 0x8040201008040201 as the vector performs the
/// per-block bit transpose (its built-in source-byte reversal is folded into
/// the byte permute that marshals each block into one qword), and
/// permutex2var qword delta-swaps transpose the block grid across registers.
__attribute__((target("avx512f,avx512bw,avx512vbmi,gfni")))
void transpose64_avx512(uint64_t* dst, const uint64_t* src) {
    // Byte permute A: qword c, byte p  <-  qword 7-p, byte c. This gathers
    // block (s, c) into qword c of register s, pre-reversed for gfni.
    alignas(64) static constexpr uint8_t kIdxA[64] = {
        56, 48, 40, 32, 24, 16, 8,  0,  57, 49, 41, 33, 25, 17, 9,  1,
        58, 50, 42, 34, 26, 18, 10, 2,  59, 51, 43, 35, 27, 19, 11, 3,
        60, 52, 44, 36, 28, 20, 12, 4,  61, 53, 45, 37, 29, 21, 13, 5,
        62, 54, 46, 38, 30, 22, 14, 6,  63, 55, 47, 39, 31, 23, 15, 7,
    };
    // Byte permute B: plain 8x8 byte transpose (qword q, byte i <- qword i,
    // byte q), turning gathered block qwords back into row-major rows.
    alignas(64) static constexpr uint8_t kIdxB[64] = {
        0, 8,  16, 24, 32, 40, 48, 56, 1, 9,  17, 25, 33, 41, 49, 57,
        2, 10, 18, 26, 34, 42, 50, 58, 3, 11, 19, 27, 35, 43, 51, 59,
        4, 12, 20, 28, 36, 44, 52, 60, 5, 13, 21, 29, 37, 45, 53, 61,
        6, 14, 22, 30, 38, 46, 54, 62, 7, 15, 23, 31, 39, 47, 55, 63,
    };
    const __m512i idx_a = _mm512_load_si512(kIdxA);
    const __m512i idx_b = _mm512_load_si512(kIdxB);
    const __m512i ident = _mm512_set1_epi64(static_cast<long long>(0x8040201008040201ull));

    __m512i v[8];
    for (int s = 0; s < 8; ++s) {
        const __m512i rows = _mm512_loadu_si512(src + 8 * s);
        v[s] = _mm512_gf2p8affine_epi64_epi8(ident, _mm512_permutexvar_epi8(idx_a, rows), 0);
    }
    // Transpose the 8x8 qword grid (v[s].qword[c] <-> v[c].qword[s]) with
    // three delta-swap stages; qword index >= 8 selects the second source.
    for (int d = 1; d <= 4; d <<= 1) {
        __m512i lo_idx, hi_idx;
        {
            alignas(64) uint64_t lo[8], hi[8];
            for (uint64_t c = 0; c < 8; ++c) {
                const uint64_t cd = c & static_cast<uint64_t>(d);
                lo[c] = cd ? 8 + (c ^ static_cast<uint64_t>(d)) : c;
                hi[c] = cd ? 8 + c : (c | static_cast<uint64_t>(d));
            }
            lo_idx = _mm512_load_si512(lo);
            hi_idx = _mm512_load_si512(hi);
        }
        for (int r = 0; r < 8; ++r) {
            if (r & d) continue;
            const __m512i a = v[r], b = v[r | d];
            v[r] = _mm512_permutex2var_epi64(a, lo_idx, b);
            v[r | d] = _mm512_permutex2var_epi64(a, hi_idx, b);
        }
    }
    for (int k = 0; k < 8; ++k) {
        _mm512_storeu_si512(dst + 8 * k, _mm512_permutexvar_epi8(idx_b, v[k]));
    }
}

bool have_avx512_transpose() {
    return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vbmi") && __builtin_cpu_supports("gfni");
}

#endif  // SDLC_SLICED_X86

using TransposeFn = void (*)(uint64_t*, const uint64_t*);

TransposeFn pick_transpose() {
#ifdef SDLC_SLICED_X86
    if (have_avx512_transpose()) return &transpose64_avx512;
#endif
    return &transpose64_scalar;
}

const TransposeFn kTransposeFn = pick_transpose();

}  // namespace

void transpose64_to(uint64_t dst[64], const uint64_t src[64]) { kTransposeFn(dst, src); }

void transpose64(uint64_t m[64]) { kTransposeFn(m, m); }

bool SlicedMultiplyKernel::eligible(const MultiplierConfig& config) noexcept {
    if (config.width < 2 || config.width > 16) return false;
    if (config.variant == MultiplierVariant::kAccurate) return false;
    // depth 1 compresses nothing; depth > width is unbuildable.
    return config.depth >= 2 && config.depth <= config.width;
}

SlicedMultiplyKernel::SlicedMultiplyKernel(const MultiplierConfig& config)
    : config_(config) {
    if (!eligible(config)) {
        throw std::invalid_argument("SlicedMultiplyKernel: config not eligible");
    }
    const uint64_t side = 1ull << config.width;
    lanes_ = side < 64 ? static_cast<unsigned>(side) : 64u;
    lane_mask_ = lanes_ < 64 ? mask_low(lanes_) : ~0ull;
    for (int r = 0; r < 6; ++r) low_gates_[r] = kLanePattern[r] & lane_mask_;

    const ClusterPlan plan = ClusterPlan::make(config.width, config.depth);
    for (const ClusterGroup& grp : plan.groups()) {
        Group g;
        g.first = static_cast<uint32_t>(rows_.size());
        g.count = static_cast<uint32_t>(grp.rows);
        g.base_row = grp.base_row;
        g.lo = grp.base_row;
        g.hi = grp.base_row + grp.extent + 1;
        const int top_row = grp.base_row + grp.rows - 1;
        g.cls = top_row < 6 ? Cls::kLow : (grp.base_row >= 6 ? Cls::kHigh : Cls::kMixed);
        for (int k = 0; k < grp.rows; ++k) {
            const int window = grp.extent + 1 - k;
            rows_.push_back({grp.base_row + k,
                             window > 0 ? mask_low(static_cast<unsigned>(window)) : 0});
        }
        groups_.push_back(g);
        if (g.cls != Cls::kLow) block_varying_ = true;
        if (g.cls == Cls::kMixed) plane_varying_ = true;
    }
    if (config.variant == MultiplierVariant::kCompensated) {
        comp_ = compensation_terms(plan);
        for (const CompensationTerm& t : comp_) {
            const bool a_low = t.row_a < 6, b_low = t.row_b < 6;
            if (a_low && b_low) {
                comp_low_.push_back(t);
            } else if (!a_low && !b_low) {
                comp_high_.push_back(t);
                block_varying_ = true;
            } else {
                comp_mixed_.push_back(t);
                block_varying_ = true;
                plane_varying_ = true;
            }
        }
    }
}

void SlicedMultiplyKernel::eval_group(uint64_t* planes, const Group& g,
                                      const uint64_t* gates, uint64_t a,
                                      uint64_t* scratch) const noexcept {
    for (int j = g.lo; j < g.hi; ++j) scratch[j] = 0;
    bool any = false;
    for (uint32_t i = 0; i < g.count; ++i) {
        const Row& r = rows_[g.first + i];
        const uint64_t val = (a & r.mask) << r.row;
        const uint64_t gate = gates[i];
        if (val == 0 || gate == 0) continue;
        add_gated(planes, scratch, val, gate);
        any = true;
    }
    // Group error = SUM - OR. Lanes with a single active row cancel here
    // (sum == present), matching the scalar kernel's two-active-rows test.
    if (any) sub_planes(planes, scratch, g.lo, g.hi);
}

uint64_t SlicedMultiplyKernel::high_error(uint64_t a, uint64_t b) const noexcept {
    // Scalar planned identity restricted to the all-uniform groups; on an
    // aligned block every lane shares bits >= 6 of b, so one evaluation
    // covers the whole block.
    uint64_t err = 0;
    for (const Group& g : groups_) {
        if (g.cls != Cls::kHigh) continue;
        uint64_t bb = (b >> g.base_row) & mask_low(g.count);
        if ((bb & (bb - 1)) == 0) continue;
        uint64_t sum = 0, present = 0;
        do {
            const int k = std::countr_zero(bb);
            const uint64_t t = (a & rows_[g.first + static_cast<uint32_t>(k)].mask) << k;
            sum += t;
            present |= t;
            bb &= bb - 1;
        } while (bb != 0);
        err += (sum - present) << g.base_row;
    }
    return err;
}

void SlicedMultiplyKernel::prepare(uint64_t a, Prepared& prep) const noexcept {
    prep.a = a;
    std::memset(prep.low, 0, sizeof prep.low);
    uint64_t scratch[64];
    for (const Group& g : groups_) {
        if (g.cls != Cls::kLow) continue;
        uint64_t gates[64];
        for (uint32_t i = 0; i < g.count; ++i) {
            gates[i] = low_gates_[rows_[g.first + i].row];
        }
        eval_group(prep.low, g, gates, a, scratch);
    }
    for (const CompensationTerm& t : comp_low_) {
        const uint64_t gate = low_gates_[t.row_a] & low_gates_[t.row_b];
        if (gate != 0 && t.value != 0) sub_gated(prep.low, t.value, gate);
    }
}

void SlicedMultiplyKernel::multiply_block_prepared(const Prepared& prep, uint64_t b0,
                                                   uint64_t out[64]) const noexcept {
    // adj = scalar part of (error - compensation), shared by every lane.
    uint64_t adj = 0;
    uint64_t lanes[64];
    if (!plane_varying_) {
        // All block-varying work is scalar (all-uniform groups/terms), so
        // the prepared planes transpose straight into lane space.
        transpose64_to(lanes, prep.low);
        if (block_varying_) {
            adj = high_error(prep.a, b0);
            for (const CompensationTerm& t : comp_high_) {
                if (((b0 >> t.row_a) & (b0 >> t.row_b)) & 1u) adj -= t.value;
            }
        }
    } else {
        uint64_t planes[64];
        std::memcpy(planes, prep.low, sizeof planes);
        adj = high_error(prep.a, b0);
        for (const CompensationTerm& t : comp_high_) {
            if (((b0 >> t.row_a) & (b0 >> t.row_b)) & 1u) adj -= t.value;
        }
        uint64_t scratch[64];
        for (const Group& g : groups_) {
            if (g.cls != Cls::kMixed) continue;
            uint64_t gates[64];
            for (uint32_t i = 0; i < g.count; ++i) {
                const int r = rows_[g.first + i].row;
                gates[i] = r < 6 ? low_gates_[r]
                                 : (((b0 >> r) & 1u) ? lane_mask_ : 0u);
            }
            eval_group(planes, g, gates, prep.a, scratch);
        }
        for (const CompensationTerm& t : comp_mixed_) {
            const int low_row = t.row_a < 6 ? t.row_a : t.row_b;
            const int high_row = t.row_a < 6 ? t.row_b : t.row_a;
            if (((b0 >> high_row) & 1u) && t.value != 0) {
                sub_gated(planes, t.value, low_gates_[low_row]);
            }
        }
        transpose64_to(lanes, planes);
    }
    uint64_t p = prep.a * b0 - adj;
    for (unsigned l = 0; l < lanes_; ++l) {
        out[l] = p - lanes[l];
        p += prep.a;
    }
}

void SlicedMultiplyKernel::multiply_block(uint64_t a, uint64_t b0, unsigned lanes,
                                          uint64_t out[64]) const noexcept {
    const uint64_t active = lanes < 64 ? mask_low(lanes) : ~0ull;
    uint64_t bplane[16];
    if ((b0 & 63u) == 0 && lanes <= 64) {
        for (int j = 0; j < config_.width; ++j) {
            bplane[j] = (j < 6 ? kLanePattern[j] : (((b0 >> j) & 1u) ? ~0ull : 0ull)) & active;
        }
    } else {
        for (int j = 0; j < config_.width; ++j) {
            uint64_t plane = 0;
            for (unsigned l = 0; l < lanes; ++l) {
                plane |= (((b0 + l) >> j) & 1u) << l;
            }
            bplane[j] = plane;
        }
    }

    uint64_t planes[64] = {};
    uint64_t scratch[64];
    uint64_t gates[64];
    for (const Group& g : groups_) {
        for (uint32_t i = 0; i < g.count; ++i) gates[i] = bplane[rows_[g.first + i].row];
        eval_group(planes, g, gates, a, scratch);
    }
    for (const CompensationTerm& t : comp_) {
        const uint64_t gate = bplane[t.row_a] & bplane[t.row_b];
        if (gate != 0 && t.value != 0) sub_gated(planes, t.value, gate);
    }
    transpose64(planes);
    uint64_t p = a * b0;
    for (unsigned l = 0; l < lanes; ++l) {
        out[l] = p - planes[l];
        p += a;
    }
}

}  // namespace sdlc
