#include "core/cluster_plan.h"

#include <algorithm>
#include <stdexcept>

namespace sdlc {

ClusterPlan ClusterPlan::make(int width, int depth) {
    if (width < 1 || width > 128) {
        throw std::invalid_argument("ClusterPlan: width must be in [1,128]");
    }
    if (depth < 1 || depth > width) {
        throw std::invalid_argument("ClusterPlan: depth must be in [1,width]");
    }
    ClusterPlan plan;
    plan.width_ = width;
    plan.depth_ = depth;
    if (depth == 1) return plan;  // accurate: nothing to compress

    for (int g = 0; g * depth < width; ++g) {
        ClusterGroup grp;
        grp.base_row = g * depth;
        grp.rows = std::min(depth, width - grp.base_row);
        if (grp.rows < 2) continue;  // a lone row cannot be compressed
        // Significance-driven progressive extent (see header).
        int extent = (width - 1) + 2 * (depth - 2) - (depth - 1) * g;
        // Clamp to the last position where >= 2 cluster bits can exist:
        // row base_row+k contributes at j in [k, k+width-1], so the
        // second-highest row tops out at j = width + rows - 3.
        extent = std::min(extent, width + grp.rows - 3);
        if (extent < 1) continue;  // fully precise group
        grp.extent = extent;
        plan.groups_.push_back(grp);
    }
    return plan;
}

const ClusterGroup* ClusterPlan::group_of_row(int r) const noexcept {
    for (const ClusterGroup& g : groups_) {
        if (r >= g.base_row && r < g.base_row + g.rows) return &g;
    }
    return nullptr;
}

int ClusterPlan::compression_sites() const noexcept {
    int sites = 0;
    for (const ClusterGroup& g : groups_) sites += g.extent;
    return sites;
}

std::string ClusterPlan::describe() const {
    std::string s = "SDLC N=" + std::to_string(width_) + " d=" + std::to_string(depth_);
    if (groups_.empty()) {
        s += " (accurate)";
        return s;
    }
    s += " clusters";
    for (const ClusterGroup& g : groups_) {
        s += " " + std::to_string(g.rows) + "x" + std::to_string(g.extent);
    }
    return s;
}

}  // namespace sdlc
