#include "core/signed_mul.h"

#include <stdexcept>

#include "core/functional.h"

namespace sdlc {

namespace {

void check_signed_width(int width) {
    if (width < 2 || width > 31) {
        throw std::invalid_argument("sdlc signed: width must be in [2,31]");
    }
}

void check_operand(int64_t v, int width) {
    const int64_t lo = -(int64_t{1} << (width - 1));
    const int64_t hi = (int64_t{1} << (width - 1)) - 1;
    if (v < lo || v > hi) throw std::invalid_argument("sdlc signed: operand out of range");
}

/// Conditional two's-complement negation of a bit vector when `sign` is 1:
/// out = (in XOR sign) + sign, built as an increment ripple chain.
std::vector<NetId> conditional_negate(Netlist& nl, const std::vector<NetId>& in, NetId sign) {
    std::vector<NetId> out(in.size());
    NetId carry = sign;
    for (size_t i = 0; i < in.size(); ++i) {
        const NetId t = nl.xor_gate(in[i], sign);
        if (carry == kNoNet) {
            out[i] = t;
            continue;
        }
        out[i] = nl.xor_gate(t, carry);
        carry = i + 1 < in.size() ? nl.and_gate(t, carry) : kNoNet;
    }
    return out;
}

}  // namespace

int64_t sdlc_multiply_signed(const ClusterPlan& plan, int64_t a, int64_t b) {
    check_signed_width(plan.width());
    check_operand(a, plan.width());
    check_operand(b, plan.width());
    const bool negative = (a < 0) != (b < 0);
    const uint64_t ma = static_cast<uint64_t>(a < 0 ? -a : a);
    const uint64_t mb = static_cast<uint64_t>(b < 0 ? -b : b);
    const int64_t p = static_cast<int64_t>(sdlc_multiply(plan, ma, mb));
    return negative ? -p : p;
}

uint64_t sdlc_signed_error_distance(const ClusterPlan& plan, int64_t a, int64_t b) {
    const int64_t exact = a * b;
    const int64_t approx = sdlc_multiply_signed(plan, a, b);
    return static_cast<uint64_t>(exact > approx ? exact - approx : approx - exact);
}

MultiplierNetlist build_sdlc_signed_multiplier(int width, const SdlcOptions& opts) {
    check_signed_width(width);
    const ClusterPlan plan = ClusterPlan::make(width, opts.depth);

    MultiplierNetlist m;
    m.width = width;
    m.label = plan.describe() + " signed / " + accumulation_scheme_name(opts.scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;
    Netlist& nl = m.net;

    const NetId sign_a = m.a_bits.back();
    const NetId sign_b = m.b_bits.back();

    const std::vector<NetId> mag_a = conditional_negate(nl, m.a_bits, sign_a);
    const std::vector<NetId> mag_b = conditional_negate(nl, m.b_bits, sign_b);

    const BitMatrix matrix = build_sdlc_matrix(nl, mag_a, mag_b, plan);
    const std::vector<NetId> mag_p = accumulate(nl, matrix, opts.scheme, 2 * width);

    const NetId sign_p = nl.xor_gate(sign_a, sign_b);
    finish_multiplier(m, conditional_negate(nl, mag_p, sign_p));
    return m;
}

}  // namespace sdlc
