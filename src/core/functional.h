// Bit-exact software models of the SDLC approximate multiplier.
//
// These mirror the generated hardware gate-for-gate (validated in tests by
// exhaustive netlist cross-simulation) and power the error-analysis
// experiments, where billions of multiplications may be evaluated.
//
// Arithmetic identity used throughout: replacing the addition of the k bits
// present at a compressed weight 2^w by their OR loses exactly
// (popcount - 1) * 2^w whenever popcount >= 2, so
//
//     P' = A*B - sum over compressed weights of max(0, popcount-1) * 2^w.
#ifndef SDLC_CORE_FUNCTIONAL_H
#define SDLC_CORE_FUNCTIONAL_H

#include <cstdint>

#include "core/cluster_plan.h"

namespace sdlc {

/// Error distance A*B - P' (always >= 0) for operands of plan.width() bits.
/// Valid for widths up to 32 (product fits in 64 bits).
[[nodiscard]] uint64_t sdlc_error_distance(const ClusterPlan& plan, uint64_t a, uint64_t b);

/// Approximate product P' for operands of plan.width() bits (width <= 32).
[[nodiscard]] uint64_t sdlc_multiply(const ClusterPlan& plan, uint64_t a, uint64_t b);

/// Convenience: SDLC product with a freshly built plan.
[[nodiscard]] uint64_t sdlc_multiply(int width, int depth, uint64_t a, uint64_t b);

/// Specialized depth-2 model using word-parallel bit tricks; ~10x faster
/// than the generic path, used for exhaustive 16-bit sweeps.
/// Equivalent to sdlc_error_distance(make(width,2), a, b) — tested as such.
[[nodiscard]] uint64_t sdlc_error_distance_fast2(int width, uint64_t a, uint64_t b);

/// Depth-2 approximate product via the fast path (width <= 32).
[[nodiscard]] uint64_t sdlc_multiply_fast2(int width, uint64_t a, uint64_t b);

/// True iff SDLC is exact for these operands (no compressed weight has
/// two or more set bits).
[[nodiscard]] bool sdlc_is_exact(const ClusterPlan& plan, uint64_t a, uint64_t b);

}  // namespace sdlc

#endif  // SDLC_CORE_FUNCTIONAL_H
