#include "core/kernels.h"

#include <array>
#include <bit>
#include <stdexcept>
#include <utility>

#include "core/functional.h"
#include "util/bitops.h"

namespace sdlc {

namespace {

uint64_t accurate_kernel(uint64_t a, uint64_t b) { return a * b; }

template <int W>
uint64_t sdlc_fast2_kernel(uint64_t a, uint64_t b) {
    return sdlc_multiply_fast2(W, a, b);
}

/// Truncated baseline: the dropped value is, per active row r < cut, the
/// low (cut - r) bits of A shifted to the row's weight. One masked add per
/// low row instead of the row x column double loop.
template <int Cut>
uint64_t truncated_kernel(uint64_t a, uint64_t b) {
    uint64_t dropped = 0;
    for (int r = 0; r < Cut; ++r) {
        if ((b >> r) & 1u) dropped += (a & mask_low(static_cast<unsigned>(Cut - r))) << r;
    }
    return a * b - dropped;
}

template <size_t... W>
constexpr std::array<MultiplyKernelFn, sizeof...(W)> fast2_table(std::index_sequence<W...>) {
    return {{&sdlc_fast2_kernel<static_cast<int>(W)>...}};
}

template <size_t... C>
constexpr std::array<MultiplyKernelFn, sizeof...(C)> truncated_table(std::index_sequence<C...>) {
    return {{&truncated_kernel<static_cast<int>(C)>...}};
}

// Indexed by operand width; entries below width 2 are never dispatched.
constexpr auto kFast2Kernels = fast2_table(std::make_index_sequence<33>{});
constexpr auto kTruncatedKernels = truncated_table(std::make_index_sequence<64>{});

}  // namespace

MultiplyKernelFn find_multiply_kernel(const MultiplierConfig& config) noexcept {
    if (config.width < 2 || config.width > 32) return nullptr;
    switch (config.variant) {
        case MultiplierVariant::kAccurate:
            return &accurate_kernel;
        case MultiplierVariant::kSdlc:
            if (config.depth == 1) return &accurate_kernel;  // no compression
            if (config.depth == 2) return kFast2Kernels[static_cast<size_t>(config.width)];
            return nullptr;
        case MultiplierVariant::kCompensated:
            // Depth 1 has no compression sites, hence no terms to compensate.
            if (config.depth == 1) return &accurate_kernel;
            return nullptr;
    }
    return nullptr;
}

const char* multiply_kernel_name(const MultiplierConfig& config) noexcept {
    const MultiplyKernelFn fn = find_multiply_kernel(config);
    if (fn == &accurate_kernel) return "accurate";
    if (fn != nullptr) return "sdlc-fast2";
    return "planned";
}

MultiplyKernelFn find_truncated_kernel(int cut) noexcept {
    if (cut < 0 || cut >= static_cast<int>(kTruncatedKernels.size())) return nullptr;
    return kTruncatedKernels[static_cast<size_t>(cut)];
}

MultiplyKernel::MultiplyKernel(const MultiplierConfig& config) : config_(config) {
    if (config.width < 2 || config.width > 32) {
        throw std::invalid_argument("MultiplyKernel: width must be in [2,32]");
    }
    fn_ = find_multiply_kernel(config);
    name_ = multiply_kernel_name(config);
    if (fn_) return;

    // Planned path: precompute per-group window masks (see header identity)
    // and, for the compensated variant, the gated constant table.
    const ClusterPlan plan = ClusterPlan::make(config.width, config.depth);
    for (const ClusterGroup& grp : plan.groups()) {
        FastGroup fg;
        fg.base_row = grp.base_row;
        fg.row_mask = static_cast<uint32_t>(mask_low(static_cast<unsigned>(grp.rows)));
        fg.mask_offset = static_cast<uint32_t>(col_masks_.size());
        for (int k = 0; k < grp.rows; ++k) {
            const int window = grp.extent + 1 - k;  // columns c <= extent - k
            col_masks_.push_back(window > 0 ? mask_low(static_cast<unsigned>(window)) : 0);
        }
        groups_.push_back(fg);
    }
    if (config.variant == MultiplierVariant::kCompensated) {
        comp_ = compensation_terms(plan);
    }
}

uint64_t MultiplyKernel::planned_error(uint64_t a, uint64_t b) const noexcept {
    uint64_t err = 0;
    for (const FastGroup& g : groups_) {
        uint64_t bb = (b >> g.base_row) & g.row_mask;
        if ((bb & (bb - 1)) == 0) continue;  // fewer than two active rows: exact
        const uint64_t* masks = col_masks_.data() + g.mask_offset;
        uint64_t sum = 0, present = 0;
        do {
            const int k = std::countr_zero(bb);
            const uint64_t t = (a & masks[k]) << k;
            sum += t;
            present |= t;
            bb &= bb - 1;
        } while (bb != 0);
        err += (sum - present) << g.base_row;
    }
    return err;
}

uint64_t truncated_multiply_fast(int width, int cut, uint64_t a, uint64_t b) {
    if (cut <= 0) return a * b;
    const MultiplyKernelFn fn = find_truncated_kernel(cut);
    if (fn == nullptr || width > 32) {
        throw std::invalid_argument("truncated_multiply_fast: cut/width out of range");
    }
    return fn(a, b);
}

}  // namespace sdlc
