// Gate-level generator for the SDLC approximate multiplier.
//
// Pipeline (paper Figure 1b):
//   1. partial-product formation: N^2 AND gates (same as accurate design);
//   2. significance-driven logic compression: one OR tree per compressed
//      weight position inside each cluster (ClusterPlan);
//   3. commutative remapping: compressed + passthrough bits are re-packed
//      by weight into the minimal number of rows (BitMatrix::to_rows);
//   4. accumulation: row-ripple (paper default), Wallace or Dadda.
#ifndef SDLC_CORE_GENERATOR_H
#define SDLC_CORE_GENERATOR_H

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"
#include "core/cluster_plan.h"

namespace sdlc {

/// Construction options for build_sdlc_multiplier().
struct SdlcOptions {
    int depth = 2;  ///< cluster depth (rows per cluster); 1 = accurate
    AccumulationScheme scheme = AccumulationScheme::kRowRipple;
    /// When false, skip step 3: compressed bits stay in their original rows
    /// (used by the remapping ablation; functionally identical).
    bool commutative_remapping = true;
};

/// Builds an N x N SDLC multiplier netlist.
[[nodiscard]] MultiplierNetlist build_sdlc_multiplier(int width, const SdlcOptions& opts = {});

/// Builds the partial-product matrix after SDLC compression (steps 1-2),
/// exposed separately for tests and ablations. `pp_gate_count` (optional
/// out) receives the number of AND gates formed.
[[nodiscard]] BitMatrix build_sdlc_matrix(Netlist& nl, const std::vector<NetId>& a_bits,
                                          const std::vector<NetId>& b_bits,
                                          const ClusterPlan& plan);

}  // namespace sdlc

#endif  // SDLC_CORE_GENERATOR_H
