#include "core/compensation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/functional.h"
#include "util/bitops.h"

namespace sdlc {

std::vector<CompensationTerm> compensation_terms(const ClusterPlan& plan) {
    const int n = plan.width();
    std::vector<CompensationTerm> terms;
    for (const ClusterGroup& grp : plan.groups()) {
        for (int k1 = 0; k1 < grp.rows; ++k1) {
            for (int k2 = k1 + 1; k2 < grp.rows; ++k2) {
                // Expected loss from this row pair: every compressed site j
                // where both rows contribute loses 2^w with probability 1/4.
                double expected = 0.0;
                for (int j = 1; j <= grp.extent; ++j) {
                    const int c1 = j - k1;
                    const int c2 = j - k2;
                    if (c1 < 0 || c1 >= n || c2 < 0 || c2 >= n) continue;
                    expected += 0.25 * std::ldexp(1.0, grp.base_row + j);
                }
                if (expected < 0.5) continue;
                // Round to the nearest power of two: the gated constant then
                // costs a single extra bit in the accumulation matrix. An
                // expected loss in [0.5, 1) still rounds *up* to 2^0 — the
                // smallest representable constant — never to a negative
                // exponent (a negative shift is UB; width-2 depth-2 lands
                // exactly on 0.5).
                const int exponent =
                    std::max(0, static_cast<int>(std::lround(std::log2(expected))));
                const uint64_t value = uint64_t{1} << exponent;
                terms.push_back({grp.base_row + k1, grp.base_row + k2, value});
            }
        }
    }
    return terms;
}

uint64_t sdlc_multiply_compensated(const ClusterPlan& plan, uint64_t a, uint64_t b) {
    return sdlc_multiply_compensated(plan, compensation_terms(plan), a, b);
}

uint64_t sdlc_multiply_compensated(const ClusterPlan& plan,
                                   const std::vector<CompensationTerm>& terms, uint64_t a,
                                   uint64_t b) {
    uint64_t p = sdlc_multiply(plan, a, b);
    for (const CompensationTerm& t : terms) {
        if (bit(b, static_cast<unsigned>(t.row_a)) & bit(b, static_cast<unsigned>(t.row_b))) {
            p += t.value;
        }
    }
    return p;
}

int64_t sdlc_compensated_signed_error(const ClusterPlan& plan, uint64_t a, uint64_t b) {
    return static_cast<int64_t>(sdlc_multiply_compensated(plan, a, b)) -
           static_cast<int64_t>(a * b);
}

MultiplierNetlist build_sdlc_compensated_multiplier(int width, const SdlcOptions& opts) {
    const ClusterPlan plan = ClusterPlan::make(width, opts.depth);

    MultiplierNetlist m;
    m.width = width;
    m.label = plan.describe() + " + compensation / " + accumulation_scheme_name(opts.scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;

    BitMatrix matrix = build_sdlc_matrix(m.net, m.a_bits, m.b_bits, plan);

    // Inject the gated compensation constants: one AND per row pair; the
    // same activity net is dropped into the matrix at each set bit of the
    // constant, and the accumulation tree absorbs the extra bits.
    for (const CompensationTerm& t : compensation_terms(plan)) {
        const NetId act = m.net.and_gate(m.b_bits[static_cast<size_t>(t.row_a)],
                                         m.b_bits[static_cast<size_t>(t.row_b)]);
        for (int w = 0; w < 2 * width; ++w) {
            if (bit(t.value, static_cast<unsigned>(w))) matrix.add(w, act);
        }
    }

    finish_multiplier(m, accumulate(m.net, matrix, opts.scheme, 2 * width));
    return m;
}

}  // namespace sdlc
