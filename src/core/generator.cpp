#include "core/generator.h"

#include <stdexcept>

#include "arith/adders.h"

namespace sdlc {

namespace {

/// Shared steps 1-2: AND array + cluster OR compression.
/// Produces per-source-row rows (2N wide, kNoNet holes): the OR output of a
/// compressed weight lands in the *first* row of its cluster, other cluster
/// rows lose their consumed bits; uncompressed bits stay in place. This is
/// the pre-remapping layout of the paper's Figure 3(b).
std::vector<std::vector<NetId>> build_clustered_rows(Netlist& nl,
                                                     const std::vector<NetId>& a_bits,
                                                     const std::vector<NetId>& b_bits,
                                                     const ClusterPlan& plan) {
    const int n = plan.width();
    if (a_bits.size() != static_cast<size_t>(n) || b_bits.size() != static_cast<size_t>(n)) {
        throw std::invalid_argument("build_sdlc: operand width mismatch");
    }

    // Step 1: full AND array, exactly as in the accurate multiplier.
    std::vector<std::vector<NetId>> pp(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
        pp[r].resize(static_cast<size_t>(n));
        for (int c = 0; c < n; ++c) pp[r][c] = nl.and_gate(a_bits[c], b_bits[r]);
    }

    std::vector<std::vector<NetId>> rows(static_cast<size_t>(n));
    for (auto& row : rows) row.assign(static_cast<size_t>(2 * n), kNoNet);

    std::vector<bool> consumed(static_cast<size_t>(n) * static_cast<size_t>(n), false);

    // Step 2: one OR tree per compressed weight position in each cluster.
    for (const ClusterGroup& grp : plan.groups()) {
        for (int j = 1; j <= grp.extent; ++j) {
            const int w = grp.base_row + j;
            std::vector<NetId> bits;
            for (int k = 0; k < grp.rows; ++k) {
                const int c = j - k;
                if (c < 0 || c >= n) continue;
                bits.push_back(pp[grp.base_row + k][c]);
                consumed[static_cast<size_t>(grp.base_row + k) * n + c] = true;
            }
            if (bits.empty()) continue;
            // A single present bit passes through exactly; >= 2 are OR-ed.
            rows[grp.base_row][w] = bits.size() == 1 ? bits[0] : nl.or_tree(bits);
        }
    }

    // Uncompressed partial products keep their exact row and weight:
    // group-base LSBs, high-significance tails and rows outside any cluster.
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) {
            if (!consumed[static_cast<size_t>(r) * n + c]) rows[r][r + c] = pp[r][c];
        }
    }
    return rows;
}

}  // namespace

BitMatrix build_sdlc_matrix(Netlist& nl, const std::vector<NetId>& a_bits,
                            const std::vector<NetId>& b_bits, const ClusterPlan& plan) {
    const auto rows = build_clustered_rows(nl, a_bits, b_bits, plan);
    BitMatrix matrix(2 * plan.width());
    for (const auto& row : rows) {
        for (size_t w = 0; w < row.size(); ++w) {
            if (row[w] != kNoNet) matrix.add(static_cast<int>(w), row[w]);
        }
    }
    return matrix;
}

MultiplierNetlist build_sdlc_multiplier(int width, const SdlcOptions& opts) {
    const ClusterPlan plan = ClusterPlan::make(width, opts.depth);

    MultiplierNetlist m;
    m.width = width;
    m.label = plan.describe() + " / " + accumulation_scheme_name(opts.scheme);

    const OperandPorts ports = make_operand_ports(m.net, width);
    m.a_bits = ports.a;
    m.b_bits = ports.b;

    std::vector<NetId> product;
    if (opts.commutative_remapping || opts.scheme != AccumulationScheme::kRowRipple) {
        // Steps 3+4: BitMatrix::to_rows() inside accumulate() performs the
        // commutative remapping; the row count equals the critical column
        // height (halved at depth 2 versus the accurate tree). Column-based
        // Wallace/Dadda reduction is remapping-agnostic by construction.
        const BitMatrix matrix = build_sdlc_matrix(m.net, m.a_bits, m.b_bits, plan);
        product = accumulate(m.net, matrix, opts.scheme, 2 * width);
    } else {
        // Remapping ablation: accumulate the per-source-row layout directly
        // (same bits and weights, but up to N sparse rows instead of the
        // remapped max-column-height rows).
        const auto rows = build_clustered_rows(m.net, m.a_bits, m.b_bits, plan);
        std::vector<NetId> acc;
        bool first = true;
        for (const auto& row : rows) {
            bool empty = true;
            for (const NetId bitnet : row) {
                if (bitnet != kNoNet) {
                    empty = false;
                    break;
                }
            }
            if (empty) continue;
            if (first) {
                acc = row;
                first = false;
            } else {
                acc = sparse_row_add(m.net, acc, row);
            }
        }
        acc.resize(static_cast<size_t>(2 * width), kNoNet);
        for (auto& bitnet : acc) {
            if (bitnet == kNoNet) bitnet = m.net.constant(false);
        }
        product = std::move(acc);
        m.label += " / no-remap";
    }
    finish_multiplier(m, std::move(product));
    return m;
}

}  // namespace sdlc
