// Bit-sliced (transposed) evaluation of the planned sum-minus-OR path:
// 64 products per uint64 bitwise operation.
//
// The scalar planned path (core/kernels.h) evaluates one (a, b) pair per
// call. Exhaustive error sweeps, however, iterate b densely for a fixed a,
// and every step of the planned identity is bitwise logic plus integer
// add/subtract — exactly the shape classic bit-parallel logic simulators
// exploit. This engine transposes 64 consecutive b values into bit-plane
// uint64s (plane j holds bit j of each lane's value, one lane per bit) and
// evaluates the identity across all lanes at once:
//
//   - the SUM term  sum_k t_k  becomes a gated carry-ripple add of the
//     constant t_k = (a & mask_k) << row_k into the plane accumulator,
//     where the "gate" plane (which lanes have B bit row_k set) feeds the
//     full-adder instead of a scalar 0/1;
//   - the OR term  OR_k t_k  becomes plain plane ORs;
//   - the group error (SUM - OR) << base_row and the compensated variant's
//     gated constants become borrow-ripple plane subtracts.
//
// A final 64x64 bit-matrix transpose turns the error planes back into one
// uint64 error per lane, and products[l] = a*b_l - err_l (+ compensation)
// reproduces the scalar kernel's uint64 wrap arithmetic exactly — results
// are bit-identical to MultiplyKernel for every operand pair (enforced by
// exhaustive tests).
//
// Two entry points:
//
//   - multiply_block(a, b0, lanes, out): general path, any b0/lane count.
//   - prepare(a) + multiply_block_prepared(prep, b0, out): the sweep fast
//     path for aligned blocks (b0 a multiple of the natural lane count).
//     For aligned blocks the b bit-planes are not data at all: planes 0..5
//     are fixed constants (0xAAAA..., 0xCCCC..., ...) and planes >= 6 are
//     uniform 0/~0 across the block. prepare() therefore folds every group
//     whose rows all sit below bit 6 into a per-a plane image once, and
//     the per-block work collapses to: copy planes, evaluate the few
//     all-uniform groups as scalars on b0, transpose, subtract.
#ifndef SDLC_CORE_KERNELS_SLICED_H
#define SDLC_CORE_KERNELS_SLICED_H

#include <cstdint>
#include <vector>

#include "api/approx_multiplier.h"
#include "core/compensation.h"

namespace sdlc {

/// In-place transpose of a 64x64 bit matrix: afterwards bit j of word l is
/// the former bit l of word j. Exposed for tests.
void transpose64(uint64_t m[64]);

/// Out-of-place variant (dst may alias src). On x86-64 with AVX-512+GFNI a
/// vector implementation is selected at runtime; results are identical.
void transpose64_to(uint64_t dst[64], const uint64_t src[64]);

/// Per-configuration bit-sliced evaluator for the planned path.
class SlicedMultiplyKernel {
public:
    /// Precomputed per-a state for multiply_block_prepared().
    struct Prepared {
        uint64_t a = 0;
        uint64_t low[64] = {};  ///< error planes of all low-row groups/terms
    };

    /// Throws std::invalid_argument when !eligible(config).
    explicit SlicedMultiplyKernel(const MultiplierConfig& config);

    /// True when this engine applies: width in [2, 16] and a non-empty
    /// compression plan (sdlc/compensated with depth in [2, width]).
    /// Accurate and depth-1 configurations are exact — the scalar
    /// accurate kernel is already optimal for them.
    [[nodiscard]] static bool eligible(const MultiplierConfig& config) noexcept;

    /// Approximate products of a * (b0 + l) for l in [0, lanes), lanes in
    /// [1, 64]. Bit-identical to MultiplyKernel for each pair. General
    /// path: b0 need not be aligned and lanes may be any count (the
    /// lane-misalignment case).
    void multiply_block(uint64_t a, uint64_t b0, unsigned lanes, uint64_t out[64]) const noexcept;

    /// Folds every block-invariant group/term for this `a` into prep.
    void prepare(uint64_t a, Prepared& prep) const noexcept;

    /// Fast path: products of a * (b0 + l) for l in [0, natural_lanes()).
    /// Requires b0 to be a multiple of natural_lanes().
    void multiply_block_prepared(const Prepared& prep, uint64_t b0,
                                 uint64_t out[64]) const noexcept;

    /// Lanes per block on the fast path: min(64, 2^width), so a full
    /// b-sweep at width < 6 is a single partial block.
    [[nodiscard]] unsigned natural_lanes() const noexcept { return lanes_; }

    [[nodiscard]] const MultiplierConfig& config() const noexcept { return config_; }
    [[nodiscard]] const char* name() const noexcept { return "sliced"; }

private:
    /// One partial-product row of a cluster group: value (a & mask) << row,
    /// gated by B bit `row`.
    struct Row {
        int row = 0;
        uint64_t mask = 0;
    };

    /// Row-class of a group w.r.t. aligned blocks: all rows below bit 6
    /// (gate planes are block-invariant constants), all rows at or above
    /// bit 6 (gates uniform per block), or straddling.
    enum class Cls : uint8_t { kLow, kHigh, kMixed };

    struct Group {
        uint32_t first = 0;  ///< index of row k = 0 in rows_
        uint32_t count = 0;
        int base_row = 0;
        int lo = 0;  ///< present-plane span [lo, hi)
        int hi = 0;
        Cls cls = Cls::kLow;
    };

    void eval_group(uint64_t* planes, const Group& g, const uint64_t* gates,
                    uint64_t a, uint64_t* scratch) const noexcept;
    [[nodiscard]] uint64_t high_error(uint64_t a, uint64_t b) const noexcept;

    MultiplierConfig config_;
    unsigned lanes_ = 64;
    uint64_t lane_mask_ = ~0ull;
    uint64_t low_gates_[6] = {};  ///< aligned-block gate planes for rows < 6
    std::vector<Row> rows_;
    std::vector<Group> groups_;
    std::vector<CompensationTerm> comp_;        ///< all terms (general path)
    std::vector<CompensationTerm> comp_low_;    ///< both rows < 6
    std::vector<CompensationTerm> comp_high_;   ///< both rows >= 6
    std::vector<CompensationTerm> comp_mixed_;  ///< one row each side
    bool block_varying_ = false;  ///< any high/mixed group or comp term
    bool plane_varying_ = false;  ///< any mixed group or mixed comp term
};

}  // namespace sdlc

#endif  // SDLC_CORE_KERNELS_SLICED_H
