// High-level facade tying the library together.
//
// ApproxMultiplier is the one-stop entry point a downstream user needs:
// configure width / cluster depth / accumulation scheme / variant once, then
// multiply (software model), query error metrics, generate hardware and
// cost it — without touching the individual modules.
#ifndef SDLC_API_APPROX_MULTIPLIER_H
#define SDLC_API_APPROX_MULTIPLIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "arith/accumulate.h"
#include "arith/mul_netlist.h"
#include "core/cluster_plan.h"
#include "core/compensation.h"

namespace sdlc {

/// Which arithmetic variant the facade builds.
enum class MultiplierVariant {
    kAccurate,     ///< exact reference
    kSdlc,         ///< plain SDLC (paper)
    kCompensated,  ///< SDLC + runtime error compensation (extension)
};

/// Short lowercase name ("accurate", "sdlc", "compensated").
[[nodiscard]] const char* multiplier_variant_name(MultiplierVariant v) noexcept;

/// Parses a variant name into `out`. Returns false (leaving `out` untouched)
/// for unknown names.
[[nodiscard]] bool parse_multiplier_variant(const std::string& name,
                                            MultiplierVariant& out) noexcept;

/// Complete configuration of one multiplier instance.
struct MultiplierConfig {
    int width = 8;
    int depth = 2;  ///< cluster depth (ignored for kAccurate)
    MultiplierVariant variant = MultiplierVariant::kSdlc;
    AccumulationScheme scheme = AccumulationScheme::kRowRipple;
};

/// Configured approximate multiplier with software and hardware views.
class ApproxMultiplier {
public:
    /// Validates and captures the configuration.
    /// Throws std::invalid_argument for unbuildable configurations.
    explicit ApproxMultiplier(const MultiplierConfig& config);

    /// Software model product (width <= 32 for non-accurate variants).
    [[nodiscard]] uint64_t multiply(uint64_t a, uint64_t b) const;

    /// Signed product via sign-magnitude wrapping (width <= 31).
    [[nodiscard]] int64_t multiply_signed(int64_t a, int64_t b) const;

    /// Error distance |exact - approximate| for these operands.
    [[nodiscard]] uint64_t error_distance(uint64_t a, uint64_t b) const;

    /// Generates the gate-level netlist for this configuration.
    [[nodiscard]] MultiplierNetlist build_netlist() const;

    [[nodiscard]] const MultiplierConfig& config() const noexcept { return config_; }
    [[nodiscard]] const ClusterPlan& plan() const noexcept { return plan_; }

    /// Human-readable description of the configuration.
    [[nodiscard]] std::string describe() const;

private:
    MultiplierConfig config_;
    ClusterPlan plan_;
    /// Precomputed once for the compensated variant (empty otherwise):
    /// deriving the table per multiply would dominate the hot loop.
    std::vector<CompensationTerm> comp_terms_;
};

}  // namespace sdlc

#endif  // SDLC_API_APPROX_MULTIPLIER_H
