#include "api/approx_multiplier.h"

#include <stdexcept>

#include "baselines/accurate.h"
#include "core/compensation.h"
#include "core/functional.h"
#include "core/generator.h"
#include "core/signed_mul.h"

namespace sdlc {

const char* multiplier_variant_name(MultiplierVariant v) noexcept {
    switch (v) {
        case MultiplierVariant::kAccurate: return "accurate";
        case MultiplierVariant::kSdlc: return "sdlc";
        case MultiplierVariant::kCompensated: return "compensated";
    }
    return "?";
}

bool parse_multiplier_variant(const std::string& name, MultiplierVariant& out) noexcept {
    if (name == "accurate") out = MultiplierVariant::kAccurate;
    else if (name == "sdlc") out = MultiplierVariant::kSdlc;
    else if (name == "compensated") out = MultiplierVariant::kCompensated;
    else return false;
    return true;
}

ApproxMultiplier::ApproxMultiplier(const MultiplierConfig& config)
    : config_(config),
      plan_(ClusterPlan::make(config.width,
                              config.variant == MultiplierVariant::kAccurate ? 1
                                                                             : config.depth)) {
    if (config.variant == MultiplierVariant::kCompensated) {
        comp_terms_ = compensation_terms(plan_);
    }
}

uint64_t ApproxMultiplier::multiply(uint64_t a, uint64_t b) const {
    switch (config_.variant) {
        case MultiplierVariant::kAccurate:
            if (config_.width > 32) {
                throw std::invalid_argument("ApproxMultiplier: software model needs width <= 32");
            }
            return a * b;
        case MultiplierVariant::kSdlc:
            return sdlc_multiply(plan_, a, b);
        case MultiplierVariant::kCompensated:
            return sdlc_multiply_compensated(plan_, comp_terms_, a, b);
    }
    throw std::logic_error("ApproxMultiplier: unknown variant");
}

int64_t ApproxMultiplier::multiply_signed(int64_t a, int64_t b) const {
    if (config_.variant == MultiplierVariant::kCompensated) {
        throw std::invalid_argument(
            "ApproxMultiplier: signed mode is not defined for the compensated variant");
    }
    if (config_.variant == MultiplierVariant::kAccurate) return a * b;
    return sdlc_multiply_signed(plan_, a, b);
}

uint64_t ApproxMultiplier::error_distance(uint64_t a, uint64_t b) const {
    const uint64_t exact = a * b;
    const uint64_t approx = multiply(a, b);
    return exact > approx ? exact - approx : approx - exact;
}

MultiplierNetlist ApproxMultiplier::build_netlist() const {
    SdlcOptions opts;
    opts.depth = config_.depth;
    opts.scheme = config_.scheme;
    switch (config_.variant) {
        case MultiplierVariant::kAccurate:
            return build_accurate_multiplier(config_.width, config_.scheme);
        case MultiplierVariant::kSdlc:
            return build_sdlc_multiplier(config_.width, opts);
        case MultiplierVariant::kCompensated:
            return build_sdlc_compensated_multiplier(config_.width, opts);
    }
    throw std::logic_error("ApproxMultiplier: unknown variant");
}

std::string ApproxMultiplier::describe() const {
    std::string s;
    switch (config_.variant) {
        case MultiplierVariant::kAccurate: s = "accurate"; break;
        case MultiplierVariant::kSdlc: s = "sdlc"; break;
        case MultiplierVariant::kCompensated: s = "sdlc+comp"; break;
    }
    s += " " + std::to_string(config_.width) + "x" + std::to_string(config_.width);
    if (config_.variant != MultiplierVariant::kAccurate) {
        s += " d" + std::to_string(config_.depth);
    }
    s += " / ";
    s += accumulation_scheme_name(config_.scheme);
    return s;
}

}  // namespace sdlc
