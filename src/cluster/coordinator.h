// Cluster sweep coordinator: shards a SweepSpec's enumeration across serve
// replicas and merges the per-point streams back into enumeration order.
//
// The coordinator cuts the index space into a *fixed* number of shards
// (shard_plan.h) — independent of how many workers are alive — and fans
// them out to peer replicas as ordinary NDJSON sweep requests restricted
// by {"shard": {lo, hi}} with "point_bits" set, so every point comes back
// bit-exact. A ShardMerger re-serializes completed points into the global
// enumeration order, which makes the merged stream — and therefore the
// final export — byte-identical to a single-node run at any shard count,
// worker count, or failure pattern.
//
// Degradation is part of the contract, not an error path: a worker that
// dies, stalls past the silence budget, or answers with anything other
// than a clean in-order shard stream is dropped for the rest of the sweep
// and its shard is requeued on the surviving peers. A shard that exhausts
// its remote attempts (or outlives the last worker) is executed locally
// through the very same evaluate_sweep the workers run, so the output
// bytes never depend on who computed a point.
#ifndef SDLC_CLUSTER_COORDINATOR_H
#define SDLC_CLUSTER_COORDINATOR_H

#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "dse/evaluator.h"
#include "dse/sweep.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "util/retry.h"

namespace sdlc::cluster {

/// Fan-out knobs. `workers` entries use the cache-peer spec grammar
/// ("unix:PATH" or "HOST:PORT") — one serve replica per entry.
struct ClusterOptions {
    std::vector<std::string> workers;
    /// Fixed shard count per sweep. The cut depends only on this and the
    /// sweep's size, never on worker count or timing, so retries re-run
    /// exactly the same indices.
    size_t shards = 32;
    /// Remote re-dispatches allowed per shard after its first failure
    /// before the coordinator executes it locally.
    int shard_retries = 2;
    /// Backoff before a failed shard is re-dispatched: first-failure base
    /// of a capped exponential with deterministic jitter (RetryPolicy).
    /// 0 (the default) requeues immediately — the historical behavior.
    int shard_backoff_ms = 0;
    /// Read-silence budget per shard stream: a worker that produces no
    /// bytes for this long is treated as dead and its shard requeued.
    /// <= 0 disables the budget (failures are then EOF/error only).
    int shard_timeout_ms = 60000;
    /// Per-worker connect budget.
    int connect_timeout_ms = 2000;

    /// The shard re-dispatch schedule as a RetryPolicy: shard_retries maps
    /// to the attempt budget (exhausted() == "run it locally"),
    /// shard_backoff_ms to the delay curve. The same vocabulary the remote
    /// cache uses for peer cooldowns.
    [[nodiscard]] RetryPolicy shard_policy() const noexcept;
};

/// Runs `spec` distributed over `opts.workers`, honoring `eval`'s cancel /
/// deadline / on_point / shard range exactly like evaluate_sweep — global
/// enumeration indices, in-order streaming, strict-prefix partial streams
/// — and returns the merged points. `counters` (when non-null) receives
/// this sweep's per-worker dispatch/completion/retry/bytes/latency deltas.
/// `warm_keys` (when non-null) is the set of content keys already resident
/// fleet-wide before this sweep: it feeds the deterministic cache-stats
/// replay (stats match a single-node run with that same warm set) and is
/// updated with the keys this sweep touched. Throws SweepCancelled,
/// SweepDeadlineExceeded, std::invalid_argument like evaluate_sweep.
std::vector<DesignPoint> distributed_sweep(const SweepSpec& spec, const EvalOptions& eval,
                                           const ClusterOptions& opts,
                                           SweepStats* stats = nullptr,
                                           serve::ClusterCounters* counters = nullptr,
                                           std::unordered_set<uint64_t>* warm_keys = nullptr);

/// A SweepService whose sweeps run distributed: the protocol, queueing,
/// cancellation, deadlines and event emission are all inherited — only the
/// evaluate() hook changes, which is what keeps a coordinator's event
/// stream byte-identical to a single replica's. Control requests (stats,
/// metrics, cancel, shutdown) behave exactly as on a plain service, with
/// the cluster counters folded into stats() and the Prometheus scrape.
class CoordinatorService final : public serve::SweepService {
public:
    /// Throws std::invalid_argument on an empty worker list, a malformed
    /// worker spec, or a zero shard count.
    CoordinatorService(const serve::ServiceOptions& opts, ClusterOptions cluster);
    ~CoordinatorService() override;

    [[nodiscard]] serve::ServiceStats stats() const override;

protected:
    std::vector<DesignPoint> evaluate(const serve::SweepRequest& request, EvalOptions& eval,
                                      SweepStats& stats) override;

private:
    const ClusterOptions cluster_;
    mutable std::mutex cluster_mutex_;
    serve::ClusterCounters totals_;
    /// Content keys any sweep has touched (remote or local): the fleet-wide
    /// warm set behind the deterministic cache-stats replay, mirroring the
    /// resident cache a single-node service would have accumulated.
    std::unordered_set<uint64_t> fleet_keys_;
};

}  // namespace sdlc::cluster

#endif  // SDLC_CLUSTER_COORDINATOR_H
