// Deterministic shard planning for distributed sweeps.
//
// The enumeration index space is cut into a fixed number of contiguous
// ranges, independent of how many workers happen to be alive — the same
// trick the evaluator and error/evaluate.h use for thread-count
// independence. The plan depends only on (lo, hi, shard_count), so every
// coordinator configured the same way cuts the same sweep identically, and
// retrying a shard on a different worker re-runs exactly the same indices.
#ifndef SDLC_CLUSTER_SHARD_PLAN_H
#define SDLC_CLUSTER_SHARD_PLAN_H

#include <cstddef>
#include <vector>

namespace sdlc::cluster {

/// One contiguous slice [lo, hi) of the enumeration index space.
struct IndexRange {
    size_t lo = 0;
    size_t hi = 0;

    [[nodiscard]] size_t size() const noexcept { return hi - lo; }
};

/// Cuts [lo, hi) into at most `shard_count` contiguous, non-empty,
/// ascending ranges whose sizes differ by at most one and whose union is
/// exactly [lo, hi). Fewer ranges come back when the space is smaller than
/// `shard_count`; an empty space yields an empty plan. Throws
/// std::invalid_argument on lo > hi or shard_count == 0.
[[nodiscard]] std::vector<IndexRange> plan_shards(size_t lo, size_t hi, size_t shard_count);

}  // namespace sdlc::cluster

#endif  // SDLC_CLUSTER_SHARD_PLAN_H
