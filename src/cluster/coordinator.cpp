#include "cluster/coordinator.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <optional>
#include <stdexcept>
#include <thread>

#include "api/approx_multiplier.h"
#include "cluster/shard_plan.h"
#include "dse/cost_cache.h"
#include "dse/point_wire.h"
#include "dse/shard_merge.h"
#include "dse/thread_pool.h"
#include "obs/trace.h"
#include "serve/socket.h"
#include "util/json_parse.h"

namespace sdlc::cluster {

namespace {

using Clock = std::chrono::steady_clock;

/// Poll granularity while waiting on a worker: bounds how long a cancel or
/// deadline can go unnoticed mid-shard.
constexpr int kTickMs = 200;

/// Hard cap on one buffered event line from a worker. Point events with
/// bits run ~700 bytes; anything near this cap is a protocol violation.
constexpr size_t kMaxEventBytes = size_t{1} << 20;

int connect_worker(const CachePeerAddress& addr, int timeout_ms) {
    try {
        return addr.is_unix
                   ? serve::unix_socket_connect(addr.path_or_host, timeout_ms)
                   : serve::tcp_connect(addr.path_or_host.empty() ? "127.0.0.1"
                                                                  : addr.path_or_host,
                                        addr.port, timeout_ms);
    } catch (const std::exception&) {
        return -1;
    }
}

/// One coordinator->worker connection with a buffered, abort-aware line
/// reader. Reads tick at kTickMs so the owning thread notices an abort
/// promptly, and give up after `silence_ms` without a single byte — the
/// slow-worker detector (a worker streaming points is never "silent").
struct WorkerLink {
    int fd = -1;
    std::string buffer;
    size_t scanned = 0;       ///< prefix of buffer already known newline-free
    uint64_t received = 0;    ///< raw bytes read, for the per-worker counter

    ~WorkerLink() { close_link(); }

    void close_link() {
        if (fd >= 0) ::close(fd);
        fd = -1;
        buffer.clear();
        scanned = 0;
    }

    enum class Read { kLine, kFailed, kAborted };

    template <typename AbortFn>
    Read next_line(std::string& line, int silence_ms, const AbortFn& aborted) {
        Clock::time_point last_data = Clock::now();
        for (;;) {
            const size_t nl = buffer.find('\n', scanned);
            if (nl != std::string::npos) {
                line.assign(buffer, 0, nl);
                buffer.erase(0, nl + 1);
                scanned = 0;
                return Read::kLine;
            }
            scanned = buffer.size();
            if (buffer.size() > kMaxEventBytes) return Read::kFailed;
            if (aborted()) return Read::kAborted;
            if (silence_ms > 0 &&
                Clock::now() - last_data >= std::chrono::milliseconds(silence_ms)) {
                return Read::kFailed;
            }
            pollfd p{fd, POLLIN, 0};
            const int r = ::poll(&p, 1, kTickMs);
            if (r < 0) {
                if (errno == EINTR) continue;
                return Read::kFailed;
            }
            if (r == 0) continue;
            char chunk[16384];
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0) return Read::kFailed;
            buffer.append(chunk, static_cast<size_t>(n));
            received += static_cast<uint64_t>(n);
            last_data = Clock::now();
        }
    }
};

}  // namespace

RetryPolicy ClusterOptions::shard_policy() const noexcept {
    RetryPolicy policy;
    // shard_retries counts re-dispatches after the first failure, so the
    // total attempt budget is one higher; exhausted(failures) then flips
    // exactly where the historical `failures > shard_retries` check did.
    policy.max_attempts = shard_retries < 0 ? 1 : shard_retries + 1;
    policy.base_delay_ms = shard_backoff_ms;
    policy.max_delay_ms = shard_backoff_ms > 0 ? int64_t{shard_backoff_ms} * 8 : 0;
    policy.multiplier = 2.0;
    policy.jitter = 0.25;
    policy.seed = RetryPolicy::seed_from("cluster-shard");
    return policy;
}

std::vector<DesignPoint> distributed_sweep(const SweepSpec& spec, const EvalOptions& eval,
                                           const ClusterOptions& opts, SweepStats* stats,
                                           serve::ClusterCounters* counters,
                                           std::unordered_set<uint64_t>* warm_keys) {
    const Clock::time_point t0 = Clock::now();
    if (opts.workers.empty()) {
        throw std::invalid_argument("cluster: at least one worker is required");
    }
    if (opts.shards == 0) throw std::invalid_argument("cluster: shard count must be >= 1");

    std::vector<CachePeerAddress> addresses(opts.workers.size());
    for (size_t i = 0; i < opts.workers.size(); ++i) {
        std::string err;
        if (!parse_cache_peer(opts.workers[i], addresses[i], &err)) {
            throw std::invalid_argument("cluster: bad worker spec \"" + opts.workers[i] +
                                        "\": " + err);
        }
    }

    const std::vector<MultiplierConfig> configs = spec.enumerate();  // validates the spec
    size_t lo = 0;
    size_t hi = configs.size();
    if (eval.shard_lo != 0 || eval.shard_hi != 0) {
        if (eval.shard_lo >= eval.shard_hi || eval.shard_hi > configs.size()) {
            throw std::invalid_argument(
                "sweep shard range [" + std::to_string(eval.shard_lo) + ", " +
                std::to_string(eval.shard_hi) + ") is invalid for " +
                std::to_string(configs.size()) + " points");
        }
        lo = eval.shard_lo;
        hi = eval.shard_hi;
    }

    // Fleet-warm key set *before* this sweep runs: the caller-tracked keys
    // plus whatever the resident cache already holds. Snapshotted now so a
    // local fallback filling the cache mid-sweep cannot skew the replay.
    SynthesisCache* const cache = eval.use_hw_cache ? eval.hw_cache : nullptr;
    std::unordered_set<uint64_t> warm;
    const bool want_cache_stats = stats != nullptr && eval.use_hw_cache && eval.evaluate_hardware;
    if (want_cache_stats) {
        if (warm_keys != nullptr) warm = *warm_keys;
        if (cache != nullptr) {
            for (const uint64_t k : cache->keys()) warm.insert(k);
        }
    }
    const RemoteCacheCounters remote_before =
        cache != nullptr ? cache->remote_counters() : RemoteCacheCounters{};

    const std::vector<IndexRange> plan = plan_shards(lo, hi, opts.shards);

    serve::ClusterCounters run_counters;
    run_counters.enabled = true;
    run_counters.shards = opts.shards;
    run_counters.sweeps = 1;
    run_counters.workers.resize(opts.workers.size());
    for (size_t i = 0; i < opts.workers.size(); ++i) {
        run_counters.workers[i].spec = opts.workers[i];
    }

    ShardMerger merger(lo, hi, eval.on_point);

    // Shard re-dispatch schedule: exhaustion (run locally) and backoff
    // delays come from the shared RetryPolicy vocabulary. With the default
    // shard_backoff_ms of 0 every requeue is immediate.
    const RetryPolicy retry = opts.shard_policy();

    // Shared dispatch state. `queue` holds plan indices awaiting a worker;
    // a shard leaves it either remotely completed or demoted to `local`.
    struct Dispatch {
        std::mutex m;
        std::condition_variable cv;
        std::deque<size_t> queue;
        std::vector<size_t> local;   ///< shards the coordinator runs itself
        std::vector<int> failures;   ///< per-shard failed remote attempts
        /// Earliest re-dispatch time per shard (RetryPolicy backoff); a
        /// queued shard before its time is skipped, not dropped.
        std::vector<Clock::time_point> ready;
        size_t in_flight = 0;
        size_t live = 0;
        bool abort = false;
        bool cancel_hit = false;
        bool deadline_hit = false;
    } d;
    for (size_t i = 0; i < plan.size(); ++i) d.queue.push_back(i);
    d.failures.assign(plan.size(), 0);
    d.ready.assign(plan.size(), Clock::time_point{});
    d.live = opts.workers.size();

    const bool has_deadline = eval.deadline != Clock::time_point{};
    const auto aborted = [&d] {
        std::lock_guard<std::mutex> lock(d.m);
        return d.abort;
    };

    // Traced sweeps record shard_dispatch/shard_retry_backoff/merge spans
    // here and harvest worker-side spans off shard done events; untraced
    // sweeps pay one null check per site. rec is thread-safe (sharded) and
    // outlives the dispatch threads, which join before we return.
    obs::SpanRecorder* const rec = eval.trace.valid ? eval.recorder : nullptr;

    // The sub-request every shard derives from: same sweep, same
    // serializable eval knobs, bit-exact streamed points, no export.
    serve::SweepRequest proto;
    proto.spec = spec;
    proto.eval.seed = eval.seed;
    proto.eval.samples = eval.samples;
    proto.eval.exhaustive_max_width = eval.exhaustive_max_width;
    proto.eval.distribution = eval.distribution;
    proto.eval.evaluate_hardware = eval.evaluate_hardware;
    proto.eval.use_hw_cache = eval.use_hw_cache;
    proto.eval.use_sliced = eval.use_sliced;
    // Cutoffs arrive resolved (the service edge resolves before evaluate());
    // shipping the integers pins every replica to the same engine per point.
    proto.eval.exhaustive_width_accurate = eval.exhaustive_width_accurate;
    proto.eval.exhaustive_width_fast2 = eval.exhaustive_width_fast2;
    proto.eval.exhaustive_width_planned = eval.exhaustive_width_planned;
    proto.eval.exhaustive_width_sliced = eval.exhaustive_width_sliced;
    proto.stream_points = true;
    proto.export_json = false;
    proto.point_bits = true;

    // Runs one shard request over an established link. True only for a
    // clean protocol run: accepted, every point of the range in order with
    // parseable bits, done ok. Anything else fails the attempt (and the
    // worker): a half-streamed shard is harmless because the merger takes
    // the first write per index and a retry re-sends the same bytes.
    const auto run_shard = [&](WorkerLink& link, size_t shard_index,
                               const obs::TraceContext& shard_trace) -> WorkerLink::Read {
        const IndexRange range = plan[shard_index];
        serve::SweepRequest req = proto;
        req.id = "s" + std::to_string(shard_index);
        req.shard_lo = range.lo;
        req.shard_hi = range.hi;
        req.trace = shard_trace;
        if (has_deadline) {
            const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                                       eval.deadline - Clock::now())
                                       .count();
            if (remaining <= 0) return WorkerLink::Read::kAborted;
            req.deadline_ms = static_cast<uint64_t>(remaining);
        }
        if (!serve::write_all(link.fd, serve::sweep_request_json(req) + "\n")) {
            return WorkerLink::Read::kFailed;
        }
        size_t expected = range.lo;
        std::string line;
        for (;;) {
            const WorkerLink::Read r = link.next_line(line, opts.shard_timeout_ms, aborted);
            if (r != WorkerLink::Read::kLine) return r;
            JsonValue event;
            if (!json_parse(line, event) || !event.is_object()) return WorkerLink::Read::kFailed;
            const JsonValue* id = event.find("id");
            const JsonValue* kind = event.find("event");
            if (id == nullptr || !id->is_string() || id->string != req.id ||
                kind == nullptr || !kind->is_string()) {
                return WorkerLink::Read::kFailed;
            }
            if (kind->string == "point") {
                const JsonValue* index = event.find("index");
                const JsonValue* bits = event.find("bits");
                if (index == nullptr || !index->is_number() || bits == nullptr ||
                    !bits->is_string()) {
                    return WorkerLink::Read::kFailed;
                }
                // Strict in-order delivery: the worker streams global
                // indices in enumeration order, so anything else is a
                // corrupt stream, and `expected` alone proves completeness.
                if (index->number != static_cast<double>(expected) || expected >= range.hi) {
                    return WorkerLink::Read::kFailed;
                }
                DesignPoint point;
                if (!parse_design_point_bits(bits->string, point)) {
                    return WorkerLink::Read::kFailed;
                }
                merger.add(expected, point);
                ++expected;
            } else if (kind->string == "done") {
                const JsonValue* ok = event.find("ok");
                const bool clean = ok != nullptr && ok->is_bool() && ok->boolean &&
                                   expected == range.hi;
                if (clean && rec != nullptr) {
                    // Harvest the worker's spans off its done event. A
                    // worker runs the plain serve stack, so its own spans
                    // say "serve"; relabel those as "worker" (cache-daemon
                    // spans it forwarded keep their tier).
                    const JsonValue* spans = event.find("spans");
                    std::vector<obs::Span> harvested;
                    if (spans != nullptr && obs::parse_spans_wire(*spans, harvested)) {
                        for (obs::Span& span : harvested) {
                            if (span.tier == "serve") span.tier = "worker";
                            rec->record(std::move(span));
                        }
                    }
                }
                return clean ? WorkerLink::Read::kLine : WorkerLink::Read::kFailed;
            }
            // accepted / summary / error are part of a normal stream; error
            // outcomes surface through done ok=false.
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(opts.workers.size());
    for (size_t wi = 0; wi < opts.workers.size(); ++wi) {
        threads.emplace_back([&, wi] {
            WorkerLink link;
            serve::ClusterWorkerCounters& wc = run_counters.workers[wi];
            bool dead = false;
            while (!dead) {
                size_t shard_index = 0;
                {
                    std::unique_lock<std::mutex> lock(d.m);
                    bool claimed = false;
                    while (!claimed) {
                        d.cv.wait(lock, [&d] {
                            return d.abort || !d.queue.empty() || d.in_flight == 0;
                        });
                        if (d.abort || d.queue.empty()) break;
                        // Claim the first shard whose backoff has elapsed;
                        // if every queued shard is still cooling down, sleep
                        // until the earliest becomes eligible.
                        const Clock::time_point now = Clock::now();
                        Clock::time_point earliest = Clock::time_point::max();
                        for (size_t qi = 0; qi < d.queue.size(); ++qi) {
                            const size_t candidate = d.queue[qi];
                            if (d.ready[candidate] <= now) {
                                shard_index = candidate;
                                d.queue.erase(d.queue.begin() +
                                              static_cast<std::ptrdiff_t>(qi));
                                ++d.in_flight;
                                claimed = true;
                                break;
                            }
                            earliest = std::min(earliest, d.ready[candidate]);
                        }
                        if (!claimed) {
                            obs::ScopedSpan backoff_span(rec, eval.trace,
                                                         "shard_retry_backoff");
                            d.cv.wait_until(lock, earliest);
                        }
                    }
                    if (!claimed) break;
                }
                bool dispatched = false;
                WorkerLink::Read outcome = WorkerLink::Read::kFailed;
                const Clock::time_point s0 = Clock::now();
                if (link.fd < 0) link.fd = connect_worker(addresses[wi], opts.connect_timeout_ms);
                if (link.fd >= 0) {
                    dispatched = true;
                    obs::ScopedSpan dispatch_span(rec, eval.trace, "shard_dispatch");
                    outcome = run_shard(link, shard_index, dispatch_span.context());
                }
                const double busy =
                    std::chrono::duration<double>(Clock::now() - s0).count();
                {
                    std::lock_guard<std::mutex> lock(d.m);
                    --d.in_flight;
                    if (dispatched) ++wc.dispatched;
                    wc.busy_seconds += busy;
                    wc.bytes = link.received;
                    if (outcome == WorkerLink::Read::kLine) {
                        ++wc.completed;
                    } else if (outcome == WorkerLink::Read::kAborted) {
                        // Cancel/deadline mid-shard: hand the shard back
                        // uncharged so the supervise loop still sees it
                        // outstanding and reports the right abort cause.
                        d.queue.push_back(shard_index);
                        dead = true;
                    } else {
                        // This worker is out for the rest of the sweep. The
                        // shard goes back to the surviving peers unless it
                        // has exhausted its remote attempt budget.
                        if (dispatched) ++wc.retried;
                        const int failures = ++d.failures[shard_index];
                        if (retry.exhausted(failures)) {
                            d.local.push_back(shard_index);
                        } else {
                            RetryPolicy per_shard = retry;
                            per_shard.seed += shard_index;  // desync shards
                            d.ready[shard_index] =
                                Clock::now() +
                                std::chrono::milliseconds(per_shard.delay_ms(failures));
                            d.queue.push_back(shard_index);
                        }
                        dead = true;
                    }
                }
                if (dead) link.close_link();
                d.cv.notify_all();
            }
            std::lock_guard<std::mutex> lock(d.m);
            {
                serve::ClusterWorkerCounters& w = run_counters.workers[wi];
                w.bytes = link.received;
            }
            if (--d.live == 0 && !d.abort) {
                // Last worker gone: everything still queued runs locally.
                while (!d.queue.empty()) {
                    d.local.push_back(d.queue.front());
                    d.queue.pop_front();
                }
            }
            d.cv.notify_all();
        });
    }

    // Supervise: watch for cancel/deadline while the fleet drains the queue.
    {
        std::unique_lock<std::mutex> lock(d.m);
        for (;;) {
            if (d.abort) break;
            if (d.queue.empty() && d.in_flight == 0) break;
            if (eval.cancel != nullptr && eval.cancel->load(std::memory_order_relaxed)) {
                d.abort = true;
                d.cancel_hit = true;
                break;
            }
            if (has_deadline && Clock::now() >= eval.deadline) {
                d.abort = true;
                d.deadline_hit = true;
                break;
            }
            d.cv.wait_for(lock, std::chrono::milliseconds(50));
        }
        d.cv.notify_all();
    }
    for (std::thread& t : threads) t.join();

    const auto publish_counters = [&] {
        run_counters.local_shards = d.local.size();
        if (counters != nullptr) *counters = run_counters;
    };
    if (d.cancel_hit) {
        publish_counters();
        throw SweepCancelled();
    }
    if (d.deadline_hit) {
        publish_counters();
        throw SweepDeadlineExceeded();
    }

    // Local fallback, ascending so the merger keeps streaming a contiguous
    // prefix. Runs through the same evaluate_sweep as any worker — same
    // bytes no matter who computes a point — on the caller's pool and the
    // resident cache tier, honoring cancel/deadline like the dispatch did.
    std::sort(d.local.begin(), d.local.end());
    std::optional<ThreadPool> fallback_pool;
    ThreadPool* pool = eval.pool;
    if (pool == nullptr && (!d.local.empty() || want_cache_stats)) {
        fallback_pool.emplace(eval.threads);
        pool = &*fallback_pool;
    }
    for (const size_t shard_index : d.local) {
        EvalOptions local = eval;
        local.pool = pool;
        local.shard_lo = plan[shard_index].lo;
        local.shard_hi = plan[shard_index].hi;
        local.on_point = [&merger](size_t index, const DesignPoint& point) {
            merger.add(index, point);
        };
        try {
            (void)evaluate_sweep(spec, local, nullptr);
        } catch (...) {
            publish_counters();
            throw;
        }
    }
    publish_counters();

    // The merger did its interleaving work while shards streamed; this span
    // covers the final completeness check and hand-off.
    obs::ScopedSpan merge_span(rec, eval.trace, "merge");
    if (!merger.complete()) {
        // Unreachable by construction (every shard completes remotely or
        // locally); a violation must fail loudly, not export short.
        throw std::runtime_error("cluster: merged sweep is missing points");
    }
    merge_span.stop();

    if (stats != nullptr) {
        *stats = SweepStats{};
        stats->points = hi - lo;
        stats->hw_cache_enabled = eval.use_hw_cache;
        // Engine tallies are a pure replay of select_error_engine over the
        // shard range with the wire-level options, so the coordinator's
        // summary matches what a single node evaluating the same range
        // would report — byte-identical exports either way.
        stats->engines = tally_error_engines(
            std::vector<MultiplierConfig>(configs.begin() + static_cast<ptrdiff_t>(lo),
                                          configs.begin() + static_cast<ptrdiff_t>(hi)),
            eval);
        stats->cutoff_desc = describe_exhaustive_cutoffs(eval);
        if (want_cache_stats) {
            // Deterministic cache counters, fleet edition: replay the
            // shard range's content keys in enumeration order against the
            // pre-sweep fleet-warm set — exactly what a single-node run
            // with a cache holding `warm` would have counted.
            std::vector<uint64_t> keys(hi - lo, 0);
            parallel_for(*pool, hi - lo, [&](size_t i) {
                const Netlist net = ApproxMultiplier(configs[lo + i]).build_netlist().net;
                keys[i] = CostCache::content_key(net, eval.library, eval.synthesis);
            });
            std::unordered_set<uint64_t> seen;
            for (const uint64_t key : keys) {
                if (warm.count(key) != 0 || !seen.insert(key).second) {
                    ++stats->hw_cache_hits;
                } else {
                    ++stats->hw_cache_misses;
                }
            }
            if (warm_keys != nullptr) {
                for (const uint64_t key : keys) warm_keys->insert(key);
            }
        }
        if (cache != nullptr) {
            const RemoteCacheCounters after = cache->remote_counters();
            stats->remote.enabled = after.enabled;
            stats->remote.hits = after.hits - remote_before.hits;
            stats->remote.misses = after.misses - remote_before.misses;
            stats->remote.errors = after.errors - remote_before.errors;
            stats->remote.timeouts = after.timeouts - remote_before.timeouts;
            stats->remote.puts = after.puts - remote_before.puts;
        }
        stats->wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    }
    return merger.take();
}

CoordinatorService::CoordinatorService(const serve::ServiceOptions& opts, ClusterOptions cluster)
    : SweepService(opts), cluster_(std::move(cluster)) {
    if (cluster_.workers.empty()) {
        throw std::invalid_argument("cluster: at least one worker is required");
    }
    if (cluster_.shards == 0) throw std::invalid_argument("cluster: shard count must be >= 1");
    for (const std::string& spec : cluster_.workers) {
        CachePeerAddress addr;
        std::string err;
        if (!parse_cache_peer(spec, addr, &err)) {
            throw std::invalid_argument("cluster: bad worker spec \"" + spec + "\": " + err);
        }
    }
    totals_.enabled = true;
    totals_.shards = cluster_.shards;
    totals_.workers.resize(cluster_.workers.size());
    for (size_t i = 0; i < cluster_.workers.size(); ++i) {
        totals_.workers[i].spec = cluster_.workers[i];
    }
}

CoordinatorService::~CoordinatorService() { shutdown(); }

serve::ServiceStats CoordinatorService::stats() const {
    serve::ServiceStats out = SweepService::stats();
    std::lock_guard<std::mutex> lock(cluster_mutex_);
    out.cluster = totals_;
    return out;
}

std::vector<DesignPoint> CoordinatorService::evaluate(const serve::SweepRequest& request,
                                                      EvalOptions& eval, SweepStats& stats) {
    serve::ClusterCounters delta;
    std::unordered_set<uint64_t> warm;
    {
        std::lock_guard<std::mutex> lock(cluster_mutex_);
        warm = fleet_keys_;
    }
    const auto merge = [&] {
        std::lock_guard<std::mutex> lock(cluster_mutex_);
        totals_.add(delta);
        fleet_keys_.insert(warm.begin(), warm.end());
    };
    try {
        std::vector<DesignPoint> points =
            distributed_sweep(request.spec, eval, cluster_, &stats, &delta, &warm);
        merge();
        return points;
    } catch (...) {
        merge();  // dispatch/retry counts of a failed sweep stay visible
        throw;
    }
}

}  // namespace sdlc::cluster
