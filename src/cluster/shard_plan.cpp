#include "cluster/shard_plan.h"

#include <stdexcept>

namespace sdlc::cluster {

std::vector<IndexRange> plan_shards(size_t lo, size_t hi, size_t shard_count) {
    if (lo > hi) throw std::invalid_argument("plan_shards: lo > hi");
    if (shard_count == 0) throw std::invalid_argument("plan_shards: shard_count == 0");
    const size_t total = hi - lo;
    const size_t shards = total < shard_count ? total : shard_count;
    std::vector<IndexRange> plan;
    plan.reserve(shards);
    // First (total % shards) ranges get one extra index: sizes differ by at
    // most one and the concatenation covers [lo, hi) exactly.
    const size_t base = shards == 0 ? 0 : total / shards;
    const size_t extra = shards == 0 ? 0 : total % shards;
    size_t cursor = lo;
    for (size_t i = 0; i < shards; ++i) {
        const size_t size = base + (i < extra ? 1 : 0);
        plan.push_back(IndexRange{cursor, cursor + size});
        cursor += size;
    }
    return plan;
}

}  // namespace sdlc::cluster
