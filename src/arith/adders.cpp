#include "arith/adders.h"

#include <algorithm>
#include <stdexcept>

namespace sdlc {

SumCarry half_adder(Netlist& nl, NetId a, NetId b) {
    return {nl.xor_gate(a, b), nl.and_gate(a, b)};
}

SumCarry full_adder(Netlist& nl, NetId a, NetId b, NetId cin) {
    const NetId axb = nl.xor_gate(a, b);
    const NetId sum = nl.xor_gate(axb, cin);
    const NetId c1 = nl.and_gate(a, b);
    const NetId c2 = nl.and_gate(axb, cin);
    const NetId carry = nl.or_gate(c1, c2);
    return {sum, carry};
}

std::vector<NetId> ripple_add(Netlist& nl, const std::vector<NetId>& a,
                              const std::vector<NetId>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("ripple_add: width mismatch");
    std::vector<NetId> out;
    out.reserve(a.size() + 1);
    NetId carry = kNoNet;
    for (size_t i = 0; i < a.size(); ++i) {
        if (carry == kNoNet) {
            const SumCarry hc = half_adder(nl, a[i], b[i]);
            out.push_back(hc.sum);
            carry = hc.carry;
        } else {
            const SumCarry fc = full_adder(nl, a[i], b[i], carry);
            out.push_back(fc.sum);
            carry = fc.carry;
        }
    }
    out.push_back(carry == kNoNet ? nl.constant(false) : carry);
    return out;
}

std::vector<NetId> sparse_row_add(Netlist& nl, const std::vector<NetId>& a,
                                  const std::vector<NetId>& b) {
    const size_t width = std::max(a.size(), b.size());
    std::vector<NetId> out(width + 1, kNoNet);
    NetId carry = kNoNet;
    for (size_t i = 0; i < width; ++i) {
        const NetId av = i < a.size() ? a[i] : kNoNet;
        const NetId bv = i < b.size() ? b[i] : kNoNet;
        NetId bits[3];
        int n = 0;
        if (av != kNoNet) bits[n++] = av;
        if (bv != kNoNet) bits[n++] = bv;
        if (carry != kNoNet) bits[n++] = carry;
        switch (n) {
            case 0:
                carry = kNoNet;
                break;
            case 1:
                out[i] = bits[0];
                carry = kNoNet;
                break;
            case 2: {
                const SumCarry hc = half_adder(nl, bits[0], bits[1]);
                out[i] = hc.sum;
                carry = hc.carry;
                break;
            }
            default: {
                const SumCarry fc = full_adder(nl, bits[0], bits[1], bits[2]);
                out[i] = fc.sum;
                carry = fc.carry;
                break;
            }
        }
    }
    out[width] = carry;
    if (out.back() == kNoNet) out.pop_back();
    return out;
}

std::vector<NetId> kogge_stone_add(Netlist& nl, const std::vector<NetId>& a,
                                   const std::vector<NetId>& b) {
    if (a.size() != b.size()) throw std::invalid_argument("kogge_stone_add: width mismatch");
    const size_t n = a.size();
    if (n == 0) return {nl.constant(false)};

    // Generate/propagate seeds.
    std::vector<NetId> g(n), p(n);
    for (size_t i = 0; i < n; ++i) {
        g[i] = nl.and_gate(a[i], b[i]);
        p[i] = nl.xor_gate(a[i], b[i]);
    }
    // Prefix network: (g,p) o (g',p') = (g | p&g', p&p').
    std::vector<NetId> gg = g, pp = p;
    for (size_t dist = 1; dist < n; dist *= 2) {
        std::vector<NetId> ng = gg, np = pp;
        for (size_t i = dist; i < n; ++i) {
            ng[i] = nl.or_gate(gg[i], nl.and_gate(pp[i], gg[i - dist]));
            np[i] = nl.and_gate(pp[i], pp[i - dist]);
        }
        gg = std::move(ng);
        pp = std::move(np);
    }
    // carry into bit i is gg[i-1]; sum_i = p_i XOR carry_in_i.
    std::vector<NetId> out(n + 1, kNoNet);
    out[0] = p[0];
    for (size_t i = 1; i < n; ++i) out[i] = nl.xor_gate(p[i], gg[i - 1]);
    out[n] = gg[n - 1];
    return out;
}

std::vector<NetId> sparse_fast_add(Netlist& nl, const std::vector<NetId>& a,
                                   const std::vector<NetId>& b) {
    const size_t width = std::max(a.size(), b.size());
    std::vector<NetId> da(width), db(width);
    const NetId zero = nl.constant(false);
    for (size_t i = 0; i < width; ++i) {
        da[i] = i < a.size() && a[i] != kNoNet ? a[i] : zero;
        db[i] = i < b.size() && b[i] != kNoNet ? b[i] : zero;
    }
    return kogge_stone_add(nl, da, db);
}

}  // namespace sdlc
