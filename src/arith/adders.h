// Adder cells and vector adders built from primitive gates.
//
// The paper accumulates partial-product rows with "accurate ripple adders";
// these generators are shared by the accurate reference multipliers, the
// SDLC multiplier and the baselines so area/delay comparisons are apples to
// apples.
#ifndef SDLC_ARITH_ADDERS_H
#define SDLC_ARITH_ADDERS_H

#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// {sum, carry} pair produced by adder cells.
struct SumCarry {
    NetId sum = kNoNet;
    NetId carry = kNoNet;
};

/// Half adder: sum = a XOR b, carry = a AND b (2 cells).
[[nodiscard]] SumCarry half_adder(Netlist& nl, NetId a, NetId b);

/// Full adder: standard 2-XOR/2-AND/1-OR decomposition (5 cells).
[[nodiscard]] SumCarry full_adder(Netlist& nl, NetId a, NetId b, NetId cin);

/// Ripple-carry addition of two equal-length little-endian bit vectors.
/// Returns width+1 bits (the top bit is the carry out).
[[nodiscard]] std::vector<NetId> ripple_add(Netlist& nl, const std::vector<NetId>& a,
                                            const std::vector<NetId>& b);

/// Sparse row addition: `a` and `b` are little-endian rows over the same
/// weight range where kNoNet marks an absent (zero) bit. Adders are only
/// instantiated where bits are actually present, which reproduces the
/// hardware cost of an array multiplier row-accumulation stage without
/// relying on downstream constant propagation. The result may be one bit
/// longer than the inputs.
[[nodiscard]] std::vector<NetId> sparse_row_add(Netlist& nl, const std::vector<NetId>& a,
                                                const std::vector<NetId>& b);

/// Kogge-Stone parallel-prefix adder: O(log N) depth instead of the ripple
/// adder's O(N). Used by the kRowFastCpa accumulation variant, which models
/// what a synthesis tool does to ripple RTL under a timing constraint.
/// Returns width+1 bits.
[[nodiscard]] std::vector<NetId> kogge_stone_add(Netlist& nl, const std::vector<NetId>& a,
                                                 const std::vector<NetId>& b);

/// Sparse wrapper over kogge_stone_add: kNoNet holes are tied to constant 0
/// before the prefix network (the structural optimizer folds them away).
[[nodiscard]] std::vector<NetId> sparse_fast_add(Netlist& nl, const std::vector<NetId>& a,
                                                 const std::vector<NetId>& b);

}  // namespace sdlc

#endif  // SDLC_ARITH_ADDERS_H
