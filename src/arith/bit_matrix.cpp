#include "arith/bit_matrix.h"

#include <algorithm>
#include <stdexcept>

namespace sdlc {

BitMatrix::BitMatrix(int columns) {
    if (columns <= 0) throw std::invalid_argument("BitMatrix: columns must be positive");
    cols_.resize(static_cast<size_t>(columns));
}

void BitMatrix::add(int col, NetId net) {
    cols_.at(col).push_back(net);
}

int BitMatrix::max_height() const noexcept {
    size_t h = 0;
    for (const auto& c : cols_) h = std::max(h, c.size());
    return static_cast<int>(h);
}

size_t BitMatrix::bit_count() const noexcept {
    size_t n = 0;
    for (const auto& c : cols_) n += c.size();
    return n;
}

std::vector<std::vector<NetId>> BitMatrix::to_rows() const {
    const int rows = max_height();
    std::vector<std::vector<NetId>> out(static_cast<size_t>(rows));
    for (auto& row : out) row.assign(cols_.size(), kNoNet);
    for (size_t c = 0; c < cols_.size(); ++c) {
        for (size_t r = 0; r < cols_[c].size(); ++r) out[r][c] = cols_[c][r];
    }
    return out;
}

}  // namespace sdlc
