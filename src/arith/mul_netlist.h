// Common wrapper for generated multiplier netlists plus simulation helpers.
//
// Every generator in the library (accurate, SDLC, Kulkarni, ETM, truncated)
// returns a MultiplierNetlist: an N x N combinational multiplier with
// little-endian operand ports a[0..N-1], b[0..N-1] and product p[0..2N-1].
#ifndef SDLC_ARITH_MUL_NETLIST_H
#define SDLC_ARITH_MUL_NETLIST_H

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"
#include "util/u256.h"

namespace sdlc {

/// A generated N x N multiplier.
struct MultiplierNetlist {
    Netlist net;
    std::vector<NetId> a_bits;  ///< operand A inputs, LSB first
    std::vector<NetId> b_bits;  ///< operand B inputs, LSB first
    std::vector<NetId> p_bits;  ///< product outputs, LSB first (2N bits)
    int width = 0;              ///< N
    std::string label;          ///< human-readable description
};

/// Creates the operand input ports for an N x N multiplier.
/// Returns {a_bits, b_bits} and registers names "a<i>", "b<i>".
struct OperandPorts {
    std::vector<NetId> a;
    std::vector<NetId> b;
};
[[nodiscard]] OperandPorts make_operand_ports(Netlist& nl, int width);

/// Registers product bits as outputs named "p<i>" and fills the struct.
void finish_multiplier(MultiplierNetlist& m, std::vector<NetId> product_bits);

/// Simulates 64 multiplications per call. `as`/`bs` are up to 64 operand
/// values; returns one product per lane as U256 (valid for any width<=128).
[[nodiscard]] std::vector<U256> simulate_batch_wide(const MultiplierNetlist& m,
                                                    std::span<const uint64_t> a_lo,
                                                    std::span<const uint64_t> a_hi,
                                                    std::span<const uint64_t> b_lo,
                                                    std::span<const uint64_t> b_hi);

/// Convenience for width <= 32: simulates one batch of up to 64 lane pairs
/// and returns 64-bit products.
[[nodiscard]] std::vector<uint64_t> simulate_batch(const MultiplierNetlist& m,
                                                   std::span<const uint64_t> as,
                                                   std::span<const uint64_t> bs);

/// Simulates a single multiplication (width <= 32).
[[nodiscard]] uint64_t simulate_one(const MultiplierNetlist& m, uint64_t a, uint64_t b);

/// Simulates a single wide multiplication (width <= 128).
[[nodiscard]] U256 simulate_one_wide(const MultiplierNetlist& m, uint64_t a_lo, uint64_t a_hi,
                                     uint64_t b_lo, uint64_t b_hi);

}  // namespace sdlc

#endif  // SDLC_ARITH_MUL_NETLIST_H
