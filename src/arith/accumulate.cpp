#include "arith/accumulate.h"

#include <algorithm>
#include <stdexcept>

#include "arith/adders.h"

namespace sdlc {

namespace {

/// Row-by-row carry-propagate accumulation (paper default), with a choice
/// of per-stage adder.
std::vector<NetId> accumulate_rows(Netlist& nl, const BitMatrix& matrix, bool fast_cpa) {
    const std::vector<std::vector<NetId>> rows = matrix.to_rows();
    if (rows.empty()) return {};
    std::vector<NetId> acc = rows[0];
    for (size_t r = 1; r < rows.size(); ++r) {
        acc = fast_cpa ? sparse_fast_add(nl, acc, rows[r]) : sparse_row_add(nl, acc, rows[r]);
    }
    return acc;
}

/// One Wallace stage: every column group of 3 goes through a full adder,
/// a remaining pair through a half adder, a single bit passes through.
BitMatrix wallace_stage(Netlist& nl, const BitMatrix& in) {
    BitMatrix out(in.columns() + 1);
    for (int c = 0; c < in.columns(); ++c) {
        const std::vector<NetId>& col = in.column(c);
        size_t i = 0;
        for (; i + 3 <= col.size(); i += 3) {
            const SumCarry fc = full_adder(nl, col[i], col[i + 1], col[i + 2]);
            out.add(c, fc.sum);
            out.add(c + 1, fc.carry);
        }
        if (col.size() - i == 2) {
            const SumCarry hc = half_adder(nl, col[i], col[i + 1]);
            out.add(c, hc.sum);
            out.add(c + 1, hc.carry);
        } else if (col.size() - i == 1) {
            out.add(c, col[i]);
        }
    }
    return out;
}

/// Dadda height sequence: 2, 3, 4, 6, 9, 13, 19, ...
int dadda_target_below(int h) {
    int d = 2;
    while (true) {
        const int next = (3 * d) / 2;
        if (next >= h) return d;
        d = next;
    }
}

/// One Dadda stage reducing all columns to height <= target.
BitMatrix dadda_stage(Netlist& nl, const BitMatrix& in, int target) {
    BitMatrix out(in.columns() + 1);
    // carries[c] = nets carried into column c by adders placed in column c-1.
    std::vector<std::vector<NetId>> carries(static_cast<size_t>(in.columns()) + 1);
    for (int c = 0; c < in.columns(); ++c) {
        std::vector<NetId> col = in.column(c);
        col.insert(col.end(), carries[c].begin(), carries[c].end());
        // Reduce lazily: only place adders while the column is too tall.
        size_t i = 0;
        while (col.size() - i > static_cast<size_t>(target)) {
            const size_t excess = col.size() - i - static_cast<size_t>(target);
            if (excess >= 2 && col.size() - i >= 3) {
                const SumCarry fc = full_adder(nl, col[i], col[i + 1], col[i + 2]);
                i += 3;
                col.push_back(fc.sum);
                carries[c + 1].push_back(fc.carry);
            } else {
                const SumCarry hc = half_adder(nl, col[i], col[i + 1]);
                i += 2;
                col.push_back(hc.sum);
                carries[c + 1].push_back(hc.carry);
            }
        }
        for (; i < col.size(); ++i) out.add(c, col[i]);
    }
    for (const NetId n : carries[static_cast<size_t>(in.columns())]) {
        out.add(in.columns(), n);
    }
    return out;
}

/// Final carry-propagate add of a height-<=2 matrix.
std::vector<NetId> final_cpa(Netlist& nl, const BitMatrix& matrix) {
    std::vector<NetId> row_a(static_cast<size_t>(matrix.columns()), kNoNet);
    std::vector<NetId> row_b(static_cast<size_t>(matrix.columns()), kNoNet);
    for (int c = 0; c < matrix.columns(); ++c) {
        const auto& col = matrix.column(c);
        if (col.size() > 2) throw std::logic_error("final_cpa: matrix not reduced");
        if (!col.empty()) row_a[c] = col[0];
        if (col.size() == 2) row_b[c] = col[1];
    }
    return sparse_row_add(nl, row_a, row_b);
}

}  // namespace

const char* accumulation_scheme_name(AccumulationScheme s) noexcept {
    switch (s) {
        case AccumulationScheme::kRowRipple: return "row-ripple";
        case AccumulationScheme::kWallace: return "wallace";
        case AccumulationScheme::kDadda: return "dadda";
        case AccumulationScheme::kRowFastCpa: return "row-fastcpa";
    }
    return "?";
}

bool parse_accumulation_scheme(const std::string& name, AccumulationScheme& out) noexcept {
    if (name == "row-ripple" || name == "ripple") out = AccumulationScheme::kRowRipple;
    else if (name == "wallace") out = AccumulationScheme::kWallace;
    else if (name == "dadda") out = AccumulationScheme::kDadda;
    else if (name == "row-fastcpa" || name == "fastcpa") out = AccumulationScheme::kRowFastCpa;
    else return false;
    return true;
}

std::vector<NetId> accumulate(Netlist& nl, const BitMatrix& matrix,
                              AccumulationScheme scheme, int out_bits) {
    std::vector<NetId> bits;
    switch (scheme) {
        case AccumulationScheme::kRowRipple:
            bits = accumulate_rows(nl, matrix, /*fast_cpa=*/false);
            break;
        case AccumulationScheme::kRowFastCpa:
            bits = accumulate_rows(nl, matrix, /*fast_cpa=*/true);
            break;
        case AccumulationScheme::kWallace: {
            BitMatrix m = matrix;
            while (m.max_height() > 2) m = wallace_stage(nl, m);
            bits = final_cpa(nl, m);
            break;
        }
        case AccumulationScheme::kDadda: {
            BitMatrix m = matrix;
            while (m.max_height() > 2) {
                m = dadda_stage(nl, m, dadda_target_below(m.max_height()));
            }
            bits = final_cpa(nl, m);
            break;
        }
    }
    bits.resize(static_cast<size_t>(out_bits), kNoNet);
    for (auto& b : bits) {
        if (b == kNoNet) b = nl.constant(false);
    }
    return bits;
}

}  // namespace sdlc
