#include "arith/mul_netlist.h"

#include <stdexcept>

#include "netlist/sim.h"

namespace sdlc {

OperandPorts make_operand_ports(Netlist& nl, int width) {
    if (width <= 0 || width > 128) {
        throw std::invalid_argument("make_operand_ports: width must be in [1,128]");
    }
    OperandPorts p;
    p.a.reserve(static_cast<size_t>(width));
    p.b.reserve(static_cast<size_t>(width));
    for (int i = 0; i < width; ++i) p.a.push_back(nl.input("a" + std::to_string(i)));
    for (int i = 0; i < width; ++i) p.b.push_back(nl.input("b" + std::to_string(i)));
    return p;
}

void finish_multiplier(MultiplierNetlist& m, std::vector<NetId> product_bits) {
    m.p_bits = std::move(product_bits);
    for (size_t i = 0; i < m.p_bits.size(); ++i) {
        m.net.mark_output(m.p_bits[i], "p" + std::to_string(i));
    }
}

namespace {

/// Packs lane-major operand values into per-input-bit words.
/// words[i] bit l = bit i of value in lane l.
void pack_operand(std::span<const uint64_t> lo, std::span<const uint64_t> hi, int width,
                  std::vector<uint64_t>& words, size_t offset) {
    for (int bitpos = 0; bitpos < width; ++bitpos) {
        uint64_t w = 0;
        for (size_t lane = 0; lane < lo.size(); ++lane) {
            const uint64_t v =
                bitpos < 64 ? (lo[lane] >> bitpos) : (hi.empty() ? 0 : hi[lane] >> (bitpos - 64));
            w |= (v & 1u) << lane;
        }
        words[offset + static_cast<size_t>(bitpos)] = w;
    }
}

}  // namespace

std::vector<U256> simulate_batch_wide(const MultiplierNetlist& m,
                                      std::span<const uint64_t> a_lo,
                                      std::span<const uint64_t> a_hi,
                                      std::span<const uint64_t> b_lo,
                                      std::span<const uint64_t> b_hi) {
    const size_t lanes = a_lo.size();
    if (lanes == 0 || lanes > 64 || b_lo.size() != lanes) {
        throw std::invalid_argument("simulate_batch_wide: bad lane count");
    }
    std::vector<uint64_t> words(m.net.inputs().size(), 0);
    pack_operand(a_lo, a_hi, m.width, words, 0);
    pack_operand(b_lo, b_hi, m.width, words, static_cast<size_t>(m.width));

    Simulator sim(m.net);
    sim.run(words);

    std::vector<U256> out(lanes);
    for (size_t bitpos = 0; bitpos < m.p_bits.size(); ++bitpos) {
        const uint64_t w = sim.value(m.p_bits[bitpos]);
        for (size_t lane = 0; lane < lanes; ++lane) {
            if ((w >> lane) & 1u) out[lane].set_bit(static_cast<unsigned>(bitpos));
        }
    }
    return out;
}

std::vector<uint64_t> simulate_batch(const MultiplierNetlist& m,
                                     std::span<const uint64_t> as,
                                     std::span<const uint64_t> bs) {
    if (m.width > 32) throw std::invalid_argument("simulate_batch: width > 32, use wide API");
    const std::vector<U256> wide = simulate_batch_wide(m, as, {}, bs, {});
    std::vector<uint64_t> out(wide.size());
    for (size_t i = 0; i < wide.size(); ++i) out[i] = wide[i].w[0];
    return out;
}

uint64_t simulate_one(const MultiplierNetlist& m, uint64_t a, uint64_t b) {
    const uint64_t as[1] = {a};
    const uint64_t bs[1] = {b};
    return simulate_batch(m, as, bs)[0];
}

U256 simulate_one_wide(const MultiplierNetlist& m, uint64_t a_lo, uint64_t a_hi,
                       uint64_t b_lo, uint64_t b_hi) {
    const uint64_t alo[1] = {a_lo}, ahi[1] = {a_hi}, blo[1] = {b_lo}, bhi[1] = {b_hi};
    return simulate_batch_wide(m, alo, ahi, blo, bhi)[0];
}

}  // namespace sdlc
