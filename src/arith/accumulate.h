// Partial-product accumulation schemes.
//
// Converts a BitMatrix into final product bits using one of:
//  * kRowRipple — the paper's setup: rows are accumulated one after another
//    with accurate ripple adders (carry-propagate array).
//  * kWallace  — 3:2 column compression as fast as possible, then a final CPA.
//  * kDadda    — Dadda's staged reduction to heights 2,3,4,6,9,13,..., then CPA.
#ifndef SDLC_ARITH_ACCUMULATE_H
#define SDLC_ARITH_ACCUMULATE_H

#include <string>
#include <vector>

#include "arith/bit_matrix.h"
#include "netlist/netlist.h"

namespace sdlc {

/// Accumulation-tree construction scheme.
enum class AccumulationScheme {
    kRowRipple,
    kWallace,
    kDadda,
    /// Row-by-row accumulation like kRowRipple but with Kogge-Stone
    /// parallel-prefix adders per stage: models a synthesis tool replacing
    /// ripple carry chains under a timing constraint (ablation A5).
    kRowFastCpa,
};

/// Short lowercase name ("row-ripple", "wallace", "dadda").
[[nodiscard]] const char* accumulation_scheme_name(AccumulationScheme s) noexcept;

/// Parses a scheme name into `out`; accepts both canonical names
/// ("row-ripple", "row-fastcpa") and the CLI aliases ("ripple", "fastcpa").
/// Returns false (leaving `out` untouched) for unknown names.
[[nodiscard]] bool parse_accumulation_scheme(const std::string& name,
                                             AccumulationScheme& out) noexcept;

/// Reduces `matrix` to `out_bits` little-endian product bits (kNoNet-free;
/// absent positions are tied to constant 0). `out_bits` is usually 2N.
[[nodiscard]] std::vector<NetId> accumulate(Netlist& nl, const BitMatrix& matrix,
                                            AccumulationScheme scheme, int out_bits);

}  // namespace sdlc

#endif  // SDLC_ARITH_ACCUMULATE_H
