// Partial-product bit matrix ("dot diagram").
//
// Column c holds the nets whose arithmetic weight is 2^c. This is the
// central data structure between partial-product generation, SDLC logic
// compression, commutative remapping and accumulation: the paper's Figure 3
// dot diagrams are literally instances of this class.
#ifndef SDLC_ARITH_BIT_MATRIX_H
#define SDLC_ARITH_BIT_MATRIX_H

#include <vector>

#include "netlist/netlist.h"

namespace sdlc {

/// A weighted multiset of nets: sum(matrix) = sum over columns c of
/// (sum of bits in column c) * 2^c.
class BitMatrix {
public:
    /// Creates a matrix with `columns` weight positions (2N for an N x N multiplier).
    explicit BitMatrix(int columns);

    /// Adds one bit of weight 2^col.
    void add(int col, NetId net);

    [[nodiscard]] int columns() const noexcept { return static_cast<int>(cols_.size()); }
    [[nodiscard]] int height(int col) const { return static_cast<int>(cols_.at(col).size()); }
    [[nodiscard]] int max_height() const noexcept;

    [[nodiscard]] const std::vector<NetId>& column(int col) const { return cols_.at(col); }
    [[nodiscard]] std::vector<NetId>& column(int col) { return cols_.at(col); }

    /// Total number of bits in the matrix.
    [[nodiscard]] size_t bit_count() const noexcept;

    /// Commutative remapping (paper Section II-2): packs the columns into
    /// max_height() rows. Row r contains, at position c, the r-th bit of
    /// column c (kNoNet where the column is shorter). Because bits of equal
    /// weight are interchangeable, this re-packing is exact.
    [[nodiscard]] std::vector<std::vector<NetId>> to_rows() const;

private:
    std::vector<std::vector<NetId>> cols_;
};

}  // namespace sdlc

#endif  // SDLC_ARITH_BIT_MATRIX_H
