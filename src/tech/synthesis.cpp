#include "tech/synthesis.h"

#include <sstream>

#include "tech/sta.h"
#include "util/hash.h"

namespace sdlc {

bool operator==(const SynthesisReport& a, const SynthesisReport& b) noexcept {
    return a.cells == b.cells && a.area_um2 == b.area_um2 && a.delay_ps == b.delay_ps &&
           a.depth == b.depth && a.dynamic_energy_fj == b.dynamic_energy_fj &&
           a.dynamic_power_uw == b.dynamic_power_uw && a.leakage_nw == b.leakage_nw &&
           a.energy_fj == b.energy_fj;
}

uint64_t synthesis_fingerprint(const CellLibrary& lib, const SynthesisOptions& opts) noexcept {
    uint64_t h = kFnvOffsetBasis;
    hash_mix_string(h, lib.name());
    for (size_t k = 0; k < kGateKindCount; ++k) {
        const CellParams& p = lib.cell(static_cast<GateKind>(k));
        hash_mix_double(h, p.area_um2);
        hash_mix_double(h, p.leakage_nw);
        hash_mix_double(h, p.intrinsic_delay_ps);
        hash_mix_double(h, p.load_delay_ps);
        hash_mix_double(h, p.energy_fj);
        hash_mix_double(h, p.load_energy_fj);
    }
    hash_mix(h, opts.optimize ? 1u : 0u);
    hash_mix(h, opts.power.seed);
    hash_mix(h, static_cast<uint64_t>(opts.power.passes));
    hash_mix_double(h, opts.clock_mhz);
    return h;
}

SynthesisReport synthesize(const Netlist& net, const CellLibrary& lib,
                           const SynthesisOptions& opts) {
    Netlist optimized;
    const Netlist* target = &net;
    if (opts.optimize) {
        optimized = optimize(net).netlist;
        target = &optimized;
    }

    SynthesisReport rep;
    rep.cells = target->logic_gate_count();
    for (NetId id = 0; id < target->net_count(); ++id) {
        const Gate& g = target->gate(id);
        if (gate_arity(g.kind) > 0) rep.area_um2 += lib.cell(g.kind).area_um2;
    }

    const TimingReport timing = analyze_timing(*target, lib);
    rep.delay_ps = timing.critical_path_ps;
    rep.depth = logic_depth(*target);

    const PowerReport power = estimate_power(*target, lib, opts.power);
    rep.dynamic_energy_fj = power.dynamic_energy_fj;
    rep.leakage_nw = power.leakage_nw;
    // P_dyn = E_op * f;  1 fJ * 1 MHz = 1e-15 J * 1e6 1/s = 1e-9 W = 1e-3 uW.
    rep.dynamic_power_uw = rep.dynamic_energy_fj * opts.clock_mhz * 1e-3;
    // Energy per operation: switching energy plus leakage integrated over one
    // critical-path delay (1 nW * 1 ps = 1e-9 * 1e-12 J = 1e-21 J = 1e-6 fJ).
    rep.energy_fj = rep.dynamic_energy_fj + rep.leakage_nw * rep.delay_ps * 1e-6;
    return rep;
}

std::string summarize(const SynthesisReport& r) {
    std::ostringstream oss;
    oss << r.cells << " cells, " << r.area_um2 << " um^2, " << r.delay_ps << " ps, "
        << r.dynamic_power_uw << " uW dyn, " << r.leakage_nw << " nW leak, "
        << r.energy_fj << " fJ/op";
    return oss.str();
}

}  // namespace sdlc
