// Switching-activity power estimation.
//
// Dynamic energy is estimated by simulating the netlist on pseudo-random
// input vectors (64 lanes per pass) and charging each net toggle with the
// driving cell's internal energy plus a per-fanout load energy. Leakage is
// the sum of cell leakages. This mirrors what a gate-level power tool does
// with a SAIF/VCD activity file.
#ifndef SDLC_TECH_POWER_H
#define SDLC_TECH_POWER_H

#include <cstdint>

#include "netlist/netlist.h"
#include "tech/cell_library.h"

namespace sdlc {

/// Power estimation knobs.
struct PowerOptions {
    uint64_t seed = 0x5d1c0ffee;  ///< RNG seed for input vectors
    int passes = 64;              ///< 64 vectors per pass
};

/// Power estimation result.
struct PowerReport {
    double dynamic_energy_fj = 0.0;  ///< mean switching energy per input vector
    double leakage_nw = 0.0;         ///< total static leakage
    double mean_toggle_rate = 0.0;   ///< average toggles per net per vector
};

/// Estimates power of `net` under uniform random stimuli.
[[nodiscard]] PowerReport estimate_power(const Netlist& net, const CellLibrary& lib,
                                         const PowerOptions& opts = {});

}  // namespace sdlc

#endif  // SDLC_TECH_POWER_H
