// One-stop "virtual synthesis" driver.
//
// synthesize() = optimize -> STA -> area/leakage roll-up -> activity-based
// power, returning the same headline numbers the paper reads from Design
// Compiler: cell count, area, critical-path delay, dynamic power, leakage
// power and energy per operation.
#ifndef SDLC_TECH_SYNTHESIS_H
#define SDLC_TECH_SYNTHESIS_H

#include <string>

#include "netlist/netlist.h"
#include "netlist/opt.h"
#include "tech/cell_library.h"
#include "tech/power.h"

namespace sdlc {

/// Synthesis knobs.
struct SynthesisOptions {
    bool optimize = true;        ///< run the structural optimizer first
    PowerOptions power;          ///< activity estimation settings
    double clock_mhz = 100.0;    ///< reference frequency for dynamic power
};

/// Headline post-synthesis metrics for one design.
struct SynthesisReport {
    size_t cells = 0;               ///< mapped logic cell count
    double area_um2 = 0.0;          ///< total cell area
    double delay_ps = 0.0;          ///< critical-path delay
    int depth = 0;                  ///< logic depth (levels)
    double dynamic_energy_fj = 0.0; ///< switching energy per operation
    double dynamic_power_uw = 0.0;  ///< at SynthesisOptions::clock_mhz
    double leakage_nw = 0.0;        ///< static power
    double energy_fj = 0.0;         ///< energy/op incl. leakage over one critical delay

    /// Relative reduction of `metric(approx)` vs `metric(exact)` in [0,1].
    static double reduction(double exact, double approx) {
        return exact > 0.0 ? (exact - approx) / exact : 0.0;
    }
};

/// Bit-exact equality of every reported metric. The flow is deterministic,
/// so re-synthesizing the same netlist must reproduce the report exactly;
/// the DSE cache tests and the CLI determinism checks rely on this.
[[nodiscard]] bool operator==(const SynthesisReport& a, const SynthesisReport& b) noexcept;
[[nodiscard]] inline bool operator!=(const SynthesisReport& a, const SynthesisReport& b) noexcept {
    return !(a == b);
}

/// 64-bit fingerprint of everything *besides* the netlist that determines a
/// SynthesisReport: the cell library (name and per-kind parameters) and the
/// option values. Combined with Netlist::structural_hash() it forms the
/// content key of the DSE synthesis cache.
[[nodiscard]] uint64_t synthesis_fingerprint(const CellLibrary& lib,
                                             const SynthesisOptions& opts) noexcept;

/// Synthesizes `net` against `lib` and reports metrics.
[[nodiscard]] SynthesisReport synthesize(const Netlist& net, const CellLibrary& lib,
                                         const SynthesisOptions& opts = {});

/// Renders a short human-readable summary line.
[[nodiscard]] std::string summarize(const SynthesisReport& r);

}  // namespace sdlc

#endif  // SDLC_TECH_SYNTHESIS_H
