// Static timing analysis over the netlist DAG.
//
// Arrival time of a net = max(arrival of fan-ins) + intrinsic delay of the
// driving cell + load-dependent delay (per fanout sink). Primary inputs and
// constants arrive at t=0. The critical path is the max arrival over the
// primary outputs; this models the post-synthesis delay number the paper
// reads from Design Compiler.
#ifndef SDLC_TECH_STA_H
#define SDLC_TECH_STA_H

#include <vector>

#include "netlist/netlist.h"
#include "tech/cell_library.h"

namespace sdlc {

/// Result of timing analysis.
struct TimingReport {
    std::vector<double> arrival_ps;   ///< per-net arrival time
    double critical_path_ps = 0.0;    ///< max arrival over primary outputs
    NetId critical_output = kNoNet;   ///< output net achieving the max
    std::vector<NetId> critical_path; ///< nets from input to critical output
};

/// Runs STA on `net` with cell timing from `lib`.
[[nodiscard]] TimingReport analyze_timing(const Netlist& net, const CellLibrary& lib);

/// Logic depth (levels of gates) of the critical output — a technology-free
/// structural delay proxy used by ablation benches.
[[nodiscard]] int logic_depth(const Netlist& net);

}  // namespace sdlc

#endif  // SDLC_TECH_STA_H
