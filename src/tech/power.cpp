#include "tech/power.h"

#include "netlist/sim.h"
#include "util/rng.h"

namespace sdlc {

PowerReport estimate_power(const Netlist& net, const CellLibrary& lib,
                           const PowerOptions& opts) {
    PowerReport rep;
    const std::vector<uint32_t> fanout = net.fanout_counts();

    for (NetId id = 0; id < net.net_count(); ++id) {
        const Gate& g = net.gate(id);
        if (gate_arity(g.kind) > 0) rep.leakage_nw += lib.cell(g.kind).leakage_nw;
    }

    if (net.inputs().empty() || opts.passes <= 0) return rep;

    Simulator sim(net);
    Xoshiro256 rng(opts.seed);
    std::vector<Simulator::Word> words(net.inputs().size());
    for (int p = 0; p < opts.passes; ++p) {
        for (auto& w : words) w = rng.next();
        sim.run_counting_toggles(words);
    }

    const auto& toggles = sim.toggle_counts();
    const double vectors = static_cast<double>(sim.toggled_lanes());
    double energy = 0.0;
    double toggle_sum = 0.0;
    size_t logic_nets = 0;
    for (NetId id = 0; id < net.net_count(); ++id) {
        const Gate& g = net.gate(id);
        if (gate_arity(g.kind) == 0) continue;
        const CellParams& cell = lib.cell(g.kind);
        const double t = static_cast<double>(toggles[id]);
        energy += t * (cell.energy_fj + cell.load_energy_fj * fanout[id]);
        toggle_sum += t;
        ++logic_nets;
    }
    rep.dynamic_energy_fj = energy / vectors;
    rep.mean_toggle_rate = logic_nets ? toggle_sum / vectors / static_cast<double>(logic_nets) : 0.0;
    return rep;
}

}  // namespace sdlc
