// Standard-cell technology library model.
//
// Substitutes for the Faraday 90 nm library + Synopsys Design Compiler used
// in the paper. Each primitive cell carries area, leakage, a linear delay
// model (intrinsic + per-fanout load) and a switching energy (intrinsic +
// per-fanout load). Absolute values are representative of published 90 nm
// standard-cell data; all experiments report *relative* reductions, which
// depend on gate counts and path structure rather than on the exact values.
#ifndef SDLC_TECH_CELL_LIBRARY_H
#define SDLC_TECH_CELL_LIBRARY_H

#include <array>
#include <string>

#include "netlist/netlist.h"

namespace sdlc {

/// Physical parameters of one cell type.
struct CellParams {
    double area_um2 = 0.0;           ///< placed cell area
    double leakage_nw = 0.0;         ///< static leakage power
    double intrinsic_delay_ps = 0.0; ///< unloaded propagation delay
    double load_delay_ps = 0.0;      ///< additional delay per fanout sink
    double energy_fj = 0.0;          ///< internal energy per output toggle
    double load_energy_fj = 0.0;     ///< additional energy per fanout per toggle
};

/// A complete cell library: parameters for every GateKind.
class CellLibrary {
public:
    /// Library with all-zero cells (useful for tests).
    CellLibrary() = default;

    /// Representative generic 90 nm library (see file comment).
    [[nodiscard]] static CellLibrary generic_90nm();

    /// A scaled variant: all areas/energies/delays multiplied by the given
    /// factors. Models e.g. a different node for sensitivity studies.
    [[nodiscard]] CellLibrary scaled(double area_f, double delay_f, double energy_f) const;

    [[nodiscard]] const CellParams& cell(GateKind k) const noexcept {
        return cells_[static_cast<size_t>(k)];
    }
    void set_cell(GateKind k, const CellParams& p) noexcept {
        cells_[static_cast<size_t>(k)] = p;
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

private:
    std::array<CellParams, kGateKindCount> cells_{};
    std::string name_ = "null";
};

}  // namespace sdlc

#endif  // SDLC_TECH_CELL_LIBRARY_H
