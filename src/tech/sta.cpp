#include "tech/sta.h"

#include <algorithm>

namespace sdlc {

TimingReport analyze_timing(const Netlist& net, const CellLibrary& lib) {
    TimingReport rep;
    const size_t n = net.net_count();
    rep.arrival_ps.assign(n, 0.0);
    const std::vector<uint32_t> fanout = net.fanout_counts();
    // Remember the critical fan-in of each net to reconstruct the path.
    std::vector<NetId> crit_fanin(n, kNoNet);

    for (NetId id = 0; id < n; ++id) {
        const Gate& g = net.gate(id);
        if (gate_arity(g.kind) == 0) continue;  // sources arrive at 0
        double in_arr = rep.arrival_ps[g.in0];
        NetId crit = g.in0;
        if (g.in1 != kNoNet && rep.arrival_ps[g.in1] > in_arr) {
            in_arr = rep.arrival_ps[g.in1];
            crit = g.in1;
        }
        const CellParams& cell = lib.cell(g.kind);
        rep.arrival_ps[id] = in_arr + cell.intrinsic_delay_ps + cell.load_delay_ps * fanout[id];
        crit_fanin[id] = crit;
    }

    for (const OutputPort& p : net.outputs()) {
        if (rep.arrival_ps[p.net] >= rep.critical_path_ps) {
            rep.critical_path_ps = rep.arrival_ps[p.net];
            rep.critical_output = p.net;
        }
    }
    if (rep.critical_output != kNoNet) {
        for (NetId cur = rep.critical_output; cur != kNoNet; cur = crit_fanin[cur]) {
            rep.critical_path.push_back(cur);
        }
        std::reverse(rep.critical_path.begin(), rep.critical_path.end());
    }
    return rep;
}

int logic_depth(const Netlist& net) {
    std::vector<int> depth(net.net_count(), 0);
    int best = 0;
    for (NetId id = 0; id < net.net_count(); ++id) {
        const Gate& g = net.gate(id);
        if (gate_arity(g.kind) == 0) continue;
        int d = depth[g.in0];
        if (g.in1 != kNoNet) d = std::max(d, depth[g.in1]);
        depth[id] = d + 1;
    }
    for (const OutputPort& p : net.outputs()) best = std::max(best, depth[p.net]);
    return best;
}

}  // namespace sdlc
