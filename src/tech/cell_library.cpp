#include "tech/cell_library.h"

namespace sdlc {

CellLibrary CellLibrary::generic_90nm() {
    CellLibrary lib;
    lib.set_name("generic-90nm");
    // {area um^2, leakage nW, intrinsic ps, ps/fanout, energy fJ, fJ/fanout}
    // Relative sizing follows typical 90 nm standard-cell data books:
    // NAND/NOR are the cheapest 2-input cells, AND/OR cost an extra inverter
    // stage, XOR/XNOR are roughly twice an AND in area, delay and energy.
    lib.set_cell(GateKind::kBuf, {3.1, 9.0, 38.0, 6.0, 2.2, 1.0});
    lib.set_cell(GateKind::kNot, {2.1, 7.0, 22.0, 7.0, 1.6, 1.0});
    lib.set_cell(GateKind::kAnd, {5.6, 15.0, 58.0, 8.0, 4.2, 1.2});
    lib.set_cell(GateKind::kOr, {5.6, 16.0, 62.0, 8.0, 4.5, 1.2});
    lib.set_cell(GateKind::kNand, {4.2, 11.0, 36.0, 8.0, 3.0, 1.2});
    lib.set_cell(GateKind::kNor, {4.2, 12.0, 44.0, 8.0, 3.3, 1.2});
    lib.set_cell(GateKind::kXor, {9.8, 26.0, 92.0, 9.0, 7.6, 1.4});
    lib.set_cell(GateKind::kXnor, {9.8, 26.0, 95.0, 9.0, 7.6, 1.4});
    // Sources cost nothing: inputs and constants are not synthesized cells.
    return lib;
}

CellLibrary CellLibrary::scaled(double area_f, double delay_f, double energy_f) const {
    CellLibrary lib = *this;
    lib.set_name(name_ + "-scaled");
    for (size_t i = 0; i < kGateKindCount; ++i) {
        CellParams p = lib.cells_[i];
        p.area_um2 *= area_f;
        p.leakage_nw *= area_f;  // leakage tracks transistor count/area
        p.intrinsic_delay_ps *= delay_f;
        p.load_delay_ps *= delay_f;
        p.energy_fj *= energy_f;
        p.load_energy_fj *= energy_f;
        lib.cells_[i] = p;
    }
    return lib;
}

}  // namespace sdlc
