// Minimal fixed-width 256-bit unsigned integer.
//
// Used as the reference arithmetic type when validating multiplier netlists
// whose products exceed 128 bits (the paper synthesizes up to 128x128 -> 256).
// Only the operations the library needs are provided; all are constexpr-free
// plain functions kept deliberately simple and fully unit-tested.
#ifndef SDLC_UTIL_U256_H
#define SDLC_UTIL_U256_H

#include <array>
#include <cstdint>
#include <string>

namespace sdlc {

/// 256-bit unsigned integer, little-endian limbs (w[0] = least significant).
struct U256 {
    std::array<uint64_t, 4> w{0, 0, 0, 0};

    U256() = default;
    /// Constructs from a 64-bit value (zero-extended).
    explicit U256(uint64_t lo) : w{lo, 0, 0, 0} {}

    [[nodiscard]] bool is_zero() const noexcept {
        return (w[0] | w[1] | w[2] | w[3]) == 0;
    }

    /// Returns bit `i` (0 <= i < 256) as 0 or 1.
    [[nodiscard]] unsigned bit(unsigned i) const noexcept {
        return static_cast<unsigned>((w[i / 64] >> (i % 64)) & 1u);
    }

    /// Sets bit `i` to 1.
    void set_bit(unsigned i) noexcept { w[i / 64] |= uint64_t{1} << (i % 64); }

    friend bool operator==(const U256&, const U256&) = default;
};

/// a + b (mod 2^256).
[[nodiscard]] U256 add(const U256& a, const U256& b) noexcept;

/// a - b (mod 2^256).
[[nodiscard]] U256 sub(const U256& a, const U256& b) noexcept;

/// a << k for 0 <= k < 256.
[[nodiscard]] U256 shl(const U256& a, unsigned k) noexcept;

/// Full 128x128 -> 256-bit product of two 128-bit values given as (lo, hi) pairs.
[[nodiscard]] U256 mul_128(uint64_t a_lo, uint64_t a_hi, uint64_t b_lo, uint64_t b_hi) noexcept;

/// True if a < b.
[[nodiscard]] bool less(const U256& a, const U256& b) noexcept;

/// Lossy conversion to double (exact for values < 2^53).
[[nodiscard]] double to_double(const U256& a) noexcept;

/// Hexadecimal string, no leading zeros ("0" for zero), no "0x" prefix.
[[nodiscard]] std::string to_hex(const U256& a);

}  // namespace sdlc

#endif  // SDLC_UTIL_U256_H
