// Small bit-manipulation helpers shared across the library.
#ifndef SDLC_UTIL_BITOPS_H
#define SDLC_UTIL_BITOPS_H

#include <bit>
#include <cassert>
#include <cstdint>

namespace sdlc {

/// Returns bit `i` of `x` as 0 or 1.
[[nodiscard]] constexpr uint64_t bit(uint64_t x, unsigned i) noexcept {
    return (x >> i) & 1u;
}

/// Mask with the low `n` bits set. `n` must be <= 64; `mask_low(64)` is all-ones.
[[nodiscard]] constexpr uint64_t mask_low(unsigned n) noexcept {
    return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/// Number of set bits.
[[nodiscard]] constexpr int popcount(uint64_t x) noexcept {
    return std::popcount(x);
}

/// Ceiling division for non-negative integers.
[[nodiscard]] constexpr int ceil_div(int a, int b) noexcept {
    assert(b > 0);
    return (a + b - 1) / b;
}

/// True if `x` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(uint64_t x) noexcept {
    return x != 0 && (x & (x - 1)) == 0;
}

/// Index of the highest set bit (undefined for 0).
[[nodiscard]] constexpr int bit_width_minus1(uint64_t x) noexcept {
    return 63 - std::countl_zero(x);
}

}  // namespace sdlc

#endif  // SDLC_UTIL_BITOPS_H
