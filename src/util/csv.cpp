#include "util/csv.h"

#include <stdexcept>

namespace sdlc {

CsvWriter::CsvWriter(const std::string& path) : out_(path), path_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i) out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
    if (!out_) throw std::runtime_error("CsvWriter: write failed for " + path_);
}

void CsvWriter::close() {
    if (out_.is_open()) out_.close();
}

std::string CsvWriter::escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string r = "\"";
    for (char ch : cell) {
        if (ch == '"') r += "\"\"";
        else r.push_back(ch);
    }
    r += '"';
    return r;
}

}  // namespace sdlc
