#include "util/json.h"

#include <cmath>
#include <cstdio>

namespace sdlc {

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string json_string(const std::string& s) {
    return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

}  // namespace sdlc
