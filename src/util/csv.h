// Tiny CSV writer; benches optionally dump machine-readable results so the
// paper's figures can be re-plotted from files.
#ifndef SDLC_UTIL_CSV_H
#define SDLC_UTIL_CSV_H

#include <fstream>
#include <string>
#include <vector>

namespace sdlc {

/// Writes rows of cells as RFC-4180-ish CSV (quotes cells containing
/// commas/quotes/newlines). Throws std::runtime_error on I/O failure.
class CsvWriter {
public:
    /// Opens `path` for writing, truncating any existing file.
    explicit CsvWriter(const std::string& path);

    /// Writes one row.
    void write_row(const std::vector<std::string>& cells);

    /// Flushes and closes; called by the destructor as well.
    void close();

private:
    static std::string escape(const std::string& cell);
    std::ofstream out_;
    std::string path_;
};

}  // namespace sdlc

#endif  // SDLC_UTIL_CSV_H
