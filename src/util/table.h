// Aligned plain-text table printer used by the experiment benches so their
// stdout mirrors the rows/columns of the paper's tables and figures.
#ifndef SDLC_UTIL_TABLE_H
#define SDLC_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace sdlc {

/// Accumulates rows of string cells and renders them with aligned columns.
///
/// Usage:
///   TextTable t({"Bit-Width", "MRED", "ER (%)"});
///   t.add_row({"8-bit", "1.98826", "49.11"});
///   t.print(std::cout);
class TextTable {
public:
    /// Creates a table with the given header row.
    explicit TextTable(std::vector<std::string> header);

    /// Appends one data row; its size must equal the header's.
    void add_row(std::vector<std::string> row);

    /// Number of data rows (excluding the header).
    [[nodiscard]] size_t row_count() const noexcept { return rows_.size(); }

    /// Renders with 2-space column gaps and a dashed rule under the header.
    void print(std::ostream& os) const;

    /// Renders to a string (same format as print()).
    [[nodiscard]] std::string to_string() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` fractional digits (fixed notation).
[[nodiscard]] std::string fmt_fixed(double v, int digits);

/// Formats a ratio as a percentage string with `digits` fractional digits,
/// e.g. fmt_percent(0.4911, 2) == "49.11".
[[nodiscard]] std::string fmt_percent(double ratio, int digits);

}  // namespace sdlc

#endif  // SDLC_UTIL_TABLE_H
