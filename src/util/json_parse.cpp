#include "util/json_parse.h"

#include <cstdlib>
#include <cstring>

namespace sdlc {

namespace {

/// Nesting bound: a request line has no business being deeper than this, and
/// the recursive-descent parser must not let input depth become stack depth.
constexpr int kMaxDepth = 64;

class Parser {
public:
    Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

    bool parse(JsonValue& out) {
        skip_ws();
        if (!parse_value(out, 0)) return false;
        skip_ws();
        if (pos_ != text_.size()) return fail("trailing characters after JSON value");
        return true;
    }

private:
    bool fail(const std::string& message) {
        if (error_ != nullptr) {
            *error_ = message + " at byte " + std::to_string(pos_);
        }
        return false;
    }

    void skip_ws() {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            ++pos_;
        }
    }

    [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    bool consume_literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("invalid literal");
        }
        pos_ += word.size();
        return true;
    }

    bool parse_value(JsonValue& out, int depth) {
        if (depth > kMaxDepth) return fail("nesting too deep");
        if (at_end()) return fail("unexpected end of input");
        switch (peek()) {
            case 'n': out.type = JsonValue::Type::kNull; return consume_literal("null");
            case 't':
                out.type = JsonValue::Type::kBool;
                out.boolean = true;
                return consume_literal("true");
            case 'f':
                out.type = JsonValue::Type::kBool;
                out.boolean = false;
                return consume_literal("false");
            case '"': out.type = JsonValue::Type::kString; return parse_string(out.string);
            case '[': return parse_array(out, depth);
            case '{': return parse_object(out, depth);
            default: return parse_number(out);
        }
    }

    bool parse_array(JsonValue& out, int depth) {
        out.type = JsonValue::Type::kArray;
        ++pos_;  // '['
        skip_ws();
        if (!at_end() && peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue element;
            skip_ws();
            if (!parse_value(element, depth + 1)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (at_end()) return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']') return true;
            if (c != ',') return fail("expected ',' or ']' in array");
        }
    }

    bool parse_object(JsonValue& out, int depth) {
        out.type = JsonValue::Type::kObject;
        ++pos_;  // '{'
        skip_ws();
        if (!at_end() && peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            if (at_end() || peek() != '"') return fail("expected object key string");
            std::string key;
            if (!parse_string(key)) return false;
            for (const auto& [existing, value] : out.object) {
                (void)value;
                if (existing == key) return fail("duplicate object key \"" + key + "\"");
            }
            skip_ws();
            if (at_end() || text_[pos_++] != ':') return fail("expected ':' after object key");
            skip_ws();
            JsonValue member;
            if (!parse_value(member, depth + 1)) return false;
            out.object.emplace_back(std::move(key), std::move(member));
            skip_ws();
            if (at_end()) return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}') return true;
            if (c != ',') return fail("expected ',' or '}' in object");
        }
    }

    bool parse_hex4(unsigned& out) {
        if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = text_[pos_++];
            out <<= 4;
            if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
            else return fail("invalid \\u escape digit");
        }
        return true;
    }

    void append_utf8(std::string& s, unsigned cp) {
        if (cp < 0x80) {
            s += static_cast<char>(cp);
        } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            s += static_cast<char>(0xF0 | (cp >> 18));
            s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool parse_string(std::string& out) {
        ++pos_;  // opening quote
        out.clear();
        while (true) {
            if (at_end()) return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (static_cast<unsigned char>(c) < 0x20) {
                return fail("unescaped control character in string");
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (at_end()) return fail("truncated escape sequence");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    unsigned cp = 0;
                    if (!parse_hex4(cp)) return false;
                    if (cp >= 0xD800 && cp <= 0xDBFF) {
                        // High surrogate: a low surrogate escape must follow.
                        if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            return fail("unpaired high surrogate");
                        }
                        pos_ += 2;
                        unsigned low = 0;
                        if (!parse_hex4(low)) return false;
                        if (low < 0xDC00 || low > 0xDFFF) {
                            return fail("invalid low surrogate");
                        }
                        cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                        return fail("unpaired low surrogate");
                    }
                    append_utf8(out, cp);
                    break;
                }
                default: return fail("invalid escape sequence");
            }
        }
    }

    bool parse_number(JsonValue& out) {
        const size_t start = pos_;
        if (!at_end() && peek() == '-') ++pos_;
        if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
        if (peek() == '0') {
            ++pos_;  // leading zero cannot be followed by more digits
        } else {
            while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
        }
        if (!at_end() && peek() == '.') {
            ++pos_;
            if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
            while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
        }
        if (!at_end() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
            if (at_end() || peek() < '0' || peek() > '9') return fail("invalid number");
            while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
        }
        // The token is validated above, so strtod cannot reject it; the copy
        // guarantees null termination for a string_view slice.
        const std::string token(text_.substr(start, pos_ - start));
        out.type = JsonValue::Type::kNumber;
        out.number = std::strtod(token.c_str(), nullptr);
        return true;
    }

    std::string_view text_;
    size_t pos_ = 0;
    std::string* error_;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
    if (type != Type::kObject) return nullptr;
    for (const auto& [name, value] : object) {
        if (name == key) return &value;
    }
    return nullptr;
}

const char* json_type_name(JsonValue::Type t) noexcept {
    switch (t) {
        case JsonValue::Type::kNull: return "null";
        case JsonValue::Type::kBool: return "bool";
        case JsonValue::Type::kNumber: return "number";
        case JsonValue::Type::kString: return "string";
        case JsonValue::Type::kArray: return "array";
        case JsonValue::Type::kObject: return "object";
    }
    return "?";
}

bool json_parse(std::string_view text, JsonValue& out, std::string* error) {
    out = JsonValue{};
    return Parser(text, error).parse(out);
}

}  // namespace sdlc
