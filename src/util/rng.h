// Deterministic, fast pseudo-random generators for simulation and sampling.
//
// All stochastic code in the library (power-estimation vectors, Monte-Carlo
// error sampling, synthetic images) uses these generators with explicit seeds
// so every experiment is reproducible bit-for-bit.
#ifndef SDLC_UTIL_RNG_H
#define SDLC_UTIL_RNG_H

#include <array>
#include <cstdint>

namespace sdlc {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(uint64_t seed) noexcept : state_(seed) {}

    constexpr uint64_t next() noexcept {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

private:
    uint64_t state_;
};

/// xoshiro256** — high-quality 64-bit generator (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can feed <random> distributions.
class Xoshiro256 {
public:
    using result_type = uint64_t;

    explicit constexpr Xoshiro256(uint64_t seed) noexcept : s_{} {
        SplitMix64 sm(seed);
        for (auto& w : s_) w = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~uint64_t{0}; }

    constexpr result_type operator()() noexcept { return next(); }

    constexpr uint64_t next() noexcept {
        const uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform value in [0, bound) without modulo bias for bounds << 2^64.
    constexpr uint64_t below(uint64_t bound) noexcept {
        return bound == 0 ? 0 : next() % bound;
    }

    /// Uniform double in [0, 1).
    constexpr double uniform() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

private:
    static constexpr uint64_t rotl(uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::array<uint64_t, 4> s_;
};

}  // namespace sdlc

#endif  // SDLC_UTIL_RNG_H
