#include "util/thread_pool.h"

namespace sdlc {

ThreadPool::ThreadPool(unsigned threads) {
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--in_flight_ == 0) all_idle_.notify_all();
        }
    }
}

}  // namespace sdlc
