// Minimal strict JSON parser (no external dependency), the read-side
// counterpart of util/json.h. The serve protocol parses every request line
// through this before touching any sweep machinery, so the parser is strict
// where leniency could hide a malformed request: no trailing garbage, no
// duplicate object keys, no unpaired surrogates, bounded nesting depth.
//
// Documents are small (NDJSON request lines, capped by the service), so the
// tree representation favors simplicity over compactness: every node carries
// all payload members and only the one matching `type` is meaningful.
#ifndef SDLC_UTIL_JSON_PARSE_H
#define SDLC_UTIL_JSON_PARSE_H

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdlc {

/// One node of a parsed JSON document.
struct JsonValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /// Members in source order; keys are unique (duplicates are a parse error).
    std::vector<std::pair<std::string, JsonValue>> object;

    [[nodiscard]] bool is_null() const noexcept { return type == Type::kNull; }
    [[nodiscard]] bool is_bool() const noexcept { return type == Type::kBool; }
    [[nodiscard]] bool is_number() const noexcept { return type == Type::kNumber; }
    [[nodiscard]] bool is_string() const noexcept { return type == Type::kString; }
    [[nodiscard]] bool is_array() const noexcept { return type == Type::kArray; }
    [[nodiscard]] bool is_object() const noexcept { return type == Type::kObject; }

    /// Member lookup; nullptr when this is not an object or `key` is absent.
    [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
};

/// Human-readable name ("null", "bool", ... ) for diagnostics.
[[nodiscard]] const char* json_type_name(JsonValue::Type t) noexcept;

/// Parses exactly one JSON document from `text` (leading/trailing whitespace
/// allowed, anything else after the value is an error). Returns false and
/// writes a message with a byte offset into *error (when non-null) on
/// failure; `out` is left in an unspecified state in that case.
[[nodiscard]] bool json_parse(std::string_view text, JsonValue& out,
                              std::string* error = nullptr);

}  // namespace sdlc

#endif  // SDLC_UTIL_JSON_PARSE_H
