#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdlc {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("TextTable: row width mismatch");
    }
    rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
    }

    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

std::string TextTable::to_string() const {
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

std::string fmt_fixed(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

std::string fmt_percent(double ratio, int digits) {
    return fmt_fixed(ratio * 100.0, digits);
}

}  // namespace sdlc
