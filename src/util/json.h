// Minimal JSON emission helpers (no external dependency): string escaping
// and locale-independent number formatting. Writers that need structured
// output (e.g. DSE result export) compose these instead of pulling in a
// JSON library the container may not have.
#ifndef SDLC_UTIL_JSON_H
#define SDLC_UTIL_JSON_H

#include <string>

namespace sdlc {

/// Escapes `s` for use inside a JSON string literal (quotes, backslashes,
/// control characters); does not add the surrounding quotes.
[[nodiscard]] std::string json_escape(const std::string& s);

/// `s` as a quoted, escaped JSON string token.
[[nodiscard]] std::string json_string(const std::string& s);

/// Shortest round-trip-friendly representation ("%.12g"). Non-finite values
/// (which JSON cannot represent) are emitted as null.
[[nodiscard]] std::string json_number(double v);

}  // namespace sdlc

#endif  // SDLC_UTIL_JSON_H
