#include "util/crc32.h"

#include <array>

namespace sdlc {
namespace {

constexpr uint32_t kPolynomial = 0xEDB88320u;

constexpr std::array<uint32_t, 256> make_table() {
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t value = i;
        for (int bit = 0; bit < 8; ++bit) {
            value = (value & 1u) ? (value >> 1) ^ kPolynomial : value >> 1;
        }
        table[i] = value;
    }
    return table;
}

constexpr std::array<uint32_t, 256> kTable = make_table();

}  // namespace

uint32_t crc32(const void* data, size_t size, uint32_t seed) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    uint32_t crc = ~seed;
    for (size_t i = 0; i < size; ++i) {
        crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
    }
    return ~crc;
}

}  // namespace sdlc
