#include "util/retry.h"

#include "util/hash.h"

namespace sdlc {

int64_t RetryPolicy::delay_ms(int failures) const noexcept {
    if (base_delay_ms <= 0) return 0;
    const int steps = failures > 1 ? failures - 1 : 0;

    // Capped exponential: base * multiplier^steps, saturating at max_delay_ms
    // without ever overflowing (stop multiplying once past the cap).
    double nominal = static_cast<double>(base_delay_ms);
    const double cap =
        max_delay_ms > 0 ? static_cast<double>(max_delay_ms) : nominal;
    for (int i = 0; i < steps && nominal < cap; ++i) {
        nominal *= multiplier > 1.0 ? multiplier : 1.0;
    }
    if (nominal > cap) nominal = cap;

    if (jitter > 0.0) {
        uint64_t h = kFnvOffsetBasis;
        hash_mix(h, seed);
        hash_mix(h, static_cast<uint64_t>(failures));
        const uint64_t bits = hash_avalanche(h);
        // Uniform in [0, 1) from the top 53 bits.
        const double unit =
            static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
        const double f = jitter < 1.0 ? jitter : 1.0;
        nominal *= 1.0 - f / 2.0 + f * unit;
    }

    if (nominal < 1.0) return 1;
    if (max_delay_ms > 0 && nominal > static_cast<double>(max_delay_ms)) {
        return max_delay_ms;
    }
    return static_cast<int64_t>(nominal);
}

uint64_t RetryPolicy::seed_from(const std::string& identity) noexcept {
    uint64_t h = kFnvOffsetBasis;
    hash_mix_string(h, identity);
    return hash_avalanche(h);
}

}  // namespace sdlc
