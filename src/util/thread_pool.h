// Work-queue thread pool powering parallel design-space exploration.
//
// A fixed set of workers drains a shared FIFO of jobs. parallel_for() layers
// a self-scheduling index loop on top (each worker atomically claims the next
// unprocessed index), which balances uneven per-point costs — synthesizing a
// 16-bit Wallace multiplier takes far longer than a 4-bit ripple one — the
// same way a work-stealing deque would for this single-producer workload.
// Callers write results into index-addressed slots, so the outcome is
// independent of the thread count and of scheduling order.
#ifndef SDLC_UTIL_THREAD_POOL_H
#define SDLC_UTIL_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sdlc {

/// Fixed-size pool of worker threads consuming a shared job queue.
class ThreadPool {
public:
    /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
    /// (at least one worker either way).
    explicit ThreadPool(unsigned threads = 0);

    /// Waits for queued jobs to finish, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues one job. Jobs must not submit to the pool they run on while
    /// wait_idle() is in progress.
    void submit(std::function<void()> job);

    /// Blocks until the queue is empty and every worker is idle.
    void wait_idle();

    [[nodiscard]] unsigned thread_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable all_idle_;
    std::deque<std::function<void()>> queue_;
    size_t in_flight_ = 0;  ///< queued + currently executing jobs
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/// Runs fn(i) for every i in [0, n), distributing indices across the pool's
/// workers via an atomic claim counter. Blocks until all indices are done.
/// The first exception thrown by any fn(i) is rethrown on the calling thread
/// (remaining indices may be skipped). With a single worker (or n == 1) the
/// loop runs inline on the caller.
template <typename Fn>
void parallel_for(ThreadPool& pool, size_t n, Fn&& fn) {
    if (n == 0) return;
    const size_t workers = std::min<size_t>(pool.thread_count(), n);
    if (workers <= 1) {
        for (size_t i = 0; i < n; ++i) fn(i);
        return;
    }

    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    size_t done = 0;

    for (size_t w = 0; w < workers; ++w) {
        pool.submit([&] {
            for (size_t i = next.fetch_add(1); i < n && !failed.load(std::memory_order_relaxed);
                 i = next.fetch_add(1)) {
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(done_mutex);
                    if (!error) error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            std::lock_guard<std::mutex> lock(done_mutex);
            if (++done == workers) done_cv.notify_one();
        });
    }
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [&] { return done == workers; });
    if (error) std::rethrow_exception(error);
}

}  // namespace sdlc

#endif  // SDLC_UTIL_THREAD_POOL_H
