// Unified retry/backoff vocabulary shared by every client that talks to a
// peer which can die: the remote synthesis cache (peer cooldowns), the
// cluster coordinator (shard redispatch), and serve clients. One tested
// policy instead of three ad-hoc cooldown constants.
//
// Everything here is deterministic: jitter comes from a splitmix64 hash of
// (seed, attempt), not a PRNG, so two runs with the same topology make the
// same scheduling decisions and fault scenarios reproduce exactly.
#ifndef SDLC_UTIL_RETRY_H
#define SDLC_UTIL_RETRY_H

#include <cstdint>
#include <string>

namespace sdlc {

struct RetryPolicy {
    /// Give up (fall back to local work) after this many failures.
    /// 0 means "never give up" — callers that always have a local fallback
    /// use the delay schedule alone.
    int max_attempts = 0;
    /// First backoff delay, before exponential growth.
    int64_t base_delay_ms = 1000;
    /// Cap on the exponential growth.
    int64_t max_delay_ms = 30000;
    /// Growth factor between consecutive failures.
    double multiplier = 2.0;
    /// Fraction of the delay randomized (deterministically) around the
    /// nominal value: delay * [1 - jitter/2, 1 + jitter/2). 0 disables.
    double jitter = 0.25;
    /// Stream selector for the jitter hash; derive it from a stable identity
    /// (e.g. the peer spec string) so distinct peers desynchronize but a
    /// given peer reproduces the same schedule run over run.
    uint64_t seed = 0;

    /// True once `failures` exceeds the attempt budget (never for budget 0).
    bool exhausted(int failures) const noexcept {
        return max_attempts > 0 && failures >= max_attempts;
    }

    /// Backoff delay after the `failures`-th consecutive failure (1-based):
    /// capped exponential with deterministic jitter. failures <= 0 maps to
    /// the base delay.
    int64_t delay_ms(int failures) const noexcept;

    /// Policy seeded from a stable identity string (FNV + avalanche).
    static uint64_t seed_from(const std::string& identity) noexcept;
};

}  // namespace sdlc

#endif  // SDLC_UTIL_RETRY_H
