#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sdlc {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the same checksum
// gzip and PNG use. The durable cache log frames every record with it so a
// torn or bit-flipped tail is detected on recovery instead of deserialised
// into garbage.
uint32_t crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t crc32(std::string_view text, uint32_t seed = 0) {
    return crc32(text.data(), text.size(), seed);
}

}  // namespace sdlc
