#include "util/u256.h"

#include <cmath>

namespace sdlc {

namespace {

/// 64x64 -> 128 multiply returning (lo, hi).
struct Mul64 {
    uint64_t lo;
    uint64_t hi;
};

Mul64 mul_64(uint64_t a, uint64_t b) noexcept {
    const unsigned __int128 p = static_cast<unsigned __int128>(a) * b;
    return {static_cast<uint64_t>(p), static_cast<uint64_t>(p >> 64)};
}

}  // namespace

U256 add(const U256& a, const U256& b) noexcept {
    U256 r;
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        const unsigned __int128 s = static_cast<unsigned __int128>(a.w[i]) + b.w[i] + carry;
        r.w[i] = static_cast<uint64_t>(s);
        carry = s >> 64;
    }
    return r;
}

U256 sub(const U256& a, const U256& b) noexcept {
    U256 r;
    unsigned __int128 borrow = 0;
    for (int i = 0; i < 4; ++i) {
        const unsigned __int128 d =
            static_cast<unsigned __int128>(a.w[i]) - b.w[i] - borrow;
        r.w[i] = static_cast<uint64_t>(d);
        borrow = (d >> 64) & 1;
    }
    return r;
}

U256 shl(const U256& a, unsigned k) noexcept {
    U256 r;
    if (k >= 256) return r;
    const unsigned limb = k / 64;
    const unsigned off = k % 64;
    for (int i = 3; i >= 0; --i) {
        uint64_t v = 0;
        const int src = i - static_cast<int>(limb);
        if (src >= 0) {
            v = a.w[src] << off;
            if (off != 0 && src >= 1) v |= a.w[src - 1] >> (64 - off);
        }
        r.w[i] = v;
    }
    return r;
}

U256 mul_128(uint64_t a_lo, uint64_t a_hi, uint64_t b_lo, uint64_t b_hi) noexcept {
    const uint64_t a[2] = {a_lo, a_hi};
    const uint64_t b[2] = {b_lo, b_hi};
    U256 r;
    for (int i = 0; i < 2; ++i) {
        uint64_t carry = 0;
        for (int j = 0; j < 2; ++j) {
            const Mul64 p = mul_64(a[i], b[j]);
            unsigned __int128 s = static_cast<unsigned __int128>(r.w[i + j]) + p.lo + carry;
            r.w[i + j] = static_cast<uint64_t>(s);
            carry = p.hi + static_cast<uint64_t>(s >> 64);
        }
        // Propagate the final carry into the next limb (cannot overflow limb 3).
        unsigned __int128 s = static_cast<unsigned __int128>(r.w[i + 2]) + carry;
        r.w[i + 2] = static_cast<uint64_t>(s);
        if (i + 3 < 4) r.w[i + 3] += static_cast<uint64_t>(s >> 64);
    }
    return r;
}

bool less(const U256& a, const U256& b) noexcept {
    for (int i = 3; i >= 0; --i) {
        if (a.w[i] != b.w[i]) return a.w[i] < b.w[i];
    }
    return false;
}

double to_double(const U256& a) noexcept {
    double r = 0.0;
    for (int i = 3; i >= 0; --i) r = r * 0x1.0p64 + static_cast<double>(a.w[i]);
    return r;
}

std::string to_hex(const U256& a) {
    static const char* digits = "0123456789abcdef";
    std::string s;
    for (int i = 3; i >= 0; --i) {
        for (int nib = 15; nib >= 0; --nib) {
            s.push_back(digits[(a.w[i] >> (nib * 4)) & 0xf]);
        }
    }
    const auto pos = s.find_first_not_of('0');
    if (pos == std::string::npos) return "0";
    return s.substr(pos);
}

}  // namespace sdlc
