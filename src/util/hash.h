// Shared 64-bit content-hash primitives (FNV-1a word mixing plus a
// splitmix-style finalizer). Both halves of the DSE synthesis-cache content
// key — the netlist structural hash and the library/options fingerprint —
// build on these, so they live in one place: changing the mixing scheme
// must change every producer at once or cached keys silently diverge.
#ifndef SDLC_UTIL_HASH_H
#define SDLC_UTIL_HASH_H

#include <bit>
#include <cstdint>
#include <string>

namespace sdlc {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/// One FNV-1a step over a 64-bit word.
constexpr void hash_mix(uint64_t& h, uint64_t word) noexcept {
    h = (h ^ word) * kFnvPrime;
}

/// Length-prefixed byte-wise mix of a string.
inline void hash_mix_string(uint64_t& h, const std::string& s) noexcept {
    hash_mix(h, s.size());
    for (const char c : s) hash_mix(h, static_cast<unsigned char>(c));
}

/// Mixes the bit pattern of a double (distinguishes +0/-0 and NaN payloads,
/// which is exactly right for a content key: same bits, same behavior).
inline void hash_mix_double(uint64_t& h, double v) noexcept {
    hash_mix(h, std::bit_cast<uint64_t>(v));
}

/// Splitmix64 finalizer: spreads low-entropy accumulated state over all
/// 64 bits.
constexpr uint64_t hash_avalanche(uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

}  // namespace sdlc

#endif  // SDLC_UTIL_HASH_H
