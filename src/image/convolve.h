// Image convolution with a pluggable 8x8-bit multiplier.
//
// This is the paper's case-study pipeline: every pixel x kernel-weight
// product goes through an (8x8) multiplier — exact or approximate — the
// 16-bit products are accumulated exactly, and the Q0.8 sum is rescaled
// back to 8 bits. Swapping the multiplier is the only difference between
// the reference and approximate outputs.
#ifndef SDLC_IMAGE_CONVOLVE_H
#define SDLC_IMAGE_CONVOLVE_H

#include <cstdint>
#include <functional>

#include "image/gaussian.h"
#include "image/image.h"

namespace sdlc {

/// An 8x8 -> 16-bit multiplier function.
using Mul8Fn = std::function<uint32_t(uint8_t, uint8_t)>;

/// The exact 8x8 multiplier.
[[nodiscard]] inline uint32_t exact_mul8(uint8_t a, uint8_t b) {
    return static_cast<uint32_t>(a) * static_cast<uint32_t>(b);
}

/// Statistics of one convolution run.
struct ConvolveStats {
    uint64_t multiplications = 0;  ///< number of 8x8 multiplier invocations
};

/// Convolves `input` with `kernel` using `mul` for every pixel*weight
/// product (replicated borders). The accumulated Q0.8 sum is divided by the
/// kernel's actual weight sum so quantization does not shift brightness.
/// `stats` (optional) receives operation counts for energy accounting.
[[nodiscard]] Image convolve(const Image& input, const FixedKernel& kernel, const Mul8Fn& mul,
                             ConvolveStats* stats = nullptr);

}  // namespace sdlc

#endif  // SDLC_IMAGE_CONVOLVE_H
