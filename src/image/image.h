// 8-bit grayscale image with PGM (P2/P5) I/O.
//
// The paper's case study applies a Gaussian blur to a 200x200 8-bit
// grayscale image; this class is that substrate. PGM was chosen because it
// is trivially inspectable and needs no external dependencies.
#ifndef SDLC_IMAGE_IMAGE_H
#define SDLC_IMAGE_IMAGE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sdlc {

/// Row-major 8-bit grayscale image.
class Image {
public:
    Image() = default;

    /// Creates a width x height image filled with `fill`.
    Image(int width, int height, uint8_t fill = 0);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }
    [[nodiscard]] size_t pixel_count() const noexcept { return pixels_.size(); }

    [[nodiscard]] uint8_t at(int x, int y) const { return pixels_.at(index(x, y)); }
    void set(int x, int y, uint8_t v) { pixels_.at(index(x, y)) = v; }

    /// Border-replicating accessor: coordinates are clamped into the image.
    [[nodiscard]] uint8_t at_clamped(int x, int y) const noexcept;

    [[nodiscard]] const std::vector<uint8_t>& pixels() const noexcept { return pixels_; }
    [[nodiscard]] std::vector<uint8_t>& pixels() noexcept { return pixels_; }

    friend bool operator==(const Image&, const Image&) = default;

private:
    [[nodiscard]] size_t index(int x, int y) const;

    int width_ = 0;
    int height_ = 0;
    std::vector<uint8_t> pixels_;
};

/// Writes `img` as binary PGM (P5). Throws std::runtime_error on I/O failure.
void save_pgm(const Image& img, const std::string& path);

/// Reads a PGM file (P2 or P5, maxval <= 255).
/// Throws std::runtime_error on parse or I/O failure.
[[nodiscard]] Image load_pgm(const std::string& path);

/// Mean squared error between two equal-sized images.
[[nodiscard]] double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (10*log10(255^2/MSE)).
/// Returns +infinity when the images are identical.
[[nodiscard]] double psnr(const Image& reference, const Image& test);

}  // namespace sdlc

#endif  // SDLC_IMAGE_IMAGE_H
