// Synthetic grayscale test scenes.
//
// The paper's input image is not distributed; these generators stand in
// (substitution documented in DESIGN.md). PSNR in the case study is measured
// against the exact-multiplier blur of the *same* scene, exactly as in the
// paper, so scene content affects PSNR only through its intensity statistics.
// synthetic_scene() mixes smooth regions, edges, blobs and texture to mimic
// a natural photograph's mix of frequencies.
#ifndef SDLC_IMAGE_SYNTHETIC_H
#define SDLC_IMAGE_SYNTHETIC_H

#include <cstdint>

#include "image/image.h"

namespace sdlc {

/// Diagonal intensity ramp (smooth, low frequency).
[[nodiscard]] Image make_gradient(int width, int height);

/// Checkerboard with `cell`-pixel squares (hard edges).
[[nodiscard]] Image make_checkerboard(int width, int height, int cell);

/// Uniform random noise (worst case for approximation artifacts).
[[nodiscard]] Image make_noise(int width, int height, uint64_t seed);

/// Soft Gaussian blobs on a dark background.
[[nodiscard]] Image make_blobs(int width, int height, int blobs, uint64_t seed);

/// Photograph-like composite: gradient background, blobs, edges and
/// low-amplitude texture noise.
[[nodiscard]] Image make_scene(int width, int height, uint64_t seed);

}  // namespace sdlc

#endif  // SDLC_IMAGE_SYNTHETIC_H
