#include "image/synthetic.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sdlc {

namespace {

uint8_t clamp_px(double v) {
    return static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

Image make_gradient(int width, int height) {
    Image img(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const double t = static_cast<double>(x + y) / static_cast<double>(width + height - 2);
            img.set(x, y, clamp_px(255.0 * t));
        }
    }
    return img;
}

Image make_checkerboard(int width, int height, int cell) {
    Image img(width, height);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const bool on = ((x / cell) + (y / cell)) % 2 == 0;
            img.set(x, y, on ? 220 : 35);
        }
    }
    return img;
}

Image make_noise(int width, int height, uint64_t seed) {
    Image img(width, height);
    Xoshiro256 rng(seed);
    for (auto& px : img.pixels()) px = static_cast<uint8_t>(rng.next() & 0xff);
    return img;
}

Image make_blobs(int width, int height, int blobs, uint64_t seed) {
    Image img(width, height, 16);
    Xoshiro256 rng(seed);
    std::vector<double> cx(static_cast<size_t>(blobs)), cy(cx.size()), amp(cx.size()),
        sig(cx.size());
    for (int i = 0; i < blobs; ++i) {
        cx[i] = rng.uniform() * width;
        cy[i] = rng.uniform() * height;
        amp[i] = 90.0 + rng.uniform() * 150.0;
        sig[i] = 6.0 + rng.uniform() * 0.12 * std::min(width, height);
    }
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double v = 16.0;
            for (int i = 0; i < blobs; ++i) {
                const double dx = x - cx[i], dy = y - cy[i];
                v += amp[i] * std::exp(-(dx * dx + dy * dy) / (2.0 * sig[i] * sig[i]));
            }
            img.set(x, y, clamp_px(v));
        }
    }
    return img;
}

Image make_scene(int width, int height, uint64_t seed) {
    Image img = make_blobs(width, height, 6, seed);
    Xoshiro256 rng(seed ^ 0xabcdef1234567ull);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            double v = img.at(x, y);
            // Gradient background lighting.
            v += 70.0 * static_cast<double>(x) / width + 30.0 * static_cast<double>(y) / height;
            // A few hard vertical/horizontal structures (building-like edges).
            if ((x > width / 3 && x < width / 3 + width / 20 && y > height / 2) ||
                (y > 3 * height / 4 && y < 3 * height / 4 + height / 30)) {
                v = 0.35 * v;
            }
            // Low-amplitude texture noise.
            v += (static_cast<double>(rng.next() & 0xf) - 7.5);
            img.set(x, y, clamp_px(v));
        }
    }
    return img;
}

}  // namespace sdlc
