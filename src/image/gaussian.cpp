#include "image/gaussian.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sdlc {

int FixedKernel::weight_sum() const {
    return std::accumulate(weights.begin(), weights.end(), 0);
}

FixedKernel make_gaussian_kernel(int size, double sigma) {
    if (size < 1 || size % 2 == 0) {
        throw std::invalid_argument("make_gaussian_kernel: size must be odd and positive");
    }
    if (sigma <= 0.0) throw std::invalid_argument("make_gaussian_kernel: sigma must be positive");

    const int r = size / 2;
    std::vector<double> raw(static_cast<size_t>(size) * static_cast<size_t>(size));
    double sum = 0.0;
    for (int ky = -r; ky <= r; ++ky) {
        for (int kx = -r; kx <= r; ++kx) {
            const double v = std::exp(-(kx * kx + ky * ky) / (2.0 * sigma * sigma));
            raw[static_cast<size_t>(ky + r) * size + static_cast<size_t>(kx + r)] = v;
            sum += v;
        }
    }

    FixedKernel k;
    k.size = size;
    k.weights.resize(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
        const double q = 256.0 * raw[i] / sum;
        const long rounded = std::lround(q);
        k.weights[i] = static_cast<uint8_t>(rounded > 255 ? 255 : rounded);
    }
    return k;
}

}  // namespace sdlc
