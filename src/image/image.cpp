#include "image/image.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sdlc {

Image::Image(int width, int height, uint8_t fill)
    : width_(width), height_(height) {
    if (width <= 0 || height <= 0) {
        throw std::invalid_argument("Image: dimensions must be positive");
    }
    pixels_.assign(static_cast<size_t>(width) * static_cast<size_t>(height), fill);
}

size_t Image::index(int x, int y) const {
    if (x < 0 || x >= width_ || y < 0 || y >= height_) {
        throw std::out_of_range("Image: pixel out of range");
    }
    return static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x);
}

uint8_t Image::at_clamped(int x, int y) const noexcept {
    x = std::clamp(x, 0, width_ - 1);
    y = std::clamp(y, 0, height_ - 1);
    return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                   static_cast<size_t>(x)];
}

void save_pgm(const Image& img, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("save_pgm: cannot open " + path);
    out << "P5\n" << img.width() << ' ' << img.height() << "\n255\n";
    out.write(reinterpret_cast<const char*>(img.pixels().data()),
              static_cast<std::streamsize>(img.pixel_count()));
    if (!out) throw std::runtime_error("save_pgm: write failed for " + path);
}

Image load_pgm(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("load_pgm: cannot open " + path);

    auto next_token = [&in, &path]() -> std::string {
        std::string tok;
        while (in >> tok) {
            if (tok[0] == '#') {
                std::string rest;
                std::getline(in, rest);
                continue;
            }
            return tok;
        }
        throw std::runtime_error("load_pgm: truncated header in " + path);
    };

    // Header fields must be parsed checked: std::stoi on a junk token
    // ("abc", "12abc", "") or an overflowing one would escape as a bare
    // std::invalid_argument/std::out_of_range with no file context,
    // breaking the "load_pgm: ... <path>" error contract every other
    // failure here honors.
    auto next_header_int = [&next_token, &path](const char* field) -> long {
        const std::string tok = next_token();
        if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
            throw std::runtime_error("load_pgm: invalid " + std::string(field) + " \"" +
                                     tok + "\" in " + path);
        }
        long value = 0;
        for (const char c : tok) {
            value = value * 10 + (c - '0');
            if (value > std::numeric_limits<int>::max()) {
                throw std::runtime_error("load_pgm: " + std::string(field) + " " + tok +
                                         " is out of range in " + path);
            }
        }
        return value;
    };

    const std::string magic = next_token();
    if (magic != "P5" && magic != "P2") {
        throw std::runtime_error("load_pgm: unsupported format " + magic);
    }
    const long w = next_header_int("width");
    const long h = next_header_int("height");
    const long maxval = next_header_int("maxval");
    if (w <= 0 || h <= 0 || maxval <= 0 || maxval > 255) {
        throw std::runtime_error("load_pgm: bad dimensions/maxval in " + path);
    }
    // A header claiming absurd dimensions must not reach the pixel
    // allocation: a forged "65535 65535" header would try to grab 4 GiB
    // before the (inevitable) truncated-data error fires.
    constexpr long kMaxDimension = 1 << 16;
    constexpr long kMaxPixels = 1L << 26;  // 64 Mpixel ceiling
    if (w > kMaxDimension || h > kMaxDimension || w * h > kMaxPixels) {
        throw std::runtime_error("load_pgm: dimensions " + std::to_string(w) + "x" +
                                 std::to_string(h) + " exceed supported size in " + path);
    }

    Image img(static_cast<int>(w), static_cast<int>(h));
    if (magic == "P2") {
        for (auto& px : img.pixels()) {
            int v;
            if (!(in >> v)) throw std::runtime_error("load_pgm: truncated P2 data");
            px = static_cast<uint8_t>(std::clamp(v, 0, 255));
        }
    } else {
        in.get();  // single whitespace after maxval
        in.read(reinterpret_cast<char*>(img.pixels().data()),
                static_cast<std::streamsize>(img.pixel_count()));
        if (in.gcount() != static_cast<std::streamsize>(img.pixel_count())) {
            throw std::runtime_error("load_pgm: truncated P5 data");
        }
    }
    return img;
}

double mse(const Image& a, const Image& b) {
    if (a.width() != b.width() || a.height() != b.height()) {
        throw std::invalid_argument("mse: image size mismatch");
    }
    double acc = 0.0;
    const auto& pa = a.pixels();
    const auto& pb = b.pixels();
    for (size_t i = 0; i < pa.size(); ++i) {
        const double d = static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
        acc += d * d;
    }
    return acc / static_cast<double>(pa.size());
}

double psnr(const Image& reference, const Image& test) {
    const double m = mse(reference, test);
    if (m == 0.0) return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / m);
}

}  // namespace sdlc
