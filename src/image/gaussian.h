// Gaussian kernel in 8-bit fixed point (paper Section IV case study:
// 3x3 kernel, sigma = 1.5, 8-bit fixed-point arithmetic).
#ifndef SDLC_IMAGE_GAUSSIAN_H
#define SDLC_IMAGE_GAUSSIAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sdlc {

/// A square convolution kernel with unsigned Q0.8 fixed-point weights:
/// weight w represents w / 256. Weights sum to <= 256 and are normalized so
/// blurring preserves brightness up to quantization.
struct FixedKernel {
    int size = 0;                   ///< side length (odd)
    std::vector<uint8_t> weights;   ///< row-major, size*size entries

    [[nodiscard]] uint8_t at(int kx, int ky) const {
        return weights.at(static_cast<size_t>(ky) * static_cast<size_t>(size) +
                          static_cast<size_t>(kx));
    }
    /// Sum of all weights (the fixed-point divisor numerator).
    [[nodiscard]] int weight_sum() const;
};

/// Builds a size x size Gaussian kernel with standard deviation `sigma`,
/// quantized to Q0.8. `size` must be odd.
[[nodiscard]] FixedKernel make_gaussian_kernel(int size, double sigma);

}  // namespace sdlc

#endif  // SDLC_IMAGE_GAUSSIAN_H
