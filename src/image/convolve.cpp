#include "image/convolve.h"

#include <algorithm>
#include <stdexcept>

namespace sdlc {

Image convolve(const Image& input, const FixedKernel& kernel, const Mul8Fn& mul,
               ConvolveStats* stats) {
    if (!mul) throw std::invalid_argument("convolve: null multiplier");
    const int r = kernel.size / 2;
    const int wsum = kernel.weight_sum();
    if (wsum <= 0) throw std::invalid_argument("convolve: kernel weights sum to zero");

    Image out(input.width(), input.height());
    uint64_t ops = 0;
    for (int y = 0; y < input.height(); ++y) {
        for (int x = 0; x < input.width(); ++x) {
            uint32_t acc = 0;
            for (int ky = -r; ky <= r; ++ky) {
                for (int kx = -r; kx <= r; ++kx) {
                    const uint8_t px = input.at_clamped(x + kx, y + ky);
                    const uint8_t w = kernel.at(kx + r, ky + r);
                    acc += mul(px, w);
                    ++ops;
                }
            }
            // Rescale from Q0.8 by the kernel's actual weight sum (rounded).
            const uint32_t v = (acc + static_cast<uint32_t>(wsum) / 2) /
                               static_cast<uint32_t>(wsum);
            out.set(x, y, static_cast<uint8_t>(std::min<uint32_t>(v, 255)));
        }
    }
    if (stats) stats->multiplications = ops;
    return out;
}

}  // namespace sdlc
