// Extension bench: error compensation (paper ref [6]'s variable-correction
// idea applied to logic compression).
//
// Compares the plain SDLC multiplier against the compensated variant on
// error metrics (exhaustive, 8-bit) and hardware cost, per cluster depth.
// Expected reading: compensation centres the error (bias ~ 0), cuts NMED
// roughly in half, costs only a few percent extra area — at the price of a
// higher error rate (tiny perturbations whenever a row pair is active).
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/compensation.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Extension — runtime error compensation for SDLC (8-bit, exhaustive)",
        "Gated constants derived from E[loss | B row pair active] centre the "
        "error and halve NMED for a few percent extra hardware.");

    const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(8));

    TextTable t({"Depth", "Variant", "NMED", "MRED(%)", "ER(%)", "mean signed err",
                 "area(um2)", "energy red vs accurate(%)"});
    for (const int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        SdlcOptions opts;
        opts.depth = depth;

        for (const bool compensated : {false, true}) {
            const ErrorMetrics m = exhaustive_metrics(8, [&](uint64_t a, uint64_t b) {
                return compensated ? sdlc_multiply_compensated(plan, a, b)
                                   : sdlc_multiply(plan, a, b);
            });
            double bias = 0.0;
            for (uint64_t a = 0; a < 256; ++a) {
                for (uint64_t b = 0; b < 256; ++b) {
                    const uint64_t approx = compensated ? sdlc_multiply_compensated(plan, a, b)
                                                        : sdlc_multiply(plan, a, b);
                    bias += static_cast<double>(approx) - static_cast<double>(a * b);
                }
            }
            bias /= 65536.0;

            const MultiplierNetlist hw = compensated
                                             ? build_sdlc_compensated_multiplier(8, opts)
                                             : build_sdlc_multiplier(8, opts);
            const SynthesisReport r = bench::synth_default(hw);
            t.add_row({std::to_string(depth), compensated ? "compensated" : "plain",
                       fmt_fixed(m.nmed, 5), fmt_fixed(m.mred * 100.0, 3),
                       fmt_fixed(m.error_rate * 100.0, 2), fmt_fixed(bias, 2),
                       fmt_fixed(r.area_um2, 0), bench::red_pct(acc.energy_fj, r.energy_fj)});
        }
    }
    t.print(std::cout);
    return 0;
}
