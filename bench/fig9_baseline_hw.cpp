// Reproduces paper Figure 9: area and power savings (vs the accurate
// multiplier) of ETM [20], Kulkarni [8] and the proposed SDLC multiplier at
// 4, 8 and 16 bits. The paper's reading: the proposed design wins at 16 bit.
#include <iostream>

#include "baselines/accurate.h"
#include "baselines/etm.h"
#include "baselines/kulkarni.h"
#include "bench_util.h"
#include "core/generator.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Figure 9 — area & power savings of scalable approximate multipliers",
        "Proposed SDLC overtakes ETM and Kulkarni as bit-width grows (wins at 16-bit).");

    TextTable t({"Bit-Width", "Area red(%) ETM", "Area red(%) Kulkarni", "Area red(%) SDLC",
                 "Power red(%) ETM", "Power red(%) Kulkarni", "Power red(%) SDLC"});
    std::vector<std::vector<std::string>> csv_rows;

    for (const int w : {4, 8, 16}) {
        const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(w));
        const SynthesisReport etm = bench::synth_default(build_etm_multiplier(w));
        const SynthesisReport kul = bench::synth_default(build_kulkarni_multiplier(w));
        const SynthesisReport sdl = bench::synth_default(build_sdlc_multiplier(w, {}));

        t.add_row({std::to_string(w) + "-bit",
                   bench::red_pct(acc.area_um2, etm.area_um2),
                   bench::red_pct(acc.area_um2, kul.area_um2),
                   bench::red_pct(acc.area_um2, sdl.area_um2),
                   bench::red_pct(acc.dynamic_power_uw, etm.dynamic_power_uw),
                   bench::red_pct(acc.dynamic_power_uw, kul.dynamic_power_uw),
                   bench::red_pct(acc.dynamic_power_uw, sdl.dynamic_power_uw)});
        csv_rows.push_back({std::to_string(w),
                            bench::red_pct(acc.area_um2, etm.area_um2),
                            bench::red_pct(acc.area_um2, kul.area_um2),
                            bench::red_pct(acc.area_um2, sdl.area_um2),
                            bench::red_pct(acc.dynamic_power_uw, etm.dynamic_power_uw),
                            bench::red_pct(acc.dynamic_power_uw, kul.dynamic_power_uw),
                            bench::red_pct(acc.dynamic_power_uw, sdl.dynamic_power_uw)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "area_red_etm", "area_red_kulkarni", "area_red_sdlc",
                       "power_red_etm", "power_red_kulkarni", "power_red_sdlc"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
