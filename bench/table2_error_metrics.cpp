// Reproduces paper Table II: MRED / NMED / ER / MAX(RED) for depth-2 SDLC
// multipliers of 4, 6, 8, 12 and 16 bits.
//
// Widths up to 12 are evaluated exhaustively (2^24 pairs). The 16-bit row is
// sampled (2^26 pairs) by default because the exhaustive sweep is 2^32
// products; pass --exhaustive to run the full sweep (multithreaded,
// bit-trick fast path; about a minute on a laptop).
#include <iostream>

#include "bench_util.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

struct PaperRow {
    int width;
    const char* mred;
    const char* nmed;
    const char* er;
    const char* maxred;
};

constexpr PaperRow kPaper[] = {
    {4, "2.77313", "0.010556", "19.53", "31.1111"},
    {6, "2.65879", "0.006393", "34.96", "32.8042"},
    {8, "1.98826", "0.003527", "49.11", "33.2026"},
    {12, "0.00824", "0.000952", "70.68", "33.3308"},
    {16, "0.00071", "0.000084", "78.72", "33.3325"},
};

}  // namespace

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Table II — error metrics vs bit-width (SDLC, 2-bit cluster depth)",
        "MRED and NMED fall drastically as multiplier size grows; ER rises.");

    // NOTES (full discussion in EXPERIMENTS.md):
    //  * 12-bit row: our exhaustive MRED is 0.82472 %, whose *ratio* form
    //    0.0082 equals the paper's printed "0.00824" — a unit slip in the
    //    paper's table (rows 4–8 are in %, row 12 is a ratio). NMED and ER
    //    match to every printed digit.
    //  * 16-bit row: the paper's ER 78.72 % breaks its own exhaustively
    //    verified 4–12-bit trend; a 2^32-point Matlab sweep is impractical,
    //    so that row was almost certainly sampled. Our exhaustive ground
    //    truth is MRED 0.287 %, NMED 0.000243, ER 83.85 %, MAXRED 33.3328 %.
    TextTable t({"Bit-Width", "MRED(%) paper", "MRED(%) meas", "NMED paper", "NMED meas",
                 "ER(%) paper", "ER(%) meas", "MAXRED(%) paper", "MAXRED(%) meas", "mode"});

    std::vector<std::vector<std::string>> csv_rows;
    for (const auto& row : kPaper) {
        ErrorMetrics m;
        std::string mode;
        auto fast = [w = row.width](uint64_t a, uint64_t b) {
            return sdlc_multiply_fast2(w, a, b);
        };
        if (row.width <= 12) {
            m = exhaustive_metrics(row.width, fast);
            mode = "exhaustive";
        } else if (args.exhaustive) {
            m = exhaustive_metrics(row.width, fast);
            mode = "exhaustive";
        } else {
            const uint64_t n = args.quick ? (1u << 22) : (1u << 26);
            m = sampled_metrics(row.width, n, args.seed, fast);
            mode = "sampled 2^" + std::to_string(args.quick ? 22 : 26);
        }
        t.add_row({std::to_string(row.width) + "-bit", row.mred,
                   fmt_fixed(m.mred * 100.0, 5), row.nmed, fmt_fixed(m.nmed, 6), row.er,
                   fmt_fixed(m.error_rate * 100.0, 2), row.maxred,
                   fmt_fixed(m.max_red * 100.0, 4), mode});
        csv_rows.push_back({std::to_string(row.width), fmt_fixed(m.mred * 100.0, 6),
                            fmt_fixed(m.nmed, 7), fmt_fixed(m.error_rate * 100.0, 3),
                            fmt_fixed(m.max_red * 100.0, 4)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "mred_pct", "nmed", "er_pct", "maxred_pct"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
