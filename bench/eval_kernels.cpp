// Kernel-dispatch throughput: plan-interpreter vs fast-path kernels, and
// the end-to-end effect on the default DSE sweep (cold and warm hardware
// cache). Writes BENCH_eval.json so the perf trajectory is tracked across
// PRs.
//
//   --quick       lighter per-config measurement budget
//   --csv FILE    also dump the per-config table as CSV
//   --json FILE   JSON output path (default: BENCH_eval.json in the CWD)
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/approx_multiplier.h"
#include "bench_util.h"
#include "core/kernels.h"
#include "dse/evaluator.h"
#include "dse/sweep.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using Clock = std::chrono::steady_clock;

/// ns/op of `fn(a, b)` over a reproducible operand stream, re-running the
/// batch until the total wall time is trustworthy.
template <typename Fn>
double measure_ns_per_op(int width, uint64_t ops_per_batch, double min_seconds, Fn&& fn) {
    const uint64_t mask = (uint64_t{1} << width) - 1;
    uint64_t ops = 0;
    uint64_t sink = 0;
    const auto t0 = Clock::now();
    double secs = 0.0;
    do {
        Xoshiro256 rng(0x5d1cbe9c);  // same stream every batch and every build
        for (uint64_t i = 0; i < ops_per_batch; ++i) {
            const uint64_t a = rng.next() & mask;
            const uint64_t b = rng.next() & mask;
            sink ^= fn(a, b);
        }
        ops += ops_per_batch;
        secs = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (secs < min_seconds);
    // Keep the accumulated result observable so the loop cannot fold away.
    asm volatile("" : : "g"(sink) : "memory");
    return secs * 1e9 / static_cast<double>(ops);
}

struct KernelRow {
    MultiplierConfig config;
    const char* path;
    double interp_ns = 0.0;
    double kernel_ns = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Evaluation-kernel throughput — interpreter vs fast-path dispatch",
        "Specialized kernels make exhaustive error sweeps practical at wide operands.");

    const double budget = args.quick ? 0.02 : 0.1;
    const uint64_t batch = uint64_t{1} << (args.quick ? 14 : 16);

    std::vector<MultiplierConfig> configs;
    for (const int width : {8, 12, 16}) {
        configs.push_back({width, 1, MultiplierVariant::kAccurate, AccumulationScheme::kRowRipple});
        for (const int depth : {2, 3, 4}) {
            configs.push_back({width, depth, MultiplierVariant::kSdlc,
                               AccumulationScheme::kRowRipple});
        }
        configs.push_back({width, 2, MultiplierVariant::kCompensated,
                           AccumulationScheme::kRowRipple});
    }

    std::vector<KernelRow> rows;
    TextTable table({"config", "path", "interpreter ns/op", "kernel ns/op", "speedup"});
    for (const MultiplierConfig& cfg : configs) {
        KernelRow row;
        row.config = cfg;
        const ApproxMultiplier mul(cfg);
        const MultiplyKernel kernel(cfg);
        row.path = kernel.name();
        row.interp_ns = measure_ns_per_op(cfg.width, batch, budget,
                                          [&](uint64_t a, uint64_t b) { return mul.multiply(a, b); });
        row.kernel_ns = measure_ns_per_op(cfg.width, batch, budget,
                                          [&](uint64_t a, uint64_t b) { return kernel(a, b); });
        rows.push_back(row);
        table.add_row({mul.describe(), row.path, fmt_fixed(row.interp_ns, 1),
                       fmt_fixed(row.kernel_ns, 1),
                       fmt_fixed(row.interp_ns / row.kernel_ns, 1)});
    }
    table.print(std::cout);

    // End-to-end: the default dse_tool sweep (error + hardware), cold run
    // with a fresh cache and warm run against the same cache.
    std::cout << "\nend-to-end default sweep (width 8, error + hardware):\n";
    const SweepSpec spec = SweepSpec::for_width(8);
    CostCache cache;
    EvalOptions opts;
    opts.seed = args.seed;
    opts.hw_cache = &cache;
    SweepStats cold, warm;
    (void)evaluate_sweep(spec, opts, &cold);
    (void)evaluate_sweep(spec, opts, &warm);
    std::cout << "  cold: " << fmt_fixed(cold.wall_seconds, 3) << " s ("
              << cold.hw_cache_hits << " hits / " << cold.hw_cache_misses << " misses)\n"
              << "  warm: " << fmt_fixed(warm.wall_seconds, 3) << " s ("
              << warm.hw_cache_hits << " hits / " << warm.hw_cache_misses << " misses)\n";

    // JSON record for cross-PR tracking.
    const std::string json_path = args.json_path.value_or("BENCH_eval.json");
    {
        std::ofstream f(json_path, std::ios::binary);
        f << "{\"bench\": \"eval_kernels\",\n \"kernels\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const KernelRow& r = rows[i];
            f << "  {\"width\": " << r.config.width << ", \"depth\": " << r.config.depth
              << ", \"variant\": " << json_string(multiplier_variant_name(r.config.variant))
              << ", \"path\": " << json_string(r.path)
              << ", \"interpreter_ns_per_op\": " << json_number(r.interp_ns)
              << ", \"kernel_ns_per_op\": " << json_number(r.kernel_ns)
              << ", \"speedup\": " << json_number(r.interp_ns / r.kernel_ns) << "}"
              << (i + 1 < rows.size() ? ",\n" : "\n");
        }
        f << " ],\n \"default_sweep\": {\"points\": " << cold.points
          << ", \"cold_seconds\": " << json_number(cold.wall_seconds)
          << ", \"warm_seconds\": " << json_number(warm.wall_seconds)
          << ", \"warm_hits\": " << warm.hw_cache_hits << "}\n}\n";
    }
    std::cout << "json -> " << json_path << "\n";

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "depth", "variant", "path", "interpreter_ns", "kernel_ns"});
        for (const KernelRow& r : rows) {
            csv.write_row({std::to_string(r.config.width), std::to_string(r.config.depth),
                           multiplier_variant_name(r.config.variant), r.path,
                           fmt_fixed(r.interp_ns, 2), fmt_fixed(r.kernel_ns, 2)});
        }
        std::cout << "csv -> " << *args.csv_path << "\n";
    }
    return 0;
}
