// Kernel-dispatch throughput: plan-interpreter vs fast-path kernels vs the
// bit-sliced engine, plus the end-to-end effect on the default DSE sweep
// (cold and warm hardware cache) and a width-12 exhaustive engine
// comparison. Writes BENCH_eval.json so the perf trajectory is tracked
// across PRs.
//
//   --quick       lighter per-config measurement budget
//   --csv FILE    also dump the per-config table as CSV
//   --json FILE   JSON output path (default: BENCH_eval.json in the CWD)
//   --check FILE  regression guard: compare the measured bit-sliced
//                 engine against a committed BENCH_eval.json record and
//                 exit nonzero when the sliced engine regressed by more
//                 than 30% on any width-12 exhaustive row. The guard
//                 compares scalar-normalized speedups, not raw ns/op, so
//                 it measures the sliced engine's health rather than the
//                 machine the record was committed from.
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/approx_multiplier.h"
#include "bench_util.h"
#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "dse/evaluator.h"
#include "dse/sweep.h"
#include "error/evaluate.h"
#include "error/evaluate_sliced.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/json_parse.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using Clock = std::chrono::steady_clock;

/// ns/op of `fn(a, b)` over a reproducible operand stream, re-running the
/// batch until the total wall time is trustworthy.
template <typename Fn>
double measure_ns_per_op(int width, uint64_t ops_per_batch, double min_seconds, Fn&& fn) {
    const uint64_t mask = (uint64_t{1} << width) - 1;
    uint64_t ops = 0;
    uint64_t sink = 0;
    const auto t0 = Clock::now();
    double secs = 0.0;
    do {
        Xoshiro256 rng(0x5d1cbe9c);  // same stream every batch and every build
        for (uint64_t i = 0; i < ops_per_batch; ++i) {
            const uint64_t a = rng.next() & mask;
            const uint64_t b = rng.next() & mask;
            sink ^= fn(a, b);
        }
        ops += ops_per_batch;
        secs = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (secs < min_seconds);
    // Keep the accumulated result observable so the loop cannot fold away.
    asm volatile("" : : "g"(sink) : "memory");
    return secs * 1e9 / static_cast<double>(ops);
}

/// ns per product through the bit-sliced fast path, measured the way a
/// sweep consumes it: prepare(a) once per stripe, then every aligned block
/// of the full b range. Products per stripe = 2^width.
double measure_sliced_ns_per_op(const SlicedMultiplyKernel& kernel, double min_seconds) {
    const int width = kernel.config().width;
    const uint64_t mask = (uint64_t{1} << width) - 1;
    const uint64_t side = uint64_t{1} << width;
    const unsigned lanes = kernel.natural_lanes();
    uint64_t out[64];
    SlicedMultiplyKernel::Prepared prep;
    uint64_t ops = 0;
    uint64_t sink = 0;
    const auto t0 = Clock::now();
    double secs = 0.0;
    do {
        Xoshiro256 rng(0x5d1cbe9c);
        for (int stripe = 0; stripe < 64; ++stripe) {
            kernel.prepare(rng.next() & mask, prep);
            for (uint64_t b0 = 0; b0 < side; b0 += lanes) {
                kernel.multiply_block_prepared(prep, b0, out);
                sink ^= out[0] ^ out[lanes - 1];
            }
        }
        ops += 64 * side;
        secs = std::chrono::duration<double>(Clock::now() - t0).count();
    } while (secs < min_seconds);
    asm volatile("" : : "g"(sink) : "memory");
    return secs * 1e9 / static_cast<double>(ops);
}

struct KernelRow {
    MultiplierConfig config;
    const char* path;
    double interp_ns = 0.0;
    double kernel_ns = 0.0;
    double sliced_ns = 0.0;  ///< 0 when the config is not sliced-eligible
};

/// One width-12 exhaustive engine-comparison row: the full 16.7M-pair
/// sweep, ErrorAccumulator included, through both engines.
struct EngineRow {
    MultiplierConfig config;
    double scalar_seconds = 0.0;
    double sliced_seconds = 0.0;
    [[nodiscard]] double speedup() const { return scalar_seconds / sliced_seconds; }
    [[nodiscard]] double sliced_ns_per_op() const {
        const double pairs = static_cast<double>(uint64_t{1} << (2 * config.width));
        return sliced_seconds * 1e9 / pairs;
    }
};

/// Regression guard: every width-12 row of the committed record whose
/// config is re-measured here must keep at least 1/1.3 of its committed
/// scalar-vs-sliced speedup (i.e. the sliced engine may not regress more
/// than 30% relative to the scalar engine on the same machine). Returns
/// the number of regressions (0 = pass).
int check_against(const std::string& path, const std::vector<EngineRow>& measured) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::cerr << "check: cannot open " << path << "\n";
        return 1;
    }
    std::stringstream buf;
    buf << f.rdbuf();
    JsonValue doc;
    std::string error;
    if (!json_parse(buf.str(), doc, &error)) {
        std::cerr << "check: " << path << " is not valid JSON: " << error << "\n";
        return 1;
    }
    const JsonValue* rows = doc.find("w12_exhaustive");
    if (rows == nullptr || !rows->is_array() || rows->array.empty()) {
        std::cerr << "check: " << path << " has no w12_exhaustive records (regenerate it)\n";
        return 1;
    }
    int regressions = 0;
    for (const JsonValue& row : rows->array) {
        const JsonValue* variant = row.find("variant");
        const JsonValue* depth = row.find("depth");
        const JsonValue* committed = row.find("speedup");
        if (variant == nullptr || depth == nullptr || committed == nullptr) continue;
        for (const EngineRow& m : measured) {
            if (multiplier_variant_name(m.config.variant) != variant->string ||
                m.config.depth != static_cast<int>(depth->number)) {
                continue;
            }
            const double floor = committed->number / 1.3;
            const bool ok = m.speedup() >= floor;
            std::cout << "  check " << ApproxMultiplier(m.config).describe() << ": measured "
                      << fmt_fixed(m.speedup(), 2) << "x vs committed "
                      << fmt_fixed(committed->number, 2) << "x (floor "
                      << fmt_fixed(floor, 2) << "x, sliced " << fmt_fixed(m.sliced_ns_per_op(), 2)
                      << " ns/op) — " << (ok ? "ok" : "REGRESSED") << "\n";
            if (!ok) ++regressions;
        }
    }
    return regressions;
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Evaluation-kernel throughput — interpreter vs fast-path vs bit-sliced",
        "Specialized kernels make exhaustive error sweeps practical at wide operands.");

    const double budget = args.quick ? 0.02 : 0.1;
    const uint64_t batch = uint64_t{1} << (args.quick ? 14 : 16);

    std::vector<MultiplierConfig> configs;
    for (const int width : {8, 12, 16}) {
        configs.push_back({width, 1, MultiplierVariant::kAccurate, AccumulationScheme::kRowRipple});
        for (const int depth : {2, 3, 4}) {
            configs.push_back({width, depth, MultiplierVariant::kSdlc,
                               AccumulationScheme::kRowRipple});
        }
        configs.push_back({width, 2, MultiplierVariant::kCompensated,
                           AccumulationScheme::kRowRipple});
    }

    std::vector<KernelRow> rows;
    TextTable table({"config", "path", "interpreter ns/op", "kernel ns/op", "sliced ns/op",
                     "sliced speedup"});
    for (const MultiplierConfig& cfg : configs) {
        KernelRow row;
        row.config = cfg;
        const ApproxMultiplier mul(cfg);
        const MultiplyKernel kernel(cfg);
        row.path = kernel.name();
        row.interp_ns = measure_ns_per_op(cfg.width, batch, budget,
                                          [&](uint64_t a, uint64_t b) { return mul.multiply(a, b); });
        row.kernel_ns = measure_ns_per_op(cfg.width, batch, budget,
                                          [&](uint64_t a, uint64_t b) { return kernel(a, b); });
        if (SlicedMultiplyKernel::eligible(cfg)) {
            const SlicedMultiplyKernel sliced(cfg);
            row.sliced_ns = measure_sliced_ns_per_op(sliced, budget);
        }
        rows.push_back(row);
        table.add_row({mul.describe(), row.path, fmt_fixed(row.interp_ns, 1),
                       fmt_fixed(row.kernel_ns, 1),
                       row.sliced_ns > 0.0 ? fmt_fixed(row.sliced_ns, 2) : "-",
                       row.sliced_ns > 0.0 ? fmt_fixed(row.kernel_ns / row.sliced_ns, 1) : "-"});
    }
    table.print(std::cout);

    // Width-12 exhaustive engine comparison: the full 4^12-pair sweep with
    // ErrorAccumulator, scalar vs bit-sliced — the number the DSE actually
    // feels when a width-12 config runs exhaustive. Metrics are asserted
    // bit-identical while we are at it.
    std::cout << "\nwidth-12 exhaustive sweep, scalar vs bit-sliced engine:\n";
    std::vector<EngineRow> engine_rows;
    TextTable etable({"config", "scalar s", "sliced s", "speedup", "sliced ns/op"});
    for (const MultiplierConfig& cfg :
         {MultiplierConfig{12, 2, MultiplierVariant::kSdlc, AccumulationScheme::kRowRipple},
          MultiplierConfig{12, 3, MultiplierVariant::kSdlc, AccumulationScheme::kRowRipple},
          MultiplierConfig{12, 4, MultiplierVariant::kSdlc, AccumulationScheme::kRowRipple},
          MultiplierConfig{12, 2, MultiplierVariant::kCompensated,
                           AccumulationScheme::kRowRipple}}) {
        EngineRow row;
        row.config = cfg;
        const MultiplyKernel scalar(cfg);
        const SlicedMultiplyKernel sliced(cfg);
        auto t0 = Clock::now();
        const ErrorMetrics scalar_m = exhaustive_metrics(
            cfg.width, [&](uint64_t a, uint64_t b) { return scalar(a, b); });
        row.scalar_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
        t0 = Clock::now();
        const ErrorMetrics sliced_m = exhaustive_metrics_sliced(sliced);
        row.sliced_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
        if (!(scalar_m == sliced_m)) {
            std::cerr << "FATAL: engines disagree on " << ApproxMultiplier(cfg).describe()
                      << "\n";
            return 1;
        }
        engine_rows.push_back(row);
        etable.add_row({ApproxMultiplier(cfg).describe(), fmt_fixed(row.scalar_seconds, 3),
                        fmt_fixed(row.sliced_seconds, 3), fmt_fixed(row.speedup(), 2),
                        fmt_fixed(row.sliced_ns_per_op(), 2)});
    }
    etable.print(std::cout);

    // End-to-end: the default dse_tool sweep (error + hardware), cold run
    // with a fresh cache and warm run against the same cache.
    std::cout << "\nend-to-end default sweep (width 8, error + hardware):\n";
    const SweepSpec spec = SweepSpec::for_width(8);
    CostCache cache;
    EvalOptions opts;
    opts.seed = args.seed;
    opts.hw_cache = &cache;
    SweepStats cold, warm;
    (void)evaluate_sweep(spec, opts, &cold);
    (void)evaluate_sweep(spec, opts, &warm);
    std::cout << "  cold: " << fmt_fixed(cold.wall_seconds, 3) << " s ("
              << cold.hw_cache_hits << " hits / " << cold.hw_cache_misses << " misses)\n"
              << "  warm: " << fmt_fixed(warm.wall_seconds, 3) << " s ("
              << warm.hw_cache_hits << " hits / " << warm.hw_cache_misses << " misses)\n";

    // JSON record for cross-PR tracking.
    const std::string json_path = args.json_path.value_or("BENCH_eval.json");
    {
        std::ofstream f(json_path, std::ios::binary);
        f << "{\"bench\": \"eval_kernels\",\n \"kernels\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const KernelRow& r = rows[i];
            f << "  {\"width\": " << r.config.width << ", \"depth\": " << r.config.depth
              << ", \"variant\": " << json_string(multiplier_variant_name(r.config.variant))
              << ", \"path\": " << json_string(r.path)
              << ", \"interpreter_ns_per_op\": " << json_number(r.interp_ns)
              << ", \"kernel_ns_per_op\": " << json_number(r.kernel_ns);
            if (r.sliced_ns > 0.0) {
                f << ", \"sliced_ns_per_op\": " << json_number(r.sliced_ns)
                  << ", \"sliced_products_per_sec\": " << json_number(1e9 / r.sliced_ns);
            }
            f << ", \"speedup\": " << json_number(r.interp_ns / r.kernel_ns) << "}"
              << (i + 1 < rows.size() ? ",\n" : "\n");
        }
        f << " ],\n \"w12_exhaustive\": [\n";
        for (size_t i = 0; i < engine_rows.size(); ++i) {
            const EngineRow& r = engine_rows[i];
            f << "  {\"width\": " << r.config.width << ", \"depth\": " << r.config.depth
              << ", \"variant\": " << json_string(multiplier_variant_name(r.config.variant))
              << ", \"scalar_seconds\": " << json_number(r.scalar_seconds)
              << ", \"sliced_seconds\": " << json_number(r.sliced_seconds)
              << ", \"sliced_ns_per_op\": " << json_number(r.sliced_ns_per_op())
              << ", \"speedup\": " << json_number(r.speedup()) << "}"
              << (i + 1 < engine_rows.size() ? ",\n" : "\n");
        }
        f << " ],\n \"default_sweep\": {\"points\": " << cold.points
          << ", \"cold_seconds\": " << json_number(cold.wall_seconds)
          << ", \"warm_seconds\": " << json_number(warm.wall_seconds)
          << ", \"warm_hits\": " << warm.hw_cache_hits << "}\n}\n";
    }
    std::cout << "json -> " << json_path << "\n";

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "depth", "variant", "path", "interpreter_ns", "kernel_ns",
                       "sliced_ns"});
        for (const KernelRow& r : rows) {
            csv.write_row({std::to_string(r.config.width), std::to_string(r.config.depth),
                           multiplier_variant_name(r.config.variant), r.path,
                           fmt_fixed(r.interp_ns, 2), fmt_fixed(r.kernel_ns, 2),
                           r.sliced_ns > 0.0 ? fmt_fixed(r.sliced_ns, 3) : ""});
        }
        std::cout << "csv -> " << *args.csv_path << "\n";
    }

    if (args.check_path) {
        std::cout << "\nregression check vs " << *args.check_path << ":\n";
        const int regressions = check_against(*args.check_path, engine_rows);
        if (regressions > 0) {
            std::cerr << "check: " << regressions
                      << " sliced-engine regression(s) beyond the 30% tolerance\n";
            return 1;
        }
        std::cout << "  all sliced-engine rows within 30% of the committed record\n";
    }
    return 0;
}
