// Reproduces paper Table IV: comparative MRED / NMED / ER of ETM [20],
// Kulkarni [8] and the proposed SDLC multiplier (8x8, depth 2), exhaustively.
#include <functional>
#include <iostream>

#include "baselines/etm.h"
#include "baselines/kulkarni.h"
#include "bench_util.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Table IV — 8x8 error comparison: ETM vs Kulkarni vs proposed SDLC",
        "SDLC outperforms both baselines on MRED and NMED (ER comparable to Kulkarni).");

    struct Row {
        const char* name;
        std::function<uint64_t(uint64_t, uint64_t)> mul;
        const char* paper_mred;
        const char* paper_nmed;
        const char* paper_er;
    };
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    const Row rows[] = {
        {"ETM [20]", [](uint64_t a, uint64_t b) { return etm_multiply(8, a, b); },
         "25.2", "2.8", "98.8"},
        {"Kulkarni [8]", [](uint64_t a, uint64_t b) { return kulkarni_multiply(8, a, b); },
         "3.25", "1.39", "46.73"},
        {"Proposed (SDLC d=2)",
         [&plan](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); },
         "1.99", "0.335", "49.11"},
    };

    TextTable t({"Multiplier", "MRED(%) paper", "MRED(%) meas", "NMED(%) paper",
                 "NMED(%) meas", "ER(%) paper", "ER(%) meas"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const Row& row : rows) {
        const ErrorMetrics m = exhaustive_metrics(8, row.mul);
        t.add_row({row.name, row.paper_mred, fmt_fixed(m.mred * 100.0, 2), row.paper_nmed,
                   fmt_fixed(m.nmed * 100.0, 3), row.paper_er,
                   fmt_fixed(m.error_rate * 100.0, 2)});
        csv_rows.push_back({row.name, fmt_fixed(m.mred * 100.0, 4),
                            fmt_fixed(m.nmed * 100.0, 4),
                            fmt_fixed(m.error_rate * 100.0, 3)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"multiplier", "mred_pct", "nmed_pct", "er_pct"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
