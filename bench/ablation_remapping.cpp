// Ablation A1: how much of SDLC's delay/area gain comes from the
// commutative remapping step (paper Section II-2) versus OR compression
// alone? Compares, per width, the accurate design, SDLC without remapping
// (compressed bits stay in their source rows) and full SDLC.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "tech/sta.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Ablation A1 — value of commutative remapping (SDLC d=2, row-ripple)",
        "Remapping halves the accumulation row count and shortens the critical path "
        "beyond what OR compression alone achieves.");

    std::vector<int> widths = {8, 16, 32};
    if (args.quick) widths = {8, 16};

    TextTable t({"Bit-Width", "Variant", "cells", "area(um2)", "delay(ps)", "depth",
                 "energy(fJ)"});
    for (const int w : widths) {
        const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(w));
        SdlcOptions noremap;
        noremap.commutative_remapping = false;
        const SynthesisReport nr = bench::synth_default(build_sdlc_multiplier(w, noremap));
        const SynthesisReport full = bench::synth_default(build_sdlc_multiplier(w, {}));

        auto row = [&](const char* name, const SynthesisReport& r) {
            t.add_row({std::to_string(w) + "-bit", name, std::to_string(r.cells),
                       fmt_fixed(r.area_um2, 0), fmt_fixed(r.delay_ps, 0),
                       std::to_string(r.depth), fmt_fixed(r.energy_fj, 0)});
        };
        row("accurate", acc);
        row("sdlc, no remap", nr);
        row("sdlc, full", full);
    }
    t.print(std::cout);
    std::cout << "\nReading: 'sdlc, full' must dominate 'sdlc, no remap' on delay/depth;\n"
                 "the OR compression alone already removes adder cells, the remapping\n"
                 "converts that into shorter carry chains.\n";
    return 0;
}
