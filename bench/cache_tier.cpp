// Distributed cache tier: cold vs warm-via-peer sweep latency.
//
// Spins an in-process cache daemon (CacheTierService behind a real Unix
// socket, the same serve_listener lifecycle `cache_tool` uses) and times
// a synthesis-bound width-12 sweep in four cache configurations:
//
//   cold (local only)   fresh CostCache, no peers — the baseline cost of
//                       synthesizing every unique design
//   cold (populating)   fresh local tier + empty daemon: pays synthesis
//                       AND writes every report back to the peer
//   cold (warm peer)    fresh local tier + the now-warm daemon: what a new
//                       fleet replica pays when a sibling already swept —
//                       synthesis becomes one socket round trip per design
//   warm (local)        second sweep on a warm local cache (lower bound)
//
//   --quick       fewer repetitions
//   --json FILE   machine-readable record (BENCH_cache.json in the repo)
//
// The warm-peer run must record a remote hit per unique design and beat
// the cold baseline; the bench fails loudly if the tier went unused.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "serve/cache_tier.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Cache tier — cold vs warm-via-peer sweep latency",
        "A fleet sharing one cache daemon pays synthesis once, then one round trip per "
        "design.");

    // A synthesis-bound sweep: width 12 is above the exhaustive-error
    // cutoff, and with a small Monte-Carlo sample count nearly all the
    // cold cost is the synthesis flow — exactly what the tier amortizes.
    // (The default width-8 sweep is error-eval-bound since the PR 2 kernel
    // work, so it would mostly measure the evaluator, not the cache.)
    const SweepSpec spec = SweepSpec::for_width(12);
    const int repetitions = args.quick ? 2 : 5;
    auto base_opts = [] {
        EvalOptions opts;
        opts.samples = 2048;
        return opts;
    };

    // In-process daemon on a real Unix socket.
    const std::string sock_path = "bench_cache_tier.sock";
    serve::UnixSocketServer listener(sock_path);
    serve::CacheTierService daemon;
    std::thread daemon_thread([&] {
        serve::serve_listener(listener, daemon, kCacheMaxRequestBytes);
    });

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_path};

    // Median over repetitions; every timed run starts from a fresh local
    // cache so repetition never turns a cold scenario warm.
    auto timed_median = [&](auto&& run) {
        std::vector<double> samples;
        for (int i = 0; i < repetitions; ++i) {
            const auto t0 = Clock::now();
            run();
            samples.push_back(seconds_since(t0));
        }
        std::sort(samples.begin(), samples.end());
        return samples[samples.size() / 2];
    };

    // cold (local only): baseline synthesis cost.
    SweepStats local_stats;
    const double cold_local = timed_median([&] {
        CostCache cache;
        EvalOptions opts = base_opts();
        opts.hw_cache = &cache;
        (void)evaluate_sweep(spec, opts, &local_stats);
    });

    // warm (local): everything memoized in-process.
    CostCache warm_local_cache;
    {
        EvalOptions opts = base_opts();
        opts.hw_cache = &warm_local_cache;
        (void)evaluate_sweep(spec, opts);
    }
    const double warm_local = timed_median([&] {
        EvalOptions opts = base_opts();
        opts.hw_cache = &warm_local_cache;
        (void)evaluate_sweep(spec, opts);
    });

    // cold (populating): first fleet member against an empty daemon. Only
    // the first repetition truly populates; later ones hit the peer, so
    // time the first run alone.
    SweepStats populate_stats;
    double cold_populate = 0.0;
    {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        const auto t0 = Clock::now();
        (void)evaluate_sweep(spec, opts, &populate_stats);
        cold_populate = seconds_since(t0);
    }

    // cold (warm peer): a new replica joining a warmed fleet.
    SweepStats warm_peer_stats;
    const double warm_via_peer = timed_median([&] {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        (void)evaluate_sweep(spec, opts, &warm_peer_stats);
    });

    const CacheDaemonStats daemon_stats = daemon.stats();
    listener.close();
    daemon_thread.join();

    TextTable table({"scenario", "seconds", "speedup vs cold", "remote traffic"});
    auto row = [&](const char* name, double secs, const std::string& remote) {
        table.add_row({name, fmt_fixed(secs, 4), fmt_fixed(cold_local / secs, 2) + "x",
                       remote});
    };
    row("cold (local only)", cold_local, "-");
    row("cold (populating peer)", cold_populate,
        std::to_string(populate_stats.remote.puts) + " puts");
    row("cold (warm peer)", warm_via_peer,
        std::to_string(warm_peer_stats.remote.hits) + " hits");
    row("warm (local)", warm_local, "none");
    table.print(std::cout);
    std::cout << "\ndaemon: " << daemon_stats.entries << " entries, " << daemon_stats.gets
              << " gets (" << daemon_stats.hits << " hits), " << daemon_stats.puts
              << " puts\n";

    bool ok = true;
    if (warm_peer_stats.remote.hits == 0) {
        std::cerr << "error: warm-via-peer run recorded no remote hits — the tier went "
                     "unused\n";
        ok = false;
    }
    if (warm_via_peer >= cold_local) {
        // A round trip per design must beat a synthesis per design; if it
        // does not, the tier is mis-tuned and the record should say so.
        std::cerr << "error: warm-via-peer sweep (" << warm_via_peer
                  << " s) is not faster than cold local (" << cold_local << " s)\n";
        ok = false;
    }

    if (args.json_path) {
        std::string json = "{\"bench\": \"cache_tier\",\n";
        json += " \"sweep\": {\"width\": 12, \"points\": " +
                std::to_string(local_stats.points) + ", \"unique_designs\": " +
                std::to_string(local_stats.hw_cache_misses) + "},\n";
        json += " \"repetitions\": " + std::to_string(repetitions) + ",\n";
        json += " \"cold_local_seconds\": " + json_number(cold_local) + ",\n";
        json += " \"cold_populate_seconds\": " + json_number(cold_populate) + ",\n";
        json += " \"warm_via_peer_seconds\": " + json_number(warm_via_peer) + ",\n";
        json += " \"warm_local_seconds\": " + json_number(warm_local) + ",\n";
        json += " \"warm_via_peer_speedup\": " + json_number(cold_local / warm_via_peer) +
                ",\n";
        json += " \"warm_peer_remote\": {\"hits\": " +
                std::to_string(warm_peer_stats.remote.hits) + ", \"misses\": " +
                std::to_string(warm_peer_stats.remote.misses) + ", \"errors\": " +
                std::to_string(warm_peer_stats.remote.errors) + ", \"timeouts\": " +
                std::to_string(warm_peer_stats.remote.timeouts) + "},\n";
        json += " \"daemon\": {\"entries\": " + std::to_string(daemon_stats.entries) +
                ", \"gets\": " + std::to_string(daemon_stats.gets) + ", \"hits\": " +
                std::to_string(daemon_stats.hits) + ", \"puts\": " +
                std::to_string(daemon_stats.puts) + "}\n}\n";
        std::ofstream out(*args.json_path, std::ios::binary);
        out << json;
        std::cout << "JSON written to " << *args.json_path << "\n";
    }
    return ok ? 0 : 1;
}
