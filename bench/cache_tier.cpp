// Distributed cache tier: cold vs warm-via-peer sweep latency.
//
// Spins an in-process cache daemon (CacheTierService behind a real Unix
// socket, the same serve_listener lifecycle `cache_tool` uses) and times
// a synthesis-bound width-12 sweep in five cache configurations:
//
//   cold (local only)   fresh CostCache, no peers — the baseline cost of
//                       synthesizing every unique design
//   cold (populating)   fresh local tier + empty daemon: pays synthesis
//                       AND writes every report back to the peer
//   cold (warm peer)    fresh local tier + the now-warm daemon: what a new
//                       fleet replica pays when a sibling already swept —
//                       synthesis becomes one socket round trip per design
//   warm (via restart)  the daemon is stopped and recreated from its
//                       --data-dir; a fresh replica sweeps against the
//                       recovered store — the crash-recovery price
//   warm (local)        second sweep on a warm local cache (lower bound)
//
//   --quick       fewer repetitions
//   --json FILE   machine-readable record (BENCH_cache.json in the repo)
//
// The warm-peer run must record a remote hit per unique design and beat
// the cold baseline; the bench fails loudly if the tier went unused.
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "serve/cache_tier.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Cache tier — cold vs warm-via-peer sweep latency",
        "A fleet sharing one cache daemon pays synthesis once, then one round trip per "
        "design.");

    // A synthesis-bound sweep: width 12 is above the exhaustive-error
    // cutoff, and with a small Monte-Carlo sample count nearly all the
    // cold cost is the synthesis flow — exactly what the tier amortizes.
    // (The default width-8 sweep is error-eval-bound since the PR 2 kernel
    // work, so it would mostly measure the evaluator, not the cache.)
    const SweepSpec spec = SweepSpec::for_width(12);
    const int repetitions = args.quick ? 2 : 5;
    auto base_opts = [] {
        EvalOptions opts;
        opts.samples = 2048;
        return opts;
    };

    // In-process daemon on a real Unix socket, persisting to a data dir so
    // the warm-via-restart scenario can tear it down and recover it the
    // same way a restarted `cache_tool --data-dir` would.
    const std::string sock_path = "bench_cache_tier.sock";
    const std::string data_dir = "bench_cache_tier_data";
    std::filesystem::remove_all(data_dir);
    serve::CacheTierOptions dopts;
    dopts.data_dir = data_dir;

    std::unique_ptr<serve::UnixSocketServer> listener;
    std::unique_ptr<serve::CacheTierService> daemon;
    std::thread daemon_thread;
    auto start_daemon = [&] {
        listener = std::make_unique<serve::UnixSocketServer>(sock_path);
        daemon = std::make_unique<serve::CacheTierService>(dopts);
        daemon_thread = std::thread([&] {
            serve::serve_listener(*listener, *daemon, kCacheMaxRequestBytes);
        });
    };
    auto stop_daemon = [&] {
        listener->close();
        daemon_thread.join();
        // Destroy before the next start: the listener's destructor unlinks
        // the socket path, which must not race a freshly bound successor.
        listener.reset();
        daemon.reset();
    };
    start_daemon();

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_path};

    // Median over repetitions; every timed run starts from a fresh local
    // cache so repetition never turns a cold scenario warm.
    auto timed_median = [&](auto&& run) {
        std::vector<double> samples;
        for (int i = 0; i < repetitions; ++i) {
            const auto t0 = Clock::now();
            run();
            samples.push_back(seconds_since(t0));
        }
        std::sort(samples.begin(), samples.end());
        return samples[samples.size() / 2];
    };

    // cold (local only): baseline synthesis cost.
    SweepStats local_stats;
    const double cold_local = timed_median([&] {
        CostCache cache;
        EvalOptions opts = base_opts();
        opts.hw_cache = &cache;
        (void)evaluate_sweep(spec, opts, &local_stats);
    });

    // warm (local): everything memoized in-process.
    CostCache warm_local_cache;
    {
        EvalOptions opts = base_opts();
        opts.hw_cache = &warm_local_cache;
        (void)evaluate_sweep(spec, opts);
    }
    const double warm_local = timed_median([&] {
        EvalOptions opts = base_opts();
        opts.hw_cache = &warm_local_cache;
        (void)evaluate_sweep(spec, opts);
    });

    // cold (populating): first fleet member against an empty daemon. Only
    // the first repetition truly populates; later ones hit the peer, so
    // time the first run alone.
    SweepStats populate_stats;
    double cold_populate = 0.0;
    {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        const auto t0 = Clock::now();
        (void)evaluate_sweep(spec, opts, &populate_stats);
        cold_populate = seconds_since(t0);
    }

    // cold (warm peer): a new replica joining a warmed fleet.
    SweepStats warm_peer_stats;
    const double warm_via_peer = timed_median([&] {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        (void)evaluate_sweep(spec, opts, &warm_peer_stats);
    });

    const CacheDaemonStats daemon_stats = daemon->stats();

    // warm (via restart): kill the warm daemon and recreate it from the
    // same data dir — exactly the `kill -9` + restart path. A fresh
    // replica then sweeps against nothing but the recovered entries.
    stop_daemon();
    start_daemon();
    const CacheRecoveryStats recovery = daemon->recovery();
    SweepStats warm_restart_stats;
    const double warm_via_restart = timed_median([&] {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        (void)evaluate_sweep(spec, opts, &warm_restart_stats);
    });
    const CacheDaemonStats restart_stats = daemon->stats();
    stop_daemon();
    std::filesystem::remove_all(data_dir);

    TextTable table({"scenario", "seconds", "speedup vs cold", "remote traffic"});
    auto row = [&](const char* name, double secs, const std::string& remote) {
        table.add_row({name, fmt_fixed(secs, 4), fmt_fixed(cold_local / secs, 2) + "x",
                       remote});
    };
    row("cold (local only)", cold_local, "-");
    row("cold (populating peer)", cold_populate,
        std::to_string(populate_stats.remote.puts) + " puts");
    row("cold (warm peer)", warm_via_peer,
        std::to_string(warm_peer_stats.remote.hits) + " hits");
    row("warm (via restart)", warm_via_restart,
        std::to_string(warm_restart_stats.remote.hits) + " hits");
    row("warm (local)", warm_local, "none");
    table.print(std::cout);
    std::cout << "\ndaemon: " << daemon_stats.entries << " entries, " << daemon_stats.gets
              << " gets (" << daemon_stats.hits << " hits), " << daemon_stats.puts
              << " puts\n";
    std::cout << "restarted daemon: recovered "
              << (recovery.snapshot_entries + recovery.log_records)
              << " records from " << data_dir << ", served " << restart_stats.warm_hits
              << " warm hits\n";

    bool ok = true;
    if (warm_peer_stats.remote.hits == 0) {
        std::cerr << "error: warm-via-peer run recorded no remote hits — the tier went "
                     "unused\n";
        ok = false;
    }
    if (warm_via_peer >= cold_local) {
        // A round trip per design must beat a synthesis per design; if it
        // does not, the tier is mis-tuned and the record should say so.
        std::cerr << "error: warm-via-peer sweep (" << warm_via_peer
                  << " s) is not faster than cold local (" << cold_local << " s)\n";
        ok = false;
    }
    if (warm_restart_stats.remote.hits == 0 || restart_stats.warm_hits == 0) {
        std::cerr << "error: warm-via-restart run recorded no recovered-entry hits — the "
                     "restarted daemon came back cold\n";
        ok = false;
    }
    if (warm_via_restart >= cold_local) {
        std::cerr << "error: warm-via-restart sweep (" << warm_via_restart
                  << " s) is not faster than cold local (" << cold_local << " s)\n";
        ok = false;
    }

    if (args.json_path) {
        std::string json = "{\"bench\": \"cache_tier\",\n";
        json += " \"sweep\": {\"width\": 12, \"points\": " +
                std::to_string(local_stats.points) + ", \"unique_designs\": " +
                std::to_string(local_stats.hw_cache_misses) + "},\n";
        json += " \"repetitions\": " + std::to_string(repetitions) + ",\n";
        json += " \"cold_local_seconds\": " + json_number(cold_local) + ",\n";
        json += " \"cold_populate_seconds\": " + json_number(cold_populate) + ",\n";
        json += " \"warm_via_peer_seconds\": " + json_number(warm_via_peer) + ",\n";
        json += " \"warm_via_restart_seconds\": " + json_number(warm_via_restart) + ",\n";
        json += " \"warm_local_seconds\": " + json_number(warm_local) + ",\n";
        json += " \"warm_via_peer_speedup\": " + json_number(cold_local / warm_via_peer) +
                ",\n";
        json += " \"warm_via_restart_speedup\": " +
                json_number(cold_local / warm_via_restart) + ",\n";
        json += " \"warm_peer_remote\": {\"hits\": " +
                std::to_string(warm_peer_stats.remote.hits) + ", \"misses\": " +
                std::to_string(warm_peer_stats.remote.misses) + ", \"errors\": " +
                std::to_string(warm_peer_stats.remote.errors) + ", \"timeouts\": " +
                std::to_string(warm_peer_stats.remote.timeouts) + "},\n";
        json += " \"restart\": {\"recovered\": " +
                std::to_string(recovery.snapshot_entries + recovery.log_records) +
                ", \"remote_hits\": " + std::to_string(warm_restart_stats.remote.hits) +
                ", \"daemon_warm_hits\": " + std::to_string(restart_stats.warm_hits) +
                "},\n";
        json += " \"daemon\": {\"entries\": " + std::to_string(daemon_stats.entries) +
                ", \"gets\": " + std::to_string(daemon_stats.gets) + ", \"hits\": " +
                std::to_string(daemon_stats.hits) + ", \"puts\": " +
                std::to_string(daemon_stats.puts) + "}\n}\n";
        std::ofstream out(*args.json_path, std::ios::binary);
        out << json;
        std::cout << "JSON written to " << *args.json_path << "\n";
    }
    return ok ? 0 : 1;
}
