// Shared helpers for the experiment-reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper, printing
// a "paper vs measured" report to stdout (and optionally CSV next to it).
#ifndef SDLC_BENCH_BENCH_UTIL_H
#define SDLC_BENCH_BENCH_UTIL_H

#include <optional>
#include <string>
#include <vector>

#include "arith/mul_netlist.h"
#include "tech/synthesis.h"

namespace sdlc::bench {

/// Minimal CLI: recognizes --exhaustive, --quick, --csv <path>,
/// --json <path>, --seed <n>, --check <path>.
struct BenchArgs {
    bool exhaustive = false;
    bool quick = false;
    std::optional<std::string> csv_path;
    std::optional<std::string> json_path;
    /// Regression-guard mode: a previously committed JSON record of the
    /// same bench to compare against (the bench defines the tolerance and
    /// exits nonzero on regression).
    std::optional<std::string> check_path;
    uint64_t seed = 0x5d1cbe9c;

    static BenchArgs parse(int argc, char** argv);
};

/// Prints the standard bench header (experiment id + paper reference).
void print_header(const std::string& experiment, const std::string& paper_claim);

/// Synthesizes a multiplier with the default generic-90nm flow.
[[nodiscard]] SynthesisReport synth_default(const MultiplierNetlist& m);

/// Formats a reduction (0..1) as "NN.N".
[[nodiscard]] std::string red_pct(double exact, double approx);

}  // namespace sdlc::bench

#endif  // SDLC_BENCH_BENCH_UTIL_H
