// Ablation A3: influence of the structural optimizer on reported metrics.
// The virtual-synthesis flow optimizes by default (as Design Compiler
// would); this bench quantifies how much the optimizer itself contributes
// and verifies the SDLC-vs-accurate comparison is not an optimizer artifact.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "netlist/opt.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Ablation A3 — metrics with and without the structural optimizer",
        "Optimization shifts absolute numbers but not the SDLC-vs-accurate gap.");

    std::vector<int> widths = {8, 16};
    if (!args.quick) widths.push_back(32);

    const CellLibrary lib = CellLibrary::generic_90nm();
    TextTable t({"Bit-Width", "Design", "cells raw", "cells opt", "folded", "merged", "dead",
                 "area red by opt(%)"});
    for (const int w : widths) {
        for (const bool sdlc_design : {false, true}) {
            const MultiplierNetlist m =
                sdlc_design ? build_sdlc_multiplier(w, {}) : build_accurate_multiplier(w);
            const OptResult opt = optimize(m.net);

            SynthesisOptions raw_opts;
            raw_opts.optimize = false;
            const SynthesisReport raw = synthesize(m.net, lib, raw_opts);
            const SynthesisReport opted = synthesize(m.net, lib);

            t.add_row({std::to_string(w) + "-bit", sdlc_design ? "sdlc d=2" : "accurate",
                       std::to_string(opt.stats.gates_before),
                       std::to_string(opt.stats.gates_after),
                       std::to_string(opt.stats.folded), std::to_string(opt.stats.merged),
                       std::to_string(opt.stats.dead),
                       bench::red_pct(raw.area_um2, opted.area_um2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nCross-check: SDLC-vs-accurate area reduction at 16-bit, both unoptimized vs "
                 "both optimized:\n";
    {
        SynthesisOptions raw_opts;
        raw_opts.optimize = false;
        const MultiplierNetlist acc = build_accurate_multiplier(16);
        const MultiplierNetlist apx = build_sdlc_multiplier(16, {});
        const SynthesisReport acc_raw = synthesize(acc.net, lib, raw_opts);
        const SynthesisReport apx_raw = synthesize(apx.net, lib, raw_opts);
        const SynthesisReport acc_opt = synthesize(acc.net, lib);
        const SynthesisReport apx_opt = synthesize(apx.net, lib);
        std::cout << "  unoptimized: " << bench::red_pct(acc_raw.area_um2, apx_raw.area_um2)
                  << " %   optimized: " << bench::red_pct(acc_opt.area_um2, apx_opt.area_um2)
                  << " %\n";
    }
    return 0;
}
