// Reproduces paper Figure 8: Gaussian-blur case study. A 3x3 sigma=1.5
// kernel in 8-bit fixed point is applied to 200x200 grayscale scenes with
// the exact multiplier and SDLC multipliers of depth 2/3/4. Reported per
// configuration: PSNR vs the exact-multiplier blur and the dynamic-energy
// saving of the 8x8 multiplier hardware.
//
// Paper numbers: PSNR 50.2 / 39 / 30 dB and energy saving 59.5 / 68.3 /
// 78.5 % for depths 2 / 3 / 4. The paper's input image is not distributed;
// several synthetic scenes are evaluated instead (substitution documented
// in DESIGN.md) and blurred outputs are written as PGM for inspection.
#include <cmath>
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/functional.h"
#include "core/generator.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/synthetic.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Figure 8 — Gaussian blur case study (3x3, sigma=1.5, 8-bit fixed point)",
        "PSNR 50.2/39/30 dB and dynamic-energy saving 59.5/68.3/78.5 % for "
        "2/3/4-bit depth clustering.");

    const FixedKernel kernel = make_gaussian_kernel(3, 1.5);
    const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(8));

    struct Scene {
        const char* name;
        Image img;
    };
    std::vector<Scene> scenes;
    scenes.push_back({"scene", make_scene(200, 200, 7)});
    if (!args.quick) {
        scenes.push_back({"blobs", make_blobs(200, 200, 6, 11)});
        scenes.push_back({"gradient", make_gradient(200, 200)});
        scenes.push_back({"checker", make_checkerboard(200, 200, 8)});
    }

    const double paper_psnr[] = {50.2, 39.0, 30.0};
    const double paper_saving[] = {59.5, 68.3, 78.5};

    // The paper's input image is not distributed, so absolute PSNR values
    // cannot be matched; the pixel-first operand order reproduces the d2/d4
    // endpoints (high-30s to mid-40s / high-20s dB), while the d3 row is
    // depressed by a kernel-quantization artifact (the Q0.8 edge weight
    // 30 = 0b11110 straddles a depth-3 cluster boundary); the weight-first
    // column is monotone. Full analysis in EXPERIMENTS.md.
    TextTable t({"Config", "Energy sav(%) paper", "Energy sav(%) meas", "PSNR(dB) paper",
                 "PSNR px-first [scene]", "PSNR weight-first", "PSNR other scenes (px-first)"});
    std::vector<std::vector<std::string>> csv_rows;

    int idx = 0;
    for (const int depth : {2, 3, 4}) {
        SdlcOptions opts;
        opts.depth = depth;
        const SynthesisReport apx = bench::synth_default(build_sdlc_multiplier(8, opts));
        const std::string saving =
            bench::red_pct(acc.dynamic_energy_fj, apx.dynamic_energy_fj);

        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const Mul8Fn px_first = [&plan](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
        };
        const Mul8Fn w_first = [&plan](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, w, px));
        };

        auto fmt_psnr = [](double p) {
            return std::isinf(p) ? std::string("inf") : fmt_fixed(p, 1);
        };

        std::string main_psnr;
        std::string wfirst_psnr;
        std::string other_psnr;
        for (size_t s = 0; s < scenes.size(); ++s) {
            const Image reference = convolve(scenes[s].img, kernel, exact_mul8);
            const Image approx = convolve(scenes[s].img, kernel, px_first);
            const std::string val = fmt_psnr(psnr(reference, approx));
            if (s == 0) {
                main_psnr = val;
                wfirst_psnr = fmt_psnr(psnr(reference, convolve(scenes[s].img, kernel, w_first)));
                save_pgm(approx, "blur_d" + std::to_string(depth) + "_" + scenes[s].name +
                                     ".pgm");
                if (depth == 2) save_pgm(reference, "blur_exact_scene.pgm");
            } else {
                other_psnr += std::string(scenes[s].name) + "=" + val + " ";
            }
        }
        t.add_row({std::to_string(depth) + "-bit Clustering", fmt_fixed(paper_saving[idx], 1),
                   saving, fmt_fixed(paper_psnr[idx], 1), main_psnr, wfirst_psnr, other_psnr});
        csv_rows.push_back({std::to_string(depth), saving, main_psnr});
        ++idx;
    }
    t.print(std::cout);
    std::cout << "\nBlurred outputs written as blur_d{2,3,4}_scene.pgm / blur_exact_scene.pgm\n";

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"depth", "energy_saving_pct", "psnr_db_scene"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
