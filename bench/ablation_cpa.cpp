// Ablation A5: carry-propagate adder architecture and the Figure 6 delay
// shape.
//
// With plain ripple adders (the paper's stated setup), the final carry chain
// dominates both the accurate and the SDLC design, so honest STA shows the
// delay saving saturating near 20 % instead of the paper's growth to 65.6 %
// at 128 bits. When each row adder is delay-optimized (Kogge-Stone parallel
// prefix — what Design Compiler effectively does to ripple RTL under a
// timing constraint), the stage count dominates and halving the row count
// shows up directly: the delay saving grows with width toward ~50 %,
// reproducing the paper's trend. This bench prints both flavors side by side.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Ablation A5 — CPA architecture vs the Figure 6 delay-reduction shape",
        "Delay saving grows with width once row adders are delay-optimized "
        "(paper: 38.5 % -> 65.6 % from 4- to 128-bit).");

    std::vector<int> widths = {4, 8, 16, 32, 64};
    if (!args.quick) widths.push_back(128);

    TextTable t({"Bit-Width", "Delay red(%) ripple", "Delay red(%) fast-CPA",
                 "Energy red(%) ripple", "Energy red(%) fast-CPA"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const int w : widths) {
        const SynthesisReport acc_r = bench::synth_default(build_accurate_multiplier(w));
        const SynthesisReport apx_r = bench::synth_default(build_sdlc_multiplier(w, {}));

        const SynthesisReport acc_f = bench::synth_default(
            build_accurate_multiplier(w, AccumulationScheme::kRowFastCpa));
        SdlcOptions fast;
        fast.scheme = AccumulationScheme::kRowFastCpa;
        const SynthesisReport apx_f = bench::synth_default(build_sdlc_multiplier(w, fast));

        t.add_row({std::to_string(w) + "-bit",
                   bench::red_pct(acc_r.delay_ps, apx_r.delay_ps),
                   bench::red_pct(acc_f.delay_ps, apx_f.delay_ps),
                   bench::red_pct(acc_r.energy_fj, apx_r.energy_fj),
                   bench::red_pct(acc_f.energy_fj, apx_f.energy_fj)});
        csv_rows.push_back({std::to_string(w), bench::red_pct(acc_r.delay_ps, apx_r.delay_ps),
                            bench::red_pct(acc_f.delay_ps, apx_f.delay_ps),
                            bench::red_pct(acc_r.energy_fj, apx_r.energy_fj),
                            bench::red_pct(acc_f.energy_fj, apx_f.energy_fj)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "delay_red_ripple", "delay_red_fastcpa", "energy_red_ripple",
                       "energy_red_fastcpa"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
