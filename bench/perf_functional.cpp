// Ablation A4 (google-benchmark): throughput of the error-analysis engines.
// Justifies the dedicated depth-2 bit-trick path used by the exhaustive
// sweeps and measures the netlist simulator's lane-parallel speed.
#include <benchmark/benchmark.h>

#include "baselines/accurate.h"
#include "core/functional.h"
#include "core/generator.h"
#include "util/rng.h"

namespace {

using namespace sdlc;

void BM_GenericModel8(benchmark::State& state) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    Xoshiro256 rng(1);
    for (auto _ : state) {
        const uint64_t a = rng.next() & 0xff, b = rng.next() & 0xff;
        benchmark::DoNotOptimize(sdlc_multiply(plan, a, b));
    }
}
BENCHMARK(BM_GenericModel8);

void BM_GenericModel16(benchmark::State& state) {
    const ClusterPlan plan = ClusterPlan::make(16, 2);
    Xoshiro256 rng(1);
    for (auto _ : state) {
        const uint64_t a = rng.next() & 0xffff, b = rng.next() & 0xffff;
        benchmark::DoNotOptimize(sdlc_multiply(plan, a, b));
    }
}
BENCHMARK(BM_GenericModel16);

void BM_FastPath16(benchmark::State& state) {
    Xoshiro256 rng(1);
    for (auto _ : state) {
        const uint64_t a = rng.next() & 0xffff, b = rng.next() & 0xffff;
        benchmark::DoNotOptimize(sdlc_multiply_fast2(16, a, b));
    }
}
BENCHMARK(BM_FastPath16);

void BM_FastPath32(benchmark::State& state) {
    Xoshiro256 rng(1);
    for (auto _ : state) {
        const uint64_t a = rng.next() & 0xffffffff, b = rng.next() & 0xffffffff;
        benchmark::DoNotOptimize(sdlc_multiply_fast2(32, a, b));
    }
}
BENCHMARK(BM_FastPath32);

void BM_GenericModelDepth(benchmark::State& state) {
    const ClusterPlan plan = ClusterPlan::make(16, static_cast<int>(state.range(0)));
    Xoshiro256 rng(1);
    for (auto _ : state) {
        const uint64_t a = rng.next() & 0xffff, b = rng.next() & 0xffff;
        benchmark::DoNotOptimize(sdlc_multiply(plan, a, b));
    }
}
BENCHMARK(BM_GenericModelDepth)->Arg(2)->Arg(3)->Arg(4);

void BM_NetlistSim64Lanes(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    const MultiplierNetlist m = build_sdlc_multiplier(width, {});
    Xoshiro256 rng(2);
    std::vector<uint64_t> as(64), bs(64);
    const uint64_t mask = (uint64_t{1} << width) - 1;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & mask;
            bs[i] = rng.next() & mask;
        }
        benchmark::DoNotOptimize(simulate_batch(m, as, bs));
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_NetlistSim64Lanes)->Arg(8)->Arg(16)->Arg(32);

void BM_BuildMultiplier(benchmark::State& state) {
    const int width = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(build_sdlc_multiplier(width, {}));
    }
}
BENCHMARK(BM_BuildMultiplier)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
