// Extension bench: stuck-at fault sensitivity of accurate vs SDLC designs.
//
// Injects single stuck-at faults at sampled gate outputs and measures the
// functional damage (NMED over a fixed operand sample). Question: does
// logic compression concentrate significance into fewer nets and thereby
// change the failure profile? Expected reading: both designs have a long
// tail of benign faults; the SDLC design has fewer nets overall, and its
// worst-case faults are comparable (the MSB accumulation path dominates in
// both).
#include <algorithm>
#include <iostream>
#include <span>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "netlist/fault.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace sdlc;

struct FaultProfile {
    double median_nmed = 0.0;
    double p90_nmed = 0.0;
    double worst_nmed = 0.0;
    double benign_fraction = 0.0;  // faults with zero observable damage
};

FaultProfile profile(const MultiplierNetlist& design, int samples, uint64_t seed) {
    Xoshiro256 rng(seed);
    const auto sites = logic_nets(design.net);
    const double pmax = static_cast<double>(((1u << design.width) - 1)) *
                        static_cast<double>(((1u << design.width) - 1));

    // Fixed operand sample reused for every fault.
    const int pairs = 512;
    std::vector<uint64_t> as(static_cast<size_t>(pairs)), bs(as.size());
    const uint64_t mask = (uint64_t{1} << design.width) - 1;
    for (auto& v : as) v = rng.next() & mask;
    for (auto& v : bs) v = rng.next() & mask;

    std::vector<double> nmeds;
    int benign = 0;
    for (int s = 0; s < samples; ++s) {
        const StuckAtFault fault{sites[rng.below(sites.size())], (rng.next() & 1) != 0};
        MultiplierNetlist faulty = design;
        faulty.net = inject_faults(design.net, {fault});
        faulty.p_bits.clear();
        for (const OutputPort& p : faulty.net.outputs()) faulty.p_bits.push_back(p.net);

        double med = 0.0;
        for (int i = 0; i < pairs; i += 64) {
            const std::span<const uint64_t> sa(&as[static_cast<size_t>(i)], 64);
            const std::span<const uint64_t> sb(&bs[static_cast<size_t>(i)], 64);
            const auto prods = simulate_batch(faulty, sa, sb);
            for (int l = 0; l < 64; ++l) {
                const uint64_t exact = as[static_cast<size_t>(i + l)] * bs[static_cast<size_t>(i + l)];
                const uint64_t got = prods[static_cast<size_t>(l)];
                med += static_cast<double>(exact > got ? exact - got : got - exact);
            }
        }
        med /= pairs;
        const double nmed = med / pmax;
        if (nmed == 0.0) ++benign;
        nmeds.push_back(nmed);
    }
    std::sort(nmeds.begin(), nmeds.end());
    FaultProfile p;
    p.median_nmed = nmeds[nmeds.size() / 2];
    p.p90_nmed = nmeds[static_cast<size_t>(0.9 * static_cast<double>(nmeds.size()))];
    p.worst_nmed = nmeds.back();
    p.benign_fraction = static_cast<double>(benign) / static_cast<double>(nmeds.size());
    return p;
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Extension — stuck-at fault sensitivity (8-bit, sampled single faults)",
        "Does logic compression change the failure profile under defects?");

    const int samples = args.quick ? 60 : 250;

    TextTable t({"Design", "nets", "benign faults(%)", "median NMED", "p90 NMED",
                 "worst NMED"});
    struct Entry {
        const char* name;
        MultiplierNetlist m;
    };
    SdlcOptions d2, d4;
    d4.depth = 4;
    Entry entries[] = {
        {"accurate 8x8", build_accurate_multiplier(8)},
        {"sdlc d=2 8x8", build_sdlc_multiplier(8, d2)},
        {"sdlc d=4 8x8", build_sdlc_multiplier(8, d4)},
    };
    for (auto& e : entries) {
        const FaultProfile p = profile(e.m, samples, args.seed);
        t.add_row({e.name, std::to_string(logic_nets(e.m.net).size()),
                   fmt_fixed(p.benign_fraction * 100.0, 1), fmt_fixed(p.median_nmed, 5),
                   fmt_fixed(p.p90_nmed, 5), fmt_fixed(p.worst_nmed, 5)});
    }
    t.print(std::cout);
    std::cout << "\n(NMED here is measured over a fixed 512-pair random operand sample;\n"
                 "a fault is 'benign' when no sampled product changes.)\n";
    return 0;
}
