// Ablation A2: does the accumulation scheme change SDLC's relative gains?
// The paper fixes row-ripple accumulation for fairness; this bench rebuilds
// accurate and SDLC multipliers under Wallace and Dadda trees as well.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Ablation A2 — SDLC gains under row-ripple / Wallace / Dadda accumulation",
        "SDLC reduces the accumulation tree itself, so savings persist under "
        "fast tree reduction, though delay gains shrink vs the ripple array.");

    std::vector<int> widths = {8, 16};
    if (!args.quick) widths.push_back(32);

    TextTable t({"Bit-Width", "Scheme", "Area red(%)", "Delay red(%)", "DynPower red(%)",
                 "Energy red(%)"});
    for (const int w : widths) {
        for (const AccumulationScheme scheme :
             {AccumulationScheme::kRowRipple, AccumulationScheme::kWallace,
              AccumulationScheme::kDadda}) {
            const SynthesisReport acc =
                bench::synth_default(build_accurate_multiplier(w, scheme));
            SdlcOptions opts;
            opts.scheme = scheme;
            const SynthesisReport apx = bench::synth_default(build_sdlc_multiplier(w, opts));
            t.add_row({std::to_string(w) + "-bit", accumulation_scheme_name(scheme),
                       bench::red_pct(acc.area_um2, apx.area_um2),
                       bench::red_pct(acc.delay_ps, apx.delay_ps),
                       bench::red_pct(acc.dynamic_power_uw, apx.dynamic_power_uw),
                       bench::red_pct(acc.energy_fj, apx.energy_fj)});
        }
    }
    t.print(std::cout);
    return 0;
}
