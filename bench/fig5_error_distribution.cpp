// Reproduces paper Figure 5: probability distribution of relative error
// percentages (1 %-wide bins, 0–34 %) for 4-, 8- and 12-bit SDLC multipliers
// with 2-bit cluster depth, evaluated exhaustively.
#include <iostream>

#include "bench_util.h"
#include "core/functional.h"
#include "error/histogram.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

sdlc::RedHistogram exhaustive_histogram(int width) {
    sdlc::RedHistogram h(34);
    const uint64_t side = uint64_t{1} << width;
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            h.add(a * b, sdlc::sdlc_multiply_fast2(width, a, b));
        }
    }
    return h;
}

std::string bar(double p, double scale = 60.0) {
    return std::string(static_cast<size_t>(p * scale + 0.5), '#');
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Figure 5 — RED probability distribution (4/8/12-bit, depth 2)",
        "Sharp right-skew: mass concentrates at exact/near-exact outputs, and "
        "shifts further left as bit-width grows.");

    const int widths[] = {4, 8, 12};
    std::vector<RedHistogram> hists;
    for (const int w : widths) hists.push_back(exhaustive_histogram(w));

    TextTable t({"RED bin", "P 4-bit", "P 8-bit", "P 12-bit", "12-bit profile"});
    for (int bin = 0; bin < 34; ++bin) {
        const std::string label = std::to_string(bin) + "-" + std::to_string(bin + 1) + "%";
        const auto p4 = hists[0].probabilities();
        const auto p8 = hists[1].probabilities();
        const auto p12 = hists[2].probabilities();
        t.add_row({label, fmt_fixed(p4[bin], 4), fmt_fixed(p8[bin], 4),
                   fmt_fixed(p12[bin], 4), bar(p12[bin], 40.0)});
    }
    {
        const auto p4 = hists[0].probabilities();
        const auto p8 = hists[1].probabilities();
        const auto p12 = hists[2].probabilities();
        t.add_row({">=34%", fmt_fixed(p4[34], 4), fmt_fixed(p8[34], 4), fmt_fixed(p12[34], 4),
                   ""});
    }
    t.print(std::cout);

    std::cout << "\nKey observations (paper annotations):\n";
    for (size_t i = 0; i < hists.size(); ++i) {
        const auto p = hists[i].probabilities();
        double below2 = p[0] + p[1];
        std::cout << "  " << widths[i] << "-bit: P(RED < 2%) = " << fmt_fixed(below2, 4)
                  << ", P(exact-or-first-bin) = " << fmt_fixed(p[0], 4) << "\n";
    }

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"bin_low_pct", "p_4bit", "p_8bit", "p_12bit"});
        const auto p4 = hists[0].probabilities();
        const auto p8 = hists[1].probabilities();
        const auto p12 = hists[2].probabilities();
        for (int bin = 0; bin <= 34; ++bin) {
            csv.write_row({std::to_string(bin), fmt_fixed(p4[bin], 6), fmt_fixed(p8[bin], 6),
                           fmt_fixed(p12[bin], 6)});
        }
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
