// DSE service throughput: request latency (cold vs warm shared cache) and
// sustained requests/second against an in-process SweepService.
//
//   --quick       fewer warm requests
//   --csv FILE    dump the per-request latency samples
//   --json FILE   machine-readable record (BENCH_serve.json in CI/repo)
//
// Measurements over the default width-8 sweep (60 points each):
//   cold      first request against an empty CostCache (pays full synthesis)
//   warm      p50/p99 over sequential requests on the now-warm cache
//   burst     all warm requests in flight at once (requests/second)
//   export    warm request with the full JSON export attached, monolithic
//             `result` event vs 64 KiB `result_chunk` streaming (the
//             chunked path trades one big line for bounded buffering)
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using namespace sdlc::serve;
using Clock = std::chrono::steady_clock;

/// Sink that discards event lines but signals the request's done event.
class DoneSink final : public ResponseSink {
public:
    void write_line(const std::string& line) override {
        if (line.find("\"event\": \"done\"") == std::string::npos) return;
        std::lock_guard<std::mutex> lock(mutex_);
        done_ = true;
        cv_.notify_all();
    }
    void wait() {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return done_; });
    }

private:
    std::mutex mutex_;
    std::condition_variable cv_;
    bool done_ = false;
};

double percentile(std::vector<double> samples, double p) {
    std::sort(samples.begin(), samples.end());
    const size_t index = static_cast<size_t>(p * static_cast<double>(samples.size() - 1));
    return samples[index];
}

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Serve throughput — long-lived DSE service",
        "One resident ThreadPool + CostCache across requests: warm requests skip synthesis.");

    const int warm_requests = args.quick ? 8 : 32;
    const std::string sweep_line = "{\"id\": \"bench\", \"spec\": {\"width\": 8}}";

    SweepService service;

    auto timed_request = [&](const std::string& line) {
        const auto sink = std::make_shared<DoneSink>();
        const auto t0 = Clock::now();
        if (!service.submit_line(line, sink)) return -1.0;
        sink->wait();
        return std::chrono::duration<double>(Clock::now() - t0).count();
    };

    // Cold: the first request pays every synthesis.
    const double cold_seconds = timed_request(sweep_line);

    // Warm sequential: per-request latency percentiles.
    std::vector<double> warm_seconds;
    for (int i = 0; i < warm_requests; ++i) warm_seconds.push_back(timed_request(sweep_line));
    const double p50 = percentile(warm_seconds, 0.50);
    const double p99 = percentile(warm_seconds, 0.99);

    // Warm traced: the identical sweep with a trace context attached, so
    // every stage records spans. Measures tracing overhead on the warm hot
    // path (target: < 2% on p50).
    const std::string traced_line =
        "{\"id\": \"bench\", \"spec\": {\"width\": 8}, \"trace\":"
        " {\"id\": \"00000000000000000000000000000001\","
        " \"span\": \"0000000000000001\"}}";
    std::vector<double> traced_seconds;
    for (int i = 0; i < warm_requests; ++i) {
        traced_seconds.push_back(timed_request(traced_line));
    }
    const double traced_p50 = percentile(traced_seconds, 0.50);
    const double tracing_overhead_pct = (traced_p50 / p50 - 1.0) * 100.0;

    // Warm export paths: monolithic result event vs chunked streaming.
    const std::string export_line =
        "{\"id\": \"bench\", \"spec\": {\"width\": 8}, \"export\": true}";
    const std::string chunked_line =
        "{\"id\": \"bench\", \"spec\": {\"width\": 8}, \"export\": true,"
        " \"chunk_bytes\": 65536}";
    std::vector<double> export_seconds;
    std::vector<double> chunked_seconds;
    const int export_requests = args.quick ? 4 : 16;
    for (int i = 0; i < export_requests; ++i) {
        export_seconds.push_back(timed_request(export_line));
        chunked_seconds.push_back(timed_request(chunked_line));
    }
    const double export_p50 = percentile(export_seconds, 0.50);
    const double chunked_p50 = percentile(chunked_seconds, 0.50);

    // Warm burst: all requests in flight, wall time to drain them.
    std::vector<std::shared_ptr<DoneSink>> burst;
    const auto burst_t0 = Clock::now();
    for (int i = 0; i < warm_requests; ++i) {
        burst.push_back(std::make_shared<DoneSink>());
        (void)service.submit_line(sweep_line, burst.back());
    }
    for (const auto& sink : burst) sink->wait();
    const double burst_seconds = std::chrono::duration<double>(Clock::now() - burst_t0).count();
    const double requests_per_sec = static_cast<double>(warm_requests) / burst_seconds;

    const ServiceStats stats = service.stats();

    TextTable table({"phase", "requests", "seconds", "req/s", "points/s"});
    auto add = [&table](const char* phase, int n, double secs) {
        table.add_row({phase, std::to_string(n), fmt_fixed(secs, 4),
                       fmt_fixed(static_cast<double>(n) / secs, 1),
                       fmt_fixed(static_cast<double>(n) * 60.0 / secs, 0)});
    };
    add("cold", 1, cold_seconds);
    add("warm (sequential)", warm_requests,
        std::accumulate(warm_seconds.begin(), warm_seconds.end(), 0.0));
    add("warm (traced)", warm_requests,
        std::accumulate(traced_seconds.begin(), traced_seconds.end(), 0.0));
    add("warm (burst)", warm_requests, burst_seconds);
    add("warm (export)", export_requests,
        std::accumulate(export_seconds.begin(), export_seconds.end(), 0.0));
    add("warm (export, chunked)", export_requests,
        std::accumulate(chunked_seconds.begin(), chunked_seconds.end(), 0.0));
    table.print(std::cout);
    std::cout << "\nwarm latency: p50 " << fmt_fixed(p50 * 1e3, 2) << " ms, p99 "
              << fmt_fixed(p99 * 1e3, 2) << " ms, cold/warm speedup "
              << fmt_fixed(cold_seconds / p50, 1) << "x\n"
              << "tracing: p50 " << fmt_fixed(traced_p50 * 1e3, 2) << " ms traced ("
              << fmt_fixed(tracing_overhead_pct, 1) << "% overhead)\n"
              << "export latency: p50 " << fmt_fixed(export_p50 * 1e3, 2)
              << " ms monolithic, " << fmt_fixed(chunked_p50 * 1e3, 2)
              << " ms chunked (64 KiB)\n"
              << "cache: " << stats.cache_entries << " entries, " << stats.cache_hits
              << " hits, " << stats.cache_misses << " misses across "
              << stats.completed << " requests\n";

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"request", "seconds"});
        csv.write_row({"cold", fmt_fixed(cold_seconds, 6)});
        for (size_t i = 0; i < warm_seconds.size(); ++i) {
            csv.write_row({"warm" + std::to_string(i), fmt_fixed(warm_seconds[i], 6)});
        }
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    if (args.json_path) {
        std::string json = "{\"bench\": \"serve_throughput\",\n";
        json += " \"sweep\": {\"width\": 8, \"points\": 60},\n";
        json += " \"warm_requests\": " + std::to_string(warm_requests) + ",\n";
        json += " \"cold_seconds\": " + json_number(cold_seconds) + ",\n";
        json += " \"warm_p50_seconds\": " + json_number(p50) + ",\n";
        json += " \"warm_p99_seconds\": " + json_number(p99) + ",\n";
        json += " \"burst_requests_per_sec\": " + json_number(requests_per_sec) + ",\n";
        json += " \"traced_p50_seconds\": " + json_number(traced_p50) + ",\n";
        json += " \"tracing_overhead_pct\": " + json_number(tracing_overhead_pct) + ",\n";
        json += " \"export_p50_seconds\": " + json_number(export_p50) + ",\n";
        json += " \"export_chunked_p50_seconds\": " + json_number(chunked_p50) + ",\n";
        json += " \"cache\": {\"entries\": " + std::to_string(stats.cache_entries);
        json += ", \"hits\": " + std::to_string(stats.cache_hits);
        json += ", \"misses\": " + std::to_string(stats.cache_misses) + "}\n}\n";
        std::ofstream out(*args.json_path, std::ios::binary);
        out << json;
        std::cout << "JSON written to " << *args.json_path << "\n";
    }
    return 0;
}
