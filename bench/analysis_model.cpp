// Extension bench: closed-form error model vs simulation.
//
// The paper reports only simulated error metrics (and could not evaluate
// 16-bit exhaustively). The analytic model gives the exact MED for every
// depth and the exact ER for depth 2 in microseconds, at any width — this
// bench validates it against simulation where simulation is feasible and
// then extends Table II to 32/64/128 bits.
#include <iostream>

#include "analysis/expected_error.h"
#include "bench_util.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Extension — closed-form SDLC error model (exact MED & depth-2 ER)",
        "Analytic predictions coincide with exhaustive simulation and extend "
        "Table II beyond simulation reach.");

    std::cout << "Part 1: validation against simulation (depth 2)\n";
    TextTable v({"Width", "NMED analytic", "NMED simulated", "ER(%) analytic",
                 "ER(%) simulated", "sim mode"});
    for (const int width : {4, 6, 8, 10, 12}) {
        const ClusterPlan plan = ClusterPlan::make(width, 2);
        const AnalyticError ana = analyze_expected_error(plan);
        const bool exhaustive = width <= 10 || !args.quick;
        const ErrorMetrics sim =
            exhaustive
                ? exhaustive_metrics(width,
                                     [&](uint64_t a, uint64_t b) {
                                         return sdlc_multiply_fast2(width, a, b);
                                     })
                : sampled_metrics(width, 1u << 22, args.seed,
                                  [&](uint64_t a, uint64_t b) {
                                      return sdlc_multiply_fast2(width, a, b);
                                  });
        v.add_row({std::to_string(width), fmt_fixed(ana.nmed, 8), fmt_fixed(sim.nmed, 8),
                   fmt_fixed(*ana.error_rate * 100.0, 4),
                   fmt_fixed(sim.error_rate * 100.0, 4),
                   exhaustive ? "exhaustive" : "sampled"});
    }
    v.print(std::cout);

    std::cout << "\nPart 2: depth sweep at 8-bit (analytic MED is exact at any depth)\n";
    TextTable d({"Depth", "MED analytic", "MED simulated", "NMED analytic", "NMED simulated"});
    for (const int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const AnalyticError ana = analyze_expected_error(plan);
        const ErrorMetrics sim = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        d.add_row({std::to_string(depth), fmt_fixed(ana.med, 4), fmt_fixed(sim.med, 4),
                   fmt_fixed(ana.nmed, 6), fmt_fixed(sim.nmed, 6)});
    }
    d.print(std::cout);

    std::cout << "\nPart 3: extending Table II beyond simulation reach (depth 2)\n";
    TextTable e({"Width", "NMED analytic", "ER(%) analytic"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const int width : {16, 24, 32, 48, 64, 96, 128}) {
        const AnalyticError ana = analyze_expected_error(ClusterPlan::make(width, 2));
        e.add_row({std::to_string(width), fmt_fixed(ana.nmed, 10),
                   fmt_fixed(*ana.error_rate * 100.0, 3)});
        csv_rows.push_back({std::to_string(width), fmt_fixed(ana.nmed, 12),
                            fmt_fixed(*ana.error_rate * 100.0, 4)});
    }
    e.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "nmed_analytic", "er_pct_analytic"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
