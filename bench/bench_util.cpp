#include "bench_util.h"

#include <cstdlib>
#include <iostream>

#include "util/table.h"

namespace sdlc::bench {

BenchArgs BenchArgs::parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--exhaustive") {
            args.exhaustive = true;
        } else if (a == "--quick") {
            args.quick = true;
        } else if (a == "--csv" && i + 1 < argc) {
            args.csv_path = argv[++i];
        } else if (a == "--json" && i + 1 < argc) {
            args.json_path = argv[++i];
        } else if (a == "--check" && i + 1 < argc) {
            args.check_path = argv[++i];
        } else if (a == "--seed" && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (a == "--help" || a == "-h") {
            std::cout << "options: [--exhaustive] [--quick] [--csv <path>] [--json <path>] "
                         "[--check <path>] [--seed <n>]\n";
            std::exit(0);
        }
    }
    return args;
}

void print_header(const std::string& experiment, const std::string& paper_claim) {
    std::cout << "==================================================================\n"
              << experiment << "\n"
              << "Paper: Qiqieh et al., \"Energy-Efficient Approximate Multiplier\n"
              << "Design using Bit Significance-Driven Logic Compression\", DATE'17\n"
              << "Claim: " << paper_claim << "\n"
              << "==================================================================\n";
}

SynthesisReport synth_default(const MultiplierNetlist& m) {
    return synthesize(m.net, CellLibrary::generic_90nm());
}

std::string red_pct(double exact, double approx) {
    return fmt_fixed(100.0 * SynthesisReport::reduction(exact, approx), 1);
}

}  // namespace sdlc::bench
