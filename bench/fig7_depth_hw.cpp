// Reproduces paper Figure 7: dynamic/leakage power, delay, area and energy
// savings of the 8-bit SDLC multiplier for 2-, 3- and 4-row logic clusters.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Figure 7 — hardware savings vs compression depth (8-bit SDLC)",
        "Deeper logic clusters increase every saving (fewer accumulation rows).");

    const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(8));

    TextTable t({"Config", "DynPower red(%)", "Leakage red(%)", "Delay red(%)",
                 "Area red(%)", "Energy red(%)"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const int depth : {2, 3, 4}) {
        SdlcOptions opts;
        opts.depth = depth;
        const SynthesisReport apx = bench::synth_default(build_sdlc_multiplier(8, opts));
        const std::string name = "8-bit (" + std::to_string(depth) + "-Row Clusters)";
        t.add_row({name, bench::red_pct(acc.dynamic_power_uw, apx.dynamic_power_uw),
                   bench::red_pct(acc.leakage_nw, apx.leakage_nw),
                   bench::red_pct(acc.delay_ps, apx.delay_ps),
                   bench::red_pct(acc.area_um2, apx.area_um2),
                   bench::red_pct(acc.energy_fj, apx.energy_fj)});
        csv_rows.push_back({std::to_string(depth),
                            bench::red_pct(acc.dynamic_power_uw, apx.dynamic_power_uw),
                            bench::red_pct(acc.leakage_nw, apx.leakage_nw),
                            bench::red_pct(acc.delay_ps, apx.delay_ps),
                            bench::red_pct(acc.area_um2, apx.area_um2),
                            bench::red_pct(acc.energy_fj, apx.energy_fj)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"depth", "dyn_power_red_pct", "leakage_red_pct", "delay_red_pct",
                       "area_red_pct", "energy_red_pct"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
