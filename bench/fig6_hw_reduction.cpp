// Reproduces paper Figure 6: dynamic power, leakage power, area, delay and
// energy reductions of the depth-2 SDLC multiplier vs the accurate design,
// for bit-widths 4 to 128 (row-ripple accumulation, as in the paper).
//
// The paper's reported ranges (Faraday 90nm + Design Compiler):
//   dynamic power 37.5–67.4 %, leakage 34–72.1 %, delay 38.5–65.6 %,
//   area 33.4–62.9 %, energy 65.5–88.74 %.
// Our virtual-synthesis flow reproduces the *shape* (monotone-ish growth of
// savings with width); absolute percentages depend on the cost model.
#include <iostream>

#include "baselines/accurate.h"
#include "bench_util.h"
#include "core/generator.h"
#include "util/csv.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Figure 6 — hardware reductions vs bit-width (SDLC d=2 vs accurate)",
        "Savings in power/area/delay/energy grow with multiplier size; "
        "paper: up to 67.4/72.1/62.9/65.6/88.7 % at 128 bits.");

    std::vector<int> widths = {4, 6, 8, 12, 16, 32, 64, 128};
    if (args.quick) widths = {4, 8, 16, 32};

    TextTable t({"Bit-Width", "DynPower red(%)", "Leakage red(%)", "Area red(%)",
                 "Delay red(%)", "Energy red(%)", "cells acc", "cells sdlc"});
    std::vector<std::vector<std::string>> csv_rows;

    for (const int w : widths) {
        const SynthesisReport acc = bench::synth_default(build_accurate_multiplier(w));
        const SynthesisReport apx = bench::synth_default(build_sdlc_multiplier(w, {}));
        t.add_row({std::to_string(w) + "-bit",
                   bench::red_pct(acc.dynamic_power_uw, apx.dynamic_power_uw),
                   bench::red_pct(acc.leakage_nw, apx.leakage_nw),
                   bench::red_pct(acc.area_um2, apx.area_um2),
                   bench::red_pct(acc.delay_ps, apx.delay_ps),
                   bench::red_pct(acc.energy_fj, apx.energy_fj),
                   std::to_string(acc.cells), std::to_string(apx.cells)});
        csv_rows.push_back({std::to_string(w),
                            bench::red_pct(acc.dynamic_power_uw, apx.dynamic_power_uw),
                            bench::red_pct(acc.leakage_nw, apx.leakage_nw),
                            bench::red_pct(acc.area_um2, apx.area_um2),
                            bench::red_pct(acc.delay_ps, apx.delay_ps),
                            bench::red_pct(acc.energy_fj, apx.energy_fj)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"width", "dyn_power_red_pct", "leakage_red_pct", "area_red_pct",
                       "delay_red_pct", "energy_red_pct"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
