// DSE engine throughput: configurations evaluated per second, and how the
// sweep scales from 1 worker thread up to the hardware concurrency.
//
//   --quick       smaller sweep (width 6, error-only pass skipped)
//   --csv FILE    dump the scaling table
//   --seed N      base seed for sampled evaluation (fixed default: runs are
//                 reproducible bit-for-bit at every thread count)
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "dse/evaluator.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "DSE throughput — parallel design-space evaluation",
        "Work-queue scheduling keeps workers busy despite uneven point costs.");

    const int width = args.quick ? 6 : 8;
    const SweepSpec spec = SweepSpec::for_width(width);
    const size_t n = spec.count();

    unsigned max_threads = std::thread::hardware_concurrency();
    if (max_threads == 0) max_threads = 1;
    std::vector<unsigned> counts = {1};
    for (unsigned t = 2; t <= max_threads; t *= 2) counts.push_back(t);
    if (counts.back() != max_threads) counts.push_back(max_threads);

    std::cout << "sweep: " << spec.describe() << " (" << n << " points)\n\n";

    TextTable t({"threads", "mode", "points", "seconds", "configs/sec", "speedup"});
    std::vector<std::vector<std::string>> csv_rows;
    for (const bool hardware : {false, true}) {
        if (args.quick && !hardware) continue;
        double base_secs = 0.0;
        for (unsigned threads : counts) {
            EvalOptions opts;
            opts.threads = threads;
            opts.seed = args.seed;
            opts.evaluate_hardware = hardware;
            const auto t0 = Clock::now();
            const std::vector<DesignPoint> points = evaluate_sweep(spec, opts);
            const double secs = seconds_since(t0);
            if (threads == counts.front()) base_secs = secs;
            const char* mode = hardware ? "error+hw" : "error-only";
            t.add_row({std::to_string(threads), mode, std::to_string(points.size()),
                       fmt_fixed(secs, 3), fmt_fixed(static_cast<double>(points.size()) / secs, 1),
                       fmt_fixed(base_secs / secs, 2)});
            csv_rows.push_back({std::to_string(threads), mode, std::to_string(points.size()),
                                fmt_fixed(secs, 4),
                                fmt_fixed(static_cast<double>(points.size()) / secs, 2)});
        }
    }
    t.print(std::cout);

    // Hardware-cache effect: one shared cache, cold run then warm run. The
    // scaling rows above use a fresh per-sweep cache so they stay honest.
    {
        CostCache cache;
        EvalOptions opts;
        opts.seed = args.seed;
        opts.hw_cache = &cache;
        SweepStats cold, warm;
        (void)evaluate_sweep(spec, opts, &cold);
        (void)evaluate_sweep(spec, opts, &warm);
        std::cout << "\nhw cache: cold " << fmt_fixed(cold.wall_seconds, 3) << " s ("
                  << cold.hw_cache_misses << " misses), warm "
                  << fmt_fixed(warm.wall_seconds, 3) << " s (" << warm.hw_cache_hits
                  << " hits), speedup " << fmt_fixed(cold.wall_seconds / warm.wall_seconds, 2)
                  << "x\n";
    }

    // Sanity: the frontier of the last sweep is non-trivial.
    {
        EvalOptions opts;
        opts.seed = args.seed;
        const std::vector<DesignPoint> points = evaluate_sweep(spec, opts);
        const std::vector<size_t> frontier = pareto_frontier(objective_matrix(points));
        std::cout << "\nfrontier: " << frontier.size() << " of " << points.size()
                  << " points are Pareto-optimal\n";
    }

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"threads", "mode", "points", "seconds", "configs_per_sec"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
