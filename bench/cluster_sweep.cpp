// Cluster sweep coordinator: 1 -> 2 -> 4 worker scaling, shared cache
// tier on and off.
//
// Spins in-process serve replicas (SweepService behind real Unix sockets,
// the same serve_listener lifecycle `serve_tool` uses, one eval thread
// each so worker count is the parallelism) and times a synthesis-bound
// width-12 sweep coordinated by cluster::distributed_sweep:
//
//   local            single-node, single-thread evaluate_sweep baseline
//   N workers        fresh (cold) fleet of N replicas, no cache tier —
//                    pure fan-out scaling of the synthesis cost
//   N workers +tier  fresh fleet sharing one pre-warmed cache daemon —
//                    what a fleet pays once any sibling already swept
//
// Every coordinated run's export is byte-compared against the single-node
// reference before timings are reported; the bench fails loudly if any
// topology changes a byte or if the tier-on runs record no remote hits.
//
//   --quick       fewer repetitions
//   --json FILE   machine-readable record (BENCH_cluster.json in the repo)
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cluster/coordinator.h"
#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "serve/cache_tier.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json.h"
#include "util/table.h"

namespace {

using namespace sdlc;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One in-process serve replica on a Unix socket.
struct Replica {
    explicit Replica(const std::string& path, const std::vector<std::string>& cache_peers)
        : sock_path(path), listener(path) {
        serve::ServiceOptions opts;
        opts.eval_threads = 1;  // worker count == evaluation parallelism
        opts.request_workers = 2;
        opts.cache_peers = cache_peers;
        service = std::make_unique<serve::SweepService>(opts);
        thread = std::thread(
            [this] { serve::serve_listener(listener, *service, serve::kDefaultMaxRequestBytes); });
    }
    ~Replica() {
        service->request_shutdown();
        listener.close();
        thread.join();
    }
    std::string spec() const { return "unix:" + sock_path; }

    std::string sock_path;
    serve::UnixSocketServer listener;
    std::unique_ptr<serve::SweepService> service;
    std::thread thread;
};

}  // namespace

int main(int argc, char** argv) {
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Cluster sweep — 1/2/4-worker scaling, cache tier on and off",
        "Sharded enumeration across replicas merges back byte-identical; the fleet is an "
        "accelerator, never a result-changing dependency.");

    // Width 12 with a mid-size Monte-Carlo sample count: per-point cost
    // (error eval + synthesis) is large against the per-shard socket
    // overhead, so fan-out scaling is what gets measured. The tier-on
    // rows additionally replace each unique design's synthesis with one
    // daemon round trip.
    const SweepSpec spec = SweepSpec::for_width(12);
    const ObjectiveSet objectives = default_objectives();
    const int repetitions = args.quick ? 1 : 3;
    auto base_opts = [] {
        EvalOptions opts;
        opts.samples = 32768;
        return opts;
    };

    // Single-node reference: one thread, fresh cache — both the baseline
    // timing and the byte-identity oracle for every topology below.
    SweepStats ref_stats;
    std::vector<DesignPoint> ref_points;
    double local_seconds = 0.0;
    {
        CostCache cache;
        EvalOptions opts = base_opts();
        opts.hw_cache = &cache;
        opts.threads = 1;
        const auto t0 = Clock::now();
        ref_points = evaluate_sweep(spec, opts, &ref_stats);
        local_seconds = seconds_since(t0);
    }
    const std::string ref_export = dse_to_json(
        ref_points, pareto_analysis(objective_matrix(ref_points, objectives)).rank, ref_stats,
        objectives);

    // Shared cache daemon for the tier-on scenarios, pre-warmed once so
    // those runs measure the steady state of a fleet whose sibling has
    // already swept.
    const std::string cache_sock = "bench_cluster_cache.sock";
    serve::UnixSocketServer cache_listener(cache_sock);
    serve::CacheTierService cache_daemon;
    std::thread cache_thread([&] {
        serve::serve_listener(cache_listener, cache_daemon, kCacheMaxRequestBytes);
    });
    {
        CostCache local;
        RemoteCacheOptions ropts;
        ropts.peers = {"unix:" + cache_sock};
        RemoteCostCache remote(local, ropts);
        EvalOptions opts = base_opts();
        opts.hw_cache = &remote;
        (void)evaluate_sweep(spec, opts);
    }

    struct Scenario {
        size_t workers;
        bool tier;
        double seconds;
        serve::ClusterCounters counters;
        uint64_t remote_hits;
    };
    std::vector<Scenario> scenarios;
    bool ok = true;

    for (const bool tier : {false, true}) {
        for (const size_t n : {size_t{1}, size_t{2}, size_t{4}}) {
            std::vector<double> samples;
            serve::ClusterCounters last_counters;
            uint64_t remote_hits = 0;
            for (int rep = 0; rep < repetitions; ++rep) {
                // A fresh fleet each repetition keeps every run cold on the
                // workers' local caches; only the daemon stays warm.
                std::vector<std::string> peers;
                if (tier) peers.push_back("unix:" + cache_sock);
                std::vector<std::unique_ptr<Replica>> fleet;
                cluster::ClusterOptions copts;
                for (size_t i = 0; i < n; ++i) {
                    fleet.push_back(std::make_unique<Replica>(
                        "bench_cluster_w" + std::to_string(i) + ".sock", peers));
                    copts.workers.push_back(fleet.back()->spec());
                }
                copts.shards = 4 * n;  // a few shards per worker for balance

                CostCache coord_cache;
                EvalOptions opts = base_opts();
                opts.hw_cache = &coord_cache;
                SweepStats stats;
                serve::ClusterCounters counters;
                const auto t0 = Clock::now();
                const std::vector<DesignPoint> points =
                    cluster::distributed_sweep(spec, opts, copts, &stats, &counters);
                samples.push_back(seconds_since(t0));

                const std::string exported = dse_to_json(
                    points, pareto_analysis(objective_matrix(points, objectives)).rank, stats,
                    objectives);
                if (exported != ref_export) {
                    std::cerr << "error: " << n << "-worker" << (tier ? " +tier" : "")
                              << " export differs from the single-node reference\n";
                    ok = false;
                }
                last_counters = counters;
                uint64_t hits = 0;
                for (const auto& r : fleet) hits += r->service->stats().remote_cache.hits;
                remote_hits = hits;
            }
            std::sort(samples.begin(), samples.end());
            scenarios.push_back({n, tier, samples[samples.size() / 2], last_counters,
                                 remote_hits});
        }
    }

    const CacheDaemonStats daemon_stats = cache_daemon.stats();
    cache_listener.close();
    cache_thread.join();

    TextTable table({"scenario", "seconds", "speedup vs local", "remote hits"});
    table.add_row({"local (1 thread)", fmt_fixed(local_seconds, 4), "-", "-"});
    for (const auto& s : scenarios) {
        table.add_row({std::to_string(s.workers) + " worker" + (s.workers > 1 ? "s" : "") +
                           (s.tier ? " +tier" : ""),
                       fmt_fixed(s.seconds, 4),
                       fmt_fixed(local_seconds / s.seconds, 2) + "x",
                       s.tier ? std::to_string(s.remote_hits) : std::string("-")});
    }
    table.print(std::cout);
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4) {
        std::cout << "note: only " << cores
                  << " hardware thread(s) — in-process replicas share them, so wall-clock "
                     "speedup is bounded by the core count, not the worker count\n";
    }

    // Per-worker counters from the widest cold topology: the shard plan is
    // fixed, so dispatch should spread across the whole fleet.
    const Scenario& widest = scenarios[2];  // 4 workers, tier off
    std::cout << "\n4-worker dispatch (cold, tier off):\n";
    for (const auto& w : widest.counters.workers) {
        std::cout << "  " << w.spec << ": " << w.dispatched << " dispatched, " << w.completed
                  << " completed, " << w.retried << " retried, " << w.bytes << " bytes, "
                  << fmt_fixed(w.busy_seconds, 3) << " s busy\n";
    }
    std::cout << "daemon: " << daemon_stats.entries << " entries, " << daemon_stats.gets
              << " gets (" << daemon_stats.hits << " hits), " << daemon_stats.puts
              << " puts\n";

    for (const auto& s : scenarios) {
        if (s.tier && s.remote_hits == 0) {
            std::cerr << "error: " << s.workers
                      << "-worker tier-on run recorded no remote hits — the tier went "
                         "unused\n";
            ok = false;
        }
        if (s.counters.local_shards != 0) {
            std::cerr << "error: " << s.workers << "-worker"
                      << (s.tier ? " +tier" : "")
                      << " run fell back locally on a healthy fleet\n";
            ok = false;
        }
    }

    if (args.json_path) {
        std::string json = "{\"bench\": \"cluster_sweep\",\n";
        json += " \"sweep\": {\"width\": 12, \"points\": " + std::to_string(ref_stats.points) +
                ", \"unique_designs\": " + std::to_string(ref_stats.hw_cache_misses) + "},\n";
        json += " \"repetitions\": " + std::to_string(repetitions) + ",\n";
        json += " \"hardware_threads\": " +
                std::to_string(std::thread::hardware_concurrency()) + ",\n";
        json += " \"local_seconds\": " + json_number(local_seconds) + ",\n";
        json += " \"byte_identical\": " + std::string(ok ? "true" : "false") + ",\n";
        json += " \"scenarios\": [\n";
        for (size_t i = 0; i < scenarios.size(); ++i) {
            const auto& s = scenarios[i];
            json += "  {\"workers\": " + std::to_string(s.workers) +
                    ", \"cache_tier\": " + (s.tier ? "true" : "false") +
                    ", \"seconds\": " + json_number(s.seconds) +
                    ", \"speedup\": " + json_number(local_seconds / s.seconds) +
                    ", \"remote_hits\": " + std::to_string(s.remote_hits) + "}";
            json += (i + 1 < scenarios.size()) ? ",\n" : "\n";
        }
        json += " ],\n";
        json += " \"daemon\": {\"entries\": " + std::to_string(daemon_stats.entries) +
                ", \"gets\": " + std::to_string(daemon_stats.gets) + ", \"hits\": " +
                std::to_string(daemon_stats.hits) + ", \"puts\": " +
                std::to_string(daemon_stats.puts) + "}\n}\n";
        std::ofstream out(*args.json_path, std::ios::binary);
        out << json;
        std::cout << "JSON written to " << *args.json_path << "\n";
    }
    return ok ? 0 : 1;
}
