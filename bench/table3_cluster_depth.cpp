// Reproduces paper Table III: error metrics of the 8x8 SDLC multiplier for
// cluster depths 2, 3 and 4 (exhaustive over all 65,536 operand pairs).
#include <iostream>

#include "bench_util.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/csv.h"
#include "util/table.h"

namespace {

struct PaperRow {
    int depth;
    const char* mred;
    const char* nmed;
    const char* er;
    const char* maxred;
};

constexpr PaperRow kPaper[] = {
    {2, "1.9883", "0.0035", "49.11", "33.2"},
    {3, "4.6847", "0.0101", "65.73", "42.69"},
    {4, "10.5836", "0.0327", "77.57", "46.48"},
};

}  // namespace

int main(int argc, char** argv) {
    using namespace sdlc;
    const auto args = bench::BenchArgs::parse(argc, argv);
    bench::print_header(
        "Table III — error vs logic-compression depth, 8x8 SDLC multiplier",
        "Deeper clusters raise ER sharply but MRED/NMED only moderately.");

    TextTable t({"Cluster-Depth", "MRED(%) paper", "MRED(%) meas", "NMED paper", "NMED meas",
                 "ER(%) paper", "ER(%) meas", "MAXRED(%) paper", "MAXRED(%) meas"});

    std::vector<std::vector<std::string>> csv_rows;
    for (const auto& row : kPaper) {
        const ClusterPlan plan = ClusterPlan::make(8, row.depth);
        const ErrorMetrics m = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        t.add_row({std::to_string(row.depth) + "-bit", row.mred, fmt_fixed(m.mred * 100.0, 4),
                   row.nmed, fmt_fixed(m.nmed, 4), row.er,
                   fmt_fixed(m.error_rate * 100.0, 2), row.maxred,
                   fmt_fixed(m.max_red * 100.0, 2)});
        csv_rows.push_back({std::to_string(row.depth), fmt_fixed(m.mred * 100.0, 5),
                            fmt_fixed(m.nmed, 5), fmt_fixed(m.error_rate * 100.0, 3),
                            fmt_fixed(m.max_red * 100.0, 3)});
    }
    t.print(std::cout);

    if (args.csv_path) {
        CsvWriter csv(*args.csv_path);
        csv.write_row({"depth", "mred_pct", "nmed", "er_pct", "maxred_pct"});
        for (const auto& r : csv_rows) csv.write_row(r);
        std::cout << "CSV written to " << *args.csv_path << "\n";
    }
    return 0;
}
