// Runner for the vendored fallback micro-benchmark harness; see
// bench/fallback/benchmark/benchmark.h.
#include "benchmark/benchmark.h"

#include <cstdio>
#include <memory>

namespace benchmark {

double State::elapsed_seconds() const {
    return std::chrono::duration<double>(stop_ - start_).count();
}

bool State::keep_running() {
    if (!started_) {
        started_ = true;
        iterations_ = 0;
        check_at_ = 64;
        start_ = std::chrono::steady_clock::now();
        return true;
    }
    ++iterations_;
    if (iterations_ < check_at_) return true;
    // Read the clock only at geometrically spaced checkpoints so the timing
    // overhead stays far below the measured work.
    stop_ = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(stop_ - start_).count() >= min_seconds_) return false;
    check_at_ *= 2;
    return true;
}

namespace internal {

namespace {

std::vector<std::unique_ptr<Benchmark>>& registry() {
    static std::vector<std::unique_ptr<Benchmark>> benches;
    return benches;
}

}  // namespace

Benchmark::Benchmark(std::string name, Function fn) : name_(std::move(name)), fn_(fn) {}

Benchmark* Benchmark::Arg(int64_t x) {
    args_.push_back({x});
    return this;
}

Benchmark* register_benchmark(std::string name, Function fn) {
    registry().push_back(std::make_unique<Benchmark>(std::move(name), fn));
    return registry().back().get();
}

}  // namespace internal

int run_all_benchmarks() {
    std::printf("%-32s %15s %15s %15s\n", "benchmark", "iterations", "ns/op", "items/s");
    std::printf("--------------------------------------------------------------------------------\n");
    for (const auto& bench : internal::registry()) {
        // No ->Arg() calls means one run with no arguments.
        std::vector<std::vector<int64_t>> arg_sets = bench->arg_sets();
        if (arg_sets.empty()) arg_sets.push_back({});
        for (const std::vector<int64_t>& args : arg_sets) {
            std::string label = bench->name();
            for (const int64_t a : args) label += "/" + std::to_string(a);
            State state(args, /*min_seconds=*/0.25);
            bench->function()(state);
            const double secs = state.elapsed_seconds();
            const double iters = static_cast<double>(state.iterations());
            const double ns_per_op = iters > 0 ? secs * 1e9 / iters : 0.0;
            if (state.items_processed() > 0) {
                // SetItemsProcessed reports the total across all iterations.
                const double items_per_sec =
                    static_cast<double>(state.items_processed()) / (secs > 0 ? secs : 1.0);
                std::printf("%-32s %15.0f %15.1f %15.3e\n", label.c_str(), iters, ns_per_op,
                            items_per_sec);
            } else {
                std::printf("%-32s %15.0f %15.1f %15s\n", label.c_str(), iters, ns_per_op, "-");
            }
        }
    }
    return 0;
}

}  // namespace benchmark

int main() { return benchmark::run_all_benchmarks(); }
