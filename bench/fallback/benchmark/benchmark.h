// Vendored fallback micro-benchmark harness (drop-in for the subset of the
// Google Benchmark API this repository uses).
//
// When CMake does not find the real library, bench_perf_functional (and any
// future google-benchmark-style bench) compiles against this header and
// links bench/fallback/minibench.cpp instead of being skipped. The harness
// is timer-based: each benchmark runs in growing batches until it has
// accumulated a minimum wall time, then reports ns/op (and items/s when
// SetItemsProcessed was called). Registration order is preserved; ->Arg(x)
// registers one variant per argument like the real library.
//
// Supported surface: BENCHMARK(fn)->Arg(n), benchmark::State range-for
// iteration, State::range(i), State::iterations(), State::SetItemsProcessed,
// DoNotOptimize, ClobberMemory, and a main() provided by the library (the
// real package's benchmark::benchmark_main equivalent).
#ifndef SDLC_BENCH_FALLBACK_BENCHMARK_H
#define SDLC_BENCH_FALLBACK_BENCHMARK_H

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace benchmark {

namespace internal {
class Benchmark;
}

/// Per-run state handed to the benchmark function; iterate it range-for.
class State {
public:
    State(std::vector<int64_t> args, double min_seconds)
        : args_(std::move(args)), min_seconds_(min_seconds) {}

    struct Iterator {
        State* state;
        bool operator!=(const Iterator&) const { return state->keep_running(); }
        void operator++() {}
        int operator*() const { return 0; }
    };
    Iterator begin() { return {this}; }
    Iterator end() { return {nullptr}; }

    [[nodiscard]] int64_t range(size_t i = 0) const {
        return i < args_.size() ? args_[i] : 0;
    }
    [[nodiscard]] int64_t iterations() const { return iterations_; }
    void SetItemsProcessed(int64_t n) { items_processed_ = n; }

    // --- harness-internal results (read by the runner) -------------------
    [[nodiscard]] double elapsed_seconds() const;
    [[nodiscard]] int64_t items_processed() const { return items_processed_; }

private:
    bool keep_running();

    std::vector<int64_t> args_;
    double min_seconds_ = 0.25;
    int64_t iterations_ = 0;
    int64_t check_at_ = 1;  ///< next iteration count at which to read the clock
    int64_t items_processed_ = 0;
    bool started_ = false;
    std::chrono::steady_clock::time_point start_{};
    std::chrono::steady_clock::time_point stop_{};
};

using Function = void (*)(State&);

namespace internal {

/// One registered benchmark; ->Arg(x) adds argument variants.
class Benchmark {
public:
    Benchmark(std::string name, Function fn);
    Benchmark* Arg(int64_t x);

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] Function function() const { return fn_; }
    [[nodiscard]] const std::vector<std::vector<int64_t>>& arg_sets() const { return args_; }

private:
    std::string name_;
    Function fn_;
    std::vector<std::vector<int64_t>> args_;
};

Benchmark* register_benchmark(std::string name, Function fn);

}  // namespace internal

/// Runs every registered benchmark and prints the report table.
/// Returns 0 (the fallback has no failure modes worth a nonzero exit).
int run_all_benchmarks();

/// Prevents the compiler from optimizing away a computed value.
template <typename T>
inline void DoNotOptimize(T&& value) {
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "g"(value) : "memory");
#else
    static volatile const void* sink;
    sink = &value;
#endif
}

/// Forces all pending writes to memory.
inline void ClobberMemory() {
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : : "memory");
#endif
}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT2(a, b) a##b
#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT2(a, b)
#define BENCHMARK(fn)                                              \
    static ::benchmark::internal::Benchmark* BENCHMARK_PRIVATE_CONCAT( \
        benchmark_registration_, __LINE__) =                       \
        ::benchmark::internal::register_benchmark(#fn, fn)

#endif  // SDLC_BENCH_FALLBACK_BENCHMARK_H
