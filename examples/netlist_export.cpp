// Exports generated multipliers as structural Verilog (and a small one as
// Graphviz DOT), the same artifact the paper's SystemVerilog generator
// produced for Design Compiler.
//
//   $ ./example_netlist_export [width] [depth]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "baselines/accurate.h"
#include "core/generator.h"
#include "netlist/export.h"
#include "netlist/testbench.h"
#include "netlist/opt.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const int width = argc > 1 ? std::atoi(argv[1]) : 8;
    const int depth = argc > 2 ? std::atoi(argv[2]) : 2;

    SdlcOptions opts;
    opts.depth = depth;
    const MultiplierNetlist sdlc_mul = build_sdlc_multiplier(width, opts);
    const MultiplierNetlist exact_mul = build_accurate_multiplier(width);

    const Netlist sdlc_opt = optimize(sdlc_mul.net).netlist;

    {
        std::ofstream f("sdlc_mul.v");
        write_verilog(f, sdlc_opt, "sdlc_mul_" + std::to_string(width) + "x" +
                                       std::to_string(width) + "_d" + std::to_string(depth));
    }
    {
        std::ofstream f("accurate_mul.v");
        write_verilog(f, optimize(exact_mul.net).netlist,
                      "accurate_mul_" + std::to_string(width) + "x" + std::to_string(width));
    }
    std::cout << "Wrote sdlc_mul.v (" << sdlc_opt.logic_gate_count() << " gates) and "
              << "accurate_mul.v (" << optimize(exact_mul.net).netlist.logic_gate_count()
              << " gates)\n";

    // Self-checking testbench for the exported SDLC module.
    {
        std::ofstream f("sdlc_mul_tb.sv");
        TestbenchOptions tb_opts;
        tb_opts.vectors = 512;
        write_verilog_testbench(f, sdlc_opt,
                                "sdlc_mul_" + std::to_string(width) + "x" +
                                    std::to_string(width) + "_d" + std::to_string(depth),
                                tb_opts);
    }
    std::cout << "Wrote sdlc_mul_tb.sv (self-checking, 512 golden vectors)\n";

    // A 4x4 DOT graph stays small enough to render.
    SdlcOptions small;
    const MultiplierNetlist tiny = build_sdlc_multiplier(4, small);
    std::ofstream dot("sdlc_mul_4x4.dot");
    write_dot(dot, optimize(tiny.net).netlist, "sdlc_mul_4x4");
    std::cout << "Wrote sdlc_mul_4x4.dot (render with: dot -Tpng sdlc_mul_4x4.dot)\n";
    return 0;
}
