// Dot-product accumulation demo: why one-sided error matters.
//
// SDLC's error is strictly negative (carries are only ever lost), so in a
// long accumulation — dot products, convolutions, FIR filters — the error
// grows linearly with the number of terms instead of averaging out. The
// compensated variant centres the per-product error and the accumulated
// result stays close to exact. This demo quantifies both effects.
//
//   $ ./example_dot_product [terms]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "api/approx_multiplier.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;
    const int terms = argc > 1 ? std::atoi(argv[1]) : 4096;

    Xoshiro256 rng(20240612);
    std::vector<uint8_t> x(static_cast<size_t>(terms)), y(x.size());
    for (auto& v : x) v = static_cast<uint8_t>(rng.next());
    for (auto& v : y) v = static_cast<uint8_t>(rng.next());

    std::cout << "Dot product of two random uint8 vectors, " << terms << " terms\n\n";

    MultiplierConfig accurate_cfg;
    accurate_cfg.variant = MultiplierVariant::kAccurate;
    const ApproxMultiplier accurate(accurate_cfg);

    uint64_t exact = 0;
    for (int i = 0; i < terms; ++i) exact += accurate.multiply(x[i], y[i]);
    std::cout << "exact result: " << exact << "\n\n";

    TextTable t({"Multiplier", "result", "abs error", "rel error(%)"});
    for (const MultiplierVariant variant :
         {MultiplierVariant::kSdlc, MultiplierVariant::kCompensated}) {
        for (const int depth : {2, 3, 4}) {
            MultiplierConfig cfg;
            cfg.depth = depth;
            cfg.variant = variant;
            const ApproxMultiplier mul(cfg);
            uint64_t acc = 0;
            for (int i = 0; i < terms; ++i) acc += mul.multiply(x[i], y[i]);
            const double err = std::abs(static_cast<double>(acc) - static_cast<double>(exact));
            t.add_row({mul.describe(), std::to_string(acc), fmt_fixed(err, 0),
                       fmt_fixed(100.0 * err / static_cast<double>(exact), 3)});
        }
    }
    t.print(std::cout);

    std::cout << "\nReading: the plain SDLC error accumulates linearly (one-sided),\n"
                 "while the compensated variant's centred error largely cancels.\n";
    return 0;
}
