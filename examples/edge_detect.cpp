// Edge detection with signed approximate multiplication.
//
// Gradient operators contain negative weights, so this example exercises
// the library's signed (two's-complement) SDLC extension in a second
// realistic image workload: gradient = |Gx| + |Gy|, with every pixel x
// weight product routed through sdlc_multiply_signed.
//
// Two operators are compared:
//  * Sobel (weights 0/±1/±2): every weight magnitude is a single set bit,
//    so SDLC is provably exact — a free lunch for small-constant kernels.
//  * Scharr (weights 0/±3/±10): 3 = 0b11 has adjacent bits and 10 = 0b1010
//    activates row pairs, so the approximation is genuinely exercised.
//
//   $ ./example_edge_detect [input.pgm]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/signed_mul.h"
#include "image/image.h"
#include "image/synthetic.h"
#include "util/table.h"

namespace {

using namespace sdlc;

constexpr int kSobelX[9] = {-1, 0, 1, -2, 0, 2, -1, 0, 1};
constexpr int kSobelY[9] = {-1, -2, -1, 0, 0, 0, 1, 2, 1};
constexpr int kScharrX[9] = {-3, 0, 3, -10, 0, 10, -3, 0, 3};
constexpr int kScharrY[9] = {-3, -10, -3, 0, 0, 0, 3, 10, 3};

/// Computes a gradient-magnitude image with the given signed multiplier.
template <typename MulFn>
Image gradient(const Image& in, const int* gx_k, const int* gy_k, int divisor, MulFn mul) {
    Image out(in.width(), in.height());
    for (int y = 0; y < in.height(); ++y) {
        for (int x = 0; x < in.width(); ++x) {
            int64_t gx = 0, gy = 0;
            for (int ky = -1; ky <= 1; ++ky) {
                for (int kx = -1; kx <= 1; ++kx) {
                    const int64_t px = in.at_clamped(x + kx, y + ky);
                    const int idx = (ky + 1) * 3 + (kx + 1);
                    gx += mul(px, gx_k[idx]);
                    gy += mul(px, gy_k[idx]);
                }
            }
            const int64_t mag = (std::abs(gx) + std::abs(gy)) / divisor;
            out.set(x, y, static_cast<uint8_t>(std::clamp<int64_t>(mag, 0, 255)));
        }
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    Image input = argc > 1 ? load_pgm(argv[1]) : make_scene(200, 200, 77);
    std::cout << "Edge detection, " << input.width() << "x" << input.height()
              << " input (signed SDLC multipliers, 10-bit plans)\n\n";
    save_pgm(input, "edge_input.pgm");

    auto exact = [](int64_t px, int w) { return px * static_cast<int64_t>(w); };
    const Image sobel_ref = gradient(input, kSobelX, kSobelY, 8, exact);
    const Image scharr_ref = gradient(input, kScharrX, kScharrY, 32, exact);
    save_pgm(sobel_ref, "edge_sobel_exact.pgm");
    save_pgm(scharr_ref, "edge_scharr_exact.pgm");

    TextTable t({"Operator", "Multiplier", "PSNR vs exact edges (dB)", "output"});
    for (const int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(10, depth);
        auto approx = [&plan](int64_t px, int w) {
            return sdlc_multiply_signed(plan, px, w);
        };
        const Image sobel_out = gradient(input, kSobelX, kSobelY, 8, approx);
        const Image scharr_out = gradient(input, kScharrX, kScharrY, 32, approx);
        const std::string file = "edge_scharr_sdlc_d" + std::to_string(depth) + ".pgm";
        save_pgm(scharr_out, file);
        const double p_sobel = psnr(sobel_ref, sobel_out);
        const double p_scharr = psnr(scharr_ref, scharr_out);
        t.add_row({"Sobel", "signed SDLC d" + std::to_string(depth),
                   std::isinf(p_sobel) ? "inf (exact)" : fmt_fixed(p_sobel, 1), "-"});
        t.add_row({"Scharr", "signed SDLC d" + std::to_string(depth),
                   std::isinf(p_scharr) ? "inf (exact)" : fmt_fixed(p_scharr, 1), file});
    }
    t.print(std::cout);
    std::cout << "\nReading: Sobel's single-bit weight magnitudes make SDLC exact at any\n"
                 "depth; Scharr's multi-bit weights (3 = 0b11, 10 = 0b1010) exercise the\n"
                 "compression and show the usual quality-vs-depth trade-off.\n";
    return 0;
}
