// Quickstart: build an 8x8 SDLC approximate multiplier, multiply a few
// numbers, inspect its error statistics and synthesize it against the
// bundled 90nm-style cell library.
//
//   $ ./example_quickstart
#include <iostream>

#include "baselines/accurate.h"
#include "core/functional.h"
#include "core/generator.h"
#include "error/evaluate.h"
#include "tech/synthesis.h"
#include "util/table.h"

int main() {
    using namespace sdlc;

    // 1. A compression plan: 8-bit operands, 2-row logic clusters.
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    std::cout << "Plan: " << plan.describe() << "\n\n";

    // 2. The functional model: instant approximate products.
    std::cout << "Some products (approx vs exact):\n";
    for (const auto& [a, b] :
         {std::pair<int, int>{3, 3}, {13, 17}, {100, 200}, {255, 255}}) {
        const uint64_t approx = sdlc_multiply(plan, a, b);
        std::cout << "  " << a << " * " << b << " = " << approx << " (exact " << a * b
                  << ", ED " << a * b - static_cast<long>(approx) << ")\n";
    }

    // 3. Exhaustive error metrics over all 65,536 operand pairs.
    const ErrorMetrics m = exhaustive_metrics(
        8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
    std::cout << "\nExhaustive error metrics (8-bit, depth 2):\n"
              << "  MRED     = " << fmt_percent(m.mred, 3) << " %\n"
              << "  NMED     = " << fmt_fixed(m.nmed, 6) << "\n"
              << "  ER       = " << fmt_percent(m.error_rate, 2) << " %\n"
              << "  MAX(RED) = " << fmt_percent(m.max_red, 2) << " %\n";

    // 4. Generate gate-level hardware and compare against the accurate design.
    const MultiplierNetlist approx_hw = build_sdlc_multiplier(8, {});
    const MultiplierNetlist exact_hw = build_accurate_multiplier(8);
    const CellLibrary lib = CellLibrary::generic_90nm();
    const SynthesisReport ra = synthesize(approx_hw.net, lib);
    const SynthesisReport re = synthesize(exact_hw.net, lib);

    std::cout << "\nVirtual synthesis (" << lib.name() << "):\n"
              << "  accurate: " << summarize(re) << "\n"
              << "  sdlc d=2: " << summarize(ra) << "\n"
              << "  area  reduction: " << fmt_percent(SynthesisReport::reduction(re.area_um2, ra.area_um2), 1) << " %\n"
              << "  delay reduction: " << fmt_percent(SynthesisReport::reduction(re.delay_ps, ra.delay_ps), 1) << " %\n"
              << "  energy reduction: " << fmt_percent(SynthesisReport::reduction(re.energy_fj, ra.energy_fj), 1) << " %\n";
    return 0;
}
