// Design-space exploration: sweeps width x cluster depth, reporting the
// energy-accuracy trade-off of every configuration so a designer can pick
// an operating point (the paper's "configurable logic clustering" knob).
//
//   $ ./example_design_space
#include <iostream>

#include "baselines/accurate.h"
#include "core/functional.h"
#include "core/generator.h"
#include "error/evaluate.h"
#include "tech/synthesis.h"
#include "util/table.h"

int main() {
    using namespace sdlc;
    const CellLibrary lib = CellLibrary::generic_90nm();

    std::cout << "SDLC design-space sweep: width x cluster depth\n"
              << "(error metrics exhaustive for width <= 10, else 2^20-sample)\n\n";

    TextTable t({"Width", "Depth", "MRED(%)", "ER(%)", "Area red(%)", "Energy red(%)",
                 "Delay red(%)"});
    for (const int width : {8, 10, 12, 16}) {
        const SynthesisReport acc = synthesize(build_accurate_multiplier(width).net, lib);
        for (const int depth : {2, 3, 4}) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            auto mul = [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); };
            const ErrorMetrics m = width <= 10 ? exhaustive_metrics(width, mul)
                                               : sampled_metrics(width, 1u << 20, 99, mul);
            SdlcOptions opts;
            opts.depth = depth;
            const SynthesisReport r = synthesize(build_sdlc_multiplier(width, opts).net, lib);
            t.add_row({std::to_string(width), std::to_string(depth),
                       fmt_percent(m.mred, 3), fmt_percent(m.error_rate, 1),
                       fmt_percent(SynthesisReport::reduction(acc.area_um2, r.area_um2), 1),
                       fmt_percent(SynthesisReport::reduction(acc.energy_fj, r.energy_fj), 1),
                       fmt_percent(SynthesisReport::reduction(acc.delay_ps, r.delay_ps), 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nReading guide: move down (deeper clusters) for energy, up for accuracy;\n"
                 "wider multipliers give better accuracy at the same relative savings.\n";
    return 0;
}
