// Gaussian-blur demo (the paper's case study, Section IV).
//
// Blurs a synthetic 200x200 scene with the exact multiplier and with SDLC
// multipliers of depth 2/3/4, writes all outputs as PGM files and prints
// the PSNR of each approximate result against the exact blur.
//
//   $ ./example_image_blur [input.pgm]
#include <cmath>
#include <iostream>

#include "core/functional.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/synthetic.h"
#include "util/table.h"

int main(int argc, char** argv) {
    using namespace sdlc;

    Image input;
    if (argc > 1) {
        input = load_pgm(argv[1]);
        std::cout << "Loaded " << argv[1] << " (" << input.width() << "x" << input.height()
                  << ")\n";
    } else {
        input = make_scene(200, 200, 42);
        std::cout << "No input given: generated a synthetic 200x200 scene\n";
    }
    save_pgm(input, "demo_input.pgm");

    const FixedKernel kernel = make_gaussian_kernel(3, 1.5);
    std::cout << "Gaussian kernel 3x3, sigma 1.5, Q0.8 weights (sum "
              << kernel.weight_sum() << "):\n";
    for (int y = 0; y < 3; ++y) {
        std::cout << "  ";
        for (int x = 0; x < 3; ++x) std::cout << static_cast<int>(kernel.at(x, y)) << " ";
        std::cout << "\n";
    }

    const Image reference = convolve(input, kernel, exact_mul8);
    save_pgm(reference, "demo_blur_exact.pgm");

    TextTable t({"Multiplier", "PSNR vs exact blur (dB)", "output file"});
    for (const int depth : {2, 3, 4}) {
        // Pixel-first operand order (SDLC clustering is operand-asymmetric;
        // see EXPERIMENTS.md Figure 8 discussion for the alternative).
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const Image out = convolve(input, kernel, [&](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
        });
        const std::string file = "demo_blur_sdlc_d" + std::to_string(depth) + ".pgm";
        save_pgm(out, file);
        const double p = psnr(reference, out);
        t.add_row({"SDLC depth " + std::to_string(depth),
                   std::isinf(p) ? "inf" : fmt_fixed(p, 1), file});
    }
    t.print(std::cout);
    std::cout << "Wrote demo_input.pgm, demo_blur_exact.pgm and the three SDLC outputs.\n";
    return 0;
}
