// Pareto exploration walkthrough: sweep every 8-bit multiplier configuration
// in parallel, extract the (error, area, power, delay) Pareto frontier, and
// pick operating points for three different accuracy budgets — the workflow
// a hardware designer follows when choosing an SDLC operating point.
//
//   $ ./example_pareto_explore
#include <iostream>

#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "util/table.h"

int main() {
    using namespace sdlc;

    // 1. Describe the space: all depths, variants and accumulation schemes
    //    at 8 bits. enumerate() would list the concrete configs.
    const SweepSpec spec = SweepSpec::for_width(8);
    std::cout << "sweep: " << spec.describe() << "\n"
              << spec.count() << " configurations\n\n";

    // 2. Evaluate every point in parallel. Error metrics are exhaustive at
    //    8 bits (all 65536 operand pairs); hardware cost comes from the
    //    virtual-synthesis flow. Results are deterministic for any thread
    //    count.
    const std::vector<DesignPoint> points = evaluate_sweep(spec);

    // 3. Rank by Pareto dominance over (NMED, area, power, delay).
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));

    TextTable t({"config", "NMED", "area(um2)", "power(uW)", "delay(ps)"});
    for (size_t i : pareto.frontier) {
        const DesignPoint& p = points[i];
        t.add_row({p.describe(), fmt_fixed(p.error.nmed, 8), fmt_fixed(p.hw.area_um2, 1),
                   fmt_fixed(p.hw.dynamic_power_uw, 2), fmt_fixed(p.hw.delay_ps, 1)});
    }
    std::cout << "Pareto frontier (" << pareto.frontier.size() << " of " << points.size()
              << " points):\n";
    t.print(std::cout);

    // 4. Pick operating points: the cheapest design meeting each error
    //    budget. Walking only the frontier is sufficient — any feasible
    //    off-frontier design is dominated by a feasible frontier design.
    std::cout << "\ncheapest design per NMED budget:\n";
    for (const double budget : {0.0, 0.005, 0.05}) {
        const DesignPoint* best = nullptr;
        for (size_t i : pareto.frontier) {
            const DesignPoint& p = points[i];
            if (p.error.nmed > budget) continue;
            if (!best || p.hw.area_um2 < best->hw.area_um2) best = &p;
        }
        std::cout << "  NMED <= " << fmt_fixed(budget, 3) << ": ";
        if (best) {
            std::cout << best->describe() << "  (area " << fmt_fixed(best->hw.area_um2, 1)
                      << " um2, energy " << fmt_fixed(best->hw.energy_fj, 1) << " fJ)\n";
        } else {
            std::cout << "no feasible design\n";
        }
    }

    // 5. Export for plotting / downstream tooling.
    write_dse_csv("pareto_explore.csv", points, pareto.rank);
    std::cout << "\nfull sweep with ranks -> pareto_explore.csv\n";
    return 0;
}
