// Tests for error metrics, evaluators and the RED histogram.
#include <gtest/gtest.h>

#include <cmath>

#include "error/evaluate.h"
#include "error/histogram.h"
#include "error/metrics.h"

namespace sdlc {
namespace {

TEST(ErrorAccumulator, ZeroSamplesYieldZeroMetrics) {
    ErrorAccumulator acc(8);
    const ErrorMetrics m = acc.finalize();
    EXPECT_EQ(m.samples, 0u);
    EXPECT_EQ(m.mred, 0.0);
    EXPECT_EQ(m.error_rate, 0.0);
}

TEST(ErrorAccumulator, HandComputedMetrics) {
    ErrorAccumulator acc(4);  // Pmax = 225
    acc.add(100, 100);        // exact
    acc.add(100, 90);         // ED 10, RED 0.1
    acc.add(50, 40);          // ED 10, RED 0.2
    acc.add(10, 15);          // ED 5 (overshoot), RED 0.5
    const ErrorMetrics m = acc.finalize();
    EXPECT_EQ(m.samples, 4u);
    EXPECT_DOUBLE_EQ(m.error_rate, 0.75);
    EXPECT_DOUBLE_EQ(m.med, 25.0 / 4.0);
    EXPECT_DOUBLE_EQ(m.nmed, 25.0 / 4.0 / 225.0);
    EXPECT_DOUBLE_EQ(m.mred, (0.1 + 0.2 + 0.5) / 4.0);
    EXPECT_DOUBLE_EQ(m.max_red, 0.5);
    EXPECT_EQ(m.max_ed, 10u);
    EXPECT_DOUBLE_EQ(m.bias, (-10.0 - 10.0 + 5.0) / 4.0);
    EXPECT_DOUBLE_EQ(m.rmse, std::sqrt((100.0 + 100.0 + 25.0) / 4.0));
}

TEST(ErrorAccumulator, BiasAndRmseMergeConsistently) {
    ErrorAccumulator all(8), p1(8), p2(8);
    all.add(100, 90);
    all.add(30, 45);
    p1.add(100, 90);
    p2.add(30, 45);
    p1.merge(p2);
    const ErrorMetrics ma = all.finalize();
    const ErrorMetrics mm = p1.finalize();
    EXPECT_DOUBLE_EQ(ma.bias, mm.bias);
    EXPECT_DOUBLE_EQ(ma.rmse, mm.rmse);
}

TEST(ErrorAccumulator, ZeroExactConvention) {
    ErrorAccumulator acc(4);
    acc.add(0, 0);  // exact at zero: no error
    acc.add(0, 3);  // erroneous at zero: RED counts as 1
    const ErrorMetrics m = acc.finalize();
    EXPECT_DOUBLE_EQ(m.error_rate, 0.5);
    EXPECT_DOUBLE_EQ(m.mred, 0.5);
    EXPECT_DOUBLE_EQ(m.max_red, 1.0);
}

TEST(ErrorAccumulator, MergeEqualsSequential) {
    ErrorAccumulator all(8), part1(8), part2(8);
    const std::pair<uint64_t, uint64_t> pairs[] = {
        {100, 90}, {7, 7}, {200, 180}, {33, 30}, {1000, 999}, {64, 64}};
    int i = 0;
    for (const auto& [e, a] : pairs) {
        all.add(e, a);
        (i++ % 2 ? part2 : part1).add(e, a);
    }
    part1.merge(part2);
    const ErrorMetrics ma = all.finalize();
    const ErrorMetrics mm = part1.finalize();
    EXPECT_DOUBLE_EQ(ma.mred, mm.mred);
    EXPECT_DOUBLE_EQ(ma.med, mm.med);
    EXPECT_DOUBLE_EQ(ma.error_rate, mm.error_rate);
    EXPECT_EQ(ma.max_ed, mm.max_ed);
    EXPECT_EQ(ma.samples, mm.samples);
}

TEST(ErrorAccumulator, RejectsBadWidth) {
    EXPECT_THROW(ErrorAccumulator(0), std::invalid_argument);
    EXPECT_THROW(ErrorAccumulator(33), std::invalid_argument);
}

TEST(Exhaustive, ExactMultiplierHasNoError) {
    const ErrorMetrics m =
        exhaustive_metrics(6, [](uint64_t a, uint64_t b) { return a * b; });
    EXPECT_EQ(m.samples, 4096u);
    EXPECT_EQ(m.error_rate, 0.0);
    EXPECT_EQ(m.mred, 0.0);
}

TEST(Exhaustive, ThreadCountDoesNotChangeResult) {
    auto approx = [](uint64_t a, uint64_t b) { return (a * b) & ~uint64_t{1}; };
    const ErrorMetrics m1 = exhaustive_metrics(7, approx, 1);
    const ErrorMetrics m4 = exhaustive_metrics(7, approx, 4);
    EXPECT_DOUBLE_EQ(m1.mred, m4.mred);
    EXPECT_DOUBLE_EQ(m1.med, m4.med);
    EXPECT_EQ(m1.samples, m4.samples);
    EXPECT_DOUBLE_EQ(m1.error_rate, m4.error_rate);
}

TEST(Exhaustive, CountsAllPairs) {
    const ErrorMetrics m =
        exhaustive_metrics(5, [](uint64_t a, uint64_t b) { return a * b; });
    EXPECT_EQ(m.samples, 1024u);
}

TEST(Sampled, DeterministicForSeed) {
    auto approx = [](uint64_t a, uint64_t b) { return a * b - ((a & b) & 1u); };
    const ErrorMetrics m1 = sampled_metrics(8, 10000, 42, approx);
    const ErrorMetrics m2 = sampled_metrics(8, 10000, 42, approx);
    EXPECT_DOUBLE_EQ(m1.mred, m2.mred);
    EXPECT_EQ(m1.samples, 10000u);
}

TEST(Sampled, ApproximatesExhaustive) {
    auto approx = [](uint64_t a, uint64_t b) {
        const uint64_t p = a * b;
        return p - (p & 3u);  // drop two LSBs
    };
    const ErrorMetrics ex = exhaustive_metrics(8, approx);
    const ErrorMetrics sa = sampled_metrics(8, 1u << 20, 7, approx);
    EXPECT_NEAR(sa.mred, ex.mred, ex.mred * 0.05);
    EXPECT_NEAR(sa.error_rate, ex.error_rate, 0.01);
}

TEST(Histogram, BinsByPercentage) {
    RedHistogram h(34);
    h.add(100, 100);  // RED 0 % -> bin 0
    h.add(100, 99);   // 1 % -> bin 1
    h.add(100, 67);   // 33 % -> bin 33
    h.add(100, 50);   // 50 % -> overflow
    h.add(0, 5);      // P=0 convention: 100 % -> overflow
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(33), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, BoundaryFallsIntoUpperBin) {
    RedHistogram h(34);
    h.add(100, 98);  // exactly 2 % -> bin 2
    EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, ProbabilitiesSumToOne) {
    RedHistogram h(10);
    for (uint64_t i = 1; i <= 100; ++i) h.add(100, 100 - (i % 13));
    const auto p = h.probabilities();
    double sum = 0.0;
    for (const double v : p) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, MergeAddsCounts) {
    RedHistogram a(10), b(10);
    a.add(100, 95);
    b.add(100, 95);
    b.add(100, 100);
    a.merge(b);
    EXPECT_EQ(a.total(), 3u);
    EXPECT_EQ(a.count(5), 2u);
    EXPECT_EQ(a.count(0), 1u);
    RedHistogram c(5);
    EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, RejectsNonPositiveBins) {
    EXPECT_THROW(RedHistogram(0), std::invalid_argument);
}

}  // namespace
}  // namespace sdlc
