// Tests for the design-space exploration subsystem: dominance logic, sweep
// enumeration, evaluator determinism under threading, and result export.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/sweep.h"
#include "dse/thread_pool.h"

namespace sdlc {
namespace {

// ---------------------------------------------------------------- pareto ----

TEST(Pareto, DominatesRequiresStrictImprovement) {
    const ObjectiveVector a{1.0, 2.0, 3.0, 4.0};
    const ObjectiveVector better{1.0, 2.0, 3.0, 3.5};
    const ObjectiveVector worse{1.0, 2.5, 3.0, 4.0};
    const ObjectiveVector mixed{0.5, 2.0, 3.0, 4.5};

    EXPECT_TRUE(dominates(better, a));
    EXPECT_FALSE(dominates(a, better));
    EXPECT_TRUE(dominates(a, worse));
    EXPECT_FALSE(dominates(a, a)) << "identical points must not dominate";
    EXPECT_FALSE(dominates(mixed, a)) << "trade-offs are incomparable";
    EXPECT_FALSE(dominates(a, mixed));
}

TEST(Pareto, FrontierOfHandCraftedSet) {
    // Points 0 and 1 trade off; 2 is dominated by 0; 3 duplicates 1.
    const std::vector<ObjectiveVector> pts = {
        {0.0, 10.0, 10.0, 10.0},
        {1.0, 1.0, 1.0, 1.0},
        {0.0, 11.0, 10.0, 10.0},
        {1.0, 1.0, 1.0, 1.0},
    };
    const std::vector<size_t> frontier = pareto_frontier(pts);
    EXPECT_EQ(frontier, (std::vector<size_t>{0, 1, 3}));
}

TEST(Pareto, RanksPeelLayers) {
    // A chain: each point strictly dominated by the previous one.
    const std::vector<ObjectiveVector> pts = {
        {3.0, 3.0, 3.0, 3.0},
        {1.0, 1.0, 1.0, 1.0},
        {2.0, 2.0, 2.0, 2.0},
    };
    const ParetoResult r = pareto_analysis(pts);
    EXPECT_EQ(r.rank, (std::vector<int>{2, 0, 1}));
    EXPECT_EQ(r.frontier, (std::vector<size_t>{1}));
}

TEST(Pareto, EmptyAndSingleton) {
    EXPECT_TRUE(pareto_analysis({}).frontier.empty());
    const ParetoResult r = pareto_analysis({{1.0, 1.0, 1.0, 1.0}});
    EXPECT_EQ(r.frontier, (std::vector<size_t>{0}));
    EXPECT_EQ(r.rank, (std::vector<int>{0}));
}

TEST(Pareto, ObjectiveNames) {
    EXPECT_STREQ(objective_name(Objective::kError), "error");
    EXPECT_STREQ(objective_name(Objective::kDelay), "delay");
    EXPECT_STREQ(objective_name(Objective::kEnergy), "energy");
    EXPECT_STREQ(objective_name(Objective::kMaxRed), "maxred");
}

TEST(Pareto, ObjectiveParserRoundTripsAndRejectsUnknown) {
    for (int i = 0; i < kAllObjectiveCount; ++i) {
        const Objective o = static_cast<Objective>(i);
        Objective parsed = Objective::kDelay;
        ASSERT_TRUE(parse_objective(objective_name(o), parsed));
        EXPECT_EQ(parsed, o);
    }
    Objective o = Objective::kArea;
    EXPECT_FALSE(parse_objective("bogus", o));
    EXPECT_EQ(o, Objective::kArea) << "failed parse must not modify out";
}

TEST(Pareto, ObjectiveSetParsing) {
    ObjectiveSet set;
    ASSERT_TRUE(parse_objective_set({"error", "energy", "maxred"}, set));
    EXPECT_EQ(set, (ObjectiveSet{Objective::kError, Objective::kEnergy, Objective::kMaxRed}));
    EXPECT_EQ(objective_set_name(set), "error,energy,maxred");

    std::string error;
    EXPECT_FALSE(parse_objective_set({}, set, &error)) << "empty set";
    EXPECT_FALSE(parse_objective_set({"error", "error"}, set, &error));
    EXPECT_NE(error.find("duplicate"), std::string::npos);
    EXPECT_FALSE(parse_objective_set({"watts"}, set, &error));
    EXPECT_EQ(default_objectives(),
              (ObjectiveSet{Objective::kError, Objective::kArea, Objective::kPower,
                            Objective::kDelay}));
}

TEST(Pareto, DominanceOverSelectedAxesOnly) {
    // b is worse on energy; over {error, area} the points tie exactly, so
    // neither dominates — but adding the energy axis separates them.
    const ObjectiveVector a{1.0, 2.0};
    const ObjectiveVector b{1.0, 2.0};
    EXPECT_FALSE(dominates(a, b));
    const ObjectiveVector a3{1.0, 2.0, 5.0};
    const ObjectiveVector b3{1.0, 2.0, 7.0};
    EXPECT_TRUE(dominates(a3, b3));
    EXPECT_FALSE(dominates(b3, a3));
}

// ----------------------------------------------------------------- sweep ----

TEST(SweepSpec, CountMatchesEnumerate) {
    for (const SweepSpec spec :
         {SweepSpec{}, SweepSpec::for_width(4), SweepSpec::for_width(16), SweepSpec::full()}) {
        EXPECT_EQ(spec.count(), spec.enumerate().size()) << spec.describe();
    }
}

TEST(SweepSpec, Width8DefaultCount) {
    // Per scheme: 1 accurate + 7 sdlc depths (2..8) + 7 compensated depths.
    const SweepSpec spec = SweepSpec::for_width(8);
    EXPECT_EQ(spec.count(), 4u * (1 + 7 + 7));
}

TEST(SweepSpec, AccurateIgnoresDepthRange) {
    SweepSpec spec = SweepSpec::for_width(8);
    spec.variants = {MultiplierVariant::kAccurate};
    EXPECT_EQ(spec.count(), spec.schemes.size());
    for (const MultiplierConfig& c : spec.enumerate()) EXPECT_EQ(c.depth, 1);
}

TEST(SweepSpec, DepthRangeClampsToWidth) {
    SweepSpec spec = SweepSpec::for_width(4);
    spec.variants = {MultiplierVariant::kSdlc};
    spec.schemes = {AccumulationScheme::kRowRipple};
    spec.max_depth = 100;  // clamped to the width
    const std::vector<MultiplierConfig> configs = spec.enumerate();
    ASSERT_EQ(configs.size(), 3u);  // depths 2, 3, 4
    EXPECT_EQ(configs.back().depth, 4);
}

TEST(SweepSpec, EnumerationOrderIsDeterministic) {
    const SweepSpec spec = SweepSpec::full();
    const auto a = spec.enumerate();
    const auto b = spec.enumerate();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].width, b[i].width);
        EXPECT_EQ(a[i].depth, b[i].depth);
        EXPECT_EQ(a[i].variant, b[i].variant);
        EXPECT_EQ(a[i].scheme, b[i].scheme);
    }
}

TEST(SweepSpec, EveryEnumeratedConfigIsBuildable) {
    for (const MultiplierConfig& c : SweepSpec::for_width(6).enumerate()) {
        EXPECT_NO_THROW({ (void)ApproxMultiplier(c); });
    }
}

TEST(SweepSpec, RejectsBadAxes) {
    SweepSpec spec;
    spec.widths.clear();
    EXPECT_THROW((void)spec.count(), std::invalid_argument);
    spec = SweepSpec{};
    spec.widths = {40};
    EXPECT_THROW((void)spec.enumerate(), std::invalid_argument);
    spec = SweepSpec{};
    spec.min_depth = 0;
    EXPECT_THROW((void)spec.enumerate(), std::invalid_argument);
    spec = SweepSpec{};
    spec.min_depth = 5;
    spec.max_depth = 3;
    EXPECT_THROW((void)spec.enumerate(), std::invalid_argument);
}

TEST(SweepSpec, VariantNames) {
    EXPECT_STREQ(multiplier_variant_name(MultiplierVariant::kAccurate), "accurate");
    EXPECT_STREQ(multiplier_variant_name(MultiplierVariant::kSdlc), "sdlc");
    EXPECT_STREQ(multiplier_variant_name(MultiplierVariant::kCompensated), "compensated");
}

TEST(SweepSpec, NameParsersRoundTripAndRejectUnknown) {
    for (MultiplierVariant v : {MultiplierVariant::kAccurate, MultiplierVariant::kSdlc,
                                MultiplierVariant::kCompensated}) {
        MultiplierVariant parsed = MultiplierVariant::kAccurate;
        ASSERT_TRUE(parse_multiplier_variant(multiplier_variant_name(v), parsed));
        EXPECT_EQ(parsed, v);
    }
    MultiplierVariant v = MultiplierVariant::kSdlc;
    EXPECT_FALSE(parse_multiplier_variant("bogus", v));
    EXPECT_EQ(v, MultiplierVariant::kSdlc) << "failed parse must not modify out";

    for (AccumulationScheme s : {AccumulationScheme::kRowRipple, AccumulationScheme::kWallace,
                                 AccumulationScheme::kDadda, AccumulationScheme::kRowFastCpa}) {
        AccumulationScheme parsed = AccumulationScheme::kDadda;
        ASSERT_TRUE(parse_accumulation_scheme(accumulation_scheme_name(s), parsed));
        EXPECT_EQ(parsed, s);
    }
    AccumulationScheme s = AccumulationScheme::kDadda;
    EXPECT_TRUE(parse_accumulation_scheme("ripple", s));  // CLI alias
    EXPECT_EQ(s, AccumulationScheme::kRowRipple);
    EXPECT_TRUE(parse_accumulation_scheme("fastcpa", s));
    EXPECT_EQ(s, AccumulationScheme::kRowFastCpa);
    EXPECT_FALSE(parse_accumulation_scheme("bogus", s));
}

// ------------------------------------------------------------- evaluator ----

SweepSpec small_spec() {
    SweepSpec spec = SweepSpec::for_width(5);
    spec.schemes = {AccumulationScheme::kRowRipple, AccumulationScheme::kDadda};
    return spec;
}

void expect_identical(const std::vector<DesignPoint>& a, const std::vector<DesignPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].config.width, b[i].config.width);
        EXPECT_EQ(a[i].config.depth, b[i].config.depth);
        // Bit-exact double equality is intentional: the engine promises
        // results independent of the thread count.
        EXPECT_EQ(a[i].error.nmed, b[i].error.nmed) << i;
        EXPECT_EQ(a[i].error.mred, b[i].error.mred) << i;
        EXPECT_EQ(a[i].error.max_ed, b[i].error.max_ed) << i;
        EXPECT_EQ(a[i].hw.cells, b[i].hw.cells) << i;
        EXPECT_EQ(a[i].hw.area_um2, b[i].hw.area_um2) << i;
        EXPECT_EQ(a[i].hw.delay_ps, b[i].hw.delay_ps) << i;
        EXPECT_EQ(a[i].hw.dynamic_power_uw, b[i].hw.dynamic_power_uw) << i;
    }
}

TEST(Evaluator, DeterministicAcrossThreadCounts) {
    EvalOptions one;
    one.threads = 1;
    EvalOptions many;
    many.threads = 4;
    expect_identical(evaluate_sweep(small_spec(), one), evaluate_sweep(small_spec(), many));
}

TEST(Evaluator, SampledPathIsSeededAndDeterministic) {
    // Force the Monte-Carlo path by lowering the exhaustive cutoff.
    SweepSpec spec = SweepSpec::for_width(6);
    spec.variants = {MultiplierVariant::kSdlc};
    spec.schemes = {AccumulationScheme::kRowRipple};
    spec.min_depth = 2;
    spec.max_depth = 3;

    EvalOptions opts;
    opts.exhaustive_max_width = 4;
    opts.samples = 2000;
    opts.evaluate_hardware = false;
    opts.threads = 1;
    EvalOptions threaded = opts;
    threaded.threads = 4;
    expect_identical(evaluate_sweep(spec, opts), evaluate_sweep(spec, threaded));

    EvalOptions reseeded = opts;
    reseeded.seed = opts.seed + 1;
    const auto a = evaluate_sweep(spec, opts);
    const auto b = evaluate_sweep(spec, reseeded);
    EXPECT_NE(a[0].error.med, b[0].error.med) << "different seeds should draw new samples";
}

TEST(Evaluator, DistributionsChangeSampledMetrics) {
    MultiplierConfig cfg{12, 2, MultiplierVariant::kSdlc, AccumulationScheme::kRowRipple};
    EvalOptions opts;
    opts.samples = 4000;
    opts.evaluate_hardware = false;
    const DesignPoint uniform = evaluate_point(cfg, opts);
    opts.distribution = OperandDistribution::kSparse;
    const DesignPoint sparse = evaluate_point(cfg, opts);
    EXPECT_NE(uniform.error.med, sparse.error.med);
    // Sparse operands rarely place two bits in one compressed column, so
    // SDLC errs less often.
    EXPECT_LT(sparse.error.error_rate, uniform.error.error_rate);
}

TEST(Evaluator, AccurateIsZeroErrorExtremeOfFrontier) {
    const std::vector<DesignPoint> points = evaluate_sweep(small_spec());
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));
    ASSERT_FALSE(pareto.frontier.empty());
    bool accurate_on_frontier = false;
    double min_nmed_on_frontier = 1.0;
    for (size_t i : pareto.frontier) {
        min_nmed_on_frontier = std::min(min_nmed_on_frontier, points[i].error.nmed);
        if (points[i].config.variant == MultiplierVariant::kAccurate) {
            accurate_on_frontier = true;
            EXPECT_EQ(points[i].error.nmed, 0.0);
            EXPECT_EQ(points[i].error.max_ed, 0u);
        }
    }
    EXPECT_TRUE(accurate_on_frontier);
    EXPECT_EQ(min_nmed_on_frontier, 0.0);
}

TEST(Evaluator, StreamsPointsInEnumerationOrder) {
    // The streaming hook must see every point exactly once, in enumeration
    // order, even though workers complete points out of order.
    const SweepSpec spec = small_spec();
    EvalOptions opts;
    opts.threads = 4;
    std::vector<size_t> order;
    std::vector<DesignPoint> streamed;
    opts.on_point = [&](size_t i, const DesignPoint& p) {
        order.push_back(i);
        streamed.push_back(p);
    };
    const std::vector<DesignPoint> points = evaluate_sweep(spec, opts);
    ASSERT_EQ(order.size(), points.size());
    for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
    expect_identical(streamed, points);
}

TEST(Evaluator, ExternalPoolIsReusedAcrossSweeps) {
    ThreadPool pool(2);
    EvalOptions opts;
    opts.pool = &pool;
    opts.evaluate_hardware = false;
    EvalOptions fresh;  // sweep-local pool
    fresh.evaluate_hardware = false;
    expect_identical(evaluate_sweep(small_spec(), opts), evaluate_sweep(small_spec(), fresh));
    // Second sweep on the same pool: still fine, still identical.
    expect_identical(evaluate_sweep(small_spec(), opts), evaluate_sweep(small_spec(), fresh));
}

TEST(Evaluator, CancelThrowsSweepCancelled) {
    std::atomic<bool> cancel{true};  // pre-set: first claimed point trips it
    EvalOptions opts;
    opts.cancel = &cancel;
    opts.evaluate_hardware = false;
    EXPECT_THROW((void)evaluate_sweep(small_spec(), opts), SweepCancelled);
    cancel.store(false);
    EXPECT_NO_THROW((void)evaluate_sweep(small_spec(), opts));
}

TEST(Evaluator, ObjectiveMatrixSelectsAxes) {
    const std::vector<DesignPoint> points = evaluate_sweep(small_spec());
    const auto m = objective_matrix(points, {Objective::kEnergy, Objective::kMaxRed});
    ASSERT_EQ(m.size(), points.size());
    for (size_t i = 0; i < m.size(); ++i) {
        ASSERT_EQ(m[i].size(), 2u);
        EXPECT_EQ(m[i][0], points[i].hw.energy_fj);
        EXPECT_EQ(m[i][1], points[i].error.max_red);
    }
    // The default matrix still carries the paper's four axes.
    EXPECT_EQ(objective_matrix(points)[0].size(), 4u);
}

TEST(Evaluator, ErrorOnlyModeSkipsSynthesis) {
    EvalOptions opts;
    opts.evaluate_hardware = false;
    const DesignPoint p = evaluate_point({6, 2}, opts);
    EXPECT_EQ(p.hw.cells, 0u);
    EXPECT_GT(p.error.samples, 0u);
}

TEST(Evaluator, DescribeMentionsConfig) {
    const DesignPoint p = evaluate_point({6, 3}, [] {
        EvalOptions o;
        o.evaluate_hardware = false;
        return o;
    }());
    EXPECT_NE(p.describe().find("6x6"), std::string::npos);
    EXPECT_NE(p.describe().find("d3"), std::string::npos);
}

// ---------------------------------------------------------------- export ----

std::vector<DesignPoint> export_fixture() {
    SweepSpec spec = SweepSpec::for_width(4);
    spec.variants = {MultiplierVariant::kAccurate, MultiplierVariant::kSdlc};
    spec.schemes = {AccumulationScheme::kRowRipple};
    EvalOptions opts;
    opts.evaluate_hardware = false;
    return evaluate_sweep(spec, opts);
}

TEST(Export, CsvRoundTrip) {
    const std::vector<DesignPoint> points = export_fixture();
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));
    const std::string path = testing::TempDir() + "/dse_test.csv";
    write_dse_csv(path, points, pareto.rank);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    EXPECT_EQ(lines, points.size() + 1);  // header + one row per point
    std::remove(path.c_str());
}

TEST(Export, CsvRowMatchesHeaderWidth) {
    const std::vector<DesignPoint> points = export_fixture();
    EXPECT_EQ(dse_csv_row(points[0], 0).size(), dse_csv_header().size());
    EXPECT_EQ(dse_csv_row(points[0], -1)[4], "");  // unknown rank -> empty cell
}

TEST(Export, JsonContainsConfigAndMetrics) {
    const std::vector<DesignPoint> points = export_fixture();
    const std::string json = dse_to_json(points);
    EXPECT_NE(json.find("\"width\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"variant\": \"accurate\""), std::string::npos);
    EXPECT_NE(json.find("\"nmed\""), std::string::npos);
    EXPECT_NE(json.find("\"rank\": null"), std::string::npos);
    // Array shape: one object per point.
    size_t objects = 0;
    for (size_t pos = 0; (pos = json.find("\"config\"", pos)) != std::string::npos; ++pos) {
        ++objects;
    }
    EXPECT_EQ(objects, points.size());
}

TEST(Export, PointJsonIsSingleLineAndMatchesArrayRows) {
    // The serve protocol embeds dse_point_json in streamed events and the
    // array export embeds it per row; byte-level streaming/export parity
    // depends on both using the same renderer.
    const std::vector<DesignPoint> points = export_fixture();
    const std::string row = dse_point_json(points[0], 2);
    EXPECT_EQ(row.find('\n'), std::string::npos);
    EXPECT_NE(row.find("\"rank\": 2"), std::string::npos);
    EXPECT_NE(dse_to_json(points, std::vector<int>(points.size(), 2)).find(row),
              std::string::npos);
}

TEST(Export, SummaryCarriesObjectiveSet) {
    const std::vector<DesignPoint> points = export_fixture();
    const SweepStats stats;
    EXPECT_NE(dse_to_json(points, {}, stats)
                  .find("\"objectives\": [\"error\", \"area\", \"power\", \"delay\"]"),
              std::string::npos);
    EXPECT_NE(dse_to_json(points, {}, stats, {Objective::kEnergy})
                  .find("\"objectives\": [\"energy\"]"),
              std::string::npos);
}

TEST(Export, RanksSizeMismatchThrows) {
    const std::vector<DesignPoint> points = export_fixture();
    EXPECT_THROW(dse_to_json(points, std::vector<int>{1}), std::invalid_argument);
}

}  // namespace
}  // namespace sdlc
